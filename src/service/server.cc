#include "service/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

namespace bpsim::service {

// ---------------------------------------------------------------------
// BatchQueue

Result<SweepResponse>
BatchQueue::submit(const SweepRequest &request)
{
    auto slot = std::make_shared<Slot>();
    slot->request = request;

    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.submissions;
    pending_.push_back(slot);

    while (!slot->out) {
        if (!draining_) {
            // Become the drainer of everything pending (leader-based
            // combining): under no contention this is a batch of one;
            // under load it is the coalescing window.
            draining_ = true;
            std::vector<std::shared_ptr<Slot>> batch;
            batch.swap(pending_);
            ++stats_.drains;
            if (batch.size() > 1)
                ++stats_.multiRequestDrains;
            lock.unlock();

            std::vector<SweepRequest> requests;
            requests.reserve(batch.size());
            for (const auto &member : batch)
                requests.push_back(member->request);

            std::vector<Result<SweepResponse>> results;
            BatchCounters counters;
            try {
                results = session_.sweepBatch(requests, &counters);
            } catch (const std::exception &e) {
                results.clear();
                for (std::size_t i = 0; i < batch.size(); ++i)
                    results.push_back(BPSIM_ERROR(
                        "sweep batch threw: ", e.what()));
            } catch (...) {
                results.clear();
                for (std::size_t i = 0; i < batch.size(); ++i)
                    results.push_back(BPSIM_ERROR(
                        "sweep batch threw a non-exception"));
            }

            lock.lock();
            stats_.batch.merge(counters);
            for (std::size_t i = 0; i < batch.size(); ++i)
                batch[i]->out = std::move(results[i]);
            draining_ = false;
            cv_.notify_all();
        } else {
            cv_.wait(lock);
        }
    }
    return std::move(*slot->out);
}

BatchQueue::Stats
BatchQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

// ---------------------------------------------------------------------
// SweepServer

SweepServer::SweepServer(ServerOptions opts, SchemeRegistry schemes,
                         WorkloadRegistry workloads)
    : opts_(std::move(opts)), schemes_(std::move(schemes)),
      workloads_(std::move(workloads)),
      session_(opts_.cacheDir, opts_.cacheBudgetBytes),
      queue_(session_)
{
}

SweepServer::SweepServer(ServerOptions opts)
    : SweepServer(std::move(opts), SchemeRegistry::withBuiltins(),
                  WorkloadRegistry::withBuiltins())
{
}

void
SweepServer::countError()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++errors_;
}

std::string
SweepServer::handleLine(std::string_view line)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++requests_;
    }

    if (line.size() > opts_.limits.maxLineBytes) {
        countError();
        return errorResponse(
                   "", errcode::kOversizedLine,
                   "request line exceeds " +
                       std::to_string(opts_.limits.maxLineBytes) +
                       " bytes")
            .render();
    }

    Result<JsonValue> parsed = parseJson(line);
    if (!parsed.ok()) {
        countError();
        return errorResponse("", errcode::kBadJson,
                             parsed.error().message())
            .render();
    }

    // Echo the id in error responses whenever one parsed, even when
    // the rest of the request is malformed.
    std::string id;
    if (const JsonValue *idv = parsed.value().find("id"))
        if (idv->isString())
            id = idv->asString();

    Result<Request> request =
        parseRequest(parsed.value(), opts_.limits);
    if (!request.ok()) {
        countError();
        return errorResponse(id, errcode::kBadRequest,
                             request.error().message())
            .render();
    }

    try {
        JsonValue response = dispatch(request.value());
        if (const JsonValue *ok = response.find("ok"))
            if (ok->isBool() && !ok->asBool())
                countError();
        return response.render();
    } catch (const std::exception &e) {
        countError();
        return errorResponse(id, errcode::kInternal,
                             std::string("request dispatch threw: ") +
                                 e.what())
            .render();
    } catch (...) {
        countError();
        return errorResponse(id, errcode::kInternal,
                             "request dispatch threw a non-exception")
            .render();
    }
}

JsonValue
SweepServer::dispatch(const Request &req)
{
    switch (req.op) {
      case RequestOp::Ping:
        return okResponse(req.id, req.op);
      case RequestOp::Intern:
        return handleIntern(req);
      case RequestOp::Sweep:
        return handleSweep(req);
      case RequestOp::Point:
        return handlePoint(req);
      case RequestOp::Stats:
        return handleStats(req);
      case RequestOp::Catalog:
        return handleCatalog(req);
      case RequestOp::Shutdown: {
        shutdown_.store(true, std::memory_order_release);
        interruptTransports();
        return okResponse(req.id, req.op);
      }
    }
    return errorResponse(req.id, errcode::kInternal,
                         "unhandled op");
}

Result<TraceHash>
SweepServer::resolveTraceKey(const TraceRef &ref)
{
    if (ref.byProfile()) {
        Result<TraceHandle> handle =
            workloads_.intern(ref.profile, session_, ref.branches);
        if (!handle.ok())
            return handle.error();
        return handle.value().hash;
    }
    if (ref.byFile()) {
        Result<TraceHandle> handle = session_.internFile(ref.file);
        if (!handle.ok())
            return handle.error();
        return handle.value().hash;
    }
    // Hash form: pass through unresolved.  A sweep against a warm
    // result cache needs no trace bytes at all; when it does miss,
    // the session reports the not-interned error.
    return ref.hash;
}

JsonValue
SweepServer::handleIntern(const Request &req)
{
    TraceHash hash;
    std::uint64_t records = 0;
    if (req.trace.byHash()) {
        TraceHandle handle = session_.registry().lookup(req.trace.hash);
        if (!handle.valid())
            return errorResponse(req.id, errcode::kFailed,
                                 "trace " + req.trace.hash.hex() +
                                     " is not interned");
        hash = handle.hash;
        records = handle.trace->size();
    } else {
        Result<TraceHash> key = resolveTraceKey(req.trace);
        if (!key.ok()) {
            const char *code = req.trace.byProfile()
                                   ? errcode::kUnknownProfile
                                   : errcode::kFailed;
            return errorResponse(req.id, code, key.error().message());
        }
        hash = key.value();
        TraceHandle handle = session_.registry().lookup(hash);
        if (handle.valid())
            records = handle.trace->size();
    }
    JsonValue response = okResponse(req.id, req.op);
    response.object().emplace("trace", JsonValue(hash.hex()));
    response.object().emplace(
        "records", JsonValue(static_cast<std::int64_t>(records)));
    return response;
}

JsonValue
SweepServer::handleSweep(const Request &req)
{
    Result<SchemeKind> kind = schemes_.resolve(req.scheme);
    if (!kind.ok())
        return errorResponse(req.id, errcode::kUnknownScheme,
                             kind.error().message());
    Result<TraceHash> trace = resolveTraceKey(req.trace);
    if (!trace.ok()) {
        const char *code = req.trace.byProfile()
                               ? errcode::kUnknownProfile
                               : errcode::kFailed;
        return errorResponse(req.id, code, trace.error().message());
    }

    SweepRequest sweep;
    sweep.trace = trace.value();
    sweep.kind = kind.value();
    sweep.options = req.options;
    sweep.options.threads = opts_.threads;
    sweep.bypassCache = req.bypassCache;

    Result<SweepResponse> response = submitSweep(sweep);
    if (!response.ok())
        return errorResponse(req.id, errcode::kFailed,
                             response.error().message());

    JsonValue out = okResponse(req.id, req.op);
    out.object().emplace("trace", JsonValue(sweep.trace.hex()));
    out.object().emplace("scheme",
                         JsonValue(schemeKindName(sweep.kind)));
    JsonValue payload = sweepResponseJson(response.value());
    for (auto &[key, value] : payload.object())
        out.object().emplace(key, std::move(value));
    return out;
}

JsonValue
SweepServer::handlePoint(const Request &req)
{
    Result<SchemeKind> kind = schemes_.resolve(req.scheme);
    if (!kind.ok())
        return errorResponse(req.id, errcode::kUnknownScheme,
                             kind.error().message());
    Result<TraceHash> trace = resolveTraceKey(req.trace);
    if (!trace.ok()) {
        const char *code = req.trace.byProfile()
                               ? errcode::kUnknownProfile
                               : errcode::kFailed;
        return errorResponse(req.id, code, trace.error().message());
    }

    Result<ConfigResult> point =
        session_.point(trace.value(), kind.value(), req.rowBits,
                       req.colBits, req.options);
    if (!point.ok())
        return errorResponse(req.id, errcode::kFailed,
                             point.error().message());

    JsonValue out = okResponse(req.id, req.op);
    out.object().emplace("trace", JsonValue(trace.value().hex()));
    out.object().emplace("scheme",
                         JsonValue(schemeKindName(kind.value())));
    out.object().emplace("misp_rate",
                         JsonValue(point.value().mispRate));
    out.object().emplace("alias_rate",
                         JsonValue(point.value().aliasRate));
    out.object().emplace("harmless_fraction",
                         JsonValue(point.value().harmlessFraction));
    out.object().emplace("bht_miss_rate",
                         JsonValue(point.value().bhtMissRate));
    return out;
}

JsonValue
SweepServer::handleStats(const Request &req)
{
    const ServerStats server = stats();
    const ResultCache::Stats cache = session_.cache().stats();

    JsonValue::Object queue;
    queue.emplace("submissions",
                  JsonValue(static_cast<std::int64_t>(
                      server.queue.submissions)));
    queue.emplace("drains", JsonValue(static_cast<std::int64_t>(
                                server.queue.drains)));
    queue.emplace("multi_request_drains",
                  JsonValue(static_cast<std::int64_t>(
                      server.queue.multiRequestDrains)));
    queue.emplace("cache_hits",
                  JsonValue(static_cast<std::int64_t>(
                      server.queue.batch.cacheHits)));
    queue.emplace("envelope_sweeps",
                  JsonValue(static_cast<std::int64_t>(
                      server.queue.batch.envelopeSweeps)));
    queue.emplace("fused_groups_formed",
                  JsonValue(static_cast<std::int64_t>(
                      server.queue.batch.fusedGroupsFormed)));
    queue.emplace("coalesced_requests",
                  JsonValue(static_cast<std::int64_t>(
                      server.queue.batch.coalescedRequests)));

    // Cumulative kernel telemetry over every envelope replay the
    // daemon has executed (cache hits contribute nothing).
    const KernelTelemetry &kernel = server.queue.batch.kernel;
    JsonValue::Object kernelObj;
    kernelObj.emplace("target",
                      JsonValue(simdTargetName(kernel.target)));
    kernelObj.emplace("fused_groups",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.fusedGroups)));
    kernelObj.emplace("lanes", JsonValue(static_cast<std::int64_t>(
                                   kernel.lanes)));
    kernelObj.emplace("segments",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.segments)));
    kernelObj.emplace("lane_shards",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.laneShards)));
    kernelObj.emplace("shard_tasks",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.shardTasks)));
    kernelObj.emplace("segments_per_group",
                      JsonValue(kernel.segmentsPerGroup()));
    kernelObj.emplace("shards_per_group",
                      JsonValue(kernel.shardsPerGroup()));
    kernelObj.emplace("warmup_branches",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.warmupBranches)));
    kernelObj.emplace("model_groups",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.modelGroups)));
    kernelObj.emplace("model_lanes",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.modelLanes)));
    kernelObj.emplace("model_batches",
                      JsonValue(static_cast<std::int64_t>(
                          kernel.modelBatches)));
    kernelObj.emplace("model_lanes_per_group",
                      JsonValue(kernel.modelLanesPerGroup()));
    kernelObj.emplace("worker_utilization",
                      JsonValue(kernel.workerUtilization()));

    JsonValue::Object cacheObj;
    cacheObj.emplace("memory_hits", JsonValue(static_cast<std::int64_t>(
                                        cache.memoryHits)));
    cacheObj.emplace("disk_hits", JsonValue(static_cast<std::int64_t>(
                                      cache.diskHits)));
    cacheObj.emplace("misses", JsonValue(static_cast<std::int64_t>(
                                   cache.misses)));
    cacheObj.emplace("corrupt", JsonValue(static_cast<std::int64_t>(
                                    cache.corrupt)));
    cacheObj.emplace("store_failures",
                     JsonValue(static_cast<std::int64_t>(
                         cache.storeFailures)));
    cacheObj.emplace("disk_evictions",
                     JsonValue(static_cast<std::int64_t>(
                         cache.diskEvictions)));
    cacheObj.emplace("resident_entries",
                     JsonValue(static_cast<std::int64_t>(
                         session_.cache().residentEntries())));

    JsonValue out = okResponse(req.id, req.op);
    out.object().emplace("requests",
                         JsonValue(static_cast<std::int64_t>(
                             server.requests)));
    out.object().emplace(
        "errors",
        JsonValue(static_cast<std::int64_t>(server.errors)));
    out.object().emplace("queue", JsonValue(std::move(queue)));
    out.object().emplace("kernel", JsonValue(std::move(kernelObj)));
    out.object().emplace("cache", JsonValue(std::move(cacheObj)));
    out.object().emplace("traces_interned",
                         JsonValue(static_cast<std::int64_t>(
                             session_.registry().size())));
    return out;
}

JsonValue
SweepServer::handleCatalog(const Request &req)
{
    JsonValue::Array schemes;
    for (const std::string &name : schemes_.names())
        schemes.emplace_back(name);
    JsonValue::Array workloads;
    for (const std::string &name : workloads_.names())
        workloads.emplace_back(name);

    JsonValue out = okResponse(req.id, req.op);
    out.object().emplace("schemes", JsonValue(std::move(schemes)));
    out.object().emplace("workloads", JsonValue(std::move(workloads)));
    return out;
}

Result<SweepResponse>
SweepServer::submitSweep(const SweepRequest &request)
{
    return queue_.submit(request);
}

ServerStats
SweepServer::stats() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out.requests = requests_;
        out.errors = errors_;
    }
    out.queue = queue_.stats();
    return out;
}

// ---------------------------------------------------------------------
// Transports

Status
SweepServer::servePipe(std::FILE *in, std::FILE *out)
{
    std::string line;
    while (!shutdownRequested()) {
        line.clear();
        bool oversized = false;
        int c;
        while ((c = std::fgetc(in)) != EOF && c != '\n') {
            if (line.size() > opts_.limits.maxLineBytes)
                oversized = true; // keep consuming to the newline
            else
                line.push_back(static_cast<char>(c));
        }
        if (c == EOF && line.empty() && !oversized)
            break;

        // Ignore keepalive/blank lines.
        if (!oversized &&
            line.find_first_not_of(" \t\r") == std::string::npos) {
            if (c == EOF)
                break;
            continue;
        }

        std::string response =
            oversized
                ? handleLine(std::string(opts_.limits.maxLineBytes + 1,
                                         ' '))
                : handleLine(line);
        response += '\n';
        if (std::fwrite(response.data(), 1, response.size(), out) !=
                response.size() ||
            std::fflush(out) != 0) {
            return BPSIM_ERROR("short write on response pipe");
        }
        if (c == EOF)
            break;
    }
    return Status();
}

Status
SweepServer::serveSocket(const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        return BPSIM_ERROR("socket path too long: ", path);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return BPSIM_ERROR("socket() failed: ", std::strerror(errno));

    ::unlink(path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return BPSIM_ERROR("bind(", path,
                           ") failed: ", std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        return BPSIM_ERROR("listen(", path,
                           ") failed: ", std::strerror(err));
    }
    listenFd_.store(fd, std::memory_order_release);

    std::vector<std::thread> workers;
    while (!shutdownRequested()) {
        int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            if (shutdownRequested())
                break;
            break; // listener failed; stop accepting
        }
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            connFds_.push_back(conn);
        }
        workers.emplace_back(
            [this, conn] { serveConnection(conn); });
    }

    listenFd_.store(-1, std::memory_order_release);
    ::close(fd);
    ::unlink(path.c_str());
    for (std::thread &worker : workers)
        worker.join();
    return Status();
}

void
SweepServer::serveConnection(int fd)
{
    // Duplicate the descriptor so read and write sides get
    // independent stdio buffers; servePipe then serves this
    // connection exactly like a stdin/stdout client.
    int wfd = ::dup(fd);
    std::FILE *in = ::fdopen(fd, "r");
    std::FILE *out = wfd >= 0 ? ::fdopen(wfd, "w") : nullptr;
    if (in && out)
        static_cast<void>(servePipe(in, out));
    if (in)
        std::fclose(in);
    else
        ::close(fd);
    if (out)
        std::fclose(out);
    else if (wfd >= 0)
        ::close(wfd);

    std::lock_guard<std::mutex> lock(connMutex_);
    connFds_.erase(
        std::remove(connFds_.begin(), connFds_.end(), fd),
        connFds_.end());
}

void
SweepServer::interruptTransports()
{
    // Wake the accept loop and every connection blocked in a read so
    // serveSocket can join its workers.  shutdown(2) (not close) is
    // used: the descriptors stay valid for their owners to close.
    // Connections get SHUT_RD only -- the connection that carried the
    // shutdown request still has its response in flight.
    const int listener = listenFd_.load(std::memory_order_acquire);
    if (listener >= 0)
        ::shutdown(listener, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : connFds_)
        ::shutdown(fd, SHUT_RD);
}

} // namespace bpsim::service

/**
 * @file
 * The sweep daemon: a SweepSession served over newline-delimited JSON.
 *
 * Architecture (DESIGN.md "Sweep service"):
 *
 *   client line -> handleLine -> parse (json.hh, protocol.hh)
 *                             -> resolve names (registry.hh)
 *                             -> BatchQueue -> SweepSession::sweepBatch
 *                             -> response line
 *
 * The BatchQueue is where the service earns its keep: it turns
 * *concurrency* into *batching* with no added idle latency, using
 * leader-based combining.  A submitting thread enqueues its request
 * and, if nobody is draining, immediately becomes the drainer of
 * everything pending -- under no contention that is a batch of one,
 * exactly as fast as calling the session directly.  While a drain is
 * executing, new submitters pile up in the pending list, so the next
 * drain naturally coalesces them: requests sharing a first-level
 * stream (SweepSession::batchGroupKey) are answered by one envelope
 * replay and sliced per request, bit-identical to standalone sweeps.
 *
 * Failure discipline: handleLine() never throws and never terminates
 * the process.  Oversized lines, bad JSON, bad requests, unknown
 * names, engine errors -- each becomes one structured error response,
 * and the daemon keeps serving.  This is the Result/Status contract
 * of common/error.hh extended over the wire.
 *
 * Two transports share all of that: servePipe() reads stdin/writes
 * stdout (one sequential client; what bpsim_client spawns), and
 * serveSocket() accepts any number of concurrent clients on a local
 * unix socket, one thread per connection.
 */

#ifndef BPSIM_SERVICE_SERVER_HH
#define BPSIM_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.hh"
#include "service/registry.hh"
#include "sim/sweep_session.hh"

namespace bpsim::service {

/**
 * Leader-based combining queue in front of SweepSession::sweepBatch.
 * Thread-safe; any number of threads may submit concurrently.  A
 * solitary submitter drains itself immediately (batch of one);
 * submitters arriving while a drain executes are combined into the
 * next batch, which is what lets sweepBatch coalesce them.
 */
class BatchQueue
{
  public:
    struct Stats
    {
        /** Requests submitted. */
        std::uint64_t submissions = 0;
        /** Drains executed (batches handed to sweepBatch). */
        std::uint64_t drains = 0;
        /** Drains whose batch held two or more requests. */
        std::uint64_t multiRequestDrains = 0;
        /** sweepBatch accounting accumulated over all drains. */
        BatchCounters batch;
    };

    explicit BatchQueue(SweepSession &session) : session_(session) {}

    BatchQueue(const BatchQueue &) = delete;
    BatchQueue &operator=(const BatchQueue &) = delete;

    /**
     * Serve one request, blocking until its result is ready.  Never
     * throws: an engine exception during a drain is converted into an
     * error Result for every request of that batch (the daemon must
     * survive anything).
     */
    Result<SweepResponse> submit(const SweepRequest &request);

    Stats stats() const;

  private:
    struct Slot
    {
        SweepRequest request;
        std::optional<Result<SweepResponse>> out;
    };

    SweepSession &session_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::shared_ptr<Slot>> pending_;
    bool draining_ = false;
    Stats stats_;
};

/** Daemon configuration. */
struct ServerOptions
{
    /** Result-cache directory (empty = memory-only). */
    std::string cacheDir;
    /** On-disk cache LRU budget in bytes (0 = unbounded). */
    std::uint64_t cacheBudgetBytes = 0;
    /** SweepOptions::threads for executed sweeps (0 = one per
     *  hardware thread, 1 = serial). */
    unsigned threads = 1;
    ProtocolLimits limits;
};

/** Aggregate serving counters (the "stats" verb reports these). */
struct ServerStats
{
    /** Lines handled (including ones that failed to parse). */
    std::uint64_t requests = 0;
    /** Lines answered with an error response. */
    std::uint64_t errors = 0;
    BatchQueue::Stats queue;
};

/**
 * The daemon.  Thread-safe: handleLine() may be called from any
 * number of connection threads concurrently.
 */
class SweepServer
{
  public:
    /** Daemon over the given registries (taken by value; register
     *  extensions before constructing). */
    SweepServer(ServerOptions opts, SchemeRegistry schemes,
                WorkloadRegistry workloads);

    /** Daemon over the builtin schemes and the fourteen paper
     *  profiles. */
    explicit SweepServer(ServerOptions opts = {});

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /**
     * Serve one request line (without trailing newline) and return
     * the response line (without trailing newline).  Never throws;
     * every failure mode is an error response.
     */
    std::string handleLine(std::string_view line);

    /**
     * Serve one sweep through the coalescing queue -- the in-process
     * entry point the protocol's "sweep" verb uses, exposed for the
     * stress tests and the service bench.
     */
    Result<SweepResponse> submitSweep(const SweepRequest &request);

    /**
     * Serve @p in line by line, writing one response line to @p out
     * per request, until EOF or a shutdown request.  Whitespace-only
     * lines are ignored.  Returns non-ok only on transport failure.
     */
    Status servePipe(std::FILE *in, std::FILE *out);

    /**
     * Accept clients on a unix socket at @p path (an existing file at
     * that path is replaced), one thread per connection, until a
     * shutdown request arrives on any connection.  The socket file is
     * removed on return.
     */
    Status serveSocket(const std::string &path);

    /** A shutdown request has been served. */
    bool
    shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    SweepSession &session() { return session_; }
    const ServerOptions &options() const { return opts_; }
    const SchemeRegistry &schemes() const { return schemes_; }
    const WorkloadRegistry &workloads() const { return workloads_; }

    ServerStats stats() const;

  private:
    /** Dispatch a parsed request; may throw (handleLine wraps). */
    JsonValue dispatch(const Request &req);
    JsonValue handleIntern(const Request &req);
    JsonValue handleSweep(const Request &req);
    JsonValue handlePoint(const Request &req);
    JsonValue handleStats(const Request &req);
    JsonValue handleCatalog(const Request &req);
    /** Resolve a TraceRef to the trace key a sweep needs.  The hash
     *  form passes through unresolved -- a warm result cache can
     *  answer for traces this process never materialised. */
    Result<TraceHash> resolveTraceKey(const TraceRef &ref);
    void countError();
    void serveConnection(int fd);
    /** Wake every blocked transport read so shutdown can complete. */
    void interruptTransports();

    ServerOptions opts_;
    SchemeRegistry schemes_;
    WorkloadRegistry workloads_;
    SweepSession session_;
    BatchQueue queue_;
    std::atomic<bool> shutdown_{false};
    std::atomic<int> listenFd_{-1};
    mutable std::mutex statsMutex_;
    std::uint64_t requests_ = 0;
    std::uint64_t errors_ = 0;
    std::mutex connMutex_;
    std::vector<int> connFds_;
};

} // namespace bpsim::service

#endif // BPSIM_SERVICE_SERVER_HH

#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bpsim::service {

// ---------------------------------------------------------------------
// LineChannel

LineChannel::~LineChannel()
{
    close();
}

LineChannel::LineChannel(LineChannel &&other) noexcept
    : rfd_(other.rfd_), wfd_(other.wfd_),
      buffer_(std::move(other.buffer_))
{
    other.rfd_ = -1;
    other.wfd_ = -1;
}

LineChannel &
LineChannel::operator=(LineChannel &&other) noexcept
{
    if (this != &other) {
        close();
        rfd_ = other.rfd_;
        wfd_ = other.wfd_;
        buffer_ = std::move(other.buffer_);
        other.rfd_ = -1;
        other.wfd_ = -1;
    }
    return *this;
}

void
LineChannel::closeWrite()
{
    if (wfd_ >= 0 && wfd_ != rfd_)
        ::close(wfd_);
    else if (wfd_ >= 0)
        ::shutdown(wfd_, SHUT_WR); // shared socket descriptor
    wfd_ = -1;
}

void
LineChannel::close()
{
    if (wfd_ >= 0 && wfd_ != rfd_)
        ::close(wfd_);
    if (rfd_ >= 0)
        ::close(rfd_);
    rfd_ = -1;
    wfd_ = -1;
}

Status
LineChannel::sendLine(std::string_view line)
{
    if (wfd_ < 0)
        return BPSIM_ERROR("channel write side is closed");
    std::string framed(line);
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t n =
            ::write(wfd_, framed.data() + sent, framed.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return BPSIM_ERROR("channel write failed: ",
                               std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    return Status();
}

Result<std::string>
LineChannel::recvLine(std::size_t max_bytes)
{
    if (rfd_ < 0)
        return BPSIM_ERROR("channel read side is closed");
    while (true) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (line.size() > max_bytes)
                return BPSIM_ERROR("response line exceeds ",
                                   max_bytes, " bytes");
            return line;
        }
        if (buffer_.size() > max_bytes)
            return BPSIM_ERROR("response line exceeds ", max_bytes,
                               " bytes");

        char chunk[64 * 1024];
        ssize_t n = ::read(rfd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return BPSIM_ERROR("channel read failed: ",
                               std::strerror(errno));
        }
        if (n == 0) {
            if (buffer_.empty())
                return BPSIM_ERROR("peer closed the channel");
            return BPSIM_ERROR("peer closed the channel mid-line (",
                               buffer_.size(), " bytes buffered)");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

// ---------------------------------------------------------------------
// ServerProcess

Result<ServerProcess>
ServerProcess::spawn(const std::string &binary,
                     const std::vector<std::string> &args)
{
    int to_child[2];   // parent writes requests
    int from_child[2]; // parent reads responses
    if (::pipe(to_child) != 0)
        return BPSIM_ERROR("pipe() failed: ", std::strerror(errno));
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        return BPSIM_ERROR("pipe() failed: ", std::strerror(errno));
    }

    int pid = ::fork();
    if (pid < 0) {
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]})
            ::close(fd);
        return BPSIM_ERROR("fork() failed: ", std::strerror(errno));
    }

    if (pid == 0) {
        // Child: wire the pipe ends to stdin/stdout and exec.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]})
            ::close(fd);
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(binary.c_str()));
        for (const std::string &arg : args)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execv(binary.c_str(), argv.data());
        ::_exit(127);
    }

    ::close(to_child[0]);
    ::close(from_child[1]);
    ServerProcess proc;
    proc.channel_ = LineChannel(from_child[0], to_child[1]);
    proc.pid_ = pid;
    return proc;
}

ServerProcess::~ServerProcess()
{
    if (pid_ > 0)
        wait();
}

ServerProcess::ServerProcess(ServerProcess &&other) noexcept
    : channel_(std::move(other.channel_)), pid_(other.pid_)
{
    other.pid_ = -1;
}

ServerProcess &
ServerProcess::operator=(ServerProcess &&other) noexcept
{
    if (this != &other) {
        if (pid_ > 0)
            wait();
        channel_ = std::move(other.channel_);
        pid_ = other.pid_;
        other.pid_ = -1;
    }
    return *this;
}

int
ServerProcess::wait()
{
    if (pid_ <= 0)
        return -1;
    channel_.close(); // EOF ends the child's serve loop
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return -WTERMSIG(status);
    return -1;
}

// ---------------------------------------------------------------------
// Sockets and round trips

Result<LineChannel>
connectUnixSocket(const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        return BPSIM_ERROR("socket path too long: ", path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return BPSIM_ERROR("socket() failed: ", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return BPSIM_ERROR("connect(", path,
                           ") failed: ", std::strerror(err));
    }
    return LineChannel(fd, fd);
}

Result<std::string>
roundTrip(LineChannel &channel, std::string_view request)
{
    Status sent = channel.sendLine(request);
    if (!sent.ok())
        return sent.error();
    return channel.recvLine();
}

} // namespace bpsim::service

/**
 * @file
 * The sweep service's line protocol: request shapes, strict parsing,
 * and response rendering.
 *
 * One request is one line of JSON, one response is one line of JSON
 * (DESIGN.md "Sweep service").  The parser is deliberately strict:
 * unknown keys anywhere in a request are errors, every numeric field
 * is range-checked against ProtocolLimits, and malformed input of any
 * shape becomes a structured Error -- the daemon answers it with an
 * error response and keeps serving.  Being strict at the boundary is
 * what lets the interior stay simple: a Request that parses is a
 * Request the engine can execute.
 *
 * Responses always carry the request's "id" (when one parsed) and an
 * "ok" flag.  Successful sweeps embed the three surfaces tier by
 * tier with %.17g doubles, so a client can reconstruct results
 * bit-identical to an in-process SweepSession::sweep().
 */

#ifndef BPSIM_SERVICE_PROTOCOL_HH
#define BPSIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "service/json.hh"
#include "sim/sweep_session.hh"

namespace bpsim::service {

/** Request guard rails, enforced before anything executes. */
struct ProtocolLimits
{
    /** Longest accepted request line (bytes, excluding newline). */
    std::size_t maxLineBytes = 64 * 1024;
    /** Longest accepted request id. */
    std::size_t maxIdBytes = 128;
    /** Longest accepted name (scheme, profile, file path). */
    std::size_t maxNameBytes = 4096;
    /** Largest accepted sweep tier (2^bits counters). */
    unsigned maxTotalBits = 24;
    /** Largest accepted synthetic trace length. */
    std::uint64_t maxBranches = 1ull << 28;
};

/** The operations the daemon serves. */
enum class RequestOp
{
    Ping,     ///< liveness probe; echoes the id
    Intern,   ///< materialise a trace, return its registry key
    Sweep,    ///< full configuration-space sweep (cached, coalesced)
    Point,    ///< one (row_bits, col_bits) configuration probe
    Stats,    ///< server/cache/coalescing counters
    Catalog,  ///< registered scheme and workload names
    Shutdown, ///< stop serving after this response
};

/** @return the wire name of @p op ("ping", "sweep", ...). */
const char *requestOpName(RequestOp op);

/**
 * How a request names its trace -- exactly one of the three forms:
 * a workload profile (generated on demand), the registry key of a
 * previously interned trace, or a .bpt file path.
 */
struct TraceRef
{
    /** Workload name resolved through the WorkloadRegistry. */
    std::string profile;
    /** Profile form: target conditional count (0 = profile default). */
    std::uint64_t branches = 0;
    /** Registry-key form ({"hash": "<32 hex>"}). */
    TraceHash hash;
    /** File form ({"file": "trace.bpt"}). */
    std::string file;

    bool byProfile() const { return !profile.empty(); }
    bool byHash() const { return !hash.isNull(); }
    bool byFile() const { return !file.empty(); }
};

/** One parsed, validated request line. */
struct Request
{
    RequestOp op = RequestOp::Ping;
    /** Client-chosen correlation id, echoed in the response. */
    std::string id;
    /** Trace reference (intern/sweep/point ops). */
    TraceRef trace;
    /** Scheme name, resolved through the SchemeRegistry (sweep/point). */
    std::string scheme;
    /** Sweep shape; defaults match SweepOptions (sweep/point). */
    SweepOptions options;
    /** Sweep op: skip result-cache lookup and store. */
    bool bypassCache = false;
    /** Point op coordinates. */
    unsigned rowBits = 0;
    unsigned colBits = 0;
};

/**
 * Parse one request object.  Strict: unknown keys at any level,
 * wrong-typed fields, out-of-range numbers, a missing or ambiguous
 * trace reference, and min > max are all structured Errors.
 */
Result<Request> parseRequest(const JsonValue &root,
                             const ProtocolLimits &limits = {});

/**
 * Cosmetic error classification carried in error responses so clients
 * can branch without string-matching messages.
 */
namespace errcode {
constexpr const char *kOversizedLine = "oversized_line";
constexpr const char *kBadJson = "bad_json";
constexpr const char *kBadRequest = "bad_request";
constexpr const char *kUnknownScheme = "unknown_scheme";
constexpr const char *kUnknownProfile = "unknown_profile";
constexpr const char *kFailed = "failed";
constexpr const char *kInternal = "internal";
} // namespace errcode

/** Base success response: {"id": ..., "ok": true, "op": ...}. */
JsonValue okResponse(const std::string &id, RequestOp op);

/** Error response: {"id", "ok": false, "error": {code, message}}. */
JsonValue errorResponse(const std::string &id, const std::string &code,
                        const std::string &message);

/** A surface as an array of {total_bits, points: [{row_bits,
 *  col_bits, value}]} tiers, in tier order. */
JsonValue surfaceJson(const Surface &surface);

/** The result payload of a finished sweep: surfaces, BHT miss rate,
 *  and the cache/coalescing provenance flags. */
JsonValue sweepResponseJson(const SweepResponse &response);

} // namespace bpsim::service

#endif // BPSIM_SERVICE_PROTOCOL_HH

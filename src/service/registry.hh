/**
 * @file
 * Plugin registries at the service boundary.
 *
 * The daemon resolves the *names* a request carries -- scheme and
 * workload -- through registries instead of hard-coded switches, so
 * an embedding host can extend the service without touching the
 * protocol: register a new workload generator (a replayed production
 * trace, a stress profile) or an alias for a scheme, and every verb
 * of the protocol picks it up, including the "catalog" listing.  The
 * shape follows the factory-registry idiom (SNIPPETS.md, snippet 3):
 * construction recipes keyed by name, registered once at startup,
 * resolved per request with a structured Error on unknown names.
 *
 * Both registries are populated-then-read: register everything before
 * serving starts (SweepServer takes them by value), after which
 * resolution is const and safe to call from any number of connection
 * threads.
 */

#ifndef BPSIM_SERVICE_REGISTRY_HH
#define BPSIM_SERVICE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/sweep_session.hh"

namespace bpsim::service {

/** Name -> SchemeKind resolution for the protocol's "scheme" field. */
class SchemeRegistry
{
  public:
    /** Register @p name; errors when the name is already taken. */
    Status registerScheme(const std::string &name, SchemeKind kind);

    /** Resolve a request's scheme name; errors on unknown names,
     *  listing what is registered. */
    Result<SchemeKind> resolve(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * The seven paper schemes under their display names
     * (schemeKindName) plus lowercase aliases ("gag", "pas", ...).
     */
    static SchemeRegistry withBuiltins();

  private:
    std::map<std::string, SchemeKind> schemes_;
};

/**
 * Name -> trace-generator resolution for the protocol's trace
 * {"profile": ...} form.  A generator interns its trace into the
 * given session and returns the handle; target_conditionals carries
 * the request's "branches" field (0 = generator default).
 */
class WorkloadRegistry
{
  public:
    using Generator = std::function<Result<TraceHandle>(
        SweepSession &, std::uint64_t target_conditionals)>;

    /** Register @p name; errors when the name is already taken. */
    Status registerWorkload(const std::string &name, Generator gen);

    /** Run the named generator; errors on unknown names. */
    Result<TraceHandle> intern(const std::string &name,
                               SweepSession &session,
                               std::uint64_t target_conditionals) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** The fourteen paper profiles (workload/profiles.hh), each
     *  interning through SweepSession::internProfile. */
    static WorkloadRegistry withBuiltins();

  private:
    std::map<std::string, Generator> workloads_;
};

} // namespace bpsim::service

#endif // BPSIM_SERVICE_REGISTRY_HH

#include "service/registry.hh"

#include <algorithm>
#include <cctype>

#include "workload/profiles.hh"

namespace bpsim::service {

namespace {

std::string
lowercase(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

Status
SchemeRegistry::registerScheme(const std::string &name, SchemeKind kind)
{
    if (name.empty())
        return BPSIM_ERROR("scheme name must be non-empty");
    if (!schemes_.emplace(name, kind).second)
        return BPSIM_ERROR("scheme \"", name, "\" is already registered");
    return Status();
}

Result<SchemeKind>
SchemeRegistry::resolve(const std::string &name) const
{
    auto it = schemes_.find(name);
    if (it == schemes_.end()) {
        // A multi-component factory spec ("tage:12:10:8:4,8,16,32",
        // "tournament(...)") is a different namespace: the service
        // takes a bare scheme name plus structured options, so point
        // the client at the right shape instead of just listing names.
        if (name.find(':') != std::string::npos ||
            name.find('(') != std::string::npos ||
            name.find(',') != std::string::npos) {
            return BPSIM_ERROR(
                "unknown scheme \"", name,
                "\" -- looks like a predictor spec string; the "
                "service takes a bare scheme name (registered: ",
                joinNames(names()),
                ") with per-scheme parameters in \"options\" (e.g. "
                "tage_tag_bits, tage_histories, perceptron_tables)");
        }
        return BPSIM_ERROR("unknown scheme \"", name,
                           "\" (registered: ", joinNames(names()), ")");
    }
    return it->second;
}

std::vector<std::string>
SchemeRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(schemes_.size());
    for (const auto &[name, kind] : schemes_) {
        static_cast<void>(kind);
        out.push_back(name);
    }
    return out;
}

SchemeRegistry
SchemeRegistry::withBuiltins()
{
    SchemeRegistry reg;
    const SchemeKind kinds[] = {
        SchemeKind::AddressIndexed, SchemeKind::GAg,
        SchemeKind::GAs,            SchemeKind::Gshare,
        SchemeKind::Path,           SchemeKind::PAsPerfect,
        SchemeKind::PAsFinite,      SchemeKind::Tage,
        SchemeKind::Perceptron,
    };
    for (SchemeKind kind : kinds) {
        const std::string display = schemeKindName(kind);
        static_cast<void>(reg.registerScheme(display, kind));
        const std::string lower = lowercase(display);
        if (lower != display)
            static_cast<void>(reg.registerScheme(lower, kind));
    }
    // Ergonomic short names for the two PAs variants.
    static_cast<void>(reg.registerScheme("pas", SchemeKind::PAsPerfect));
    static_cast<void>(
        reg.registerScheme("pas_bht", SchemeKind::PAsFinite));
    return reg;
}

Status
WorkloadRegistry::registerWorkload(const std::string &name,
                                   Generator gen)
{
    if (name.empty())
        return BPSIM_ERROR("workload name must be non-empty");
    if (!gen)
        return BPSIM_ERROR("workload \"", name,
                           "\" has no generator function");
    if (!workloads_.emplace(name, std::move(gen)).second)
        return BPSIM_ERROR("workload \"", name,
                           "\" is already registered");
    return Status();
}

Result<TraceHandle>
WorkloadRegistry::intern(const std::string &name, SweepSession &session,
                         std::uint64_t target_conditionals) const
{
    auto it = workloads_.find(name);
    if (it == workloads_.end())
        return BPSIM_ERROR("unknown workload \"", name,
                           "\" (registered: ", joinNames(names()), ")");
    return it->second(session, target_conditionals);
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(workloads_.size());
    for (const auto &[name, gen] : workloads_) {
        static_cast<void>(gen);
        out.push_back(name);
    }
    return out;
}

WorkloadRegistry
WorkloadRegistry::withBuiltins()
{
    WorkloadRegistry reg;
    for (const std::string &profile : profileNames()) {
        static_cast<void>(reg.registerWorkload(
            profile,
            [profile](SweepSession &session,
                      std::uint64_t target_conditionals) {
                return session.internProfile(profile,
                                             target_conditionals);
            }));
    }
    return reg;
}

} // namespace bpsim::service

#include "service/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpsim::service {

namespace {

/** Recursive-descent parser over a bounded view. */
class Parser
{
  public:
    Parser(std::string_view text, const JsonLimits &limits)
        : text_(text), limits_(limits)
    {
    }

    Result<JsonValue>
    parse()
    {
        Result<JsonValue> v = value(0);
        if (!v.ok())
            return v;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON value");
        return v;
    }

  private:
    Error
    fail(const std::string &what) const
    {
        return BPSIM_ERROR("JSON error at byte ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\r' && c != '\n')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.size() - pos_ >= n &&
            text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Result<JsonValue>
    value(std::size_t depth)
    {
        if (depth > limits_.maxDepth)
            return fail("nesting deeper than " +
                        std::to_string(limits_.maxDepth));
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"': {
            Result<std::string> s = parseString();
            if (!s.ok())
                return s.error();
            return JsonValue(std::move(s).value());
          }
          case 't':
            if (consumeWord("true"))
                return JsonValue(true);
            return fail("invalid token");
          case 'f':
            if (consumeWord("false"))
                return JsonValue(false);
            return fail("invalid token");
          case 'n':
            if (consumeWord("null"))
                return JsonValue();
            return fail("invalid token");
          default:
            return parseNumber();
        }
    }

    Result<JsonValue>
    parseObject(std::size_t depth)
    {
        ++pos_; // '{'
        JsonValue::Object obj;
        skipWs();
        if (consume('}'))
            return JsonValue(std::move(obj));
        while (true) {
            if (obj.size() >= limits_.maxMembers)
                return fail("object with more than " +
                            std::to_string(limits_.maxMembers) +
                            " members");
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            Result<std::string> key = parseString();
            if (!key.ok())
                return key.error();
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            Result<JsonValue> v = value(depth + 1);
            if (!v.ok())
                return v;
            if (!obj.emplace(std::move(key).value(),
                             std::move(v).value())
                     .second) {
                return fail("duplicate object key");
            }
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue(std::move(obj));
            return fail("expected ',' or '}' in object");
        }
    }

    Result<JsonValue>
    parseArray(std::size_t depth)
    {
        ++pos_; // '['
        JsonValue::Array arr;
        skipWs();
        if (consume(']'))
            return JsonValue(std::move(arr));
        while (true) {
            if (arr.size() >= limits_.maxMembers)
                return fail("array with more than " +
                            std::to_string(limits_.maxMembers) +
                            " elements");
            Result<JsonValue> v = value(depth + 1);
            if (!v.ok())
                return v;
            arr.push_back(std::move(v).value());
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue(std::move(arr));
            return fail("expected ',' or ']' in array");
        }
    }

    Result<std::string>
    parseString()
    {
        ++pos_; // opening quote
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            if (out.size() > limits_.maxStringBytes)
                return fail("string longer than " +
                            std::to_string(limits_.maxStringBytes) +
                            " bytes");
            unsigned char c =
                static_cast<unsigned char>(text_[pos_++]);
            if (c == '"')
                return out;
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                Result<std::uint32_t> cp = parseCodepoint();
                if (!cp.ok())
                    return cp.error();
                appendUtf8(out, cp.value());
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    Result<std::uint32_t>
    parseCodepoint()
    {
        Result<std::uint32_t> unit = parseHex4();
        if (!unit.ok())
            return unit;
        std::uint32_t cp = unit.value();
        if (cp >= 0xDC00 && cp <= 0xDFFF)
            return fail("lone low surrogate");
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (!consumeWord("\\u"))
                return fail("high surrogate without pair");
            Result<std::uint32_t> low = parseHex4();
            if (!low.ok())
                return low;
            if (low.value() < 0xDC00 || low.value() > 0xDFFF)
                return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) +
                 (low.value() - 0xDC00);
        }
        return cp;
    }

    Result<std::uint32_t>
    parseHex4()
    {
        if (text_.size() - pos_ < 4)
            return fail("truncated \\u escape");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        return v;
    }

    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    Result<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
            // sign consumed; digits must follow
        }
        if (pos_ >= text_.size() || text_[pos_] < '0' ||
            text_[pos_] > '9')
            return fail("invalid number");
        // No leading zeros: "0" alone or a nonzero first digit.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9')
            return fail("leading zero in number");
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        bool integral = true;
        if (consume('.')) {
            integral = false;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                return fail("digits must follow decimal point");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                return fail("digits must follow exponent");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        if (integral) {
            char *end = nullptr;
            long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == ERANGE || end != token.c_str() + token.size())
                return fail("integer out of range");
            return JsonValue(static_cast<std::int64_t>(v));
        }
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v))
            return fail("number out of range");
        return JsonValue(v);
    }

    std::string_view text_;
    const JsonLimits &limits_;
    std::size_t pos_ = 0;
};

void
renderDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no inf/nan; results never hold them
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    // Force a Double round-trip (preserves -0.0 and the Int/Double
    // kind distinction) when %.17g printed an integral form.
    if (out.find_first_of(".eEn", out.size() - std::strlen(buf)) ==
        std::string::npos)
        out += ".0";
}

void
renderValue(std::string &out, const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case JsonValue::Kind::Int:
        out += std::to_string(v.asInt());
        break;
      case JsonValue::Kind::Double:
        renderDouble(out, v.asDouble());
        break;
      case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.asString());
        out += '"';
        break;
      case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &e : v.array()) {
            if (!first)
                out += ',';
            first = false;
            renderValue(out, e);
        }
        out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, val] : v.object()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(key);
            out += "\":";
            renderValue(out, val);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

std::string
JsonValue::render() const
{
    std::string out;
    renderValue(out, *this);
    return out;
}

Result<JsonValue>
parseJson(std::string_view text, const JsonLimits &limits)
{
    return Parser(text, limits).parse();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

} // namespace bpsim::service

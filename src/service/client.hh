/**
 * @file
 * Thin client plumbing for the sweep daemon.
 *
 * A client of the service needs exactly three things: a byte channel
 * that frames newline-delimited lines (LineChannel), a way to obtain
 * one -- spawn a private sweep_server child on a stdin/stdout pipe
 * (ServerProcess) or connect to a shared daemon's unix socket
 * (connectUnixSocket) -- and a request/response round trip.  All
 * failures (dead peer, oversized response, spawn failure) are
 * structured Errors; nothing here terminates the process, so the
 * e2e and fuzz tests can drive broken channels on purpose.
 */

#ifndef BPSIM_SERVICE_CLIENT_HH
#define BPSIM_SERVICE_CLIENT_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hh"

namespace bpsim::service {

/**
 * Buffered newline-delimited framing over a read/write descriptor
 * pair.  Owns the descriptors (closed on destruction); move-only.
 * The two descriptors may be the same (a socket) or distinct (a
 * pipe pair).
 */
class LineChannel
{
  public:
    LineChannel() = default;
    /** Take ownership of @p read_fd / @p write_fd (may be equal). */
    LineChannel(int read_fd, int write_fd)
        : rfd_(read_fd), wfd_(write_fd)
    {
    }
    ~LineChannel();

    LineChannel(LineChannel &&other) noexcept;
    LineChannel &operator=(LineChannel &&other) noexcept;
    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    bool valid() const { return rfd_ >= 0 && wfd_ >= 0; }

    /** Write @p line plus a newline; errors on a dead peer. */
    Status sendLine(std::string_view line);

    /**
     * Read one line (newline stripped).  Errors on EOF, a mid-line
     * EOF, or a line longer than @p max_bytes -- responses carrying
     * full sweep surfaces are large, hence the generous default.
     */
    Result<std::string> recvLine(std::size_t max_bytes = 8u << 20);

    /** Close the write side only, signalling EOF to a pipe server
     *  while responses may still be in flight. */
    void closeWrite();

    /** Close both descriptors. */
    void close();

  private:
    int rfd_ = -1;
    int wfd_ = -1;
    std::string buffer_; ///< received bytes not yet consumed
};

/**
 * A private sweep_server child process on a stdin/stdout pipe.  The
 * destructor closes the channel (EOF stops the child's serve loop)
 * and reaps the process.
 */
class ServerProcess
{
  public:
    /**
     * Fork and exec @p binary with @p args (argv[0] is the binary;
     * do not include it in @p args), its stdin/stdout wired to the
     * returned object's channel.  Exec failure surfaces as exit code
     * 127 from wait(), not as an error here -- the first round trip
     * then fails with EOF.
     */
    static Result<ServerProcess>
    spawn(const std::string &binary,
          const std::vector<std::string> &args = {});

    ServerProcess() = default;
    ~ServerProcess();

    ServerProcess(ServerProcess &&other) noexcept;
    ServerProcess &operator=(ServerProcess &&other) noexcept;
    ServerProcess(const ServerProcess &) = delete;
    ServerProcess &operator=(const ServerProcess &) = delete;

    bool running() const { return pid_ > 0; }
    LineChannel &channel() { return channel_; }

    /** Close the channel and reap; @return the child's exit code
     *  (or -signal when killed). */
    int wait();

  private:
    LineChannel channel_;
    int pid_ = -1;
};

/** Connect to a daemon's unix socket. */
Result<LineChannel> connectUnixSocket(const std::string &path);

/** One request/response round trip over @p channel. */
Result<std::string> roundTrip(LineChannel &channel,
                              std::string_view request);

} // namespace bpsim::service

#endif // BPSIM_SERVICE_CLIENT_HH

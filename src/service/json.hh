/**
 * @file
 * Self-contained JSON values for the sweep service's line protocol.
 *
 * The daemon speaks newline-delimited JSON (DESIGN.md "Sweep service")
 * to arbitrary clients, so the parser here is written like the .bpt
 * reader, not like a config loader: every structural limit is
 * enforced up front (depth, string length, member counts), malformed
 * input of any shape is a structured Error -- never a crash, hang or
 * unbounded allocation -- and the request fuzzer in src/verify/
 * attacks it byte by byte.
 *
 * Number discipline: integers without fraction/exponent parse as
 * Int (int64), everything else as Double.  The writer renders
 * doubles with 17 significant digits, which round-trips every IEEE
 * double exactly -- the service's "bit-identical to an in-process
 * sweep" contract rests on this (integral doubles get a forced
 * ".0" so they come back as Double, preserving -0.0).
 */

#ifndef BPSIM_SERVICE_JSON_HH
#define BPSIM_SERVICE_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hh"

namespace bpsim::service {

/** Parser guard rails; the protocol layer tightens these further. */
struct JsonLimits
{
    /** Maximum container nesting. */
    std::size_t maxDepth = 16;
    /** Maximum decoded bytes of one string value or key. */
    std::size_t maxStringBytes = 8192;
    /** Maximum members per object or elements per array. */
    std::size_t maxMembers = 512;
};

/** One JSON value (null / bool / int / double / string / array /
 *  object).  Objects are keyed maps; duplicate keys are a parse
 *  error. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool v) : kind_(Kind::Bool), bool_(v) {}
    JsonValue(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    JsonValue(double v) : kind_(Kind::Double), double_(v) {}
    JsonValue(std::string v)
        : kind_(Kind::String), string_(std::move(v))
    {
    }
    JsonValue(const char *v) : JsonValue(std::string(v)) {}
    JsonValue(Array v) : kind_(Kind::Array), array_(std::move(v)) {}
    JsonValue(Object v) : kind_(Kind::Object), object_(std::move(v)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Unchecked accessors; call only after the kind test. */
    bool asBool() const { return bool_; }
    std::int64_t asInt() const { return int_; }
    /** Numeric value of an Int or Double. */
    double
    asDouble() const
    {
        return kind_ == Kind::Int ? static_cast<double>(int_)
                                  : double_;
    }
    const std::string &asString() const { return string_; }
    const Array &array() const { return array_; }
    const Object &object() const { return object_; }
    Object &object() { return object_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Compact single-line rendering (no trailing newline). */
    std::string render() const;

  private:
    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Parse exactly one JSON value spanning all of @p text (trailing
 * whitespace allowed, trailing tokens are an error).  All failures --
 * syntax, limits, duplicate keys, malformed escapes, out-of-range
 * numbers -- are structured Errors naming the byte offset.
 */
Result<JsonValue> parseJson(std::string_view text,
                            const JsonLimits &limits = {});

/** JSON string escaping of @p s (without surrounding quotes). */
std::string jsonEscape(const std::string &s);

} // namespace bpsim::service

#endif // BPSIM_SERVICE_JSON_HH

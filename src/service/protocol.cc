#include "service/protocol.hh"

namespace bpsim::service {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Required string member, length-capped. */
Result<std::string>
stringField(const JsonValue &obj, const char *key, std::size_t max_bytes)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return BPSIM_ERROR("missing required field \"", key, "\"");
    if (!v->isString())
        return BPSIM_ERROR("field \"", key, "\" must be a string");
    if (v->asString().size() > max_bytes)
        return BPSIM_ERROR("field \"", key, "\" longer than ",
                           max_bytes, " bytes");
    return v->asString();
}

/** Non-negative integer member in [min, max]. */
Result<std::uint64_t>
uintField(const JsonValue &v, const char *key, std::uint64_t min,
          std::uint64_t max)
{
    if (!v.isInt() || v.asInt() < 0)
        return BPSIM_ERROR("field \"", key,
                           "\" must be a non-negative integer");
    const std::uint64_t value =
        static_cast<std::uint64_t>(v.asInt());
    if (value < min || value > max)
        return BPSIM_ERROR("field \"", key, "\" must be in [", min,
                           ", ", max, "], got ", value);
    return value;
}

Result<bool>
boolField(const JsonValue &v, const char *key)
{
    if (!v.isBool())
        return BPSIM_ERROR("field \"", key, "\" must be a boolean");
    return v.asBool();
}

Result<TraceRef>
parseTraceRef(const JsonValue &v, const ProtocolLimits &limits)
{
    if (!v.isObject())
        return BPSIM_ERROR("field \"trace\" must be an object");
    TraceRef ref;
    for (const auto &[key, value] : v.object()) {
        if (key == "profile") {
            if (!value.isString() ||
                value.asString().size() > limits.maxNameBytes)
                return BPSIM_ERROR(
                    "trace field \"profile\" must be a short string");
            ref.profile = value.asString();
        } else if (key == "branches") {
            Result<std::uint64_t> n =
                uintField(value, "branches", 0, limits.maxBranches);
            if (!n.ok())
                return n.error();
            ref.branches = n.value();
        } else if (key == "hash") {
            if (!value.isString())
                return BPSIM_ERROR(
                    "trace field \"hash\" must be a string");
            Result<TraceHash> h = TraceHash::parse(value.asString());
            if (!h.ok())
                return h.error();
            if (h.value().isNull())
                return BPSIM_ERROR("trace field \"hash\" is the null "
                                   "hash");
            ref.hash = h.value();
        } else if (key == "file") {
            if (!value.isString() || value.asString().empty() ||
                value.asString().size() > limits.maxNameBytes)
                return BPSIM_ERROR(
                    "trace field \"file\" must be a non-empty path");
            ref.file = value.asString();
        } else {
            return BPSIM_ERROR("unknown trace field \"", key, "\"");
        }
    }
    const int forms = (ref.byProfile() ? 1 : 0) +
                      (ref.byHash() ? 1 : 0) + (ref.byFile() ? 1 : 0);
    if (forms != 1)
        return BPSIM_ERROR("trace must name exactly one of "
                           "\"profile\", \"hash\", \"file\"");
    if (ref.branches != 0 && !ref.byProfile())
        return BPSIM_ERROR(
            "trace field \"branches\" requires \"profile\"");
    return ref;
}

Status
parseOptions(const JsonValue &v, const ProtocolLimits &limits,
             SweepOptions &opts)
{
    if (!v.isObject())
        return BPSIM_ERROR("field \"options\" must be an object");
    for (const auto &[key, value] : v.object()) {
        if (key == "min_bits") {
            Result<std::uint64_t> n =
                uintField(value, "min_bits", 1, limits.maxTotalBits);
            if (!n.ok())
                return n.error();
            opts.minTotalBits = static_cast<unsigned>(n.value());
        } else if (key == "max_bits") {
            Result<std::uint64_t> n =
                uintField(value, "max_bits", 1, limits.maxTotalBits);
            if (!n.ok())
                return n.error();
            opts.maxTotalBits = static_cast<unsigned>(n.value());
        } else if (key == "aliasing") {
            Result<bool> b = boolField(value, "aliasing");
            if (!b.ok())
                return b.error();
            opts.trackAliasing = b.value();
        } else if (key == "path_bits") {
            Result<std::uint64_t> n =
                uintField(value, "path_bits", 1, 16);
            if (!n.ok())
                return n.error();
            opts.pathBitsPerTarget = static_cast<unsigned>(n.value());
        } else if (key == "bht_entries") {
            Result<std::uint64_t> n =
                uintField(value, "bht_entries", 1, 1ull << 24);
            if (!n.ok())
                return n.error();
            if (!isPowerOfTwo(n.value()))
                return BPSIM_ERROR("field \"bht_entries\" must be a "
                                   "power of two, got ",
                                   n.value());
            opts.bhtEntries = static_cast<std::size_t>(n.value());
        } else if (key == "bht_assoc") {
            Result<std::uint64_t> n =
                uintField(value, "bht_assoc", 1, 64);
            if (!n.ok())
                return n.error();
            opts.bhtAssoc = static_cast<unsigned>(n.value());
        } else if (key == "segments") {
            // 1 = exact replay (the default resolution); > 1 opts the
            // request into speculative segment-parallel replay, which
            // is keyed separately in the result cache.
            Result<std::uint64_t> n = uintField(
                value, "segments", 1, SweepOptions::kMaxSegments);
            if (!n.ok())
                return n.error();
            opts.segments = static_cast<unsigned>(n.value());
        } else if (key == "fused_threads") {
            // Execution-only knob (bit-identical, not cache-keyed);
            // 0 = all hardware threads.
            Result<std::uint64_t> n =
                uintField(value, "fused_threads", 0, 256);
            if (!n.ok())
                return n.error();
            opts.fusedThreads = static_cast<unsigned>(n.value());
        } else if (key == "segment_warmup") {
            Result<std::uint64_t> n = uintField(
                value, "segment_warmup", 0, 1ull << 20);
            if (!n.ok())
                return n.error();
            opts.segmentWarmup =
                static_cast<unsigned>(n.value());
        } else if (key == "tage_tag_bits") {
            Result<std::uint64_t> n =
                uintField(value, "tage_tag_bits", 2, 16);
            if (!n.ok())
                return n.error();
            opts.tageTagBits = static_cast<unsigned>(n.value());
        } else if (key == "tage_histories") {
            // A JSON array of per-component history lengths, strictly
            // ascending -- the one list-valued option in the protocol.
            if (!value.isArray() || value.array().empty() ||
                value.array().size() > 8)
                return BPSIM_ERROR("field \"tage_histories\" must be "
                                   "an array of 1..8 lengths");
            std::vector<unsigned> lengths;
            for (const JsonValue &item : value.array()) {
                Result<std::uint64_t> n =
                    uintField(item, "tage_histories[]", 1, 64);
                if (!n.ok())
                    return n.error();
                if (!lengths.empty() && n.value() <= lengths.back())
                    return BPSIM_ERROR(
                        "field \"tage_histories\" must be strictly "
                        "ascending");
                lengths.push_back(static_cast<unsigned>(n.value()));
            }
            opts.tageHistories = std::move(lengths);
        } else if (key == "perceptron_tables") {
            Result<std::uint64_t> n =
                uintField(value, "perceptron_tables", 2, 16);
            if (!n.ok())
                return n.error();
            opts.perceptronTables = static_cast<unsigned>(n.value());
        } else {
            return BPSIM_ERROR("unknown options field \"", key, "\"");
        }
    }
    if (opts.minTotalBits > opts.maxTotalBits)
        return BPSIM_ERROR("options min_bits (", opts.minTotalBits,
                           ") exceeds max_bits (", opts.maxTotalBits,
                           ")");
    return Status();
}

bool
keyAllowed(RequestOp op, const std::string &key)
{
    if (key == "op" || key == "id")
        return true;
    switch (op) {
      case RequestOp::Intern:
        return key == "trace";
      case RequestOp::Sweep:
        return key == "trace" || key == "scheme" ||
               key == "options" || key == "bypass_cache";
      case RequestOp::Point:
        return key == "trace" || key == "scheme" ||
               key == "options" || key == "row_bits" ||
               key == "col_bits";
      case RequestOp::Ping:
      case RequestOp::Stats:
      case RequestOp::Catalog:
      case RequestOp::Shutdown:
        return false;
    }
    return false;
}

} // namespace

const char *
requestOpName(RequestOp op)
{
    switch (op) {
      case RequestOp::Ping: return "ping";
      case RequestOp::Intern: return "intern";
      case RequestOp::Sweep: return "sweep";
      case RequestOp::Point: return "point";
      case RequestOp::Stats: return "stats";
      case RequestOp::Catalog: return "catalog";
      case RequestOp::Shutdown: return "shutdown";
    }
    return "?";
}

Result<Request>
parseRequest(const JsonValue &root, const ProtocolLimits &limits)
{
    if (!root.isObject())
        return BPSIM_ERROR("request must be a JSON object");

    Request req;
    Result<std::string> op = stringField(root, "op", 32);
    if (!op.ok())
        return op.error();
    if (op.value() == "ping")
        req.op = RequestOp::Ping;
    else if (op.value() == "intern")
        req.op = RequestOp::Intern;
    else if (op.value() == "sweep")
        req.op = RequestOp::Sweep;
    else if (op.value() == "point")
        req.op = RequestOp::Point;
    else if (op.value() == "stats")
        req.op = RequestOp::Stats;
    else if (op.value() == "catalog")
        req.op = RequestOp::Catalog;
    else if (op.value() == "shutdown")
        req.op = RequestOp::Shutdown;
    else
        return BPSIM_ERROR("unknown op \"", op.value(), "\"");

    for (const auto &[key, value] : root.object()) {
        static_cast<void>(value);
        if (!keyAllowed(req.op, key))
            return BPSIM_ERROR("unknown field \"", key, "\" for op \"",
                               op.value(), "\"");
    }

    if (const JsonValue *id = root.find("id")) {
        if (!id->isString())
            return BPSIM_ERROR("field \"id\" must be a string");
        if (id->asString().size() > limits.maxIdBytes)
            return BPSIM_ERROR("field \"id\" longer than ",
                               limits.maxIdBytes, " bytes");
        req.id = id->asString();
    }

    const bool needsTrace = req.op == RequestOp::Intern ||
                            req.op == RequestOp::Sweep ||
                            req.op == RequestOp::Point;
    if (needsTrace) {
        const JsonValue *trace = root.find("trace");
        if (!trace)
            return BPSIM_ERROR("missing required field \"trace\"");
        Result<TraceRef> ref = parseTraceRef(*trace, limits);
        if (!ref.ok())
            return ref.error();
        req.trace = std::move(ref).value();
    }

    if (req.op == RequestOp::Sweep || req.op == RequestOp::Point) {
        Result<std::string> scheme =
            stringField(root, "scheme", limits.maxNameBytes);
        if (!scheme.ok())
            return scheme.error();
        req.scheme = std::move(scheme).value();
        if (const JsonValue *options = root.find("options")) {
            Status s = parseOptions(*options, limits, req.options);
            if (!s.ok())
                return s.error();
        }
        if (req.options.maxTotalBits > limits.maxTotalBits)
            return BPSIM_ERROR("default max_bits exceeds the server "
                               "limit of ",
                               limits.maxTotalBits,
                               "; pass explicit options");
    }

    if (req.op == RequestOp::Sweep) {
        if (const JsonValue *bypass = root.find("bypass_cache")) {
            Result<bool> b = boolField(*bypass, "bypass_cache");
            if (!b.ok())
                return b.error();
            req.bypassCache = b.value();
        }
    }

    if (req.op == RequestOp::Point) {
        const JsonValue *row = root.find("row_bits");
        const JsonValue *col = root.find("col_bits");
        if (!row || !col)
            return BPSIM_ERROR(
                "point requires \"row_bits\" and \"col_bits\"");
        Result<std::uint64_t> r =
            uintField(*row, "row_bits", 0, limits.maxTotalBits);
        if (!r.ok())
            return r.error();
        Result<std::uint64_t> c =
            uintField(*col, "col_bits", 0, limits.maxTotalBits);
        if (!c.ok())
            return c.error();
        if (r.value() + c.value() > limits.maxTotalBits)
            return BPSIM_ERROR("row_bits + col_bits exceeds the "
                               "server limit of ",
                               limits.maxTotalBits);
        req.rowBits = static_cast<unsigned>(r.value());
        req.colBits = static_cast<unsigned>(c.value());
    }

    return req;
}

JsonValue
okResponse(const std::string &id, RequestOp op)
{
    JsonValue::Object obj;
    obj.emplace("id", JsonValue(id));
    obj.emplace("ok", JsonValue(true));
    obj.emplace("op", JsonValue(requestOpName(op)));
    return JsonValue(std::move(obj));
}

JsonValue
errorResponse(const std::string &id, const std::string &code,
              const std::string &message)
{
    JsonValue::Object err;
    err.emplace("code", JsonValue(code));
    err.emplace("message", JsonValue(message));
    JsonValue::Object obj;
    obj.emplace("id", JsonValue(id));
    obj.emplace("ok", JsonValue(false));
    obj.emplace("error", JsonValue(std::move(err)));
    return JsonValue(std::move(obj));
}

JsonValue
surfaceJson(const Surface &surface)
{
    JsonValue::Array tiers;
    for (const SurfaceTier &tier : surface.tiers()) {
        JsonValue::Array points;
        for (const SurfacePoint &pt : tier.points) {
            JsonValue::Object p;
            p.emplace("row_bits", JsonValue(static_cast<std::int64_t>(
                                      pt.rowBits)));
            p.emplace("col_bits", JsonValue(static_cast<std::int64_t>(
                                      pt.colBits)));
            p.emplace("value", JsonValue(pt.value));
            points.emplace_back(std::move(p));
        }
        JsonValue::Object t;
        t.emplace("total_bits", JsonValue(static_cast<std::int64_t>(
                                    tier.totalBits)));
        t.emplace("points", JsonValue(std::move(points)));
        tiers.emplace_back(std::move(t));
    }
    return JsonValue(std::move(tiers));
}

JsonValue
sweepResponseJson(const SweepResponse &response)
{
    JsonValue::Object result;
    result.emplace("bht_miss_rate",
                   JsonValue(response.result.bhtMissRate));
    result.emplace("misprediction",
                   surfaceJson(response.result.misprediction));
    result.emplace("aliasing", surfaceJson(response.result.aliasing));
    result.emplace("harmless", surfaceJson(response.result.harmless));

    JsonValue::Object obj;
    obj.emplace("cache_hit", JsonValue(response.cacheHit));
    obj.emplace("disk_hit", JsonValue(response.diskHit));
    obj.emplace("coalesced", JsonValue(response.coalesced));
    obj.emplace("seconds", JsonValue(response.seconds));
    obj.emplace("result", JsonValue(std::move(result)));
    return JsonValue(std::move(obj));
}

} // namespace bpsim::service

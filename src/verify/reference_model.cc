/**
 * @file
 * Naive reference implementations of every predictor scheme.
 *
 * Everything here is intentionally pedestrian: histories are vectors of
 * 0/1 ints shifted one element at a time, counters are ints moved with
 * if/else, tables are indexed with hand-rolled low-bit extraction, and
 * the finite BHT is a linear scan over a vector of entries.  Do not
 * optimise this file -- its only job is to be obviously correct so the
 * differential fuzzer can hold the fast engine to it.
 */

#include "verify/reference_model.hh"

#include <map>
#include <sstream>
#include <stdexcept>

namespace bpsim::verify {
namespace {

/** Low @p nbits bits of @p v, one bit at a time (no mask tables). */
std::uint64_t
naiveLowBits(std::uint64_t v, unsigned nbits)
{
    if (nbits >= 64)
        return v;
    std::uint64_t out = 0;
    for (unsigned i = 0; i < nbits; ++i) {
        if ((v >> i) & 1u)
            out |= std::uint64_t{1} << i;
    }
    return out;
}

/** Branches are word aligned; tables see the address in words. */
std::uint64_t
naiveWordIndex(std::uint64_t pc)
{
    return pc / 4;
}

/** XOR-fold @p v down to @p nbits, one chunk at a time.  The engine's
 *  xorFold (common/bitutil.hh) must produce identical values; the loop
 *  is re-spelt here with naiveLowBits and explicit shifts. */
std::uint64_t
naiveXorFold(std::uint64_t v, unsigned nbits)
{
    if (nbits == 0)
        return 0;
    if (nbits >= 64)
        return v;
    std::uint64_t folded = 0;
    while (v != 0) {
        folded = folded ^ naiveLowBits(v, nbits);
        v = v >> nbits;
    }
    return folded;
}

/** log2 of a power of two, by counting doublings. */
unsigned
naiveLog2(std::uint64_t v)
{
    unsigned n = 0;
    std::uint64_t probe = 1;
    while (probe < v) {
        probe *= 2;
        ++n;
    }
    if (probe != v)
        throw std::invalid_argument("reference model: not a power of 2");
    return n;
}

/**
 * A two-bit saturating counter as a plain int:
 * 0 strongly not-taken, 1 weakly not-taken, 2 weakly taken,
 * 3 strongly taken.  Fresh counters start weakly taken.
 */
struct NaiveCounter
{
    int value = 2;

    bool predict() const { return value >= 2; }

    void
    update(bool taken)
    {
        if (taken) {
            if (value < 3)
                value = value + 1;
        } else {
            if (value > 0)
                value = value - 1;
        }
    }
};

/**
 * A history register as an explicit vector of 0/1 cells where cell 0 is
 * the newest event, matching "bit 0 holds the most recent outcome".
 */
class NaiveHistory
{
  public:
    explicit NaiveHistory(unsigned width) : cells(width, 0) {}

    void
    push(int bit)
    {
        // Shift every cell one position older, newest in front.
        for (std::size_t i = cells.size(); i > 1; --i)
            cells[i - 1] = cells[i - 2];
        if (!cells.empty())
            cells[0] = bit;
    }

    /** Shift in an nbits-wide event code, most significant bit first,
     *  so the event's bit 0 lands in cell 0 -- the same layout as
     *  HistoryRegister::pushBits. */
    void
    pushBits(std::uint64_t event, unsigned nbits)
    {
        for (unsigned b = nbits; b > 0; --b)
            push(static_cast<int>((event >> (b - 1)) & 1u));
    }

    std::uint64_t
    value() const
    {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i])
                v |= std::uint64_t{1} << i;
        }
        return v;
    }

    void
    set(std::uint64_t v)
    {
        for (std::size_t i = 0; i < cells.size(); ++i)
            cells[i] = static_cast<int>((v >> i) & 1u);
    }

    unsigned width() const
    {
        return static_cast<unsigned>(cells.size());
    }

    std::string
    dump() const
    {
        // Oldest-to-newest reads naturally left to right.
        std::string s;
        for (std::size_t i = cells.size(); i > 0; --i)
            s += cells[i - 1] ? '1' : '0';
        return s.empty() ? std::string("-") : s;
    }

  private:
    std::vector<int> cells;
};

/** The second-level table: 2^rowBits x 2^colBits naive counters. */
class NaivePht
{
  public:
    NaivePht(unsigned row_bits, unsigned col_bits)
        : rowBits(row_bits), colBits(col_bits),
          counters(std::size_t{1} << (row_bits + col_bits))
    {}

    bool
    predictAndTrain(std::uint64_t row, std::uint64_t col, bool taken)
    {
        std::uint64_t r = naiveLowBits(row, rowBits);
        std::uint64_t c = naiveLowBits(col, colBits);
        std::size_t idx = static_cast<std::size_t>((r << colBits) | c);
        bool prediction = counters[idx].predict();
        counters[idx].update(taken);
        return prediction;
    }

    std::string
    dump() const
    {
        std::string s;
        for (const NaiveCounter &c : counters)
            s += static_cast<char>('0' + c.value);
        return s;
    }

  private:
    unsigned rowBits;
    unsigned colBits;
    std::vector<NaiveCounter> counters;
};

std::string
dumpCounters(const std::vector<NaiveCounter> &counters)
{
    std::string s;
    for (const NaiveCounter &c : counters)
        s += static_cast<char>('0' + c.value);
    return s;
}

/** addr / GAg / GAs / gshare / path / SAs in one naive two-level
 *  shell; the row rule is spelled out per scheme in predictAndTrain. */
class NaiveTwoLevel : public ReferencePredictor
{
  public:
    explicit NaiveTwoLevel(const RefConfig &cfg)
        : scheme(cfg.scheme), pht(cfg.rowBits, cfg.colBits),
          global(cfg.rowBits), pathBitsPerTarget(cfg.pathBitsPerTarget),
          setBits(cfg.setBits)
    {
        if (scheme == RefScheme::SAs) {
            shared.assign(std::size_t{1} << setBits,
                          NaiveHistory(cfg.rowBits));
        }
    }

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        std::uint64_t word = naiveWordIndex(branch.pc);

        // First level: produce the row for this branch instance.
        std::uint64_t row = 0;
        switch (scheme) {
          case RefScheme::AddressIndexed:
            row = 0;
            break;
          case RefScheme::GAg:
          case RefScheme::GAs:
            row = global.value();
            break;
          case RefScheme::Gshare:
            row = global.value() ^ word;
            break;
          case RefScheme::Path:
            row = global.value();
            break;
          case RefScheme::SAs:
            row = sharedSlot(word).value();
            break;
          default:
            throw std::logic_error("not a naive two-level scheme");
        }

        // Second level: predict then train the selected counter.
        bool prediction = pht.predictAndTrain(row, word, branch.taken);

        // First level learns the resolved outcome afterwards.
        switch (scheme) {
          case RefScheme::AddressIndexed:
            break;
          case RefScheme::GAg:
          case RefScheme::GAs:
          case RefScheme::Gshare:
            global.push(branch.taken ? 1 : 0);
            break;
          case RefScheme::Path: {
            std::uint64_t successor =
                branch.taken ? branch.target : branch.pc + 4;
            global.pushBits(naiveWordIndex(successor),
                            pathBitsPerTarget);
            break;
          }
          case RefScheme::SAs:
            sharedSlot(word).push(branch.taken ? 1 : 0);
            break;
          default:
            break;
        }
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << refSchemeName(scheme) << " history=" << global.dump();
        for (std::size_t i = 0; i < shared.size(); ++i)
            os << " sas[" << i << "]=" << shared[i].dump();
        os << " pht=" << pht.dump();
        return os.str();
    }

  private:
    NaiveHistory &
    sharedSlot(std::uint64_t word)
    {
        return shared[static_cast<std::size_t>(
            naiveLowBits(word, setBits))];
    }

    RefScheme scheme;
    NaivePht pht;
    NaiveHistory global;
    unsigned pathBitsPerTarget;
    unsigned setBits;
    std::vector<NaiveHistory> shared;
};

/** PAs with an unbounded first level: one history per distinct pc. */
class NaivePAsPerfect : public ReferencePredictor
{
  public:
    explicit NaivePAsPerfect(const RefConfig &cfg)
        : rowBits(cfg.rowBits), pht(cfg.rowBits, cfg.colBits)
    {}

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        auto it = perBranch.find(branch.pc);
        if (it == perBranch.end()) {
            it = perBranch.emplace(branch.pc, NaiveHistory(rowBits))
                     .first;
        }
        bool prediction = pht.predictAndTrain(
            it->second.value(), naiveWordIndex(branch.pc),
            branch.taken);
        it->second.push(branch.taken ? 1 : 0);
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "PAs(inf)";
        for (const auto &[pc, hist] : perBranch)
            os << " h[0x" << std::hex << pc << std::dec
               << "]=" << hist.dump();
        os << " pht=" << pht.dump();
        return os.str();
    }

  private:
    unsigned rowBits;
    NaivePht pht;
    std::map<std::uint64_t, NaiveHistory> perBranch;
};

/** PAs behind a finite, tag-checked, LRU set-associative BHT. */
class NaivePAsFinite : public ReferencePredictor
{
  public:
    explicit NaivePAsFinite(const RefConfig &cfg)
        : rowBits(cfg.rowBits), assoc(cfg.bhtAssoc),
          policy(cfg.bhtResetPolicy),
          setIndexBits(naiveLog2(cfg.bhtEntries / cfg.bhtAssoc)),
          pht(cfg.rowBits, cfg.colBits),
          entries(cfg.bhtEntries, Entry{false, 0,
                                        NaiveHistory(cfg.rowBits), 0})
    {}

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        std::uint64_t word = naiveWordIndex(branch.pc);
        Entry &entry = visit(word);
        bool prediction = pht.predictAndTrain(entry.history.value(),
                                              word, branch.taken);
        entry.history.push(branch.taken ? 1 : 0);
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "PAs(" << entries.size() << "e/" << assoc << "w)";
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const Entry &e = entries[i];
            if (!e.valid)
                continue;
            os << " bht[" << i << "]=tag:0x" << std::hex << e.tag
               << std::dec << ",h:" << e.history.dump()
               << ",stamp:" << e.stamp;
        }
        os << " pht=" << pht.dump();
        return os.str();
    }

  private:
    struct Entry
    {
        bool valid;
        std::uint64_t tag;
        NaiveHistory history;
        std::uint64_t stamp;
    };

    /** Hit returns the entry; a miss installs the LRU (or first
     *  invalid) way with the policy's reset history. */
    Entry &
    visit(std::uint64_t word)
    {
        stampCounter = stampCounter + 1;
        std::size_t base = static_cast<std::size_t>(
                               naiveLowBits(word, setIndexBits)) *
                           assoc;
        std::uint64_t tag = word >> setIndexBits;

        for (unsigned w = 0; w < assoc; ++w) {
            Entry &e = entries[base + w];
            if (e.valid && e.tag == tag) {
                e.stamp = stampCounter;
                return e;
            }
        }

        // Miss: first invalid way, else the strictly-oldest stamp
        // (scan order breaks ties toward the earliest way).
        Entry *victim = &entries[base];
        for (unsigned w = 0; w < assoc; ++w) {
            Entry &e = entries[base + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.stamp < victim->stamp)
                victim = &e;
        }
        victim->valid = true;
        victim->tag = tag;
        victim->stamp = stampCounter;
        switch (policy) {
          case RefResetPolicy::C3ffPrefix:
            victim->history.set(refC3ffPrefix(rowBits));
            break;
          case RefResetPolicy::Zeros:
            victim->history.set(0);
            break;
          case RefResetPolicy::Ones:
            victim->history.set(naiveLowBits(~std::uint64_t{0},
                                             rowBits));
            break;
          case RefResetPolicy::Hold:
            break; // displaced history is simply inherited
        }
        return *victim;
    }

    unsigned rowBits;
    unsigned assoc;
    RefResetPolicy policy;
    unsigned setIndexBits;
    NaivePht pht;
    std::vector<Entry> entries;
    std::uint64_t stampCounter = 0;
};

/** Agree predictor: shared counters vote agree/disagree with a
 *  per-branch biasing bit captured at first encounter. */
class NaiveAgree : public ReferencePredictor
{
  public:
    explicit NaiveAgree(const RefConfig &cfg)
        : indexBits(cfg.indexBits), history(cfg.historyBits),
          counters(std::size_t{1} << cfg.indexBits)
    {
        // Fresh counters lean strongly toward "agree", the common case.
        for (NaiveCounter &c : counters)
            c.value = 3;
    }

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        auto it = biasBits.find(branch.pc);
        bool first_encounter = it == biasBits.end();
        bool bias = first_encounter ? branch.taken : it->second;

        std::size_t idx = static_cast<std::size_t>(naiveLowBits(
            history.value() ^ naiveWordIndex(branch.pc), indexBits));
        bool agrees = counters[idx].predict();
        bool prediction = agrees ? bias : !bias;
        if (first_encounter)
            biasBits.emplace(branch.pc, branch.taken);

        counters[idx].update(branch.taken == bias);
        history.push(branch.taken ? 1 : 0);
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "agree history=" << history.dump();
        for (const auto &[pc, bias] : biasBits)
            os << " bias[0x" << std::hex << pc << std::dec
               << "]=" << (bias ? 1 : 0);
        os << " counters=" << dumpCounters(counters);
        return os.str();
    }

  private:
    unsigned indexBits;
    NaiveHistory history;
    std::vector<NaiveCounter> counters;
    std::map<std::uint64_t, bool> biasBits;
};

/** Bi-mode: a choice table steering between taken-leaning and
 *  not-taken-leaning direction tables. */
class NaiveBiMode : public ReferencePredictor
{
  public:
    explicit NaiveBiMode(const RefConfig &cfg)
        : directionBits(cfg.indexBits), choiceBits(cfg.choiceBits),
          history(cfg.historyBits),
          takenSide(std::size_t{1} << cfg.indexBits),
          notTakenSide(std::size_t{1} << cfg.indexBits),
          choice(std::size_t{1} << cfg.choiceBits)
    {
        for (NaiveCounter &c : takenSide)
            c.value = 3; // strongly taken
        for (NaiveCounter &c : notTakenSide)
            c.value = 0; // strongly not-taken
    }

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        std::uint64_t word = naiveWordIndex(branch.pc);
        std::size_t choice_idx = static_cast<std::size_t>(
            naiveLowBits(word, choiceBits));
        std::size_t dir_idx = static_cast<std::size_t>(naiveLowBits(
            history.value() ^ word, directionBits));

        bool use_taken_side = choice[choice_idx].predict();
        std::vector<NaiveCounter> &side =
            use_taken_side ? takenSide : notTakenSide;
        bool prediction = side[dir_idx].predict();

        // The selected direction counter always trains; the choice
        // counter trains except when it steered away from a direction
        // table that was nevertheless right.
        side[dir_idx].update(branch.taken);
        if (!(prediction == branch.taken &&
              use_taken_side != branch.taken)) {
            choice[choice_idx].update(branch.taken);
        }

        history.push(branch.taken ? 1 : 0);
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "bimode history=" << history.dump()
           << " taken=" << dumpCounters(takenSide)
           << " notTaken=" << dumpCounters(notTakenSide)
           << " choice=" << dumpCounters(choice);
        return os.str();
    }

  private:
    unsigned directionBits;
    unsigned choiceBits;
    NaiveHistory history;
    std::vector<NaiveCounter> takenSide;
    std::vector<NaiveCounter> notTakenSide;
    std::vector<NaiveCounter> choice;
};

/** gskew: three banks hashed differently, majority vote, partial
 *  update. */
class NaiveGskew : public ReferencePredictor
{
  public:
    explicit NaiveGskew(const RefConfig &cfg)
        : bankBits(cfg.indexBits), history(cfg.historyBits)
    {
        for (auto &bank : banks)
            bank.assign(std::size_t{1} << bankBits, NaiveCounter{});
    }

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        // The engine's decorrelating hashes, restated: one odd
        // multiplier per bank, top bankBits bits of the product.
        const std::uint64_t multipliers[3] = {
            0x9E3779B97F4A7C15ULL,
            0xC2B2AE3D27D4EB4FULL,
            0x165667B19E3779F9ULL,
        };
        std::uint64_t key =
            history.value() ^ naiveWordIndex(branch.pc);

        std::size_t idx[3];
        bool vote[3];
        int ayes = 0;
        for (unsigned b = 0; b < 3; ++b) {
            idx[b] = static_cast<std::size_t>(
                (key * multipliers[b]) >> (64 - bankBits));
            vote[b] = banks[b][idx[b]].predict();
            if (vote[b])
                ayes = ayes + 1;
        }
        bool prediction = ayes >= 2;

        bool correct = prediction == branch.taken;
        for (unsigned b = 0; b < 3; ++b) {
            if (!correct || vote[b] == prediction)
                banks[b][idx[b]].update(branch.taken);
        }

        history.push(branch.taken ? 1 : 0);
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "gskew history=" << history.dump();
        for (unsigned b = 0; b < 3; ++b)
            os << " bank" << b << "=" << dumpCounters(banks[b]);
        return os.str();
    }

  private:
    unsigned bankBits;
    NaiveHistory history;
    std::vector<NaiveCounter> banks[3];
};

/** Tournament: two components predict every branch; address-indexed
 *  choice counters pick which answer to surface. */
class NaiveTournament : public ReferencePredictor
{
  public:
    NaiveTournament(std::unique_ptr<ReferencePredictor> first_,
                    std::unique_ptr<ReferencePredictor> second_,
                    unsigned choice_bits)
        : first(std::move(first_)), second(std::move(second_)),
          choiceBits(choice_bits),
          choice(std::size_t{1} << choice_bits)
    {}

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        std::size_t idx = static_cast<std::size_t>(
            naiveLowBits(naiveWordIndex(branch.pc), choiceBits));
        bool use_second = choice[idx].predict();

        // Both components always observe the branch.
        bool p1 = first->predictAndTrain(branch);
        bool p2 = second->predictAndTrain(branch);
        bool prediction = use_second ? p2 : p1;

        // The chooser trains only on disagreement, toward the one
        // that was right.
        bool c1 = p1 == branch.taken;
        bool c2 = p2 == branch.taken;
        if (c1 != c2)
            choice[idx].update(c2);
        return prediction;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "tournament choice=" << dumpCounters(choice)
           << " | first{" << first->stateDump() << "} | second{"
           << second->stateDump() << "}";
        return os.str();
    }

  private:
    std::unique_ptr<ReferencePredictor> first;
    std::unique_ptr<ReferencePredictor> second;
    unsigned choiceBits;
    std::vector<NaiveCounter> choice;
};

/** TAGE: a bimodal base behind tagged geometric-history components.
 *  Mirrors the engine's TageModel step order exactly (provider scan,
 *  useful update, provider train, then allocation) with plain-int
 *  three-bit counters and explicit loops. */
class NaiveTage : public ReferencePredictor
{
  public:
    struct Entry
    {
        int ctr = 0;     // 0..7, predict taken when >= 4
        std::uint64_t tag = 0;
        int useful = 0;  // 0..3
        bool valid = false;
    };

    explicit NaiveTage(const RefConfig &cfg)
        : baseBits(cfg.colBits), entryBits(cfg.rowBits),
          tagBits(cfg.tagBits), lengths(cfg.tageHistories),
          history(64)
    {
        std::size_t base_size = 1;
        for (unsigned i = 0; i < baseBits; ++i)
            base_size *= 2;
        base.assign(base_size, NaiveCounter{});
        baseSeen.assign(base_size, 0);

        std::size_t comp_size = 1;
        for (unsigned i = 0; i < entryBits; ++i)
            comp_size *= 2;
        components.assign(lengths.size(),
                          std::vector<Entry>(comp_size));
    }

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        const std::uint64_t ghist = history.value();
        const std::uint64_t word = naiveWordIndex(branch.pc);
        const std::size_t ncomp = components.size();

        std::vector<std::size_t> idx(ncomp, 0);
        std::vector<std::uint64_t> tag(ncomp, 0);
        for (std::size_t j = 0; j < ncomp; ++j) {
            std::uint64_t hist = naiveLowBits(ghist, lengths[j]);
            idx[j] = static_cast<std::size_t>(naiveLowBits(
                naiveXorFold(hist, entryBits) ^
                    naiveXorFold(word, entryBits),
                entryBits));
            tag[j] = naiveLowBits(
                naiveXorFold(word, tagBits) ^
                    naiveXorFold(hist, tagBits) ^
                    (naiveXorFold(hist, tagBits - 1) * 2),
                tagBits);
        }

        // Provider = the longest-history tag match; altpred the next.
        int provider = -1;
        int alt = -1;
        for (int j = static_cast<int>(ncomp) - 1; j >= 0; --j) {
            const Entry &e = components[j][idx[j]];
            if (!e.valid || e.tag != tag[j])
                continue;
            if (provider < 0) {
                provider = j;
            } else {
                alt = j;
                break;
            }
        }

        std::size_t bidx = static_cast<std::size_t>(
            naiveLowBits(word, baseBits));
        bool base_pred = base[bidx].predict();
        bool alt_pred = alt >= 0
                            ? components[alt][idx[alt]].ctr >= 4
                            : base_pred;
        bool pred = provider >= 0
                        ? components[provider][idx[provider]].ctr >= 4
                        : base_pred;
        bool correct = pred == branch.taken;

        // Useful counter: did the provider beat its altpred?
        if (provider >= 0 && pred != alt_pred) {
            Entry &e = components[provider][idx[provider]];
            if (correct) {
                if (e.useful < 3)
                    e.useful = e.useful + 1;
            } else if (e.useful > 0) {
                e.useful = e.useful - 1;
            }
        }

        // Train the provider only.
        if (provider >= 0) {
            Entry &e = components[provider][idx[provider]];
            if (branch.taken) {
                if (e.ctr < 7)
                    e.ctr = e.ctr + 1;
            } else {
                if (e.ctr > 0)
                    e.ctr = e.ctr - 1;
            }
        } else {
            base[bidx].update(branch.taken);
            baseSeen[bidx] = 1;
        }

        // On a mispredict, allocate in the first not-useful entry of a
        // longer-history component; if all are useful, age them.
        if (!correct && provider + 1 < static_cast<int>(ncomp)) {
            int victim = -1;
            for (std::size_t j =
                     static_cast<std::size_t>(provider + 1);
                 j < ncomp; ++j) {
                const Entry &e = components[j][idx[j]];
                if (!e.valid || e.useful == 0) {
                    victim = static_cast<int>(j);
                    break;
                }
            }
            if (victim >= 0) {
                Entry &e = components[victim][idx[victim]];
                e.valid = true;
                e.tag = tag[victim];
                e.ctr = branch.taken ? 4 : 3;
                e.useful = 0;
            } else {
                for (std::size_t j =
                         static_cast<std::size_t>(provider + 1);
                     j < ncomp; ++j) {
                    Entry &e = components[j][idx[j]];
                    if (e.useful > 0)
                        e.useful = e.useful - 1;
                }
            }
        }

        history.push(branch.taken ? 1 : 0);
        return pred;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "tage history=" << history.dump()
           << " base=" << dumpCounters(base);
        for (std::size_t j = 0; j < components.size(); ++j) {
            os << " T" << (j + 1) << "(h" << lengths[j] << ")=[";
            bool first = true;
            for (std::size_t k = 0; k < components[j].size(); ++k) {
                const Entry &e = components[j][k];
                if (!e.valid)
                    continue;
                if (!first)
                    os << " ";
                first = false;
                os << k << ":t" << e.tag << ",c" << e.ctr << ",u"
                   << e.useful;
            }
            os << "]";
        }
        return os.str();
    }

  private:
    unsigned baseBits;
    unsigned entryBits;
    unsigned tagBits;
    std::vector<unsigned> lengths;
    NaiveHistory history;
    std::vector<NaiveCounter> base;
    std::vector<int> baseSeen;
    std::vector<std::vector<Entry>> components;
};

/** Hashed perceptron: summed signed weights, one table per balanced
 *  history segment plus a pc-indexed bias table.  The threshold is the
 *  integer form (193 * h) / 100 + 14 the engine also uses. */
class NaivePerceptron : public ReferencePredictor
{
  public:
    explicit NaivePerceptron(const RefConfig &cfg)
        : historyBits(cfg.rowBits), entryBits(cfg.colBits),
          tables(cfg.perceptronTables), history(64)
    {
        theta = static_cast<int>((193u * historyBits) / 100u) + 14;
        std::size_t table_size = 1;
        for (unsigned i = 0; i < entryBits; ++i)
            table_size *= 2;
        weights.assign(tables, std::vector<int>(table_size, 0));
    }

    bool
    predictAndTrain(const RefBranch &branch) override
    {
        const std::uint64_t ghist = history.value();
        const std::uint64_t word = naiveWordIndex(branch.pc);

        std::vector<std::size_t> idx(tables, 0);
        int sum = 0;
        for (unsigned t = 0; t < tables; ++t) {
            if (t == 0) {
                idx[t] = static_cast<std::size_t>(
                    naiveLowBits(word, entryBits));
            } else {
                unsigned nseg = tables - 1;
                unsigned lo = (t - 1) * historyBits / nseg;
                unsigned hi = t * historyBits / nseg;
                std::uint64_t seg =
                    naiveLowBits(ghist >> lo, hi - lo);
                idx[t] = static_cast<std::size_t>(naiveLowBits(
                    naiveXorFold(seg, entryBits) ^
                        naiveXorFold(word, entryBits),
                    entryBits));
            }
            sum = sum + weights[t][idx[t]];
        }

        bool pred = sum >= 0;
        int magnitude = sum < 0 ? -sum : sum;
        if (pred != branch.taken || magnitude <= theta) {
            for (unsigned t = 0; t < tables; ++t) {
                int w = weights[t][idx[t]];
                if (branch.taken)
                    w = w + 1;
                else
                    w = w - 1;
                if (w > 63)
                    w = 63;
                if (w < -64)
                    w = -64;
                weights[t][idx[t]] = w;
            }
        }

        history.push(branch.taken ? 1 : 0);
        return pred;
    }

    std::string
    stateDump() const override
    {
        std::ostringstream os;
        os << "perceptron history=" << history.dump() << " theta="
           << theta;
        for (unsigned t = 0; t < tables; ++t) {
            os << " W" << t << "=[";
            for (std::size_t k = 0; k < weights[t].size(); ++k)
                os << (k ? " " : "") << weights[t][k];
            os << "]";
        }
        return os.str();
    }

  private:
    unsigned historyBits;
    unsigned entryBits;
    unsigned tables;
    int theta = 0;
    NaiveHistory history;
    std::vector<std::vector<int>> weights;
};

} // namespace

const char *
refSchemeName(RefScheme scheme)
{
    switch (scheme) {
      case RefScheme::AddressIndexed: return "addr";
      case RefScheme::GAg: return "GAg";
      case RefScheme::GAs: return "GAs";
      case RefScheme::Gshare: return "gshare";
      case RefScheme::Path: return "path";
      case RefScheme::PAsPerfect: return "PAs(inf)";
      case RefScheme::PAsFinite: return "PAs(bht)";
      case RefScheme::SAs: return "SAs";
      case RefScheme::Agree: return "agree";
      case RefScheme::BiMode: return "bimode";
      case RefScheme::Gskew: return "gskew";
      case RefScheme::Tournament: return "tournament";
      case RefScheme::Tage: return "tage";
      case RefScheme::Perceptron: return "perceptron";
    }
    return "?";
}

std::uint64_t
refC3ffPrefix(unsigned width)
{
    // Spell the pattern out as bits and take the first `width` of
    // them, most significant first, recycling when the register is
    // longer than the pattern.
    static const char pattern[] = "1100001111111111";
    const unsigned patternLen = 16;
    std::uint64_t out = 0;
    for (unsigned i = 0; i < width; ++i) {
        out = out * 2;
        if (pattern[i % patternLen] == '1')
            out = out + 1;
    }
    return out;
}

std::unique_ptr<ReferencePredictor>
makeReferencePredictor(const RefConfig &config)
{
    switch (config.scheme) {
      case RefScheme::AddressIndexed:
      case RefScheme::GAg:
      case RefScheme::GAs:
      case RefScheme::Gshare:
      case RefScheme::Path:
      case RefScheme::SAs:
        return std::make_unique<NaiveTwoLevel>(config);
      case RefScheme::PAsPerfect:
        return std::make_unique<NaivePAsPerfect>(config);
      case RefScheme::PAsFinite:
        if (config.bhtAssoc == 0 ||
            config.bhtEntries % config.bhtAssoc != 0) {
            throw std::invalid_argument(
                "reference model: BHT associativity must divide "
                "entry count");
        }
        return std::make_unique<NaivePAsFinite>(config);
      case RefScheme::Agree:
        return std::make_unique<NaiveAgree>(config);
      case RefScheme::BiMode:
        return std::make_unique<NaiveBiMode>(config);
      case RefScheme::Gskew:
        if (config.indexBits < 1) {
            throw std::invalid_argument(
                "reference model: gskew needs at least 1 bank bit");
        }
        return std::make_unique<NaiveGskew>(config);
      case RefScheme::Tournament: {
        if (config.components.size() != 2) {
            throw std::invalid_argument(
                "reference model: tournament needs exactly two "
                "components");
        }
        for (const RefConfig &c : config.components) {
            if (c.scheme == RefScheme::Tournament) {
                throw std::invalid_argument(
                    "reference model: tournaments do not nest");
            }
        }
        return std::make_unique<NaiveTournament>(
            makeReferencePredictor(config.components[0]),
            makeReferencePredictor(config.components[1]),
            config.choiceBits);
      }
      case RefScheme::Tage: {
        if (config.rowBits < 1 || config.colBits < 1) {
            throw std::invalid_argument(
                "reference model: tage needs component and base bits");
        }
        if (config.tagBits < 2 || config.tagBits > 16) {
            throw std::invalid_argument(
                "reference model: tage tag width out of range");
        }
        const auto &h = config.tageHistories;
        if (h.empty() || h.size() > 8) {
            throw std::invalid_argument(
                "reference model: tage needs 1..8 history lengths");
        }
        for (std::size_t i = 0; i < h.size(); ++i) {
            if (h[i] < 1 || h[i] > 64 || (i > 0 && h[i] <= h[i - 1])) {
                throw std::invalid_argument(
                    "reference model: tage history lengths must be "
                    "strictly ascending in 1..64");
            }
        }
        return std::make_unique<NaiveTage>(config);
      }
      case RefScheme::Perceptron:
        if (config.rowBits < 1 || config.rowBits > 64) {
            throw std::invalid_argument(
                "reference model: perceptron history out of range");
        }
        if (config.perceptronTables < 2 ||
            config.perceptronTables > 16) {
            throw std::invalid_argument(
                "reference model: perceptron needs 2..16 tables");
        }
        return std::make_unique<NaivePerceptron>(config);
    }
    throw std::invalid_argument("reference model: unknown scheme");
}

} // namespace bpsim::verify

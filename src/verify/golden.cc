#include "verify/golden.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bpsim::verify {
namespace {

/** Keys are whitespace-free tokens; normalise anything a driver
 *  passes (profile names with spaces, etc.). */
std::string
sanitizeKey(const std::string &key)
{
    std::string out = key;
    for (char &c : out) {
        if (c == ' ' || c == '\t' || c == '\n')
            c = '_';
    }
    return out;
}

std::string
formatValue(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace

bool
goldenClose(double a, double b, double tolerance)
{
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= tolerance + tolerance * scale;
}

void
GoldenRecorder::record(const std::string &key, double value)
{
    auto [it, inserted] = values_.emplace(sanitizeKey(key), value);
    if (!inserted) {
        throw std::logic_error("golden key recorded twice: " +
                               it->first);
    }
}

void
GoldenRecorder::recordSurface(const std::string &prefix,
                              const Surface &surface)
{
    for (const SurfaceTier &tier : surface.tiers()) {
        for (const SurfacePoint &point : tier.points) {
            std::ostringstream key;
            key << prefix << "/t" << tier.totalBits << "/r"
                << point.rowBits << "c" << point.colBits;
            record(key.str(), point.value);
        }
    }
}

void
GoldenRecorder::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("cannot write golden file: " + path);
    }
    out << "# bpsim golden results -- regenerate with golden=emit\n";
    for (const auto &[key, value] : values_)
        out << key << ' ' << formatValue(value) << '\n';
    out.flush();
    if (!out) {
        throw std::runtime_error("write failed for golden file: " +
                                 path);
    }
}

std::map<std::string, double>
GoldenRecorder::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot read golden file: " + path);
    }
    std::map<std::string, double> values;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string key;
        double value;
        if (!(fields >> key >> value)) {
            std::ostringstream msg;
            msg << "malformed golden line " << lineno << " in " << path
                << ": " << line;
            throw std::runtime_error(msg.str());
        }
        values[key] = value;
    }
    return values;
}

std::vector<std::string>
GoldenRecorder::compareTo(const std::string &path,
                          double tolerance) const
{
    std::map<std::string, double> golden = loadFile(path);
    std::vector<std::string> problems;

    for (const auto &[key, actual] : values_) {
        auto it = golden.find(key);
        if (it == golden.end()) {
            problems.push_back("extra key (not in golden file): " +
                               key + " = " + formatValue(actual));
            continue;
        }
        if (!goldenClose(actual, it->second, tolerance)) {
            std::ostringstream msg;
            msg << "value drift: " << key << " golden "
                << formatValue(it->second) << " vs actual "
                << formatValue(actual) << " (|delta| "
                << formatValue(std::abs(actual - it->second)) << ")";
            problems.push_back(msg.str());
        }
    }
    for (const auto &[key, expected] : golden) {
        if (!values_.count(key)) {
            problems.push_back("missing key (in golden file only): " +
                               key + " = " + formatValue(expected));
        }
    }
    return problems;
}

} // namespace bpsim::verify

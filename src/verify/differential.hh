/**
 * @file
 * Differential cross-checking between the production predictors and the
 * naive reference model.
 *
 * Three layers of comparison, all seeded and reproducible:
 *
 *  - diffPredictors() runs one engine predictor (built through the
 *    factory spec grammar) and one reference predictor over the same
 *    trace, branch by branch, and reports the FIRST diverging
 *    conditional-branch instance with the full reference state.
 *  - referenceMispRate() lets callers hold the sweep fast path
 *    (simulateConfig / runKernel) to the reference's misprediction
 *    rate, closing the triangle online-engine / sweep-kernel /
 *    reference.
 *  - runDifferentialFuzzer() drives both checks over many randomized
 *    (trace, configuration) pairs spanning every scheme.
 */

#ifndef BPSIM_VERIFY_DIFFERENTIAL_HH
#define BPSIM_VERIFY_DIFFERENTIAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/memory_trace.hh"
#include "verify/reference_model.hh"

namespace bpsim::verify {

/** The first point where engine and reference disagree on a trace. */
struct DiffMismatch
{
    /** Factory spec of the engine predictor under test. */
    std::string spec;
    std::string traceName;
    /** Conditional-branch instance index of the divergence. */
    std::size_t index = 0;
    std::uint64_t pc = 0;
    bool taken = false;
    bool enginePredicted = false;
    bool referencePredicted = false;
    /** Reference model state at the moment of divergence. */
    std::string referenceState;

    /** One-paragraph report for assertion messages. */
    std::string describe() const;
};

/**
 * The factory spec string that builds the engine-side twin of a
 * reference configuration.  Throws std::invalid_argument for configs
 * the spec grammar cannot express (a PAsFinite with a non-default
 * reset policy -- those are covered by the fast-path check instead).
 */
std::string engineSpec(const RefConfig &config);

/**
 * Run the engine predictor for @p config and the reference model over
 * every conditional branch of @p trace, in lockstep.
 * @return the first divergence, or nullopt when they agree throughout.
 */
std::optional<DiffMismatch> diffPredictors(const RefConfig &config,
                                           const MemoryTrace &trace);

/** The reference model's misprediction rate over @p trace. */
double referenceMispRate(const RefConfig &config,
                         const MemoryTrace &trace);

/** Knobs for the randomized fuzzing campaign. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    /** Number of (trace, config) pairs to run. */
    std::size_t pairs = 200;
    /** Conditional-branch count range for generated traces. */
    std::uint64_t minBranches = 300;
    std::uint64_t maxBranches = 2500;
    /**
     * Also fuzz the variant predictors (SAs, agree, bi-mode, gskew,
     * tournament) and the non-default BHT reset policies on top of the
     * seven core SchemeKinds.
     */
    bool includeVariants = true;
    /**
     * For core-scheme pairs, additionally check both sweep fast paths
     * -- the per-config kernel (simulateConfig) and the fused
     * packed-counter kernel (runFusedGroup) -- against the reference
     * misprediction rate.
     */
    bool crossCheckFastPath = true;
    /**
     * When non-empty, fuzz exactly these schemes instead of the core
     * rotation (includeVariants is then ignored).  Lets a campaign
     * concentrate its pair budget -- e.g. the slow-label TAGE +
     * perceptron campaign.
     */
    std::vector<RefScheme> onlySchemes;
};

/** Outcome of a fuzzing campaign. */
struct FuzzReport
{
    std::size_t pairsRun = 0;
    /** Distinct scheme names exercised at least once. */
    std::vector<std::string> schemesCovered;
    /** Online-predictor divergences (empty on success). */
    std::vector<DiffMismatch> mismatches;
    /** Sweep-kernel rate disagreements (empty on success). */
    std::vector<std::string> fastPathProblems;

    bool clean() const
    {
        return mismatches.empty() && fastPathProblems.empty();
    }

    /** Multi-line report of every problem found. */
    std::string summary() const;
};

/**
 * Run @p options.pairs seeded (trace, config) pairs.  Schemes rotate
 * round-robin so even a small campaign touches every family; trace
 * styles alternate between the synthetic workload builder, raw
 * random branch streams, and an adversarial aliasing-heavy stream.
 * Stops collecting after the first few mismatches per layer (the
 * reports are large), but always runs all pairs for coverage.
 */
FuzzReport runDifferentialFuzzer(const FuzzOptions &options);

} // namespace bpsim::verify

#endif // BPSIM_VERIFY_DIFFERENTIAL_HH

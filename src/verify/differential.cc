#include "verify/differential.hh"

#include <set>
#include <sstream>
#include <stdexcept>

#include "common/random.hh"
#include "predictor/factory.hh"
#include "sim/sweep.hh"
#include "workload/synthetic.hh"

namespace bpsim::verify {

namespace {

/** Cap on stored mismatch reports; the fuzzer keeps running for
 *  coverage but a handful of full state dumps is plenty. */
constexpr std::size_t maxStoredProblems = 4;

const char *
policyField(RefResetPolicy policy)
{
    switch (policy) {
      case RefResetPolicy::C3ffPrefix: return "c3ff";
      case RefResetPolicy::Zeros: return "zeros";
      case RefResetPolicy::Ones: return "ones";
      case RefResetPolicy::Hold: return "hold";
    }
    return "?";
}

BhtResetPolicy
enginePolicy(RefResetPolicy policy)
{
    switch (policy) {
      case RefResetPolicy::C3ffPrefix: return BhtResetPolicy::C3ffPrefix;
      case RefResetPolicy::Zeros: return BhtResetPolicy::Zeros;
      case RefResetPolicy::Ones: return BhtResetPolicy::Ones;
      case RefResetPolicy::Hold: return BhtResetPolicy::Hold;
    }
    return BhtResetPolicy::C3ffPrefix;
}

/** The sweep-engine scheme for a core reference scheme, if any. */
std::optional<SchemeKind>
sweepKind(RefScheme scheme)
{
    switch (scheme) {
      case RefScheme::AddressIndexed: return SchemeKind::AddressIndexed;
      case RefScheme::GAg: return SchemeKind::GAg;
      case RefScheme::GAs: return SchemeKind::GAs;
      case RefScheme::Gshare: return SchemeKind::Gshare;
      case RefScheme::Path: return SchemeKind::Path;
      case RefScheme::PAsPerfect: return SchemeKind::PAsPerfect;
      case RefScheme::PAsFinite: return SchemeKind::PAsFinite;
      case RefScheme::Tage: return SchemeKind::Tage;
      case RefScheme::Perceptron: return SchemeKind::Perceptron;
      default: return std::nullopt;
    }
}

} // namespace

std::string
DiffMismatch::describe() const
{
    std::ostringstream os;
    os << "engine/reference divergence for '" << spec << "' on trace '"
       << traceName << "' at conditional #" << index << " (pc 0x"
       << std::hex << pc << std::dec << ", outcome "
       << (taken ? "taken" : "not-taken") << "): engine predicted "
       << (enginePredicted ? "taken" : "not-taken")
       << ", reference predicted "
       << (referencePredicted ? "taken" : "not-taken")
       << "\n  reference state: " << referenceState;
    return os.str();
}

std::string
engineSpec(const RefConfig &config)
{
    std::ostringstream os;
    switch (config.scheme) {
      case RefScheme::AddressIndexed:
        os << "addr:" << config.colBits;
        break;
      case RefScheme::GAg:
        os << "GAg:" << config.rowBits;
        break;
      case RefScheme::GAs:
        os << "GAs:" << config.rowBits << ":" << config.colBits;
        break;
      case RefScheme::Gshare:
        os << "gshare:" << config.rowBits << ":" << config.colBits;
        break;
      case RefScheme::Path:
        os << "path:" << config.rowBits << ":" << config.colBits << ":"
           << config.pathBitsPerTarget;
        break;
      case RefScheme::PAsPerfect:
        os << "PAs:" << config.rowBits << ":" << config.colBits;
        break;
      case RefScheme::PAsFinite:
        if (config.bhtResetPolicy != RefResetPolicy::C3ffPrefix) {
            throw std::invalid_argument(
                std::string("the spec grammar cannot express a BHT "
                            "reset policy (wanted ") +
                policyField(config.bhtResetPolicy) + ")");
        }
        os << "PAs:" << config.rowBits << ":" << config.colBits << ":"
           << config.bhtEntries << ":" << config.bhtAssoc;
        break;
      case RefScheme::SAs:
        os << "SAs:" << config.rowBits << ":" << config.colBits << ":"
           << config.setBits;
        break;
      case RefScheme::Agree:
        os << "agree:" << config.indexBits << ":" << config.historyBits;
        break;
      case RefScheme::BiMode:
        os << "bimode:" << config.indexBits << ":" << config.choiceBits
           << ":" << config.historyBits;
        break;
      case RefScheme::Gskew:
        os << "gskew:" << config.indexBits << ":" << config.historyBits;
        break;
      case RefScheme::Tournament:
        if (config.components.size() != 2) {
            throw std::invalid_argument(
                "tournament needs exactly two components");
        }
        os << "tournament(" << engineSpec(config.components[0]) << ","
           << engineSpec(config.components[1])
           << "):" << config.choiceBits;
        break;
      case RefScheme::Tage:
        // Sweep-axis convention: rowBits = component entry bits,
        // colBits = base-table bits; the spec wants base first.
        os << "tage:" << config.colBits << ":" << config.rowBits << ":"
           << config.tagBits << ":";
        for (std::size_t i = 0; i < config.tageHistories.size(); ++i)
            os << (i ? "," : "") << config.tageHistories[i];
        break;
      case RefScheme::Perceptron:
        os << "perceptron:" << config.rowBits << ":" << config.colBits
           << ":" << config.perceptronTables;
        break;
    }
    return os.str();
}

std::optional<DiffMismatch>
diffPredictors(const RefConfig &config, const MemoryTrace &trace)
{
    std::string spec = engineSpec(config);
    auto engine = makePredictor(spec, /*track_aliasing=*/false);
    auto reference = makeReferencePredictor(config);

    std::size_t conditional_index = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &rec = trace[i];
        if (!rec.isConditional())
            continue;
        bool engine_prediction = engine->onBranch(rec);
        bool reference_prediction = reference->predictAndTrain(
            RefBranch{rec.pc, rec.target, rec.taken});
        if (engine_prediction != reference_prediction) {
            DiffMismatch m;
            m.spec = spec;
            m.traceName = trace.name();
            m.index = conditional_index;
            m.pc = rec.pc;
            m.taken = rec.taken;
            m.enginePredicted = engine_prediction;
            m.referencePredicted = reference_prediction;
            m.referenceState = reference->stateDump();
            return m;
        }
        ++conditional_index;
    }
    return std::nullopt;
}

double
referenceMispRate(const RefConfig &config, const MemoryTrace &trace)
{
    auto reference = makeReferencePredictor(config);
    std::uint64_t mispredicts = 0;
    std::uint64_t conditionals = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &rec = trace[i];
        if (!rec.isConditional())
            continue;
        bool prediction = reference->predictAndTrain(
            RefBranch{rec.pc, rec.target, rec.taken});
        if (prediction != rec.taken)
            ++mispredicts;
        ++conditionals;
    }
    return conditionals ? static_cast<double>(mispredicts) /
                              static_cast<double>(conditionals)
                        : 0.0;
}

namespace {

/** Randomize one configuration of the given scheme, small enough to
 *  keep a fuzzing pair fast but wide enough to hit corner widths. */
RefConfig
randomConfig(RefScheme scheme, Pcg32 &rng, bool include_variants)
{
    RefConfig cfg;
    cfg.scheme = scheme;
    cfg.rowBits = static_cast<unsigned>(rng.uniformInt(1, 8));
    cfg.colBits = static_cast<unsigned>(rng.uniformInt(0, 6));

    switch (scheme) {
      case RefScheme::AddressIndexed:
        cfg.rowBits = 0;
        cfg.colBits = static_cast<unsigned>(rng.uniformInt(2, 8));
        break;
      case RefScheme::GAg:
        cfg.colBits = 0;
        break;
      case RefScheme::Path:
        cfg.pathBitsPerTarget =
            static_cast<unsigned>(rng.uniformInt(1, 4));
        break;
      case RefScheme::PAsFinite: {
        cfg.bhtEntries = std::size_t{1} << rng.uniformInt(3, 7);
        unsigned assoc_log =
            static_cast<unsigned>(rng.uniformInt(0, 3));
        cfg.bhtAssoc = 1u << assoc_log;
        if (cfg.bhtAssoc > cfg.bhtEntries)
            cfg.bhtAssoc = static_cast<unsigned>(cfg.bhtEntries);
        // A quarter of the finite-BHT pairs exercise the non-default
        // reset policies (fast-path check only; the factory grammar
        // cannot spell them).
        if (include_variants && rng.bernoulli(0.25)) {
            switch (rng.nextBounded(3)) {
              case 0: cfg.bhtResetPolicy = RefResetPolicy::Zeros; break;
              case 1: cfg.bhtResetPolicy = RefResetPolicy::Ones; break;
              default: cfg.bhtResetPolicy = RefResetPolicy::Hold; break;
            }
        }
        break;
      }
      case RefScheme::SAs:
        cfg.setBits = static_cast<unsigned>(rng.uniformInt(1, 5));
        break;
      case RefScheme::Agree:
        cfg.indexBits = static_cast<unsigned>(rng.uniformInt(2, 8));
        cfg.historyBits = static_cast<unsigned>(rng.uniformInt(0, 10));
        break;
      case RefScheme::BiMode:
        cfg.indexBits = static_cast<unsigned>(rng.uniformInt(2, 7));
        cfg.choiceBits = static_cast<unsigned>(rng.uniformInt(2, 7));
        cfg.historyBits = static_cast<unsigned>(rng.uniformInt(0, 10));
        break;
      case RefScheme::Gskew:
        cfg.indexBits = static_cast<unsigned>(rng.uniformInt(1, 7));
        cfg.historyBits = static_cast<unsigned>(rng.uniformInt(0, 10));
        break;
      case RefScheme::Tage: {
        cfg.rowBits = static_cast<unsigned>(rng.uniformInt(1, 6));
        cfg.colBits = static_cast<unsigned>(rng.uniformInt(1, 6));
        cfg.tagBits = static_cast<unsigned>(rng.uniformInt(2, 10));
        cfg.tageHistories.clear();
        unsigned ncomp = static_cast<unsigned>(rng.uniformInt(1, 4));
        unsigned h = 0;
        for (unsigned j = 0; j < ncomp; ++j) {
            h += static_cast<unsigned>(rng.uniformInt(1, 10));
            cfg.tageHistories.push_back(h);
        }
        break;
      }
      case RefScheme::Perceptron:
        cfg.rowBits = static_cast<unsigned>(rng.uniformInt(1, 20));
        cfg.colBits = static_cast<unsigned>(rng.uniformInt(0, 6));
        cfg.perceptronTables =
            static_cast<unsigned>(rng.uniformInt(2, 6));
        break;
      case RefScheme::Tournament: {
        cfg.choiceBits = static_cast<unsigned>(rng.uniformInt(2, 6));
        static const RefScheme leaves[4] = {
            RefScheme::AddressIndexed, RefScheme::GAs,
            RefScheme::Gshare, RefScheme::PAsPerfect};
        cfg.components.push_back(randomConfig(
            leaves[rng.nextBounded(4)], rng, include_variants));
        cfg.components.push_back(randomConfig(
            leaves[rng.nextBounded(4)], rng, include_variants));
        break;
      }
      default:
        break;
    }
    return cfg;
}

/** Trace style 0: the synthetic workload builder with jittered knobs
 *  -- realistic structure (loops, calls, correlated groups). */
MemoryTrace
builderTrace(Pcg32 &rng, std::uint64_t branches, std::size_t id)
{
    WorkloadParams params;
    params.name = "fuzz-builder-" + std::to_string(id);
    params.seed = rng.next() | 1u;
    params.staticBranches =
        static_cast<std::size_t>(rng.uniformInt(80, 400));
    params.functionCount =
        static_cast<std::size_t>(rng.uniformInt(8, 40));
    params.targetConditionals = branches;
    params.loopFraction = 0.10 + 0.30 * rng.nextDouble();
    params.fixedTripFraction = 0.20 + 0.40 * rng.nextDouble();
    params.noise = 0.08 * rng.nextDouble();
    params.zipfExponent = 0.5 + rng.nextDouble();
    params.validate();
    return generateTrace(params);
}

/** Trace style 1: raw random streams -- per-site outcome models over
 *  scattered addresses, plus non-conditional records the predictors
 *  must skip. */
MemoryTrace
rawRandomTrace(Pcg32 &rng, std::uint64_t branches, std::size_t id)
{
    MemoryTrace trace("fuzz-raw-" + std::to_string(id));

    struct Site
    {
        std::uint64_t pc;
        std::uint64_t target;
        unsigned model;   // 0 bernoulli, 1 periodic, 2 correlated
        double bias;      // bernoulli probability
        unsigned period;  // periodic: taken run length before one exit
        unsigned phase = 0;
    };

    std::size_t site_count =
        static_cast<std::size_t>(rng.uniformInt(4, 64));
    std::vector<Site> sites;
    sites.reserve(site_count);
    for (std::size_t s = 0; s < site_count; ++s) {
        Site site;
        site.pc = 0x1000 + 4 * std::uint64_t{rng.nextBounded(4096)};
        site.target = 0x1000 + 4 * std::uint64_t{rng.nextBounded(4096)};
        site.model = rng.nextBounded(3);
        site.bias = rng.nextDouble();
        site.period = static_cast<unsigned>(rng.uniformInt(2, 8));
        sites.push_back(site);
    }

    bool last_outcome = false;
    for (std::uint64_t i = 0; i < branches; ++i) {
        // Roughly a tenth of the stream is non-conditional transfers,
        // which every predictor path must ignore.
        if (rng.bernoulli(0.1)) {
            BranchRecord skip;
            skip.pc = 0x8000 + 4 * std::uint64_t{rng.nextBounded(1024)};
            skip.target =
                0x8000 + 4 * std::uint64_t{rng.nextBounded(1024)};
            switch (rng.nextBounded(3)) {
              case 0: skip.type = BranchType::Unconditional; break;
              case 1: skip.type = BranchType::Call; break;
              default: skip.type = BranchType::Return; break;
            }
            skip.taken = true;
            trace.append(skip);
        }

        Site &site = sites[rng.nextBounded(
            static_cast<std::uint32_t>(sites.size()))];
        bool taken = false;
        switch (site.model) {
          case 0:
            taken = rng.bernoulli(site.bias);
            break;
          case 1:
            // Loop-like: period-1 taken iterations, then one exit.
            taken = (site.phase + 1) % site.period != 0;
            ++site.phase;
            break;
          default:
            // Correlated with the previous branch in the stream.
            taken = rng.bernoulli(0.15) ? !last_outcome : last_outcome;
            break;
        }
        BranchRecord rec;
        rec.pc = site.pc;
        rec.target = site.target;
        rec.type = BranchType::Conditional;
        rec.taken = taken;
        trace.append(rec);
        last_outcome = taken;
    }
    return trace;
}

/** Trace style 2: adversarial aliasing -- a handful of sites whose
 *  word indices collide in every low bit window, with loop-flavoured
 *  outcome patterns that stress history wrap and BHT displacement. */
MemoryTrace
aliasingTrace(Pcg32 &rng, std::uint64_t branches, std::size_t id)
{
    MemoryTrace trace("fuzz-alias-" + std::to_string(id));

    std::size_t site_count = std::size_t{1}
                             << rng.uniformInt(1, 3);
    unsigned stride_bits = static_cast<unsigned>(rng.uniformInt(4, 8));
    std::vector<unsigned> phases(site_count, 0);
    std::vector<unsigned> periods(site_count);
    for (std::size_t s = 0; s < site_count; ++s)
        periods[s] = static_cast<unsigned>(rng.uniformInt(2, 6));

    for (std::uint64_t i = 0; i < branches; ++i) {
        std::size_t s = rng.nextBounded(
            static_cast<std::uint32_t>(site_count));
        // Sites share every address bit below the stride, so short
        // column windows and BHT sets all collide.
        std::uint64_t word =
            (std::uint64_t{s} << stride_bits) | (i % 2);
        BranchRecord rec;
        rec.pc = word * 4;
        rec.target = rec.pc + 64;
        rec.type = BranchType::Conditional;
        rec.taken = (phases[s] + 1) % periods[s] != 0;
        ++phases[s];
        trace.append(rec);
    }
    return trace;
}

} // namespace

std::string
FuzzReport::summary() const
{
    std::ostringstream os;
    os << pairsRun << " (trace, config) pairs; schemes:";
    for (const std::string &s : schemesCovered)
        os << " " << s;
    os << "\n" << mismatches.size() << " online mismatches, "
       << fastPathProblems.size() << " fast-path problems";
    for (const DiffMismatch &m : mismatches)
        os << "\n" << m.describe();
    for (const std::string &p : fastPathProblems)
        os << "\n" << p;
    return os.str();
}

FuzzReport
runDifferentialFuzzer(const FuzzOptions &options)
{
    std::vector<RefScheme> schemes = {
        RefScheme::AddressIndexed, RefScheme::GAg,
        RefScheme::GAs,            RefScheme::Gshare,
        RefScheme::Path,           RefScheme::PAsPerfect,
        RefScheme::PAsFinite,      RefScheme::Tage,
        RefScheme::Perceptron,
    };
    if (options.includeVariants) {
        schemes.insert(schemes.end(),
                       {RefScheme::SAs, RefScheme::Agree,
                        RefScheme::BiMode, RefScheme::Gskew,
                        RefScheme::Tournament});
    }
    if (!options.onlySchemes.empty())
        schemes = options.onlySchemes;

    FuzzReport report;
    std::set<std::string> covered;

    for (std::size_t pair = 0; pair < options.pairs; ++pair) {
        // One independent generator per pair: any pair can be replayed
        // in isolation from (seed, pair index) alone.
        Pcg32 rng(options.seed + 0x9E3779B97F4A7C15ULL * (pair + 1),
                  pair);

        RefScheme scheme = schemes[pair % schemes.size()];
        RefConfig config =
            randomConfig(scheme, rng, options.includeVariants);
        covered.insert(refSchemeName(scheme));

        std::uint64_t branches = static_cast<std::uint64_t>(
            rng.uniformInt(static_cast<std::int64_t>(
                               options.minBranches),
                           static_cast<std::int64_t>(
                               options.maxBranches)));
        MemoryTrace trace = [&] {
            switch (rng.nextBounded(3)) {
              case 0: return builderTrace(rng, branches, pair);
              case 1: return rawRandomTrace(rng, branches, pair);
              default: return aliasingTrace(rng, branches, pair);
            }
        }();

        // Layer 1: engine predictor vs reference, branch by branch.
        // Finite-BHT configs with a non-default reset policy have no
        // spec spelling; they are covered by layer 2 alone.
        bool spec_expressible =
            !(config.scheme == RefScheme::PAsFinite &&
              config.bhtResetPolicy != RefResetPolicy::C3ffPrefix);
        if (spec_expressible) {
            if (auto mismatch = diffPredictors(config, trace);
                mismatch &&
                report.mismatches.size() < maxStoredProblems) {
                report.mismatches.push_back(std::move(*mismatch));
            }
        }

        // Layer 2: sweep fast paths vs reference misprediction rate.
        // Both kernels are held to exact equality: the per-config
        // AliasTracker-capable kernel (via simulateConfig) and the
        // fused packed-counter kernel (via a one-job fused group).
        if (options.crossCheckFastPath) {
            if (auto kind = sweepKind(scheme)) {
                SweepOptions sweep;
                sweep.trackAliasing = false;
                sweep.fuseJobs = false;
                sweep.pathBitsPerTarget = config.pathBitsPerTarget;
                sweep.bhtEntries = config.bhtEntries;
                sweep.bhtAssoc = config.bhtAssoc;
                sweep.bhtResetPolicy =
                    enginePolicy(config.bhtResetPolicy);
                sweep.tageTagBits = config.tagBits;
                sweep.tageHistories = config.tageHistories;
                sweep.perceptronTables = config.perceptronTables;
                sweep.threads = 1;
                PreparedTrace prepared(trace);
                ConfigResult result =
                    simulateConfig(prepared, *kind, config.rowBits,
                                   config.colBits, sweep);
                double reference_rate =
                    referenceMispRate(config, trace);
                if (result.mispRate != reference_rate &&
                    report.fastPathProblems.size() <
                        maxStoredProblems) {
                    std::ostringstream os;
                    os << "sweep kernel disagrees with reference for "
                       << schemeKindName(*kind) << " r="
                       << config.rowBits << " c=" << config.colBits
                       << " policy="
                       << policyField(config.bhtResetPolicy)
                       << " on trace '" << trace.name()
                       << "': kernel " << result.mispRate
                       << " vs reference " << reference_rate;
                    report.fastPathProblems.push_back(os.str());
                }

                // The fused kernel is checked once per SIMD dispatch
                // target the host supports: every target is forced
                // explicitly (an explicit request beats the BPSIM_SIMD
                // environment override) and held to exact equality
                // with the reference rate, so scalar, SSE2 and AVX2
                // lane batches are all proven bit-identical.
                for (SimdTarget target : supportedSimdTargets()) {
                    SweepOptions fused_opts = sweep;
                    fused_opts.fuseJobs = true;
                    fused_opts.simd = target;
                    const std::vector<ConfigJob> fused_jobs{ConfigJob{
                        *kind, config.rowBits + config.colBits,
                        config.rowBits, config.colBits}};
                    const std::vector<FusedGroup> fused_groups =
                        planFusedGroups(fused_jobs, fused_opts, 1);
                    StreamCache fused_cache(prepared, fused_opts);
                    fused_cache.prepare(fused_jobs, 1);
                    ConfigResult fused_result;
                    for (const FusedGroup &group : fused_groups)
                        runFusedGroup(group, fused_jobs, fused_cache,
                                      &fused_result);
                    if (fused_result.mispRate != reference_rate &&
                        report.fastPathProblems.size() <
                            maxStoredProblems) {
                        std::ostringstream os;
                        os << "fused kernel ("
                           << simdTargetName(target)
                           << ") disagrees with reference for "
                           << schemeKindName(*kind) << " r="
                           << config.rowBits << " c=" << config.colBits
                           << " policy="
                           << policyField(config.bhtResetPolicy)
                           << " on trace '" << trace.name()
                           << "': fused " << fused_result.mispRate
                           << " vs reference " << reference_rate;
                        report.fastPathProblems.push_back(os.str());
                    }
                }
            }
        }

        ++report.pairsRun;
    }

    report.schemesCovered.assign(covered.begin(), covered.end());
    return report;
}

} // namespace bpsim::verify

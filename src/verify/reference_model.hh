/**
 * @file
 * The differential-verification reference model.
 *
 * A deliberately naive re-implementation of every predictor scheme the
 * engine simulates, written for obviousness rather than speed and
 * sharing NO code with src/predictor/ or src/sim/: histories are kept
 * as explicit bit vectors that are shifted element by element, counters
 * are plain ints walked with if/else chains, the BHT is a linear scan,
 * and even the 0xC3FF reset prefix is rebuilt from its bit-string
 * spelling.  Any disagreement between this model and the optimized
 * engine paths (online predictors or the sweep kernel) is a bug in one
 * of them -- that is the whole point.
 *
 * The semantics re-implemented here are the paper's (Sechrest/Lee/
 * Mudge, ISCA 1996) as pinned in DESIGN.md section 5: two-bit
 * saturating counters initialised weakly taken, bit 0 of a history
 * register holding the newest outcome, word-aligned (pc/4) address
 * indexing, tag-checked LRU BHT with the 0xC3FF displacement reset.
 */

#ifndef BPSIM_VERIFY_REFERENCE_MODEL_HH
#define BPSIM_VERIFY_REFERENCE_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bpsim::verify {

/** Every scheme family the reference model can stand in for. */
enum class RefScheme
{
    AddressIndexed, ///< row of counters indexed by address bits
    GAg,            ///< global history, single column
    GAs,            ///< global history x address columns
    Gshare,         ///< (global history XOR address) x address columns
    Path,           ///< Nair path history (target-address bits)
    PAsPerfect,     ///< per-branch history, unbounded first level
    PAsFinite,      ///< per-branch history through a finite LRU BHT
    SAs,            ///< untagged set of shared history registers
    Agree,          ///< gshare-indexed agree predictor (bias bits)
    BiMode,         ///< choice table + two direction tables
    Gskew,          ///< three skewed banks, majority vote
    Tournament,     ///< two components + per-address choice counters
    Tage,           ///< tagged geometric components over a bimodal base
    Perceptron,     ///< hashed perceptron (summed signed weight tables)
};

/** @return the reference display name of a scheme. */
const char *refSchemeName(RefScheme scheme);

/** What a displaced BHT entry's history is reset to (mirrors the
 *  engine's BhtResetPolicy, re-declared here to stay independent). */
enum class RefResetPolicy
{
    C3ffPrefix,
    Zeros,
    Ones,
    Hold,
};

/**
 * Full parameterisation of one reference predictor.  Field relevance
 * by scheme mirrors the factory spec grammar (predictor/factory.hh):
 * two-level schemes use rowBits/colBits, the dealiased variants use
 * indexBits/historyBits/choiceBits, Tournament uses components (exactly
 * two, non-Tournament) plus choiceBits.
 */
struct RefConfig
{
    RefScheme scheme = RefScheme::GAs;
    unsigned rowBits = 0;
    unsigned colBits = 0;
    /** Path: address bits contributed per branch. */
    unsigned pathBitsPerTarget = 2;
    /** PAsFinite: BHT shape. */
    std::size_t bhtEntries = 64;
    unsigned bhtAssoc = 4;
    RefResetPolicy bhtResetPolicy = RefResetPolicy::C3ffPrefix;
    /** SAs: log2 number of shared history registers. */
    unsigned setBits = 4;
    /** Agree/BiMode/Gskew: log2 counter-table (or bank) size. */
    unsigned indexBits = 8;
    /** Agree/BiMode/Gskew: global history length. */
    unsigned historyBits = 8;
    /** BiMode choice table / Tournament chooser table, log2 size. */
    unsigned choiceBits = 8;
    /** Tournament: exactly two leaf component configurations. */
    std::vector<RefConfig> components;
    /** Tage: tag width.  rowBits maps to per-component entry bits and
     *  colBits to base-table bits (the sweep-axis convention). */
    unsigned tagBits = 8;
    /** Tage: per-component history lengths, strictly ascending. */
    std::vector<unsigned> tageHistories = {4, 8, 16, 32};
    /** Perceptron: weight tables including the bias table.  rowBits
     *  maps to history bits and colBits to per-table entry bits. */
    unsigned perceptronTables = 4;
};

/** One executed conditional branch, as the reference model sees it. */
struct RefBranch
{
    std::uint64_t pc = 0;
    std::uint64_t target = 0;
    bool taken = false;
};

/** A naive predictor instance built from a RefConfig. */
class ReferencePredictor
{
  public:
    virtual ~ReferencePredictor() = default;

    /** Predict-then-train on one conditional branch. */
    virtual bool predictAndTrain(const RefBranch &branch) = 0;

    /**
     * Human-readable dump of ALL mutable state (history registers,
     * counter tables, BHT entries), for first-divergence reports.
     */
    virtual std::string stateDump() const = 0;
};

/** Build a reference predictor; throws std::invalid_argument on
 *  malformed configs (e.g. Tournament without two components). */
std::unique_ptr<ReferencePredictor>
makeReferencePredictor(const RefConfig &config);

/**
 * Independent rebuild of the paper's 0xC3FF displacement prefix from
 * the bit string "1100001111111111" repeated MSB-first.  Exposed so
 * tests can cross-check the engine's arithmetic construction.
 */
std::uint64_t refC3ffPrefix(unsigned width);

} // namespace bpsim::verify

#endif // BPSIM_VERIFY_REFERENCE_MODEL_HH

/**
 * @file
 * Golden-figure regression support: record named scalar results from a
 * bench driver, write them to a committed golden file, and compare a
 * fresh run against that file with a tolerance-aware comparator.
 *
 * The file format is deliberately trivial -- one `key value` pair per
 * line, keys sorted, values printed with enough digits to round-trip a
 * double -- so golden diffs in review show exactly which paper figure
 * moved and by how much.
 */

#ifndef BPSIM_VERIFY_GOLDEN_HH
#define BPSIM_VERIFY_GOLDEN_HH

#include <map>
#include <string>
#include <vector>

#include "stats/surface.hh"

namespace bpsim::verify {

/**
 * Are two golden values equal within @p tolerance?  The check combines
 * an absolute and a relative term (|a-b| <= tol + tol*max(|a|,|b|)) so
 * it works for rates near zero and for large raw counts alike.
 */
bool goldenClose(double a, double b, double tolerance);

/** Accumulates named results during one bench run. */
class GoldenRecorder
{
  public:
    /** Record one scalar; keys must be unique within a run. */
    void record(const std::string &key, double value);

    /** Record every point of a surface under `prefix/t<T>/r<R>c<C>`. */
    void recordSurface(const std::string &prefix,
                       const Surface &surface);

    bool empty() const { return values_.empty(); }
    std::size_t size() const { return values_.size(); }
    const std::map<std::string, double> &values() const
    {
        return values_;
    }

    /** Write the recorded values as a golden file (throws on I/O
     *  failure). */
    void writeFile(const std::string &path) const;

    /**
     * Compare recorded values against the golden file at @p path.
     * @return one human-readable line per problem: value out of
     *         tolerance, key in the file but not recorded, or key
     *         recorded but missing from the file.  Empty means pass.
     */
    std::vector<std::string> compareTo(const std::string &path,
                                       double tolerance) const;

    /** Parse a golden file (throws std::runtime_error if unreadable
     *  or malformed). */
    static std::map<std::string, double>
    loadFile(const std::string &path);

  private:
    std::map<std::string, double> values_;
};

} // namespace bpsim::verify

#endif // BPSIM_VERIFY_GOLDEN_HH

/**
 * @file
 * Fault injection and corruption fuzzing for the trace ingestion stack.
 *
 * Two complementary attacks on trace_io's error handling:
 *
 *  1. FaultInjectingStream wraps any ByteStream and makes its Nth I/O
 *     operation (and optionally all later ones) fail or transfer short
 *     -- simulating disk-full, yanked media and racing truncation at
 *     every point in a read or write sequence.  Campaigns iterate the
 *     failure point across the whole operation sequence and assert
 *     that every single position yields a structured Error.
 *
 *  2. fuzzTraceImage() takes the bytes of a valid .bpt file and
 *     replays seeded mutations -- every single-bit flip in the header,
 *     random truncations, random payload bit flips -- through
 *     TraceReader over a MemoryByteStream.  Header flips and
 *     truncations must all produce a structured Error (the reader
 *     validates the header against the real stream size, so any
 *     tampering is detectable); payload flips may legitimately still
 *     parse, but must never crash or over-allocate.
 *
 * Run under the asan-ubsan preset (ctest label "robust") these
 * campaigns pin the contract that no input byte sequence can make the
 * ingestion stack crash, abort, or allocate beyond the file size.
 */

#ifndef BPSIM_VERIFY_FAULT_INJECTION_HH
#define BPSIM_VERIFY_FAULT_INJECTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/byte_io.hh"
#include "common/error.hh"

namespace bpsim::service {
class SweepServer;
}

namespace bpsim::verify {

/** Where and how a FaultInjectingStream fails. */
struct FaultPlan
{
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    /**
     * 0-based index of the first failing operation; every operation
     * (read/write/seek/size/flush/close) increments the counter.
     */
    std::uint64_t failFrom = kNever;

    /**
     * When true, the first failing read/write transfers half the
     * requested bytes instead of none (a short transfer, as a signal
     * delivery or a filling disk produces); later ops fail outright.
     */
    bool shortTransfer = false;

    /** When false, only the failFrom-th operation fails. */
    bool sticky = true;
};

/** ByteStream decorator that fails according to a FaultPlan. */
class FaultInjectingStream : public ByteStream
{
  public:
    FaultInjectingStream(std::unique_ptr<ByteStream> inner,
                         FaultPlan plan);

    std::size_t read(void *dst, std::size_t n) override;
    std::size_t write(const void *src, std::size_t n) override;
    bool seek(std::uint64_t pos) override;
    bool size(std::uint64_t &out) override;
    bool flush() override;
    bool close() override;
    const std::string &describe() const override;

    /** Operations issued so far (campaigns size their sweep by it). */
    std::uint64_t opsIssued() const { return ops_; }

  private:
    /** Consume one op slot; @return true when this op must fail. */
    bool failing();

    std::unique_ptr<ByteStream> inner_;
    FaultPlan plan_;
    std::uint64_t ops_ = 0;
};

/** Tally of one corruption-fuzz campaign (see fuzzTraceImage). */
struct CorruptionReport
{
    /** Mutations whose detection is guaranteed (header/truncation). */
    std::uint64_t mustErrorMutations = 0;
    /** ... of which produced a structured Error (must be all). */
    std::uint64_t structuredErrors = 0;

    /** Payload bit flips attempted (detection not guaranteed). */
    std::uint64_t payloadMutations = 0;
    /** Payload flips that still loaded cleanly (legitimate). */
    std::uint64_t payloadCleanLoads = 0;

    /** Human-readable contract violations; empty on success. */
    std::vector<std::string> violations;

    bool
    passed() const
    {
        return violations.empty() &&
               structuredErrors == mustErrorMutations;
    }
};

/**
 * Attempt a full load of a .bpt image from memory: open, drain every
 * record, surface the sticky stream status.  Success only when the
 * image is completely well-formed.
 */
Status tryLoadImage(const std::string &image);

/**
 * Seeded corruption campaign over a valid .bpt @p image:
 *   - every single-bit flip of the fixed header (must all error),
 *   - @p truncations random truncated prefixes (must all error),
 *   - @p payloadFlips random bit flips past the fixed header (must
 *     never crash; success allowed).
 */
CorruptionReport fuzzTraceImage(const std::string &image,
                                std::uint64_t seed,
                                std::size_t truncations,
                                std::size_t payloadFlips);

/**
 * Attempt a full parse of a .bpc result-cache image from memory.
 * Success only when the image is completely well-formed.
 */
Status tryLoadBpcImage(const std::string &image);

/**
 * Seeded corruption campaign over a valid .bpc @p image.  Unlike
 * .bpt payloads, the .bpc body is checksummed, so EVERY mutation is
 * must-error: all single-bit flips of the fixed header, @p
 * truncations random truncated prefixes, @p bodyFlips random
 * single-bit body flips, and one trailing-garbage append.  A cache
 * entry that parses after tampering would silently become a wrong
 * sweep result; this campaign pins that to impossible.
 */
CorruptionReport fuzzBpcImage(const std::string &image,
                              std::uint64_t seed,
                              std::size_t truncations,
                              std::size_t bodyFlips);

/** Tally of one protocol fuzz campaign (see fuzzRequestLines). */
struct RequestFuzzReport
{
    /** Lines whose rejection is guaranteed: truncations, unknown
     *  keys, oversized fields/lines, structurally wrong requests. */
    std::uint64_t mustErrorLines = 0;
    /** ... of which drew a structured error response (must be all). */
    std::uint64_t structuredErrors = 0;

    /** Random byte-flip mutants attempted (outcome not guaranteed). */
    std::uint64_t mutatedLines = 0;
    /** Mutants the server still served successfully (legitimate --
     *  the flip may hit an id byte or a value harmlessly). */
    std::uint64_t cleanResponses = 0;

    /** Human-readable contract violations; empty on success. */
    std::vector<std::string> violations;

    bool
    passed() const
    {
        return violations.empty() &&
               structuredErrors == mustErrorLines;
    }
};

/**
 * Seeded hostile-client campaign against a live SweepServer, built
 * from one @p valid_line (a request known to succeed):
 *
 *   - every strict prefix of the line (truncated requests),
 *   - @p byteFlips random single-bit mutants of the line,
 *   - an unknown top-level key, an oversized id, an oversized line,
 *   - non-object lines (number, string, array, null) and a
 *     wrong-typed "op".
 *
 * The contract pinned: EVERY line -- however mangled -- draws back
 * exactly one parseable JSON response with a boolean "ok"; the
 * guaranteed-invalid ones draw "ok": false with an error object; and
 * the server still answers a ping afterwards.  The server process
 * never dies, throws, or goes silent.
 */
RequestFuzzReport fuzzRequestLines(service::SweepServer &server,
                                   const std::string &valid_line,
                                   std::uint64_t seed,
                                   std::size_t byteFlips);

} // namespace bpsim::verify

#endif // BPSIM_VERIFY_FAULT_INJECTION_HH

#include "verify/fault_injection.hh"

#include <algorithm>

#include <optional>

#include "cache/result_cache.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "service/server.hh"
#include "trace/trace_io.hh"

namespace bpsim::verify {

// --- FaultInjectingStream ----------------------------------------------

FaultInjectingStream::FaultInjectingStream(
    std::unique_ptr<ByteStream> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan)
{
    bpsim_assert(inner_, "FaultInjectingStream needs an inner stream");
}

bool
FaultInjectingStream::failing()
{
    std::uint64_t op = ops_++;
    if (plan_.sticky)
        return op >= plan_.failFrom;
    return op == plan_.failFrom;
}

std::size_t
FaultInjectingStream::read(void *dst, std::size_t n)
{
    if (!failing())
        return inner_->read(dst, n);
    // The first failing transfer may be short rather than empty.
    if (plan_.shortTransfer && ops_ - 1 == plan_.failFrom && n > 1)
        return inner_->read(dst, n / 2);
    return 0;
}

std::size_t
FaultInjectingStream::write(const void *src, std::size_t n)
{
    if (!failing())
        return inner_->write(src, n);
    if (plan_.shortTransfer && ops_ - 1 == plan_.failFrom && n > 1)
        return inner_->write(src, n / 2);
    return 0;
}

bool
FaultInjectingStream::seek(std::uint64_t pos)
{
    if (failing())
        return false;
    return inner_->seek(pos);
}

bool
FaultInjectingStream::size(std::uint64_t &out)
{
    if (failing())
        return false;
    return inner_->size(out);
}

bool
FaultInjectingStream::flush()
{
    if (failing())
        return false;
    return inner_->flush();
}

bool
FaultInjectingStream::close()
{
    // Like fclose(): even a failing close releases the stream.
    bool inner_ok = inner_->close();
    return !failing() && inner_ok;
}

const std::string &
FaultInjectingStream::describe() const
{
    return inner_->describe();
}

// --- Corruption fuzzing ------------------------------------------------

namespace {

/** Fixed .bpt header: magic, version, record count, name length. */
constexpr std::size_t fixedHeaderBytes = 4 + 4 + 8 + 4;

/**
 * One mutation attempt: load @p image, record the outcome against the
 * expectation, and append a violation description when the contract is
 * broken.
 */
void
attempt(const std::string &image, bool must_error,
        const std::string &what, CorruptionReport &report)
{
    Status st = tryLoadImage(image);
    if (must_error) {
        ++report.mustErrorMutations;
        if (!st.ok()) {
            ++report.structuredErrors;
        } else {
            report.violations.push_back(
                what + ": loaded cleanly, expected a structured error");
        }
    } else {
        ++report.payloadMutations;
        if (st.ok())
            ++report.payloadCleanLoads;
    }
}

} // namespace

Status
tryLoadImage(const std::string &image)
{
    auto reader = TraceReader::open(
        std::make_unique<MemoryByteStream>(image));
    if (!reader.ok())
        return reader.error();
    // The name may never outgrow the input: the header is validated
    // against the stream size before any allocation.
    bpsim_assert(reader.value().name().size() <= image.size(),
                 "reader allocated a name larger than the input");
    BranchRecord rec;
    while (reader.value().next(rec)) {
    }
    return reader.value().status();
}

CorruptionReport
fuzzTraceImage(const std::string &image, std::uint64_t seed,
               std::size_t truncations, std::size_t payloadFlips)
{
    CorruptionReport report;
    Status pristine = tryLoadImage(image);
    if (!pristine.ok()) {
        report.violations.push_back(
            "pristine image failed to load: " +
            pristine.error().message());
        return report;
    }

    // Every single-bit flip of the fixed header is detectable: magic
    // and version are compared exactly, and any change to the record
    // count or name length breaks the size reconciliation.
    std::size_t header =
        std::min(fixedHeaderBytes, image.size());
    for (std::size_t byte = 0; byte < header; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutant = image;
            mutant[byte] =
                static_cast<char>(mutant[byte] ^ (1 << bit));
            attempt(mutant, /*must_error=*/true,
                    detail::concat("header bit flip at byte ", byte,
                                   " bit ", bit),
                    report);
        }
    }

    // Any truncated prefix is detectable for the same reason.
    Pcg32 rng(seed);
    for (std::size_t i = 0; i < truncations && image.size() > 1; ++i) {
        auto keep = static_cast<std::size_t>(rng.nextBounded(
            static_cast<std::uint32_t>(image.size())));
        attempt(image.substr(0, keep), /*must_error=*/true,
                detail::concat("truncation to ", keep, " bytes"),
                report);
    }

    // Bit flips in the name or record payload may produce a different
    // but structurally valid trace; the contract is only "no crash,
    // no over-allocation" (enforced inside tryLoadImage, and by the
    // sanitizers when this campaign runs under asan-ubsan).
    for (std::size_t i = 0;
         i < payloadFlips && image.size() > fixedHeaderBytes; ++i) {
        auto span =
            static_cast<std::uint32_t>(image.size() - fixedHeaderBytes);
        std::size_t byte = fixedHeaderBytes + rng.nextBounded(span);
        std::string mutant = image;
        mutant[byte] = static_cast<char>(
            mutant[byte] ^ (1 << rng.nextBounded(8)));
        attempt(mutant, /*must_error=*/false, "payload bit flip",
                report);
    }

    return report;
}

namespace {

/** Fixed .bpc header: magic, format, total length, checksum. */
constexpr std::size_t bpcHeaderBytes = 4 + 4 + 8 + 8 + 8;

/** One .bpc mutation attempt; every .bpc mutation is must-error. */
void
attemptBpc(const std::string &image, const std::string &what,
           CorruptionReport &report)
{
    Status st = tryLoadBpcImage(image);
    ++report.mustErrorMutations;
    if (!st.ok()) {
        ++report.structuredErrors;
    } else {
        report.violations.push_back(
            what + ": loaded cleanly, expected a structured error");
    }
}

} // namespace

Status
tryLoadBpcImage(const std::string &image)
{
    MemoryByteStream stream(image);
    Result<BpcImage> parsed = readBpc(stream);
    if (!parsed.ok())
        return parsed.error();
    return Status();
}

CorruptionReport
fuzzBpcImage(const std::string &image, std::uint64_t seed,
             std::size_t truncations, std::size_t bodyFlips)
{
    CorruptionReport report;
    Status pristine = tryLoadBpcImage(image);
    if (!pristine.ok()) {
        report.violations.push_back(
            "pristine image failed to load: " +
            pristine.error().message());
        return report;
    }

    // Header flips: magic and format are compared exactly, the total
    // length is reconciled with the real stream size, and a flipped
    // checksum no longer matches the body.
    std::size_t header = std::min(bpcHeaderBytes, image.size());
    for (std::size_t byte = 0; byte < header; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutant = image;
            mutant[byte] =
                static_cast<char>(mutant[byte] ^ (1 << bit));
            attemptBpc(mutant,
                       detail::concat("bpc header bit flip at byte ",
                                      byte, " bit ", bit),
                       report);
        }
    }

    Pcg32 rng(seed);
    for (std::size_t i = 0; i < truncations && image.size() > 1; ++i) {
        auto keep = static_cast<std::size_t>(rng.nextBounded(
            static_cast<std::uint32_t>(image.size())));
        attemptBpc(image.substr(0, keep),
                   detail::concat("bpc truncation to ", keep,
                                  " bytes"),
                   report);
    }

    // Body flips are must-error too: the body is covered by the
    // header checksum, so a tampered result can never be served.
    for (std::size_t i = 0;
         i < bodyFlips && image.size() > bpcHeaderBytes; ++i) {
        auto span =
            static_cast<std::uint32_t>(image.size() - bpcHeaderBytes);
        std::size_t byte = bpcHeaderBytes + rng.nextBounded(span);
        int bit = static_cast<int>(rng.nextBounded(8));
        std::string mutant = image;
        mutant[byte] =
            static_cast<char>(mutant[byte] ^ (1 << bit));
        attemptBpc(mutant,
                   detail::concat("bpc body bit flip at byte ", byte,
                                  " bit ", bit),
                   report);
    }

    // Appending anything breaks the declared-length reconciliation.
    attemptBpc(image + '\0', "bpc trailing garbage", report);

    return report;
}

// --- Protocol fuzzing --------------------------------------------------

namespace {

/**
 * Serve one hostile line and validate the universal response
 * contract: exactly one line back, parseable JSON, boolean "ok".
 * @return the parsed response, or nullopt after recording a
 * violation.
 */
std::optional<service::JsonValue>
serveFuzzLine(service::SweepServer &server, const std::string &line,
              const std::string &what, RequestFuzzReport &report)
{
    std::string response;
    try {
        response = server.handleLine(line);
    } catch (...) {
        report.violations.push_back(
            detail::concat(what, ": handleLine threw"));
        return std::nullopt;
    }
    Result<service::JsonValue> parsed = service::parseJson(response);
    if (!parsed.ok()) {
        report.violations.push_back(detail::concat(
            what, ": response is not valid JSON: ", response));
        return std::nullopt;
    }
    const service::JsonValue *ok = parsed.value().find("ok");
    if (!ok || !ok->isBool()) {
        report.violations.push_back(detail::concat(
            what, ": response lacks a boolean \"ok\": ", response));
        return std::nullopt;
    }
    return std::move(parsed).value();
}

/** Serve a line whose rejection is guaranteed by the protocol. */
void
mustError(service::SweepServer &server, const std::string &line,
          const std::string &what, RequestFuzzReport &report)
{
    ++report.mustErrorLines;
    std::optional<service::JsonValue> response =
        serveFuzzLine(server, line, what, report);
    if (!response)
        return;
    if (response->find("ok")->asBool()) {
        report.violations.push_back(detail::concat(
            what, ": mangled request was served successfully"));
        return;
    }
    const service::JsonValue *error = response->find("error");
    if (!error || !error->isObject() || !error->find("message")) {
        report.violations.push_back(detail::concat(
            what, ": error response lacks an error object"));
        return;
    }
    ++report.structuredErrors;
}

} // namespace

RequestFuzzReport
fuzzRequestLines(service::SweepServer &server,
                 const std::string &valid_line, std::uint64_t seed,
                 std::size_t byteFlips)
{
    RequestFuzzReport report;

    // The seed request must actually be valid, or the campaign's
    // clean-mutant accounting is meaningless.
    {
        std::optional<service::JsonValue> response = serveFuzzLine(
            server, valid_line, "seed request", report);
        if (response && !response->find("ok")->asBool())
            report.violations.push_back(
                "seed request was itself rejected");
    }

    // Every strict prefix of a JSON object line is incomplete JSON.
    for (std::size_t keep = 0; keep < valid_line.size(); ++keep) {
        mustError(server, valid_line.substr(0, keep),
                  detail::concat("truncation to ", keep, " bytes"),
                  report);
    }

    // Random single-bit mutants: any outcome is allowed except a
    // contract violation (crash, non-JSON response, silence).
    Pcg32 rng(seed);
    for (std::size_t i = 0; i < byteFlips; ++i) {
        std::size_t byte = rng.nextBounded(
            static_cast<std::uint32_t>(valid_line.size()));
        int bit = static_cast<int>(rng.nextBounded(8));
        std::string mutant = valid_line;
        mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << bit));
        ++report.mutatedLines;
        std::optional<service::JsonValue> response = serveFuzzLine(
            server, mutant,
            detail::concat("bit flip at byte ", byte, " bit ", bit),
            report);
        if (response && response->find("ok")->asBool())
            ++report.cleanResponses;
    }

    // Unknown keys are rejected at every level.
    mustError(server,
              std::string("{\"definitely_unknown_key\":1,") +
                  valid_line.substr(1),
              "unknown top-level key", report);

    // Oversized id and oversized line.
    const service::ProtocolLimits &limits = server.options().limits;
    mustError(server,
              detail::concat("{\"op\":\"ping\",\"id\":\"",
                             std::string(limits.maxIdBytes + 1, 'x'),
                             "\"}"),
              "oversized id", report);
    mustError(server, std::string(limits.maxLineBytes + 1, ' '),
              "oversized line", report);

    // Structurally wrong requests.
    mustError(server, "", "empty line", report);
    mustError(server, "42", "number line", report);
    mustError(server, "\"ping\"", "string line", report);
    mustError(server, "[\"ping\"]", "array line", report);
    mustError(server, "null", "null line", report);
    mustError(server, "{\"op\":7}", "wrong-typed op", report);
    mustError(server, "{\"op\":\"no_such_op\"}", "unknown op",
              report);

    // The server must still be alive and serving.
    {
        std::optional<service::JsonValue> response = serveFuzzLine(
            server, "{\"op\":\"ping\",\"id\":\"post-fuzz\"}",
            "post-campaign ping", report);
        if (response && !response->find("ok")->asBool())
            report.violations.push_back(
                "server stopped serving after the campaign");
    }

    return report;
}

} // namespace bpsim::verify

/**
 * @file
 * Content-addressed trace interning.
 *
 * The sweep engine's unit of sharing is the trace: one interned trace
 * feeds hundreds of sweep requests, and the persistent result cache
 * (src/cache/) keys every stored sweep by the trace's content hash.
 * TraceRegistry is the single owner of materialised traces in a
 * session: clients intern a trace once (by content, by file, or by a
 * synthetic generator key) and pass the returned TraceHandle around.
 *
 * Synthetic traces are the important case: generation is deterministic
 * from WorkloadParams, so their registry key is a hash of the
 * *generating parameters* (workload/trace_key.hh), computed without
 * materializing the trace.  A repeated intern of the same profile is a
 * pure map lookup -- the trace bytes are produced exactly once per
 * session, which is what makes repeated sweeps over the config lattice
 * cheap even before the result cache kicks in.
 *
 * Interned traces are immutable and shared (shared_ptr<const
 * MemoryTrace>); replaying one through the online predictors goes
 * through TraceView, which carries its own cursor so concurrent
 * replays never interfere.  All registry operations are thread-safe.
 */

#ifndef BPSIM_TRACE_TRACE_REGISTRY_HH
#define BPSIM_TRACE_TRACE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.hh"
#include "trace/memory_trace.hh"
#include "trace/trace_hash.hh"

namespace bpsim {

/** An interned trace: its registry key plus shared read-only bytes. */
struct TraceHandle
{
    TraceHash hash;
    std::shared_ptr<const MemoryTrace> trace;

    bool valid() const { return trace != nullptr; }
};

/**
 * Read-only TraceSource over an interned trace.  Owns nothing but a
 * cursor, so any number of views can replay the same shared trace
 * concurrently (MemoryTrace's own TraceSource interface mutates an
 * embedded cursor and therefore cannot be shared).
 */
class TraceView : public TraceSource
{
  public:
    explicit TraceView(std::shared_ptr<const MemoryTrace> trace)
        : trace_(std::move(trace))
    {
    }
    explicit TraceView(const TraceHandle &handle)
        : TraceView(handle.trace)
    {
    }

    bool
    next(BranchRecord &out) override
    {
        if (cursor_ >= trace_->size())
            return false;
        out = (*trace_)[cursor_++];
        return true;
    }
    void reset() override { cursor_ = 0; }
    const std::string &name() const override { return trace_->name(); }

  private:
    std::shared_ptr<const MemoryTrace> trace_;
    std::size_t cursor_ = 0;
};

/** Content-addressed store of immutable traces. */
class TraceRegistry
{
  public:
    TraceRegistry() = default;
    TraceRegistry(const TraceRegistry &) = delete;
    TraceRegistry &operator=(const TraceRegistry &) = delete;

    /**
     * Intern @p trace by content hash.  When the hash is already
     * present the existing trace is returned and @p trace is dropped
     * (content equality is implied by key equality).
     */
    TraceHandle internTrace(MemoryTrace trace);

    /**
     * Intern the trace a deterministic generator produces, keyed by
     * @p key (a generator-domain hash, see workload/trace_key.hh).
     * @p generate runs only on a registry miss -- the reproducibility
     * contract is that equal keys imply byte-identical generated
     * traces, so the bytes are never materialised twice.
     */
    TraceHandle internSynthetic(const TraceHash &key,
                                const std::function<MemoryTrace()>
                                    &generate);

    /** Load a .bpt file and intern it by content hash. */
    Result<TraceHandle> internFile(const std::string &path);

    /** Look up an interned trace; !valid() handle when absent. */
    TraceHandle lookup(const TraceHash &hash) const;

    /**
     * Drop the registry's reference to @p hash.  Live TraceHandles
     * keep the bytes alive; later interns regenerate.  @return whether
     * an entry was removed.
     */
    bool evict(const TraceHash &hash);

    /** Interned trace count. */
    std::size_t size() const;
    /** Interns that found an existing entry. */
    std::uint64_t hits() const;
    /** Interns that had to materialise (generate/load/hash) a trace. */
    std::uint64_t misses() const;
    /** Total records across resident traces (memory telemetry). */
    std::uint64_t residentRecords() const;

  private:
    mutable std::mutex mutex_;
    std::map<TraceHash, std::shared_ptr<const MemoryTrace>> traces_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_REGISTRY_HH

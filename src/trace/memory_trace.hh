/**
 * @file
 * In-memory branch trace.  The sweep experiments replay the same trace
 * through hundreds of predictor configurations, so the generated workload
 * is materialised once into a MemoryTrace and then re-read at memory
 * bandwidth.
 */

#ifndef BPSIM_TRACE_MEMORY_TRACE_HH
#define BPSIM_TRACE_MEMORY_TRACE_HH

#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace bpsim {

/** Growable, replayable trace buffer; also a TraceSource over itself. */
class MemoryTrace : public TraceSource
{
  public:
    explicit MemoryTrace(std::string name = "memory");

    /** Append one record. */
    void append(const BranchRecord &rec);

    /** Drain an entire source into this trace (source is not reset). */
    void appendAll(TraceSource &source);

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
    const BranchRecord &operator[](std::size_t i) const;

    /** Number of conditional records. */
    std::size_t conditionalCount() const { return conditionals; }

    bool next(BranchRecord &out) override;
    void reset() override { cursor = 0; }
    const std::string &name() const override { return name_; }

    void clear();

  private:
    std::string name_;
    std::vector<BranchRecord> records;
    std::size_t conditionals = 0;
    std::size_t cursor = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_MEMORY_TRACE_HH

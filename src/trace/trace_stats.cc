#include "trace/trace_stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bpsim {

TraceCharacterization
TraceCharacterization::measure(TraceSource &source)
{
    TraceCharacterization out;
    std::unordered_map<Addr, SiteCount> sites;

    BranchRecord rec;
    while (source.next(rec)) {
        out.dynInsts += static_cast<std::uint64_t>(rec.instGap) + 1;
        if (!rec.isConditional())
            continue;
        ++out.dynCond;
        if (rec.kernel)
            ++out.dynCondKernel;
        auto &site = sites[rec.pc];
        site.pc = rec.pc;
        ++site.executed;
        if (rec.taken)
            ++site.taken;
    }

    out.sorted.reserve(sites.size());
    for (const auto &kv : sites)
        out.sorted.push_back(kv.second);
    std::sort(out.sorted.begin(), out.sorted.end(),
              [](const SiteCount &a, const SiteCount &b) {
                  if (a.executed != b.executed)
                      return a.executed > b.executed;
                  return a.pc < b.pc; // deterministic tie-break
              });
    return out;
}

double
TraceCharacterization::conditionalDensity() const
{
    return dynInsts ?
        static_cast<double>(dynCond) / static_cast<double>(dynInsts) : 0.0;
}

std::size_t
TraceCharacterization::staticCovering(double fraction) const
{
    bpsim_assert(fraction >= 0.0 && fraction <= 1.0,
                 "coverage fraction out of range");
    auto target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(dynCond) + 0.5);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        cum += sorted[i].executed;
        if (cum >= target)
            return i + 1;
    }
    return sorted.size();
}

std::vector<std::size_t>
TraceCharacterization::frequencyQuartiles() const
{
    // Table 2 buckets: first 50%, next 40% (to 90%), next 9% (to 99%),
    // remaining 1%.
    const double edges[3] = {0.50, 0.90, 0.99};
    std::vector<std::size_t> counts(4, 0);
    std::uint64_t cum = 0;
    std::size_t bucket = 0;
    for (const auto &site : sorted) {
        while (bucket < 3 &&
               static_cast<double>(cum) >=
                   edges[bucket] * static_cast<double>(dynCond)) {
            ++bucket;
        }
        ++counts[bucket];
        cum += site.executed;
    }
    return counts;
}

double
TraceCharacterization::dynamicFractionBiasedAbove(double threshold) const
{
    if (dynCond == 0)
        return 0.0;
    std::uint64_t covered = 0;
    for (const auto &site : sorted) {
        double taken_rate = static_cast<double>(site.taken) /
            static_cast<double>(site.executed);
        double bias = std::max(taken_rate, 1.0 - taken_rate);
        if (bias >= threshold)
            covered += site.executed;
    }
    return static_cast<double>(covered) / static_cast<double>(dynCond);
}

std::uint64_t
TraceCharacterization::countOfRank(std::size_t k) const
{
    bpsim_assert(k < sorted.size(), "rank ", k, " out of range ",
                 sorted.size());
    return sorted[k].executed;
}

} // namespace bpsim

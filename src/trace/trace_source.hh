/**
 * @file
 * Abstract stream of branch records.  Implementations: in-memory traces,
 * binary trace files, and the synthetic workload executor (which can
 * stream without materialising a trace at all).
 */

#ifndef BPSIM_TRACE_TRACE_SOURCE_HH
#define BPSIM_TRACE_TRACE_SOURCE_HH

#include <string>

#include "trace/branch_record.hh"

namespace bpsim {

/** Forward-only, resettable stream of BranchRecords. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @param out filled in on success
     * @return false at end of stream (out is untouched)
     */
    virtual bool next(BranchRecord &out) = 0;

    /** Rewind to the first record. */
    virtual void reset() = 0;

    /** Human-readable stream name (benchmark or file name). */
    virtual const std::string &name() const = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_SOURCE_HH

/**
 * @file
 * Trace characterisation: the measurements behind Tables 1 and 2 of the
 * paper (dynamic instruction counts, conditional branch density, static
 * branch counts, and the skew of dynamic instances over static branches).
 */

#ifndef BPSIM_TRACE_TRACE_STATS_HH
#define BPSIM_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace_source.hh"

namespace bpsim {

/**
 * Aggregated characterisation of one trace.  Build with
 * TraceCharacterization::measure().
 */
class TraceCharacterization
{
  public:
    /** Consume @p source (not reset afterwards) and tabulate. */
    static TraceCharacterization measure(TraceSource &source);

    /** Total dynamic instructions, branches plus instGap filler. */
    std::uint64_t dynamicInstructions() const { return dynInsts; }

    /** Dynamic conditional branch instances. */
    std::uint64_t dynamicConditionals() const { return dynCond; }

    /** Conditional branches as a fraction of dynamic instructions. */
    double conditionalDensity() const;

    /** Number of distinct conditional branch sites executed. */
    std::size_t staticConditionals() const { return sorted.size(); }

    /**
     * Number of (most frequent) static branches that together account
     * for @p fraction of the dynamic conditional instances -- the
     * "constituting 90%" column of Table 1.
     */
    std::size_t staticCovering(double fraction) const;

    /**
     * Table 2 row: how many static branches fall in the first 50%, next
     * 40%, next 9% and remaining 1% of dynamic instances.  Returns the
     * four counts in that order; they sum to staticConditionals().
     */
    std::vector<std::size_t> frequencyQuartiles() const;

    /**
     * Fraction of dynamic conditional instances arising from branches
     * whose taken-rate bias max(p, 1-p) is at least @p threshold --
     * quantifies the "highly biased branch" population the paper
     * discusses in Section 2.
     */
    double dynamicFractionBiasedAbove(double threshold) const;

    /** Dynamic execution count of the k-th most frequent branch. */
    std::uint64_t countOfRank(std::size_t k) const;

    /** Dynamic instances executed in kernel mode. */
    std::uint64_t kernelConditionals() const { return dynCondKernel; }

  private:
    struct SiteCount
    {
        Addr pc;
        std::uint64_t executed;
        std::uint64_t taken;
    };

    std::uint64_t dynInsts = 0;
    std::uint64_t dynCond = 0;
    std::uint64_t dynCondKernel = 0;
    /** Conditional sites sorted by descending execution count. */
    std::vector<SiteCount> sorted;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_STATS_HH

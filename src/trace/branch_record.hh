/**
 * @file
 * The unit of work for the whole simulator: one executed branch.
 *
 * The paper's traces (SPECint92 user-level, IBS-Ultrix user+kernel) record
 * every control transfer; the predictors under study consume only the
 * conditional ones, but unconditional branches, calls and returns are kept
 * in the record stream because path-history predictors and the Table 1
 * characterisation need them.
 */

#ifndef BPSIM_TRACE_BRANCH_RECORD_HH
#define BPSIM_TRACE_BRANCH_RECORD_HH

#include <cstdint>

#include "common/bitutil.hh"

namespace bpsim {

/** Control-transfer classes appearing in a trace. */
enum class BranchType : std::uint8_t
{
    Conditional = 0,
    Unconditional = 1,
    Call = 2,
    Return = 3,
};

/** @return a short lowercase name for a branch type. */
constexpr const char *
branchTypeName(BranchType type)
{
    switch (type) {
      case BranchType::Conditional: return "cond";
      case BranchType::Unconditional: return "uncond";
      case BranchType::Call: return "call";
      case BranchType::Return: return "ret";
    }
    return "?";
}

/** One executed control-transfer instruction. */
struct BranchRecord
{
    /** Address of the branch instruction itself. */
    Addr pc = 0;
    /** Address the branch goes to when taken. */
    Addr target = 0;
    /**
     * Non-branch instructions executed since the previous record (lets
     * trace statistics reconstruct total dynamic instruction counts and
     * the branch density the paper reports in Table 1).
     */
    std::uint32_t instGap = 0;
    BranchType type = BranchType::Conditional;
    /** Outcome; always true for unconditional transfers. */
    bool taken = true;
    /** Executed in kernel mode (IBS-Ultrix traces include the kernel). */
    bool kernel = false;

    bool isConditional() const
    {
        return type == BranchType::Conditional;
    }

    bool operator==(const BranchRecord &) const = default;
};

} // namespace bpsim

#endif // BPSIM_TRACE_BRANCH_RECORD_HH

#include "trace/trace_hash.hh"

#include <cstdio>

namespace bpsim {

namespace {

/**
 * splitmix64 finalizer: the standard 64-bit avalanche permutation.
 * Chained over two independently-offset lanes it gives the 128-bit
 * digest far more collision headroom than the ~2^32 birthday bound a
 * single 64-bit lane would offer.
 */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

constexpr std::uint64_t kLaneAOffset = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kLaneBOffset = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kLaneBPrime = 0x165667B19E3779F9ULL;

} // namespace

std::string
TraceHash::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

Result<TraceHash>
TraceHash::parse(const std::string &text)
{
    if (text.size() != 32)
        return BPSIM_ERROR("trace hash must be 32 hex digits, got ",
                           text.size(), " characters");
    TraceHash out;
    for (int half = 0; half < 2; ++half) {
        std::uint64_t v = 0;
        for (int i = 0; i < 16; ++i) {
            const char c = text[static_cast<std::size_t>(half * 16 + i)];
            std::uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint64_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<std::uint64_t>(c - 'A' + 10);
            else
                return BPSIM_ERROR("invalid hex digit '", c,
                                   "' in trace hash '", text, "'");
            v = (v << 4) | digit;
        }
        (half == 0 ? out.hi : out.lo) = v;
    }
    return out;
}

HashStream::HashStream(const std::string &domain)
    : a_(kLaneAOffset), b_(kLaneBOffset)
{
    str(domain);
}

void
HashStream::absorb(std::uint64_t v)
{
    a_ = mix64(a_ ^ v);
    b_ = mix64(b_ + v * kLaneBPrime);
    ++words_;
}

void
HashStream::f64(double v)
{
    if (v == 0.0)
        v = 0.0; // collapse -0.0 and +0.0 to one bit pattern
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    absorb(bits);
}

void
HashStream::str(const std::string &s)
{
    absorb(s.size());
    // Pack bytes little-endian into words so the digest never depends
    // on host byte order.
    std::uint64_t word = 0;
    unsigned filled = 0;
    for (unsigned char c : s) {
        word |= static_cast<std::uint64_t>(c) << (8 * filled);
        if (++filled == 8) {
            absorb(word);
            word = 0;
            filled = 0;
        }
    }
    if (filled > 0)
        absorb(word);
}

TraceHash
HashStream::digest() const
{
    // Fold the word count in so absorbing a trailing zero changes the
    // digest, then cross-mix the lanes.
    const std::uint64_t a = mix64(a_ ^ words_);
    const std::uint64_t b = mix64(b_ + words_);
    return TraceHash{mix64(a + b), mix64(a ^ (b << 1 | b >> 63))};
}

TraceHash
traceHash(const MemoryTrace &trace)
{
    HashStream h("bpsim.trace.content.v1");
    h.u64(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &rec = trace[i];
        h.u64(rec.pc);
        h.u64(rec.target);
        h.u32(rec.instGap);
        // Same packing as the .bpt flags byte (trace_io.hh): type in
        // bits [1:0], taken in bit 2, kernel in bit 3.
        h.u8(static_cast<std::uint8_t>(
            static_cast<unsigned>(rec.type) |
            (rec.taken ? 1u << 2 : 0u) | (rec.kernel ? 1u << 3 : 0u)));
    }
    return h.digest();
}

} // namespace bpsim

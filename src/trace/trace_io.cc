#include "trace/trace_io.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace bpsim {

namespace {

constexpr std::array<char, 4> magic = {'B', 'P', 'T', '1'};
constexpr std::uint32_t formatVersion = 1;
constexpr std::size_t recordBytes = 8 + 8 + 4 + 1;

void
putU32(std::FILE *f, std::uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(b, 1, 4, f) != 4)
        bpsim_fatal("short write to trace file");
}

void
putU64(std::FILE *f, std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(b, 1, 8, f) != 8)
        bpsim_fatal("short write to trace file");
}

bool
getU32(std::FILE *f, std::uint32_t &v)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, f) != 4)
        return false;
    v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return true;
}

bool
getU64(std::FILE *f, std::uint64_t &v)
{
    unsigned char b[8];
    if (std::fread(b, 1, 8, f) != 8)
        return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return true;
}

std::uint8_t
packFlags(const BranchRecord &rec)
{
    auto flags = static_cast<std::uint8_t>(rec.type);
    if (rec.taken)
        flags |= 1u << 2;
    if (rec.kernel)
        flags |= 1u << 3;
    return flags;
}

void
unpackFlags(std::uint8_t flags, BranchRecord &rec)
{
    rec.type = static_cast<BranchType>(flags & 0x3);
    rec.taken = (flags >> 2) & 1;
    rec.kernel = (flags >> 3) & 1;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &trace_name)
    : file(std::fopen(path.c_str(), "wb"))
{
    if (!file)
        bpsim_fatal("cannot create trace file ", path);
    if (std::fwrite(magic.data(), 1, magic.size(), file) != magic.size())
        bpsim_fatal("short write to trace file ", path);
    putU32(file, formatVersion);
    countOffset = std::ftell(file);
    putU64(file, 0); // patched by close()
    putU32(file, static_cast<std::uint32_t>(trace_name.size()));
    if (!trace_name.empty() &&
        std::fwrite(trace_name.data(), 1, trace_name.size(), file) !=
            trace_name.size()) {
        bpsim_fatal("short write to trace file ", path);
    }
}

TraceWriter::~TraceWriter()
{
    if (file)
        close();
}

void
TraceWriter::write(const BranchRecord &rec)
{
    bpsim_assert(file, "write() after close()");
    putU64(file, rec.pc);
    putU64(file, rec.target);
    putU32(file, rec.instGap);
    std::uint8_t flags = packFlags(rec);
    if (std::fwrite(&flags, 1, 1, file) != 1)
        bpsim_fatal("short write to trace file");
    ++count;
}

std::uint64_t
TraceWriter::writeAll(TraceSource &source)
{
    BranchRecord rec;
    std::uint64_t n = 0;
    while (source.next(rec)) {
        write(rec);
        ++n;
    }
    return n;
}

void
TraceWriter::close()
{
    if (!file)
        return;
    if (std::fseek(file, countOffset, SEEK_SET) != 0)
        bpsim_fatal("cannot seek in trace file to patch header");
    putU64(file, count);
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path)
    : file(std::fopen(path.c_str(), "rb"))
{
    if (!file)
        bpsim_fatal("cannot open trace file ", path);
    std::array<char, 4> got{};
    if (std::fread(got.data(), 1, got.size(), file) != got.size() ||
        got != magic) {
        bpsim_fatal(path, " is not a .bpt trace file (bad magic)");
    }
    std::uint32_t version = 0;
    if (!getU32(file, version) || version != formatVersion)
        bpsim_fatal(path, ": unsupported trace format version");
    if (!getU64(file, count))
        bpsim_fatal(path, ": truncated header");
    std::uint32_t name_len = 0;
    if (!getU32(file, name_len))
        bpsim_fatal(path, ": truncated header");
    name_.resize(name_len);
    if (name_len &&
        std::fread(name_.data(), 1, name_len, file) != name_len) {
        bpsim_fatal(path, ": truncated header name");
    }
    dataOffset = std::ftell(file);
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(BranchRecord &out)
{
    if (delivered >= count)
        return false;
    BranchRecord rec;
    std::uint8_t flags = 0;
    if (!getU64(file, rec.pc) || !getU64(file, rec.target) ||
        !getU32(file, rec.instGap) ||
        std::fread(&flags, 1, 1, file) != 1) {
        bpsim_fatal("trace file ", name_, " truncated: expected ", count,
                    " records, got ", delivered);
    }
    unpackFlags(flags, rec);
    out = rec;
    ++delivered;
    return true;
}

void
TraceReader::reset()
{
    if (std::fseek(file, dataOffset, SEEK_SET) != 0)
        bpsim_fatal("cannot rewind trace file ", name_);
    delivered = 0;
}

MemoryTrace
loadTrace(const std::string &path)
{
    TraceReader reader(path);
    MemoryTrace trace(reader.name());
    trace.appendAll(reader);
    return trace;
}

std::uint64_t
saveTrace(TraceSource &source, const std::string &path)
{
    TraceWriter writer(path, source.name());
    std::uint64_t n = writer.writeAll(source);
    writer.close();
    return n;
}

namespace {
// recordBytes documents the on-disk record size; keep it honest.
static_assert(recordBytes == 21, "record layout changed; bump version");
} // namespace

} // namespace bpsim

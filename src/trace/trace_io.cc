#include "trace/trace_io.hh"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace bpsim {

namespace {

constexpr std::array<unsigned char, 4> magic = {'B', 'P', 'T', '1'};
constexpr std::uint32_t formatVersion = 1;
constexpr std::size_t recordBytes = 8 + 8 + 4 + 1;
/** magic + version + record count + name length. */
constexpr std::size_t headerBytes = 4 + 4 + 8 + 4;
/** Offset of the record-count field patched by close(). */
constexpr std::uint64_t countOffset = 8;

void
encU32(unsigned char *b, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
encU64(unsigned char *b, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
decU32(const unsigned char *b)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

std::uint64_t
decU64(const unsigned char *b)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

void
encRecord(unsigned char *b, const BranchRecord &rec)
{
    encU64(b, rec.pc);
    encU64(b + 8, rec.target);
    encU32(b + 16, rec.instGap);
    auto flags = static_cast<std::uint8_t>(rec.type);
    if (rec.taken)
        flags |= 1u << 2;
    if (rec.kernel)
        flags |= 1u << 3;
    b[20] = flags;
}

void
decRecord(const unsigned char *b, BranchRecord &rec)
{
    rec.pc = decU64(b);
    rec.target = decU64(b + 8);
    rec.instGap = decU32(b + 16);
    std::uint8_t flags = b[20];
    rec.type = static_cast<BranchType>(flags & 0x3);
    rec.taken = (flags >> 2) & 1;
    rec.kernel = (flags >> 3) & 1;
}

// recordBytes documents the on-disk record size; keep it honest.
static_assert(recordBytes == 21, "record layout changed; bump version");

} // namespace

// --- TraceWriter -------------------------------------------------------

TraceWriter::TraceWriter(std::unique_ptr<ByteStream> stream)
    : stream_(std::move(stream))
{}

Result<TraceWriter>
TraceWriter::open(const std::string &path, const std::string &trace_name)
{
    auto stream = StdioFileStream::openWrite(path);
    if (!stream.ok())
        return stream.error();
    return open(std::move(stream).value(), trace_name);
}

Result<TraceWriter>
TraceWriter::open(std::unique_ptr<ByteStream> stream,
                  const std::string &trace_name)
{
    TraceWriter writer(std::move(stream));
    std::string header(headerBytes + trace_name.size(), '\0');
    auto *b = reinterpret_cast<unsigned char *>(header.data());
    std::memcpy(b, magic.data(), magic.size());
    encU32(b + 4, formatVersion);
    encU64(b + countOffset, 0); // patched by close()
    encU32(b + 16, static_cast<std::uint32_t>(trace_name.size()));
    std::memcpy(b + headerBytes, trace_name.data(), trace_name.size());
    if (writer.stream_->write(header.data(), header.size()) !=
        header.size()) {
        return BPSIM_ERROR("short write to trace file ",
                           writer.stream_->describe());
    }
    return Result<TraceWriter>(std::move(writer));
}

TraceWriter::~TraceWriter()
{
    if (stream_ && !closed_)
        static_cast<void>(close()); // best effort; call close() to observe errors
}

Status
TraceWriter::write(const BranchRecord &rec)
{
    bpsim_assert(stream_ && !closed_, "write() after close()");
    if (!error_.ok())
        return error_;
    unsigned char buf[recordBytes];
    encRecord(buf, rec);
    if (stream_->write(buf, recordBytes) != recordBytes) {
        error_ = BPSIM_ERROR("short write to trace file ",
                             stream_->describe());
        return error_;
    }
    ++count;
    return Status();
}

Result<std::uint64_t>
TraceWriter::writeAll(TraceSource &source)
{
    BranchRecord rec;
    std::uint64_t n = 0;
    while (source.next(rec)) {
        Status st = write(rec);
        if (!st.ok())
            return st.error();
        ++n;
    }
    return n;
}

Status
TraceWriter::close()
{
    if (!stream_ || closed_)
        return error_;
    closed_ = true;
    const std::string where = stream_->describe();
    if (error_.ok()) {
        unsigned char buf[8];
        encU64(buf, count);
        if (!stream_->seek(countOffset)) {
            error_ = BPSIM_ERROR("cannot seek in trace file ", where,
                                 " to patch header");
        } else if (stream_->write(buf, sizeof(buf)) != sizeof(buf)) {
            error_ = BPSIM_ERROR("cannot patch record count into "
                                 "trace file ", where);
        } else if (!stream_->flush()) {
            error_ = BPSIM_ERROR("cannot flush trace file ", where,
                                 " (disk full?)");
        }
    }
    if (!stream_->close() && error_.ok()) {
        error_ = BPSIM_ERROR("error closing trace file ", where,
                             " (disk full?)");
    }
    return error_;
}

// --- TraceReader -------------------------------------------------------

TraceReader::TraceReader(std::unique_ptr<ByteStream> stream)
    : stream_(std::move(stream))
{}

Result<TraceReader>
TraceReader::open(const std::string &path)
{
    auto stream = StdioFileStream::openRead(path);
    if (!stream.ok())
        return stream.error();
    return open(std::move(stream).value());
}

Result<TraceReader>
TraceReader::open(std::unique_ptr<ByteStream> stream)
{
    TraceReader reader(std::move(stream));
    Status st = reader.readHeader();
    if (!st.ok())
        return st.error();
    return Result<TraceReader>(std::move(reader));
}

Status
TraceReader::readHeader()
{
    const std::string &where = stream_->describe();

    std::array<unsigned char, 4> got{};
    if (stream_->read(got.data(), got.size()) != got.size() ||
        got != magic) {
        return BPSIM_ERROR(where,
                           " is not a .bpt trace file (bad magic)");
    }
    unsigned char hdr[headerBytes - 4];
    if (stream_->read(hdr, sizeof(hdr)) != sizeof(hdr))
        return BPSIM_ERROR(where, ": truncated header");
    std::uint32_t version = decU32(hdr);
    if (version != formatVersion) {
        return BPSIM_ERROR(where, ": unsupported trace format version ",
                           version);
    }
    count = decU64(hdr + 4);
    std::uint32_t name_len = decU32(hdr + 12);

    // Validate the attacker-controlled header fields against the
    // actual stream size BEFORE acting on them: name_len bounds the
    // name allocation, and the declared record count must account for
    // every remaining byte (so truncation, disk-full tails and count
    // tampering are all caught up front).
    std::uint64_t total = 0;
    if (!stream_->size(total) || total < headerBytes)
        return BPSIM_ERROR(where, ": cannot determine trace file size");
    std::uint64_t remaining = total - headerBytes;
    if (name_len > remaining) {
        return BPSIM_ERROR(where, ": header name length ", name_len,
                           " exceeds the ", remaining,
                           " bytes left in the file");
    }
    remaining -= name_len;
    if (remaining % recordBytes != 0 ||
        count != remaining / recordBytes) {
        return BPSIM_ERROR(where, ": header claims ", count,
                           " records but the file holds ", remaining,
                           " bytes of record data (",
                           count * recordBytes, " expected)");
    }

    name_.resize(name_len);
    if (name_len &&
        stream_->read(name_.data(), name_len) != name_len) {
        return BPSIM_ERROR(where, ": truncated header name");
    }
    dataOffset = headerBytes + name_len;
    return Status();
}

bool
TraceReader::next(BranchRecord &out)
{
    if (!error_.ok() || delivered >= count)
        return false;
    unsigned char buf[recordBytes];
    if (stream_->read(buf, recordBytes) != recordBytes) {
        error_ = BPSIM_ERROR("trace file ", stream_->describe(),
                             " truncated: expected ", count,
                             " records, got ", delivered);
        return false;
    }
    decRecord(buf, out);
    ++delivered;
    return true;
}

void
TraceReader::reset()
{
    if (!stream_->seek(dataOffset)) {
        error_ = BPSIM_ERROR("cannot rewind trace file ",
                             stream_->describe());
        return;
    }
    delivered = 0;
    error_ = Status(); // stream is back in a consistent state
}

// --- Convenience entry points ------------------------------------------

Result<MemoryTrace>
loadTrace(const std::string &path)
{
    auto reader = TraceReader::open(path);
    if (!reader.ok())
        return reader.error();
    MemoryTrace trace(reader.value().name());
    trace.appendAll(reader.value());
    if (!reader.value().status().ok())
        return reader.value().status().error();
    return trace;
}

Result<std::uint64_t>
saveTrace(TraceSource &source, const std::string &path)
{
    auto run = [&]() -> Result<std::uint64_t> {
        auto writer = TraceWriter::open(path, source.name());
        if (!writer.ok())
            return writer.error();
        auto n = writer.value().writeAll(source);
        if (!n.ok())
            return n.error();
        Status st = writer.value().close();
        if (!st.ok())
            return st.error();
        return n.value();
    };
    Result<std::uint64_t> result = run();
    if (!result.ok())
        std::remove(path.c_str()); // don't leave a truncated trace
    return result;
}

} // namespace bpsim

#include "trace/trace_filter.hh"

#include "common/logging.hh"

namespace bpsim {

FilteredTrace::FilteredTrace(TraceSource &source_, Filter filter_,
                             std::string name)
    : source(source_), filter(std::move(filter_)),
      name_(std::move(name))
{
    bpsim_assert(filter != nullptr, "filtered trace needs a predicate");
}

bool
FilteredTrace::next(BranchRecord &out)
{
    std::uint64_t accumulated_gap = 0;
    BranchRecord rec;
    while (source.next(rec)) {
        if (!filter(rec)) {
            // Fold the dropped record's instructions into the gap.
            accumulated_gap +=
                static_cast<std::uint64_t>(rec.instGap) + 1;
            ++dropped_;
            continue;
        }
        std::uint64_t gap = accumulated_gap + rec.instGap;
        rec.instGap = gap > 0xffffffffULL
                          ? 0xffffffffU
                          : static_cast<std::uint32_t>(gap);
        out = rec;
        return true;
    }
    return false;
}

void
FilteredTrace::reset()
{
    source.reset();
    dropped_ = 0;
}

FilteredTrace
userOnly(TraceSource &source)
{
    return FilteredTrace(
        source, [](const BranchRecord &r) { return !r.kernel; },
        source.name() + ".user");
}

FilteredTrace
kernelOnly(TraceSource &source)
{
    return FilteredTrace(
        source, [](const BranchRecord &r) { return r.kernel; },
        source.name() + ".kernel");
}

FilteredTrace
conditionalOnly(TraceSource &source)
{
    return FilteredTrace(
        source,
        [](const BranchRecord &r) { return r.isConditional(); },
        source.name() + ".cond");
}

WindowedTrace::WindowedTrace(TraceSource &source_, std::uint64_t skip_,
                             std::uint64_t limit_, std::string name)
    : source(source_), skip(skip_), limit(limit_),
      name_(std::move(name))
{
}

bool
WindowedTrace::next(BranchRecord &out)
{
    BranchRecord rec;
    while (skipped < skip) {
        if (!source.next(rec))
            return false;
        ++skipped;
    }
    if (limit != 0 && delivered >= limit)
        return false;
    if (!source.next(out))
        return false;
    ++delivered;
    return true;
}

void
WindowedTrace::reset()
{
    source.reset();
    skipped = 0;
    delivered = 0;
}

} // namespace bpsim

/**
 * @file
 * Plain-text branch-trace interchange format.
 *
 * One record per line, whitespace separated:
 *
 *     <pc-hex> <target-hex> <type> <dir> [gap] [K]
 *
 * where type is one of C (conditional), J (unconditional jump),
 * L (call), R (return); dir is T or N; gap is the optional count of
 * non-branch instructions since the previous record (default 0, max
 * UINT32_MAX); a trailing K marks a kernel-mode record.  Lines
 * starting with '#' and blank lines are ignored.
 *
 * The format exists so traces converted from other ecosystems
 * (ChampSim, Pin, SimpleScalar outputs) can be fed to the simulator
 * with a one-line awk script, and so test fixtures are human-writable.
 *
 * Imported text is untrusted input: all entry points return Result
 * (common/error.hh) with the offending file:line in the message
 * instead of exiting the process.
 */

#ifndef BPSIM_TRACE_TEXT_TRACE_HH
#define BPSIM_TRACE_TEXT_TRACE_HH

#include <string>

#include "common/error.hh"
#include "trace/memory_trace.hh"

namespace bpsim {

/**
 * Parse a text trace file into memory.  Errors carry the file name and
 * line number of the first malformed record.
 */
Result<MemoryTrace> importTextTrace(const std::string &path);

/** Parse text trace content from a string (tests, embedding). */
Result<MemoryTrace>
importTextTraceString(const std::string &content,
                      const std::string &name = "text");

/** Write @p source to @p path in the text format; @return records. */
Result<std::uint64_t> exportTextTrace(TraceSource &source,
                                      const std::string &path);

/** Render one record as a text-format line (no trailing newline). */
std::string formatTextRecord(const BranchRecord &rec);

} // namespace bpsim

#endif // BPSIM_TRACE_TEXT_TRACE_HH

#include "trace/text_trace.hh"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

namespace {

/** Map the one-letter type code; returns false on unknown codes. */
bool
typeFromCode(char code, BranchType &out)
{
    switch (code) {
      case 'C': out = BranchType::Conditional; return true;
      case 'J': out = BranchType::Unconditional; return true;
      case 'L': out = BranchType::Call; return true;
      case 'R': out = BranchType::Return; return true;
    }
    return false;
}

char
codeFromType(BranchType type)
{
    switch (type) {
      case BranchType::Conditional: return 'C';
      case BranchType::Unconditional: return 'J';
      case BranchType::Call: return 'L';
      case BranchType::Return: return 'R';
    }
    return '?';
}

/**
 * Parse one non-comment line; fatal() mentioning @p where and
 * @p line_no on malformed fields.
 */
BranchRecord
parseLine(const std::string &line, const std::string &where,
          std::size_t line_no)
{
    std::istringstream in(line);
    std::string pc_text, target_text, type_text, dir_text;
    if (!(in >> pc_text >> target_text >> type_text >> dir_text)) {
        bpsim_fatal(where, ":", line_no,
                    ": expected 'pc target type dir'");
    }

    BranchRecord rec;
    char *end = nullptr;
    rec.pc = std::strtoull(pc_text.c_str(), &end, 16);
    if (end == pc_text.c_str() || *end != '\0')
        bpsim_fatal(where, ":", line_no, ": bad pc '", pc_text, "'");
    rec.target = std::strtoull(target_text.c_str(), &end, 16);
    if (end == target_text.c_str() || *end != '\0')
        bpsim_fatal(where, ":", line_no, ": bad target '", target_text,
                    "'");

    if (type_text.size() != 1 ||
        !typeFromCode(type_text[0], rec.type)) {
        bpsim_fatal(where, ":", line_no, ": bad type '", type_text,
                    "' (expected C, J, L or R)");
    }
    if (dir_text == "T") {
        rec.taken = true;
    } else if (dir_text == "N") {
        rec.taken = false;
    } else {
        bpsim_fatal(where, ":", line_no, ": bad direction '", dir_text,
                    "' (expected T or N)");
    }
    if (!rec.isConditional() && !rec.taken)
        bpsim_fatal(where, ":", line_no,
                    ": non-conditional records must be taken");

    // Optional fields: a decimal gap and/or a trailing K, in order.
    std::string extra;
    while (in >> extra) {
        if (extra == "K") {
            rec.kernel = true;
        } else {
            unsigned long gap = std::strtoul(extra.c_str(), &end, 10);
            if (end == extra.c_str() || *end != '\0')
                bpsim_fatal(where, ":", line_no, ": bad field '",
                            extra, "'");
            rec.instGap = static_cast<std::uint32_t>(gap);
        }
    }
    return rec;
}

MemoryTrace
importFromStream(std::istream &in, const std::string &where,
                 const std::string &name)
{
    MemoryTrace trace(name);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip leading whitespace; skip blanks and comments.
        std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        trace.append(parseLine(line.substr(start), where, line_no));
    }
    return trace;
}

} // namespace

MemoryTrace
importTextTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        bpsim_fatal("cannot open text trace ", path);
    // Stream name: file basename without extension.
    std::string name = path;
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    auto dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name = name.substr(0, dot);
    return importFromStream(in, path, name);
}

MemoryTrace
importTextTraceString(const std::string &content,
                      const std::string &name)
{
    std::istringstream in(content);
    return importFromStream(in, "<string>", name);
}

std::string
formatTextRecord(const BranchRecord &rec)
{
    char buf[96];
    int n = std::snprintf(buf, sizeof(buf), "%llx %llx %c %c",
                          static_cast<unsigned long long>(rec.pc),
                          static_cast<unsigned long long>(rec.target),
                          codeFromType(rec.type),
                          rec.taken ? 'T' : 'N');
    std::string out(buf, static_cast<std::size_t>(n));
    if (rec.instGap) {
        std::snprintf(buf, sizeof(buf), " %u", rec.instGap);
        out += buf;
    }
    if (rec.kernel)
        out += " K";
    return out;
}

std::uint64_t
exportTextTrace(TraceSource &source, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        bpsim_fatal("cannot create text trace ", path);
    out << "# bpsim text trace: " << source.name() << "\n";
    out << "# pc target type(C/J/L/R) dir(T/N) [gap] [K]\n";
    BranchRecord rec;
    std::uint64_t n = 0;
    while (source.next(rec)) {
        out << formatTextRecord(rec) << "\n";
        ++n;
    }
    if (!out)
        bpsim_fatal("short write to text trace ", path);
    return n;
}

} // namespace bpsim

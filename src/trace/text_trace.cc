#include "trace/text_trace.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace bpsim {

namespace {

/** Map the one-letter type code; returns false on unknown codes. */
bool
typeFromCode(char code, BranchType &out)
{
    switch (code) {
      case 'C': out = BranchType::Conditional; return true;
      case 'J': out = BranchType::Unconditional; return true;
      case 'L': out = BranchType::Call; return true;
      case 'R': out = BranchType::Return; return true;
    }
    return false;
}

char
codeFromType(BranchType type)
{
    switch (type) {
      case BranchType::Conditional: return 'C';
      case BranchType::Unconditional: return 'J';
      case BranchType::Call: return 'L';
      case BranchType::Return: return 'R';
    }
    return '?';
}

/**
 * Parse an unsigned 64-bit field.  strtoull silently wraps negative
 * inputs ("-5" parses as 2^64-5) and clamps overflow, so both are
 * rejected explicitly here.
 */
bool
parseU64(const std::string &text, int base, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, base);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

/**
 * Parse one non-comment line; errors mention @p where and @p line_no.
 */
Result<BranchRecord>
parseLine(const std::string &line, const std::string &where,
          std::size_t line_no)
{
    std::istringstream in(line);
    std::string pc_text, target_text, type_text, dir_text;
    if (!(in >> pc_text >> target_text >> type_text >> dir_text)) {
        return BPSIM_ERROR(where, ":", line_no,
                           ": expected 'pc target type dir'");
    }

    BranchRecord rec;
    if (!parseU64(pc_text, 16, rec.pc))
        return BPSIM_ERROR(where, ":", line_no, ": bad pc '", pc_text,
                           "'");
    if (!parseU64(target_text, 16, rec.target)) {
        return BPSIM_ERROR(where, ":", line_no, ": bad target '",
                           target_text, "'");
    }

    if (type_text.size() != 1 ||
        !typeFromCode(type_text[0], rec.type)) {
        return BPSIM_ERROR(where, ":", line_no, ": bad type '",
                           type_text, "' (expected C, J, L or R)");
    }
    if (dir_text == "T") {
        rec.taken = true;
    } else if (dir_text == "N") {
        rec.taken = false;
    } else {
        return BPSIM_ERROR(where, ":", line_no, ": bad direction '",
                           dir_text, "' (expected T or N)");
    }
    if (!rec.isConditional() && !rec.taken) {
        return BPSIM_ERROR(where, ":", line_no,
                           ": non-conditional records must be taken");
    }

    // Optional fields: a decimal gap and/or a trailing K, in order.
    std::string extra;
    while (in >> extra) {
        if (extra == "K") {
            rec.kernel = true;
        } else {
            std::uint64_t gap = 0;
            if (!parseU64(extra, 10, gap)) {
                return BPSIM_ERROR(where, ":", line_no, ": bad field '",
                                   extra, "'");
            }
            if (gap > std::numeric_limits<std::uint32_t>::max()) {
                return BPSIM_ERROR(where, ":", line_no, ": gap ", extra,
                                   " exceeds the maximum of ",
                                   std::numeric_limits<
                                       std::uint32_t>::max());
            }
            rec.instGap = static_cast<std::uint32_t>(gap);
        }
    }
    return rec;
}

Result<MemoryTrace>
importFromStream(std::istream &in, const std::string &where,
                 const std::string &name)
{
    MemoryTrace trace(name);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip leading whitespace; skip blanks and comments.
        std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        auto rec = parseLine(line.substr(start), where, line_no);
        if (!rec.ok())
            return rec.error();
        trace.append(rec.value());
    }
    return trace;
}

} // namespace

Result<MemoryTrace>
importTextTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return BPSIM_ERROR("cannot open text trace ", path);
    // Stream name: file basename without extension.
    std::string name = path;
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    auto dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name = name.substr(0, dot);
    return importFromStream(in, path, name);
}

Result<MemoryTrace>
importTextTraceString(const std::string &content,
                      const std::string &name)
{
    std::istringstream in(content);
    return importFromStream(in, "<string>", name);
}

std::string
formatTextRecord(const BranchRecord &rec)
{
    char buf[96];
    int n = std::snprintf(buf, sizeof(buf), "%llx %llx %c %c",
                          static_cast<unsigned long long>(rec.pc),
                          static_cast<unsigned long long>(rec.target),
                          codeFromType(rec.type),
                          rec.taken ? 'T' : 'N');
    std::string out(buf, static_cast<std::size_t>(n));
    if (rec.instGap) {
        std::snprintf(buf, sizeof(buf), " %u", rec.instGap);
        out += buf;
    }
    if (rec.kernel)
        out += " K";
    return out;
}

Result<std::uint64_t>
exportTextTrace(TraceSource &source, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return BPSIM_ERROR("cannot create text trace ", path);
    out << "# bpsim text trace: " << source.name() << "\n";
    out << "# pc target type(C/J/L/R) dir(T/N) [gap] [K]\n";
    BranchRecord rec;
    std::uint64_t n = 0;
    while (source.next(rec)) {
        out << formatTextRecord(rec) << "\n";
        ++n;
    }
    out.flush();
    if (!out) {
        std::remove(path.c_str()); // don't leave a truncated trace
        return BPSIM_ERROR("short write to text trace ", path);
    }
    return n;
}

} // namespace bpsim

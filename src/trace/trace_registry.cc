#include "trace/trace_registry.hh"

#include "trace/trace_io.hh"

namespace bpsim {

TraceHandle
TraceRegistry::internTrace(MemoryTrace trace)
{
    const TraceHash hash = traceHash(trace);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = traces_.find(hash);
    if (it != traces_.end()) {
        ++hits_;
        return TraceHandle{hash, it->second};
    }
    ++misses_;
    auto shared =
        std::make_shared<const MemoryTrace>(std::move(trace));
    traces_.emplace(hash, shared);
    return TraceHandle{hash, std::move(shared)};
}

TraceHandle
TraceRegistry::internSynthetic(
    const TraceHash &key,
    const std::function<MemoryTrace()> &generate)
{
    // The lock is held across generation: a second intern of the same
    // key must wait rather than generate the same bytes again.  Sweep
    // execution never runs under this lock, so the serialisation cost
    // is one trace build per distinct key per session.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = traces_.find(key);
    if (it != traces_.end()) {
        ++hits_;
        return TraceHandle{key, it->second};
    }
    ++misses_;
    auto shared = std::make_shared<const MemoryTrace>(generate());
    traces_.emplace(key, shared);
    return TraceHandle{key, std::move(shared)};
}

Result<TraceHandle>
TraceRegistry::internFile(const std::string &path)
{
    Result<MemoryTrace> loaded = loadTrace(path);
    if (!loaded.ok())
        return loaded.error();
    return internTrace(std::move(loaded).value());
}

TraceHandle
TraceRegistry::lookup(const TraceHash &hash) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = traces_.find(hash);
    if (it == traces_.end())
        return TraceHandle{};
    return TraceHandle{hash, it->second};
}

bool
TraceRegistry::evict(const TraceHash &hash)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return traces_.erase(hash) > 0;
}

std::size_t
TraceRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return traces_.size();
}

std::uint64_t
TraceRegistry::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
TraceRegistry::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
TraceRegistry::residentRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &entry : traces_)
        total += entry.second->size();
    return total;
}

} // namespace bpsim

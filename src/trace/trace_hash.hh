/**
 * @file
 * Canonical content hashing for branch traces.
 *
 * The session-oriented engine core (DESIGN.md "Session core") keys
 * everything -- interned traces, persistent sweep results -- by a
 * 128-bit content hash.  Two requirements shape the implementation:
 *
 *  - **Endianness stability.**  The hash is defined over the logical
 *    field values of each record (pc, target, instGap, flags), fed to
 *    the mixer as integers, never over raw struct memory.  The same
 *    trace therefore hashes identically on any host, and a .bpt file
 *    converted on a big-endian machine interns to the same key.
 *
 *  - **Pinned stability over time.**  A silent change to the hash
 *    function would split the persistent result cache: every old entry
 *    would miss and be recomputed under a new key, wasting the cache
 *    without ever producing a wrong answer -- expensive and invisible.
 *    tests/test_trace_hash.cc commits golden hash values for the seed
 *    profiles so an accidental change fails tier-1 instead.
 *
 * Synthetic traces additionally get a *generator key*: a hash over the
 * WorkloadParams that produce them (workload/trace_key.hh).  Generation
 * is deterministic, so the generator key identifies the trace content
 * without materializing it; the two key spaces carry distinct domain
 * tags and cannot collide with each other.
 */

#ifndef BPSIM_TRACE_TRACE_HASH_HH
#define BPSIM_TRACE_TRACE_HASH_HH

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "trace/memory_trace.hh"

namespace bpsim {

/** A 128-bit content digest; the key of the trace/result registries. */
struct TraceHash
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool
    operator==(const TraceHash &other) const
    {
        return hi == other.hi && lo == other.lo;
    }
    bool operator!=(const TraceHash &other) const
    {
        return !(*this == other);
    }
    bool
    operator<(const TraceHash &other) const
    {
        return hi != other.hi ? hi < other.hi : lo < other.lo;
    }

    /** True for the default-constructed (never-assigned) hash. */
    bool isNull() const { return hi == 0 && lo == 0; }

    /** 32 lowercase hex digits, hi half first. */
    std::string hex() const;

    /** Parse the hex() rendering back; errors on malformed input. */
    static Result<TraceHash> parse(const std::string &text);
};

/**
 * Streaming 128-bit mixer behind every hash in the registry/cache
 * stack.  Inputs are absorbed as integer values (strings as explicit
 * little-endian byte packing), so digests are independent of host
 * endianness and struct layout.  Not cryptographic: the threat model
 * is accidental collision/corruption, not an adversary.
 */
class HashStream
{
  public:
    /** @param domain tag separating key spaces (content vs generator). */
    explicit HashStream(const std::string &domain);

    void u8(std::uint8_t v) { absorb(v); }
    void u32(std::uint32_t v) { absorb(v); }
    void u64(std::uint64_t v) { absorb(v); }
    /** Doubles hash by bit pattern; -0.0 normalizes to 0.0. */
    void f64(double v);
    /** Length-prefixed, so "ab"+"c" never collides with "a"+"bc". */
    void str(const std::string &s);

    /** Digest of everything absorbed so far (absorbing may continue). */
    TraceHash digest() const;

  private:
    void absorb(std::uint64_t v);

    std::uint64_t a_;
    std::uint64_t b_;
    std::uint64_t words_ = 0;
};

/**
 * Content hash of a materialised trace: every record's (pc, target,
 * instGap, type, taken, kernel), in order, plus the record count.  The
 * trace *name* is deliberately excluded -- identical content under two
 * names is the same trace.
 */
TraceHash traceHash(const MemoryTrace &trace);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_HASH_HH

/**
 * @file
 * Binary branch-trace file format (".bpt").
 *
 * Layout (little-endian):
 *   header: magic "BPT1" (4 bytes), format version u32,
 *           record count u64, name length u32, name bytes
 *   record: pc u64, target u64, instGap u32, flags u8
 *           flags: bits [1:0] BranchType, bit 2 taken, bit 3 kernel
 *
 * The format exists so the trace_tool example can persist synthetic
 * workloads and so downstream users can feed their own traces (e.g.
 * converted from ChampSim or Pin output) into the simulator.
 */

#ifndef BPSIM_TRACE_TRACE_IO_HH
#define BPSIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/memory_trace.hh"
#include "trace/trace_source.hh"

namespace bpsim {

/** Streaming writer for .bpt trace files. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.  fatal() when the
     * file cannot be created.
     * @param trace_name embedded stream name
     */
    TraceWriter(const std::string &path, const std::string &trace_name);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const BranchRecord &rec);

    /** Drain @p source to the file; @return records written. */
    std::uint64_t writeAll(TraceSource &source);

    /** Patch the record count into the header and close the file. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::FILE *file;
    std::uint64_t count = 0;
    long countOffset = 0;
};

/**
 * Streaming reader for .bpt trace files; a TraceSource whose reset()
 * seeks back to the first record.
 */
class TraceReader : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing file or bad header. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(BranchRecord &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

    /** Record count promised by the header. */
    std::uint64_t recordCount() const { return count; }

  private:
    std::FILE *file;
    std::string name_;
    std::uint64_t count = 0;
    std::uint64_t delivered = 0;
    long dataOffset = 0;
};

/** Convenience: load an entire .bpt file into memory. */
MemoryTrace loadTrace(const std::string &path);

/** Convenience: write an entire source to @p path. */
std::uint64_t saveTrace(TraceSource &source, const std::string &path);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_IO_HH

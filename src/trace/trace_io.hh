/**
 * @file
 * Binary branch-trace file format (".bpt").
 *
 * Layout (little-endian):
 *   header: magic "BPT1" (4 bytes), format version u32,
 *           record count u64, name length u32, name bytes
 *   record: pc u64, target u64, instGap u32, flags u8
 *           flags: bits [1:0] BranchType, bit 2 taken, bit 3 kernel
 *
 * The format exists so the trace_tool example can persist synthetic
 * workloads and so downstream users can feed their own traces (e.g.
 * converted from ChampSim or Pin output) into the simulator.
 *
 * Trace files cross a trust boundary: they arrive from disk, converted
 * by external tools, possibly truncated or corrupted.  All entry
 * points therefore return Result/Status (common/error.hh) instead of
 * exiting, and the reader validates every header field against the
 * actual stream size before allocating anything -- a corrupt header
 * yields a structured Error, never an oversized allocation.  The
 * corruption fuzzer in verify/fault_injection.hh pins this contract.
 */

#ifndef BPSIM_TRACE_TRACE_IO_HH
#define BPSIM_TRACE_TRACE_IO_HH

#include <memory>
#include <string>

#include "common/byte_io.hh"
#include "common/error.hh"
#include "trace/memory_trace.hh"
#include "trace/trace_source.hh"

namespace bpsim {

/** Streaming writer for .bpt trace files. */
class TraceWriter
{
  public:
    /**
     * Create @p path and emit the header.  Errors when the file
     * cannot be created or the header write fails.
     * @param trace_name embedded stream name
     */
    static Result<TraceWriter> open(const std::string &path,
                                    const std::string &trace_name);

    /** Write to an arbitrary stream (tests, fault injection). */
    static Result<TraceWriter> open(std::unique_ptr<ByteStream> stream,
                                    const std::string &trace_name);

    /** Best-effort close; call close() first to observe errors. */
    ~TraceWriter();

    TraceWriter(TraceWriter &&) = default;
    TraceWriter &operator=(TraceWriter &&) = default;
    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /**
     * Append one record.  Once a write fails the error is sticky:
     * every later write() and the final close() report it.
     */
    Status write(const BranchRecord &rec);

    /** Drain @p source to the file; @return records written. */
    Result<std::uint64_t> writeAll(TraceSource &source);

    /**
     * Patch the record count into the header, flush, and close the
     * stream.  Errors when any buffered byte could not be committed
     * (disk full, I/O error) -- a "successful" close guarantees the
     * file on disk is complete and self-consistent.
     */
    Status close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    explicit TraceWriter(std::unique_ptr<ByteStream> stream);

    std::unique_ptr<ByteStream> stream_;
    std::uint64_t count = 0;
    bool closed_ = false;
    Status error_;
};

/**
 * Streaming reader for .bpt trace files; a TraceSource whose reset()
 * seeks back to the first record.
 *
 * next() returns false at end-of-stream OR when an I/O error occurs
 * mid-stream; callers that ingest untrusted files must check status()
 * after draining (loadTrace does).  Header problems are caught
 * eagerly by open().
 */
class TraceReader : public TraceSource
{
  public:
    /** Open @p path; errors on missing file or invalid header. */
    static Result<TraceReader> open(const std::string &path);

    /** Read from an arbitrary stream (tests, fault injection). */
    static Result<TraceReader> open(std::unique_ptr<ByteStream> stream);

    TraceReader(TraceReader &&) = default;
    TraceReader &operator=(TraceReader &&) = default;
    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(BranchRecord &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

    /** Record count promised by the (validated) header. */
    std::uint64_t recordCount() const { return count; }

    /** Sticky ingestion error; success while the stream is healthy. */
    const Status &status() const { return error_; }

  private:
    explicit TraceReader(std::unique_ptr<ByteStream> stream);

    Status readHeader();

    std::unique_ptr<ByteStream> stream_;
    std::string name_;
    std::uint64_t count = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dataOffset = 0;
    Status error_;
};

/** Convenience: load and validate an entire .bpt file into memory. */
Result<MemoryTrace> loadTrace(const std::string &path);

/**
 * Convenience: write an entire source to @p path; the partial file is
 * removed on error.  @return records written.
 */
Result<std::uint64_t> saveTrace(TraceSource &source,
                                const std::string &path);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_IO_HH

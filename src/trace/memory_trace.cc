#include "trace/memory_trace.hh"

#include "common/logging.hh"

namespace bpsim {

MemoryTrace::MemoryTrace(std::string name)
    : name_(std::move(name))
{
}

void
MemoryTrace::append(const BranchRecord &rec)
{
    records.push_back(rec);
    if (rec.isConditional())
        ++conditionals;
}

void
MemoryTrace::appendAll(TraceSource &source)
{
    BranchRecord rec;
    while (source.next(rec))
        append(rec);
}

const BranchRecord &
MemoryTrace::operator[](std::size_t i) const
{
    bpsim_assert(i < records.size(), "trace index ", i, " out of range ",
                 records.size());
    return records[i];
}

bool
MemoryTrace::next(BranchRecord &out)
{
    if (cursor >= records.size())
        return false;
    out = records[cursor++];
    return true;
}

void
MemoryTrace::clear()
{
    records.clear();
    conditionals = 0;
    cursor = 0;
}

} // namespace bpsim

/**
 * @file
 * Trace-stream filters and transforms.
 *
 * The paper's methodology needs several stream manipulations: IBS traces
 * mix user and kernel records (Section 2 discusses their separability),
 * warm-up instances are sometimes excluded, and studies routinely window
 * long traces.  These adaptors wrap any TraceSource without copying it.
 */

#ifndef BPSIM_TRACE_TRACE_FILTER_HH
#define BPSIM_TRACE_TRACE_FILTER_HH

#include <functional>
#include <string>

#include "trace/trace_source.hh"

namespace bpsim {

/** Stream adaptor passing through only records matching a predicate. */
class FilteredTrace : public TraceSource
{
  public:
    using Filter = std::function<bool(const BranchRecord &)>;

    /**
     * @param source underlying stream (not owned; must outlive this)
     * @param filter keep-predicate over records
     * @param name display name for the filtered stream
     *
     * Dropped records contribute their instructions (instGap + 1) to
     * the gap of the next surviving record, so dynamic instruction
     * counts stay consistent.
     */
    FilteredTrace(TraceSource &source, Filter filter, std::string name);

    bool next(BranchRecord &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

    /** Records dropped so far (since construction or reset). */
    std::uint64_t dropped() const { return dropped_; }

  private:
    TraceSource &source;
    Filter filter;
    std::string name_;
    std::uint64_t dropped_ = 0;
};

/** Keep only user-mode records (strip the IBS kernel component). */
FilteredTrace userOnly(TraceSource &source);

/** Keep only kernel-mode records. */
FilteredTrace kernelOnly(TraceSource &source);

/** Keep only conditional branches. */
FilteredTrace conditionalOnly(TraceSource &source);

/**
 * Stream adaptor exposing a window of the underlying stream: skip the
 * first @p skip records (warm-up), then deliver at most @p limit
 * records (0 = unlimited).
 */
class WindowedTrace : public TraceSource
{
  public:
    WindowedTrace(TraceSource &source, std::uint64_t skip,
                  std::uint64_t limit, std::string name = "window");

    bool next(BranchRecord &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

  private:
    TraceSource &source;
    std::uint64_t skip;
    std::uint64_t limit;
    std::string name_;
    std::uint64_t skipped = 0;
    std::uint64_t delivered = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_FILTER_HH

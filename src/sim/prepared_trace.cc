#include "sim/prepared_trace.hh"

#include <unordered_map>

#include "common/history_register.hh"
#include "common/logging.hh"

namespace bpsim {

PreparedTrace::PreparedTrace(const MemoryTrace &trace,
                             bool need_path_history)
    : name_(trace.name())
{
    std::size_t n = trace.conditionalCount();
    pcs.reserve(n);
    wordBits_.reserve(n);
    if (need_path_history)
        succBits_.reserve(n);
    takenBits_.reserve(n / 64 + 1);
    ghist.reserve(n);
    shist.reserve(n);

    std::uint64_t global = 0;
    std::unordered_map<Addr, std::uint64_t> self;
    self.reserve(n / 64 + 16);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &rec = trace[i];
        if (!rec.isConditional())
            continue;
        const std::size_t k = pcs.size();
        pcs.push_back(rec.pc);
        wordBits_.push_back(static_cast<std::uint16_t>(
            bits(wordIndex(rec.pc), 16)));
        if (need_path_history) {
            // The successor already folds in the outcome, so the path
            // column replaces the full 8-byte target address with the
            // only bits pathHistoryStream can ever shift in.
            const Addr successor = rec.taken ? rec.target : rec.pc + 4;
            succBits_.push_back(static_cast<std::uint16_t>(
                bits(wordIndex(successor), 16)));
        }
        if ((k & 63) == 0)
            takenBits_.push_back(0);
        if (rec.taken)
            takenBits_.back() |= std::uint64_t{1} << (k & 63);

        ghist.push_back(global);
        global = (global << 1) | (rec.taken ? 1u : 0u);

        std::uint64_t &h = self[rec.pc];
        shist.push_back(h);
        h = (h << 1) | (rec.taken ? 1u : 0u);
    }
}

double
PreparedTrace::bytesPerBranch() const
{
    if (size() == 0)
        return 0.0;
    const std::size_t bytes = pcs.size() * sizeof(Addr) +
        wordBits_.size() * sizeof(std::uint16_t) +
        succBits_.size() * sizeof(std::uint16_t) +
        takenBits_.size() * sizeof(std::uint64_t) +
        ghist.size() * sizeof(std::uint64_t) +
        shist.size() * sizeof(std::uint64_t);
    return static_cast<double>(bytes) / static_cast<double>(size());
}

std::vector<std::uint64_t>
PreparedTrace::pathHistoryStream(unsigned bits_per_target) const
{
    bpsim_assert(bits_per_target >= 1 && bits_per_target <= 16,
                 "bits per target out of range");
    bpsim_assert(hasPathColumn(),
                 "trace was prepared without the path column");
    std::vector<std::uint64_t> out;
    out.reserve(size());
    std::uint64_t reg = 0;
    for (std::size_t i = 0; i < size(); ++i) {
        out.push_back(reg);
        reg = (reg << bits_per_target) |
            bits(succBits_[i], bits_per_target);
    }
    return out;
}

std::vector<std::uint64_t>
PreparedTrace::bhtHistoryStream(std::size_t entries, unsigned assoc,
                                unsigned history_bits,
                                double *miss_rate_out,
                                BhtResetPolicy policy) const
{
    SetAssocBht bht(entries, assoc, history_bits, policy);
    std::vector<std::uint64_t> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) {
        out.push_back(bht.visit(pcs[i]).history);
        bht.recordOutcome(pcs[i], taken(i));
    }
    if (miss_rate_out)
        *miss_rate_out = bht.missRate();
    return out;
}

} // namespace bpsim

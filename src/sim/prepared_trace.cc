#include "sim/prepared_trace.hh"

#include <unordered_map>

#include "common/history_register.hh"
#include "common/logging.hh"

namespace bpsim {

PreparedTrace::PreparedTrace(const MemoryTrace &trace)
    : name_(trace.name())
{
    std::size_t n = trace.conditionalCount();
    pcs.reserve(n);
    targets.reserve(n);
    takens.reserve(n);
    ghist.reserve(n);
    shist.reserve(n);

    std::uint64_t global = 0;
    std::unordered_map<Addr, std::uint64_t> self;
    self.reserve(n / 64 + 16);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &rec = trace[i];
        if (!rec.isConditional())
            continue;
        pcs.push_back(rec.pc);
        targets.push_back(rec.target);
        takens.push_back(rec.taken ? 1 : 0);

        ghist.push_back(global);
        global = (global << 1) | (rec.taken ? 1u : 0u);

        std::uint64_t &h = self[rec.pc];
        shist.push_back(h);
        h = (h << 1) | (rec.taken ? 1u : 0u);
    }
}

std::vector<std::uint64_t>
PreparedTrace::pathHistoryStream(unsigned bits_per_target) const
{
    bpsim_assert(bits_per_target >= 1 && bits_per_target <= 16,
                 "bits per target out of range");
    std::vector<std::uint64_t> out;
    out.reserve(size());
    std::uint64_t reg = 0;
    for (std::size_t i = 0; i < size(); ++i) {
        out.push_back(reg);
        Addr successor = takens[i] ? targets[i] : pcs[i] + 4;
        reg = (reg << bits_per_target) |
            bits(wordIndex(successor), bits_per_target);
    }
    return out;
}

std::vector<std::uint64_t>
PreparedTrace::bhtHistoryStream(std::size_t entries, unsigned assoc,
                                unsigned history_bits,
                                double *miss_rate_out,
                                BhtResetPolicy policy) const
{
    SetAssocBht bht(entries, assoc, history_bits, policy);
    std::vector<std::uint64_t> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) {
        out.push_back(bht.visit(pcs[i]).history);
        bht.recordOutcome(pcs[i], takens[i] != 0);
    }
    if (miss_rate_out)
        *miss_rate_out = bht.missRate();
    return out;
}

} // namespace bpsim

/**
 * @file
 * Sweep-optimised trace representation.
 *
 * The figure experiments replay the same trace through hundreds of
 * predictor configurations.  All first-level state evolves identically
 * regardless of the second-level configuration, so it can be computed
 * once per trace (or once per first-level configuration) and shared:
 *
 *  - the global outcome history before each branch (GAg/GAs/gshare rows
 *    for every r come from masking one 64-bit stream);
 *  - the path-history register before each branch (per bits-per-target);
 *  - the per-branch self history before each branch (perfect first
 *    level: one stream serves every row width, since narrower registers
 *    are the low bits of wider ones);
 *  - finite-BHT self history (per BHT configuration and row width,
 *    because the 0xC3FF reset prefix differs by width).
 *
 * A test (test_sweep_equivalence) pins the equivalence between this fast
 * path and the online TwoLevelPredictor.
 */

#ifndef BPSIM_SIM_PREPARED_TRACE_HH
#define BPSIM_SIM_PREPARED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "predictor/bht.hh"
#include "trace/memory_trace.hh"

namespace bpsim {

/** Conditional-branch columns of a trace plus precomputed histories. */
class PreparedTrace
{
  public:
    /** Extract and precompute from a materialised trace. */
    explicit PreparedTrace(const MemoryTrace &trace);

    const std::string &name() const { return name_; }
    /** Number of conditional branch instances. */
    std::size_t size() const { return pcs.size(); }

    /** Branch address of conditional instance @p i. */
    Addr pc(std::size_t i) const { return pcs[i]; }
    /** Outcome of conditional instance @p i. */
    bool taken(std::size_t i) const { return takens[i] != 0; }
    /** Global outcome history BEFORE instance @p i (bit 0 newest). */
    std::uint64_t globalHistory(std::size_t i) const { return ghist[i]; }
    /** Perfect per-branch self history BEFORE instance @p i. */
    std::uint64_t selfHistory(std::size_t i) const { return shist[i]; }

    /**
     * Path-history register value before each instance, shifting
     * @p bits_per_target successor-address bits per branch.
     */
    std::vector<std::uint64_t>
    pathHistoryStream(unsigned bits_per_target) const;

    /**
     * Self-history stream through a finite BHT.
     * @param entries BHT entries (power of two)
     * @param assoc associativity
     * @param history_bits register width (0xC3FF prefix length)
     * @param miss_rate_out when non-null, receives the BHT miss rate
     */
    std::vector<std::uint64_t>
    bhtHistoryStream(std::size_t entries, unsigned assoc,
                     unsigned history_bits,
                     double *miss_rate_out = nullptr,
                     BhtResetPolicy policy =
                         BhtResetPolicy::C3ffPrefix) const;

  private:
    std::string name_;
    std::vector<Addr> pcs;
    std::vector<Addr> targets;
    std::vector<std::uint8_t> takens;
    std::vector<std::uint64_t> ghist;
    std::vector<std::uint64_t> shist;
};

} // namespace bpsim

#endif // BPSIM_SIM_PREPARED_TRACE_HH

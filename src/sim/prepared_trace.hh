/**
 * @file
 * Sweep-optimised trace representation.
 *
 * The figure experiments replay the same trace through hundreds of
 * predictor configurations.  All first-level state evolves identically
 * regardless of the second-level configuration, so it can be computed
 * once per trace (or once per first-level configuration) and shared:
 *
 *  - the global outcome history before each branch (GAg/GAs/gshare rows
 *    for every r come from masking one 64-bit stream);
 *  - the path-history register before each branch (per bits-per-target);
 *  - the per-branch self history before each branch (perfect first
 *    level: one stream serves every row width, since narrower registers
 *    are the low bits of wider ones);
 *  - finite-BHT self history (per BHT configuration and row width,
 *    because the 0xC3FF reset prefix differs by width).
 *
 * Column layout is sized for replay throughput: outcomes are a packed
 * bit stream (one bit per branch, consumed 64 branches at a time by the
 * fused kernel), the fused narrow decode reads a 2-byte word-index
 * column (wordBits) instead of the 8-byte pc column, and the
 * path-history column stores only the low 16 successor word-index bits
 * per branch (pathHistoryStream never shifts in more -- bits_per_target
 * is capped at 16) instead of full 8-byte target addresses.
 * bytesPerBranch() reports the resulting resident footprint so tests
 * can pin it.
 *
 * A test (test_sweep_equivalence) pins the equivalence between this fast
 * path and the online TwoLevelPredictor.
 */

#ifndef BPSIM_SIM_PREPARED_TRACE_HH
#define BPSIM_SIM_PREPARED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "predictor/bht.hh"
#include "trace/memory_trace.hh"

namespace bpsim {

/** Conditional-branch columns of a trace plus precomputed histories. */
class PreparedTrace
{
  public:
    /**
     * Extract and precompute from a materialised trace.
     * @param need_path_history keep the 2-byte successor-bits column
     *        that feeds pathHistoryStream (only Nair path-scheme
     *        groups consume it); pass false to drop it when no lane
     *        needs path history.
     */
    explicit PreparedTrace(const MemoryTrace &trace,
                           bool need_path_history = true);

    const std::string &name() const { return name_; }
    /** Number of conditional branch instances. */
    std::size_t size() const { return pcs.size(); }

    /** Branch address of conditional instance @p i. */
    Addr pc(std::size_t i) const { return pcs[i]; }

    /**
     * Low 16 bits of wordIndex(pc(i)), as a 2-byte column.  The fused
     * kernel's narrow decode masks the column index to 15 bits anyway,
     * so reading this instead of the 8-byte pc column cuts the decode
     * traffic per branch -- which matters more now that segment-
     * parallel shards each run their own decode pass (sweep.cc).
     */
    std::uint16_t wordBits(std::size_t i) const { return wordBits_[i]; }

    /** Outcome of conditional instance @p i. */
    bool
    taken(std::size_t i) const
    {
        return ((takenBits_[i >> 6] >> (i & 63)) & 1u) != 0;
    }

    /**
     * Outcomes of instances [64w, 64w+63], instance 64w in bit 0.
     * Bits past size() are zero.  The fused kernel consumes outcomes a
     * word at a time through this.
     */
    std::uint64_t takenWord(std::size_t w) const { return takenBits_[w]; }
    /** Number of takenWord() words ((size() + 63) / 64). */
    std::size_t takenWordCount() const { return takenBits_.size(); }

    /** Global outcome history BEFORE instance @p i (bit 0 newest). */
    std::uint64_t globalHistory(std::size_t i) const { return ghist[i]; }
    /** Perfect per-branch self history BEFORE instance @p i. */
    std::uint64_t selfHistory(std::size_t i) const { return shist[i]; }

    /** Whether the successor-bits column was kept at construction. */
    bool hasPathColumn() const { return !succBits_.empty() || size() == 0; }

    /**
     * Resident column bytes divided by branch count: 8 (pc) + 2 (word
     * bits) + 8 (ghist) + 8 (shist) + 1/8 (packed outcome bit) + 2
     * when the path column is kept.  Zero for an empty trace.
     */
    double bytesPerBranch() const;

    /**
     * Path-history register value before each instance, shifting
     * @p bits_per_target successor-address bits per branch.  Requires
     * the path column (need_path_history at construction).
     */
    std::vector<std::uint64_t>
    pathHistoryStream(unsigned bits_per_target) const;

    /**
     * Self-history stream through a finite BHT.
     * @param entries BHT entries (power of two)
     * @param assoc associativity
     * @param history_bits register width (0xC3FF prefix length)
     * @param miss_rate_out when non-null, receives the BHT miss rate
     */
    std::vector<std::uint64_t>
    bhtHistoryStream(std::size_t entries, unsigned assoc,
                     unsigned history_bits,
                     double *miss_rate_out = nullptr,
                     BhtResetPolicy policy =
                         BhtResetPolicy::C3ffPrefix) const;

  private:
    std::string name_;
    std::vector<Addr> pcs;
    /** Low 16 word-index bits per branch (fused narrow decode). */
    std::vector<std::uint16_t> wordBits_;
    /** Low 16 successor word-index bits per branch (path schemes). */
    std::vector<std::uint16_t> succBits_;
    /** Packed outcomes, branch i at bit (i & 63) of word i / 64. */
    std::vector<std::uint64_t> takenBits_;
    std::vector<std::uint64_t> ghist;
    std::vector<std::uint64_t> shist;
};

} // namespace bpsim

#endif // BPSIM_SIM_PREPARED_TRACE_HH

#include "sim/engine.hh"

#include "common/logging.hh"

namespace bpsim {

PredictionStats
runPredictor(TraceSource &source, BranchPredictor &predictor,
             bool track_sites)
{
    PredictionStats stats(track_sites);
    BranchRecord rec;
    while (source.next(rec)) {
        if (!rec.isConditional())
            continue;
        bool prediction = predictor.onBranch(rec);
        stats.record(rec.pc, rec.taken, prediction);
    }
    return stats;
}

std::vector<PredictionStats>
runPredictors(TraceSource &source,
              const std::vector<BranchPredictor *> &predictors)
{
    for (auto *p : predictors)
        bpsim_assert(p != nullptr, "null predictor");
    std::vector<PredictionStats> stats(predictors.size());
    BranchRecord rec;
    while (source.next(rec)) {
        if (!rec.isConditional())
            continue;
        for (std::size_t i = 0; i < predictors.size(); ++i) {
            bool prediction = predictors[i]->onBranch(rec);
            stats[i].record(rec.pc, rec.taken, prediction);
        }
    }
    return stats;
}

} // namespace bpsim

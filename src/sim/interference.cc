#include "sim/interference.hh"

#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/sat_counter.hh"

namespace bpsim {

namespace {

/** Key for the private (per row+column, per branch) reference table. */
struct PrivateKey
{
    std::uint64_t index;
    Addr pc;

    bool operator==(const PrivateKey &) const = default;
};

struct PrivateKeyHash
{
    std::size_t
    operator()(const PrivateKey &k) const
    {
        // Simple mix; the table is only used offline for analysis.
        std::uint64_t h = k.index * 0x9e3779b97f4a7c15ULL;
        h ^= k.pc + 0x517cc1b727220a95ULL + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

/**
 * Lock-step decomposition for the multi-table zoo: the shared model
 * aliases across branches exactly as deployed; the private twin gives
 * every static branch its own full model trained on the same stream.
 * @p cold_of classifies a both-wrong miss from (shared step, private
 * model freshness before the step).
 */
template <typename Model, typename Params, typename ColdFn>
InterferenceResult
analyzeModelInterference(const PreparedTrace &trace,
                         const Params &params, ColdFn cold_of)
{
    Model shared(params);
    std::unordered_map<Addr, Model> privates;

    InterferenceResult out;
    out.instances = trace.size();

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Addr pc = trace.pc(i);
        const std::uint64_t ghist = trace.globalHistory(i);
        const bool taken = trace.taken(i);

        auto it = privates.find(pc);
        if (it == privates.end())
            it = privates.emplace(pc, Model(params)).first;
        const bool private_fresh = it->second.updates() == 0;

        auto shared_step = shared.step(pc, ghist, taken);
        auto private_step = it->second.step(pc, ghist, taken);

        bool shared_wrong = shared_step.prediction != taken;
        bool private_wrong = private_step.prediction != taken;
        out.sharedMispredicts += shared_wrong;
        out.privateMispredicts += private_wrong;
        if (shared_wrong && !private_wrong) {
            ++out.destructive;
        } else if (!shared_wrong && private_wrong) {
            ++out.constructive;
        } else if (shared_wrong && private_wrong) {
            if (cold_of(shared_step, private_fresh))
                ++out.coldMispredicts;
            else
                ++out.capacityMispredicts;
        }
    }
    return out;
}

} // namespace

InterferenceResult
analyzeInterference(const PreparedTrace &trace, SchemeKind kind,
                    unsigned row_bits, unsigned col_bits,
                    const SweepOptions &opts)
{
    // The multi-table zoo replays full models in lock-step; tagged
    // allocation misses land in cold, never aliasing (see header).
    if (kind == SchemeKind::Tage) {
        return analyzeModelInterference<TageModel>(
            trace, tageSweepParams(row_bits, col_bits, opts),
            [](const TageStep &s, bool) {
                return s.providerWasFresh || s.allocated;
            });
    }
    if (kind == SchemeKind::Perceptron) {
        return analyzeModelInterference<PerceptronModel>(
            trace, perceptronSweepParams(row_bits, col_bits, opts),
            [](const PerceptronStep &, bool private_fresh) {
                return private_fresh;
            });
    }

    const std::uint64_t row_mask = mask(row_bits);
    const std::uint64_t col_mask = mask(col_bits);

    // First-level streams, shared with the sweep semantics (and pinned
    // equivalent by the sweep tests).
    std::vector<std::uint64_t> aux;
    bool use_aux = false;
    switch (kind) {
      case SchemeKind::Path:
        aux = trace.pathHistoryStream(opts.pathBitsPerTarget);
        use_aux = true;
        break;
      case SchemeKind::PAsFinite:
        aux = trace.bhtHistoryStream(opts.bhtEntries, opts.bhtAssoc,
                                     row_bits, nullptr,
                                     opts.bhtResetPolicy);
        use_aux = true;
        break;
      default:
        break;
    }

    auto row_of = [&](std::size_t i) -> std::uint64_t {
        switch (kind) {
          case SchemeKind::AddressIndexed:
            return 0;
          case SchemeKind::GAg:
          case SchemeKind::GAs:
            return trace.globalHistory(i);
          case SchemeKind::Gshare:
            return trace.globalHistory(i) ^ wordIndex(trace.pc(i));
          case SchemeKind::PAsPerfect:
            return trace.selfHistory(i);
          case SchemeKind::Path:
          case SchemeKind::PAsFinite:
            return aux[i];
          case SchemeKind::Tage:
          case SchemeKind::Perceptron:
            break; // handled by the model path above
        }
        bpsim_panic("unreachable scheme kind");
    };
    (void)use_aux;

    std::vector<TwoBitCounter> shared(
        std::size_t{1} << (row_bits + col_bits));
    std::unordered_map<PrivateKey, TwoBitCounter, PrivateKeyHash>
        privateTable;
    privateTable.reserve(trace.size() / 16 + 16);

    InterferenceResult out;
    out.instances = trace.size();

    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::uint64_t row = row_of(i) & row_mask;
        std::uint64_t col = wordIndex(trace.pc(i)) & col_mask;
        auto idx =
            static_cast<std::size_t>((row << col_bits) | col);
        bool taken = trace.taken(i);

        bool shared_pred = shared[idx].predict();
        shared[idx].update(taken);

        const PrivateKey key{idx, trace.pc(i)};
        // A map miss means this (index, pc) pair has never trained:
        // a both-wrong miss here is a cold (first-touch) miss.
        const bool private_fresh =
            privateTable.find(key) == privateTable.end();
        TwoBitCounter &priv = privateTable[key];
        bool private_pred = priv.predict();
        priv.update(taken);

        bool shared_wrong = shared_pred != taken;
        bool private_wrong = private_pred != taken;
        out.sharedMispredicts += shared_wrong;
        out.privateMispredicts += private_wrong;
        if (shared_wrong && !private_wrong) {
            ++out.destructive;
        } else if (!shared_wrong && private_wrong) {
            ++out.constructive;
        } else if (shared_wrong && private_wrong) {
            if (private_fresh)
                ++out.coldMispredicts;
            else
                ++out.capacityMispredicts;
        }
    }
    return out;
}

} // namespace bpsim

#include "sim/interference.hh"

#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/sat_counter.hh"

namespace bpsim {

namespace {

/** Key for the private (per row+column, per branch) reference table. */
struct PrivateKey
{
    std::uint64_t index;
    Addr pc;

    bool operator==(const PrivateKey &) const = default;
};

struct PrivateKeyHash
{
    std::size_t
    operator()(const PrivateKey &k) const
    {
        // Simple mix; the table is only used offline for analysis.
        std::uint64_t h = k.index * 0x9e3779b97f4a7c15ULL;
        h ^= k.pc + 0x517cc1b727220a95ULL + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

} // namespace

InterferenceResult
analyzeInterference(const PreparedTrace &trace, SchemeKind kind,
                    unsigned row_bits, unsigned col_bits,
                    const SweepOptions &opts)
{
    const std::uint64_t row_mask = mask(row_bits);
    const std::uint64_t col_mask = mask(col_bits);

    // First-level streams, shared with the sweep semantics (and pinned
    // equivalent by the sweep tests).
    std::vector<std::uint64_t> aux;
    bool use_aux = false;
    switch (kind) {
      case SchemeKind::Path:
        aux = trace.pathHistoryStream(opts.pathBitsPerTarget);
        use_aux = true;
        break;
      case SchemeKind::PAsFinite:
        aux = trace.bhtHistoryStream(opts.bhtEntries, opts.bhtAssoc,
                                     row_bits, nullptr,
                                     opts.bhtResetPolicy);
        use_aux = true;
        break;
      default:
        break;
    }

    auto row_of = [&](std::size_t i) -> std::uint64_t {
        switch (kind) {
          case SchemeKind::AddressIndexed:
            return 0;
          case SchemeKind::GAg:
          case SchemeKind::GAs:
            return trace.globalHistory(i);
          case SchemeKind::Gshare:
            return trace.globalHistory(i) ^ wordIndex(trace.pc(i));
          case SchemeKind::PAsPerfect:
            return trace.selfHistory(i);
          case SchemeKind::Path:
          case SchemeKind::PAsFinite:
            return aux[i];
        }
        bpsim_panic("unreachable scheme kind");
    };
    (void)use_aux;

    std::vector<TwoBitCounter> shared(
        std::size_t{1} << (row_bits + col_bits));
    std::unordered_map<PrivateKey, TwoBitCounter, PrivateKeyHash>
        privateTable;
    privateTable.reserve(trace.size() / 16 + 16);

    InterferenceResult out;
    out.instances = trace.size();

    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::uint64_t row = row_of(i) & row_mask;
        std::uint64_t col = wordIndex(trace.pc(i)) & col_mask;
        auto idx =
            static_cast<std::size_t>((row << col_bits) | col);
        bool taken = trace.taken(i);

        bool shared_pred = shared[idx].predict();
        shared[idx].update(taken);

        TwoBitCounter &priv =
            privateTable[PrivateKey{idx, trace.pc(i)}];
        bool private_pred = priv.predict();
        priv.update(taken);

        bool shared_wrong = shared_pred != taken;
        bool private_wrong = private_pred != taken;
        out.sharedMispredicts += shared_wrong;
        out.privateMispredicts += private_wrong;
        if (shared_wrong && !private_wrong)
            ++out.destructive;
        else if (!shared_wrong && private_wrong)
            ++out.constructive;
    }
    return out;
}

} // namespace bpsim

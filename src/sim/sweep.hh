/**
 * @file
 * Configuration-space sweeps: every (rows x columns) split of every
 * predictor-table budget, for every scheme in the paper, over a prepared
 * trace.  This is the engine behind Figures 2-10 and Table 3.
 *
 * The sweep path is the fast counterpart of the online TwoLevelPredictor
 * (see prepared_trace.hh); their equivalence is pinned by tests.
 */

#ifndef BPSIM_SIM_SWEEP_HH
#define BPSIM_SIM_SWEEP_HH

#include <cstdint>

#include "sim/prepared_trace.hh"
#include "stats/surface.hh"

namespace bpsim {

/** The predictor families the paper sweeps. */
enum class SchemeKind
{
    AddressIndexed, ///< row of counters, address-selected (Figure 2)
    GAg,            ///< column of counters, global history (Figure 3)
    GAs,            ///< global history x address (Figure 4)
    Gshare,         ///< (global history XOR address) x address (Fig. 6)
    Path,           ///< Nair target-bit path history (Figure 8)
    PAsPerfect,     ///< self history, unbounded first level (Figure 9)
    PAsFinite,      ///< self history through a real BHT (Figure 10)
};

/** @return the scheme's display name ("GAs", "gshare", ...). */
const char *schemeKindName(SchemeKind kind);

/** Sweep shape and per-scheme parameters. */
struct SweepOptions
{
    /** Smallest tier: 2^minTotalBits counters (paper: 16). */
    unsigned minTotalBits = 4;
    /** Largest tier: 2^maxTotalBits counters (paper: 32768). */
    unsigned maxTotalBits = 15;
    /** Measure aliasing alongside misprediction (Figure 5). */
    bool trackAliasing = true;
    /** Path scheme: address bits contributed per branch. */
    unsigned pathBitsPerTarget = 2;
    /** PAsFinite: BHT entry count (power of two). */
    std::size_t bhtEntries = 1024;
    /** PAsFinite: BHT associativity. */
    unsigned bhtAssoc = 4;
    /** PAsFinite: BHT miss-reset policy (ablation knob). */
    BhtResetPolicy bhtResetPolicy = BhtResetPolicy::C3ffPrefix;
};

/** One configuration's measurements. */
struct ConfigResult
{
    double mispRate = 0.0;
    double aliasRate = 0.0;
    /** Fraction of conflicts under the all-ones pattern. */
    double harmlessFraction = 0.0;
};

/** Surfaces over the whole configuration space of one scheme. */
struct SweepResult
{
    Surface misprediction;
    Surface aliasing;
    Surface harmless;
    /** PAsFinite only: the BHT tag miss rate (identical across tiers). */
    double bhtMissRate = 0.0;

    SweepResult(const std::string &scheme_name,
                const std::string &trace_name);
};

/**
 * Sweep @p kind over every tier in [minTotalBits, maxTotalBits] and
 * every row/column split within each tier.  AddressIndexed contributes
 * only the all-columns split and GAg only the all-rows split, matching
 * the paper's Figures 2 and 3.
 */
SweepResult sweepScheme(const PreparedTrace &trace, SchemeKind kind,
                        const SweepOptions &opts = {});

/**
 * Measure a single configuration (2^row_bits x 2^col_bits).  Slower per
 * point than sweepScheme (first-level streams are rebuilt), intended for
 * spot checks and tests.
 */
ConfigResult simulateConfig(const PreparedTrace &trace, SchemeKind kind,
                            unsigned row_bits, unsigned col_bits,
                            const SweepOptions &opts = {});

} // namespace bpsim

#endif // BPSIM_SIM_SWEEP_HH

/**
 * @file
 * Configuration-space sweeps: every (rows x columns) split of every
 * predictor-table budget, for every scheme in the paper, over a prepared
 * trace.  This is the engine behind Figures 2-10 and Table 3.
 *
 * Sweeps run in two phases.  The *plan* phase (planSweep) enumerates the
 * configuration space into ConfigJobs and a StreamCache precomputes
 * every shared immutable input (the path-history stream and the
 * per-row-width BHT streams with their miss rates).  The *execute*
 * phase replays the trace once per job -- serially or on the shared
 * ThreadPool, governed by SweepOptions::threads -- into per-job
 * ConfigResult slots that are merged into Surfaces in plan order, so
 * parallel results are bit-identical to the serial ones.
 *
 * The sweep path is the fast counterpart of the online TwoLevelPredictor
 * (see prepared_trace.hh); their equivalence is pinned by tests.
 */

#ifndef BPSIM_SIM_SWEEP_HH
#define BPSIM_SIM_SWEEP_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/prepared_trace.hh"
#include "stats/surface.hh"

namespace bpsim {

/** The predictor families the paper sweeps. */
enum class SchemeKind
{
    AddressIndexed, ///< row of counters, address-selected (Figure 2)
    GAg,            ///< column of counters, global history (Figure 3)
    GAs,            ///< global history x address (Figure 4)
    Gshare,         ///< (global history XOR address) x address (Fig. 6)
    Path,           ///< Nair target-bit path history (Figure 8)
    PAsPerfect,     ///< self history, unbounded first level (Figure 9)
    PAsFinite,      ///< self history through a real BHT (Figure 10)
};

/** @return the scheme's display name ("GAs", "gshare", ...). */
const char *schemeKindName(SchemeKind kind);

/** Sweep shape and per-scheme parameters. */
struct SweepOptions
{
    /** Smallest tier: 2^minTotalBits counters (paper: 16). */
    unsigned minTotalBits = 4;
    /** Largest tier: 2^maxTotalBits counters (paper: 32768). */
    unsigned maxTotalBits = 15;
    /** Measure aliasing alongside misprediction (Figure 5). */
    bool trackAliasing = true;
    /** Path scheme: address bits contributed per branch. */
    unsigned pathBitsPerTarget = 2;
    /** PAsFinite: BHT entry count (power of two). */
    std::size_t bhtEntries = 1024;
    /** PAsFinite: BHT associativity. */
    unsigned bhtAssoc = 4;
    /** PAsFinite: BHT miss-reset policy (ablation knob). */
    BhtResetPolicy bhtResetPolicy = BhtResetPolicy::C3ffPrefix;
    /**
     * Concurrent trace replays during execution: 0 = one per hardware
     * thread, 1 = serial.  Results are identical either way.
     */
    unsigned threads = 1;
};

/** One configuration's measurements. */
struct ConfigResult
{
    double mispRate = 0.0;
    double aliasRate = 0.0;
    /** Fraction of conflicts under the all-ones pattern. */
    double harmlessFraction = 0.0;
    /** PAsFinite: first-level miss rate; negative when inapplicable. */
    double bhtMissRate = -1.0;
};

/** One planned configuration: a 2^rowBits x 2^colBits table. */
struct ConfigJob
{
    SchemeKind kind = SchemeKind::GAs;
    unsigned totalBits = 0;
    unsigned rowBits = 0;
    unsigned colBits = 0;
};

/**
 * Enumerate the jobs a sweep of @p kind executes, in merge order
 * (budget ascending, then row bits ascending).  AddressIndexed
 * contributes only the all-columns split and GAg only the all-rows
 * split, matching the paper's Figures 2 and 3.
 */
std::vector<ConfigJob> planSweep(SchemeKind kind,
                                 const SweepOptions &opts);

/**
 * Shared immutable first-level inputs for one (trace, options) pair:
 * the path-history stream and the finite-BHT history streams (one per
 * row width, because the 0xC3FF reset prefix differs by width) with
 * their miss rates.
 *
 * prepare() builds every stream a job list needs up front -- in
 * parallel when asked -- after which stream() is a read-only lookup
 * safe to call from any number of executors.  Unprepared lookups build
 * lazily under a lock, which keeps one-off simulateConfig() calls
 * cheap to write.
 */
class StreamCache
{
  public:
    StreamCache(const PreparedTrace &trace, const SweepOptions &opts);

    const PreparedTrace &trace() const { return trace_; }
    const SweepOptions &options() const { return opts_; }

    /** Precompute the streams @p jobs need, @p threads at a time. */
    void prepare(const std::vector<ConfigJob> &jobs, unsigned threads);

    /**
     * First-level stream feeding a job's row index, or nullptr for the
     * schemes that index rows straight from the prepared trace.
     */
    const std::vector<std::uint64_t> *stream(SchemeKind kind,
                                             unsigned row_bits);

    /** BHT miss rate observed building the width-@p row_bits stream. */
    double bhtMissRate(unsigned row_bits);

    /**
     * Number of first-level streams computed so far (path stream plus
     * one per distinct BHT row width).  Repeated probes of the same
     * configuration must not grow this -- the reuse invariant the
     * differential tests pin.
     */
    std::size_t streamBuilds() const;

    /**
     * The miss rate a whole-sweep result reports: the widest stream
     * built so far (all widths measure the same tag misses).  Negative
     * until a BHT stream exists.
     */
    double sweepBhtMissRate() const;

  private:
    struct BhtStream
    {
        std::vector<std::uint64_t> stream;
        double missRate = -1.0;
    };

    const std::vector<std::uint64_t> &pathStreamLocked();
    const BhtStream &bhtStreamLocked(unsigned row_bits);

    const PreparedTrace &trace_;
    SweepOptions opts_;
    mutable std::mutex mutex_;
    std::optional<std::vector<std::uint64_t>> path_;
    std::map<unsigned, BhtStream> bht_;
    std::size_t streamBuilds_ = 0;
};

/**
 * Execute one planned job against @p cache's trace.  Thread-safe once
 * the cache is prepared for the job's scheme and row width.
 */
ConfigResult runConfigJob(const ConfigJob &job, StreamCache &cache);

/** Surfaces over the whole configuration space of one scheme. */
struct SweepResult
{
    Surface misprediction;
    Surface aliasing;
    Surface harmless;
    /** PAsFinite only: the BHT tag miss rate (identical across tiers). */
    double bhtMissRate = 0.0;

    SweepResult(const std::string &scheme_name,
                const std::string &trace_name);
};

/**
 * Sweep @p kind over every tier in [minTotalBits, maxTotalBits] and
 * every row/column split within each tier, using opts.threads
 * concurrent trace replays.  The result is bit-identical for any
 * thread count.
 */
SweepResult sweepScheme(const PreparedTrace &trace, SchemeKind kind,
                        const SweepOptions &opts = {});

/**
 * Measure a single configuration (2^row_bits x 2^col_bits) through a
 * caller-held cache, sharing first-level streams across calls.
 */
ConfigResult simulateConfig(StreamCache &cache, SchemeKind kind,
                            unsigned row_bits, unsigned col_bits);

/**
 * Measure a single configuration with a transient cache.  Slower per
 * point than the cache-taking overload when called repeatedly (the
 * first-level streams are rebuilt per call); intended for spot checks
 * and tests.
 */
ConfigResult simulateConfig(const PreparedTrace &trace, SchemeKind kind,
                            unsigned row_bits, unsigned col_bits,
                            const SweepOptions &opts = {});

} // namespace bpsim

#endif // BPSIM_SIM_SWEEP_HH

/**
 * @file
 * Configuration-space sweeps: every (rows x columns) split of every
 * predictor-table budget, for every scheme in the paper, over a prepared
 * trace.  This is the engine behind Figures 2-10 and Table 3.
 *
 * Sweeps run in two phases.  The *plan* phase (planSweep) enumerates the
 * configuration space into ConfigJobs, planFusedGroups partitions them
 * into FusedGroups of jobs sharing one first-level input stream, and a
 * StreamCache precomputes every shared immutable input (the path-history
 * stream and the per-row-width BHT streams with their miss rates).  The
 * *execute* phase replays the trace once per GROUP -- all member
 * configurations' packed pattern tables are updated in the same pass,
 * since every split of a tier reads the same per-branch row value and
 * word index -- serially or on the shared ThreadPool, governed by
 * SweepOptions::threads (which now distributes groups, not single
 * jobs).  Results land in per-job ConfigResult slots that are merged
 * into Surfaces in plan order, so parallel and fused results are both
 * bit-identical to the serial per-config ones.
 *
 * Within one group, two further axes of parallelism exist (see
 * DESIGN.md "Segment-parallel replay"):
 *
 *  - SweepOptions::fusedThreads lane-shards the group's block replay:
 *    each executor owns a disjoint subset of the member lanes with
 *    private packed tables, so any shard count is bit-identical to the
 *    serial fused pass.
 *  - SweepOptions::segments speculatively splits the *trace* into K
 *    ranges replayed concurrently from cold-start counter state behind
 *    a segmentWarmup-branch warm-up window.  K > 1 trades a bounded,
 *    auditable mispredict epsilon for parallelism; the exact K = 1
 *    mode stays the default and speculative results depend only on
 *    (K, warmup), never on shard/worker counts.
 *
 * Aliasing measurement (Figure 5) needs the per-access branch-address
 * comparison of AliasTracker, so aliasing-tracked sweeps fall back to
 * the original one-job-per-replay kernel; semantics there are
 * untouched.
 *
 * The sweep path is the fast counterpart of the online TwoLevelPredictor
 * (see prepared_trace.hh); their equivalence is pinned by tests.
 */

#ifndef BPSIM_SIM_SWEEP_HH
#define BPSIM_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/simd.hh"
#include "predictor/perceptron.hh"
#include "predictor/tage.hh"
#include "sim/prepared_trace.hh"
#include "stats/surface.hh"

namespace bpsim {

/** The predictor families the paper sweeps. */
enum class SchemeKind
{
    AddressIndexed, ///< row of counters, address-selected (Figure 2)
    GAg,            ///< column of counters, global history (Figure 3)
    GAs,            ///< global history x address (Figure 4)
    Gshare,         ///< (global history XOR address) x address (Fig. 6)
    Path,           ///< Nair target-bit path history (Figure 8)
    PAsPerfect,     ///< self history, unbounded first level (Figure 9)
    PAsFinite,      ///< self history through a real BHT (Figure 10)
    /**
     * The multi-table zoo: these replay full TageModel /
     * PerceptronModel state per configuration (no packed-PHT form --
     * the fused kernel's 2-bit-counter invariants do not hold for
     * tagged entries or signed weights).  When fusion is enabled the
     * planner batches them into MODEL groups: one trace pass decodes
     * each block once and steps every member model, sharing the hash
     * folds across members (and, for perceptron lanes, running the
     * dot-product/update through the SIMD PerceptronBatch kernel).
     * fuseJobs = false falls back to one per-config replay per job.
     * Either way their aliasing/harmless surfaces stay zero --
     * interference decomposition comes from analyzeInterference
     * instead (see interference.hh) -- which is also why the
     * trackAliasing fallback does not apply to them.
     */
    Tage,       ///< tagged geometric-history components over a base
    Perceptron, ///< hashed perceptron (summed signed weight tables)
};

/** @return the scheme's display name ("GAs", "gshare", ...). */
const char *schemeKindName(SchemeKind kind);

/** Sweep shape and per-scheme parameters. */
struct SweepOptions
{
    /** Smallest tier: 2^minTotalBits counters (paper: 16). */
    unsigned minTotalBits = 4;
    /** Largest tier: 2^maxTotalBits counters (paper: 32768). */
    unsigned maxTotalBits = 15;
    /** Measure aliasing alongside misprediction (Figure 5). */
    bool trackAliasing = true;
    /** Path scheme: address bits contributed per branch. */
    unsigned pathBitsPerTarget = 2;
    /** PAsFinite: BHT entry count (power of two). */
    std::size_t bhtEntries = 1024;
    /** PAsFinite: BHT associativity. */
    unsigned bhtAssoc = 4;
    /** PAsFinite: BHT miss-reset policy (ablation knob). */
    BhtResetPolicy bhtResetPolicy = BhtResetPolicy::C3ffPrefix;
    /**
     * Tage: tag width in bits.  Sweep axes map rowBits -> per-component
     * entry bits and colBits -> base-table bits; these options carry
     * the remaining geometry.  Result-affecting: part of cache keys.
     */
    unsigned tageTagBits = 8;
    /** Tage: per-component history lengths (strictly ascending). */
    std::vector<unsigned> tageHistories = {4, 8, 16, 32};
    /**
     * Perceptron: weight tables including the bias table.  Sweep axes
     * map rowBits -> history bits and colBits -> per-table entry bits.
     * Result-affecting: part of cache keys.
     */
    unsigned perceptronTables = 4;
    /**
     * Concurrent trace replays during execution: 0 = one per hardware
     * thread, 1 = serial.  Results are identical either way.
     */
    unsigned threads = 1;
    /**
     * Fuse jobs sharing a first-level stream into single-pass group
     * replays: the packed-counter kernel for the 2-bit family, the
     * batched model-lane replay for the zoo.  Aliasing-tracked 2-bit
     * sweeps ignore this and always take the per-config AliasTracker
     * path; zoo sweeps batch regardless of trackAliasing (their
     * aliasing surfaces are identically zero either way).  Results are
     * bit-identical either way; false forces the per-config kernel
     * (the serial baseline the perf_sweep bench measures against).
     */
    bool fuseJobs = true;
    /**
     * Dispatch target for the lane-batched fused kernel.  Auto defers
     * to the BPSIM_SIMD environment override, then to CPUID detection;
     * explicit requests clamp down to the widest supported target.
     * Every target is bit-identical (pinned by the forced-dispatch
     * differential tests), so this is a performance/debug knob only.
     */
    SimdTarget simd = SimdTarget::Auto;
    /**
     * Executors *inside* one fused or model group: the group's member
     * lanes are sharded across this many concurrent block-replay
     * workers, each owning a disjoint lane subset with private packed
     * tables (or private zoo models and weight banks) -- nothing is
     * shared, so results are bit-identical for any value.
     * 0 = one per hardware thread, 1 (default) reproduces the serial
     * fused replay.  Composes with `threads`: groups distribute outer,
     * shards inner (the pool's nested parallelFor is deadlock-free).
     * Execution knob only: excluded from result-cache keys
     * (sweep_session.cc), exactly like `threads` and `simd`.
     */
    unsigned fusedThreads = 1;
    /**
     * Speculative segment replay: split the trace into this many
     * ranges, replay them concurrently from cold-start counter state
     * after a segmentWarmup-branch uncounted warm-up window, and sum
     * the per-segment mispredict counts.  0 (default) defers to the
     * BPSIM_SEGMENTS environment override, else exact; 1 is the exact
     * single-segment replay (bit-identical to the serial engine);
     * K > 1 trades a bounded mispredict epsilon (2-bit counters
     * converge after a handful of same-direction updates, so only the
     * few warm-up-resistant counters at each boundary can disagree;
     * zoo model state converges more slowly, so the zoo epsilon runs
     * larger at the same warmup -- see EXPERIMENTS.md) for segment
     * parallelism.  Applies to fused AND model groups.  Speculative
     * results depend only on (K, segmentWarmup) -- never on shard or
     * worker counts -- and are cached under a distinct key
     * (sweep_session.cc).  Clamped to kMaxSegments; see
     * resolveSegments().
     */
    unsigned segments = 0;
    /**
     * Warm-up branches replayed (uncounted) before each speculative
     * segment to converge its cold counters; ignored when the
     * resolved segment count is 1.  A window reaching back to the
     * trace start makes the segment exact by construction.
     */
    unsigned segmentWarmup = 2048;

    /** Hard ceiling on resolveSegments() (protocol limit too). */
    static constexpr unsigned kMaxSegments = 64;
};

/**
 * The within-group shard executor count a sweep actually uses:
 * opts.fusedThreads with 0 resolved to the hardware thread count.
 */
unsigned resolveFusedThreads(const SweepOptions &opts);

/**
 * The segment count a sweep actually uses: an explicit opts.segments
 * wins; 0 defers to the BPSIM_SEGMENTS environment override (a
 * positive integer; malformed values warn and fall back), else 1.
 * Clamped to [1, SweepOptions::kMaxSegments].  Read fresh per call so
 * tests can vary the environment.  Result-cache keys use the same
 * resolution (sweep_session.cc), so a speculative run can never be
 * served an exact result or vice versa.
 */
unsigned resolveSegments(const SweepOptions &opts);

/**
 * Observability counters for one sweep's kernel execution, reported in
 * SweepResult::kernel and surfaced by bench/perf_sweep so recorded
 * BENCH_sweep.json trajectories are self-describing.
 */
struct KernelTelemetry
{
    /** Resolved dispatch target the lane batches ran on. */
    SimdTarget target = SimdTarget::Scalar;
    /** Fused groups replayed by the lane-batched kernel. */
    std::uint64_t fusedGroups = 0;
    /** Jobs that took the per-config fallback (aliasing, fuseJobs). */
    std::uint64_t fallbackJobs = 0;
    /** Member configurations replayed by fused groups. */
    std::uint64_t lanes = 0;
    /** Lanes beyond the packed-record limits (64-bit fallback loop). */
    std::uint64_t wideLanes = 0;
    /** Lane batches dispatched (at most LaneBatch::kMaxLanes each). */
    std::uint64_t laneBatches = 0;
    /** Decoded block tiles streamed through the lane batches. */
    std::uint64_t blocksReplayed = 0;
    /** Trace segments across fused groups (1/group = exact replay). */
    std::uint64_t segments = 0;
    /** Lane shards across fused groups (1/group = unsharded). */
    std::uint64_t laneShards = 0;
    /** (shard x segment) replay tasks dispatched by fused groups. */
    std::uint64_t shardTasks = 0;
    /** Uncounted warm-up branches replayed by speculative segments. */
    std::uint64_t warmupBranches = 0;
    /**
     * Model groups (TAGE/perceptron zoo) replayed by the batched
     * model-lane engine.  Model groups reuse the fused machinery --
     * their segments/shards/tasks/warm-up/blocks/timing fold into the
     * shared counters above -- but step full predictor models instead
     * of packed 2-bit tables, so their population is counted apart
     * from fusedGroups/lanes.
     */
    std::uint64_t modelGroups = 0;
    /** Member configurations replayed as model lanes. */
    std::uint64_t modelLanes = 0;
    /**
     * Batched inner-kernel invocations by model groups: one per
     * (block tile x perceptron lane batch) or (block tile x TAGE
     * entry-bits class).
     */
    std::uint64_t modelBatches = 0;
    /** Summed per-task execution time (busy seconds across workers). */
    double busySeconds = 0.0;
    /** Summed per-group wall time of the task phase. */
    double spanSeconds = 0.0;
    /** Peak concurrent executors any group's task phase could use. */
    std::uint64_t shardWorkers = 0;

    /** Mean member configurations per fused group. */
    double lanesPerGroup() const;
    /** Mean member configurations per model group. */
    double modelLanesPerGroup() const;
    /** Mean trace segments per fused group (1.0 = exact everywhere). */
    double segmentsPerGroup() const;
    /** Mean lane shards per fused group (1.0 = unsharded). */
    double shardsPerGroup() const;
    /**
     * Fraction of the task phase's worker-seconds spent executing:
     * busySeconds / (spanSeconds * shardWorkers).  1.0 means every
     * executor was busy for the whole span; 0.0 when unmeasured.
     */
    double workerUtilization() const;
    /**
     * Bytes the lane inner loop reads per branch per lane: 4 (one
     * packed record) for narrow lanes, 17 (row, column, outcome) for
     * wide-fallback lanes, averaged over the lane population.
     */
    double hotBytesPerBranch() const;
    /** Fold one group's counters into a sweep-level aggregate. */
    void merge(const KernelTelemetry &other);
};

/** One configuration's measurements. */
struct ConfigResult
{
    double mispRate = 0.0;
    double aliasRate = 0.0;
    /** Fraction of conflicts under the all-ones pattern. */
    double harmlessFraction = 0.0;
    /** PAsFinite: first-level miss rate; negative when inapplicable. */
    double bhtMissRate = -1.0;
};

/** One planned configuration: a 2^rowBits x 2^colBits table. */
struct ConfigJob
{
    SchemeKind kind = SchemeKind::GAs;
    unsigned totalBits = 0;
    unsigned rowBits = 0;
    unsigned colBits = 0;
};

/**
 * Enumerate the jobs a sweep of @p kind executes, in merge order
 * (budget ascending, then row bits ascending).  AddressIndexed
 * contributes only the all-columns split and GAg only the all-rows
 * split, matching the paper's Figures 2 and 3.
 */
std::vector<ConfigJob> planSweep(SchemeKind kind,
                                 const SweepOptions &opts);

/**
 * A unit of fused execution: jobs (indices into the planned job
 * vector) that replay the trace together because they read the same
 * per-branch first-level inputs.  A fused 2-bit group runs the packed
 * lane kernel; a fused zoo group (kind Tage/Perceptron) is a MODEL
 * group and runs the batched model-lane replay.  When fused is false
 * the group is a fallback wrapper and its members run through the
 * per-config kernel one at a time (the AliasTracker / runModelReplay
 * path).
 */
struct FusedGroup
{
    SchemeKind kind = SchemeKind::GAs;
    /**
     * Stream key for StreamCache::stream(): the shared BHT row width
     * for PAsFinite groups, 0 for every other scheme (whose streams,
     * when they have one at all, are row-width independent).
     */
    unsigned streamRowBits = 0;
    /** Single-pass packed kernel (true) or per-config fallback. */
    bool fused = false;
    /** Member jobs, as indices into the planned job vector. */
    std::vector<std::size_t> jobs;
};

/**
 * Partition planned jobs into fused execution groups.  Jobs sharing a
 * first-level stream (same scheme; same BHT row width for PAsFinite)
 * land in one group, split into at most @p threads chunks so the pool
 * can spread a large group across executors.  Zoo jobs bucket by
 * scheme into model groups under the same chunking.  When
 * !opts.fuseJobs every job becomes its own fallback group; when
 * opts.trackAliasing the 2-bit family falls back too (AliasTracker
 * needs per-access addresses) but zoo jobs still batch -- their
 * aliasing surfaces are identically zero on both paths.  Every job
 * index appears in exactly one group; results are bit-identical for
 * any grouping.
 */
std::vector<FusedGroup>
planFusedGroups(const std::vector<ConfigJob> &jobs,
                const SweepOptions &opts, unsigned threads);

/**
 * Shared immutable first-level inputs for one (trace, options) pair:
 * the path-history stream and the finite-BHT history streams (one per
 * row width, because the 0xC3FF reset prefix differs by width) with
 * their miss rates.
 *
 * prepare() builds every stream a job list needs up front -- in
 * parallel when asked -- and publishes a lock-free lookup table, after
 * which stream() and bhtMissRate() are read-only lookups that take no
 * lock at all (lockedLookups() counts the ones that did, so tests can
 * pin the fused hot path to zero).  Unprepared lookups build lazily
 * under a lock, which keeps one-off simulateConfig() calls cheap to
 * write.  prepare() must not race with concurrent lookups; the sweep
 * engine always finishes it before dispatching executors.
 */
class StreamCache
{
  public:
    StreamCache(const PreparedTrace &trace, const SweepOptions &opts);

    const PreparedTrace &trace() const { return trace_; }
    const SweepOptions &options() const { return opts_; }

    /** Precompute the streams @p jobs need, @p threads at a time. */
    void prepare(const std::vector<ConfigJob> &jobs, unsigned threads);

    /**
     * First-level stream feeding a job's row index, or nullptr for the
     * schemes that index rows straight from the prepared trace.
     * Lock-free after prepare() covered the (kind, row_bits) pair.
     */
    const std::vector<std::uint64_t> *stream(SchemeKind kind,
                                             unsigned row_bits);

    /**
     * BHT miss rate observed building the width-@p row_bits stream.
     * Lock-free after prepare() covered the width.
     */
    double bhtMissRate(unsigned row_bits);

    /**
     * Lookups (stream() or bhtMissRate()) that missed the prepared
     * lock-free table and had to take the lazy-build lock.  Fused
     * execution after prepare() must leave this at zero -- the
     * invariant pinned by test_sweep.
     */
    std::size_t lockedLookups() const;

    /**
     * Number of first-level streams computed so far (path stream plus
     * one per distinct BHT row width).  Repeated probes of the same
     * configuration must not grow this -- the reuse invariant the
     * differential tests pin.
     */
    std::size_t streamBuilds() const;

    /**
     * The miss rate a whole-sweep result reports: the widest stream
     * built so far (all widths measure the same tag misses).  Negative
     * until a BHT stream exists.  Survives stream release -- the rate
     * is a scalar recorded at build time, not the buffer.
     */
    double sweepBhtMissRate() const;

    /**
     * Enable release-after-last-consumer: record how many of @p groups
     * consume each first-level stream so groupFinished() can free a
     * stream's buffer the moment its last consumer completes (a full
     * multi-scheme sweep would otherwise hold O(schemes x trace)
     * bytes).  While tracking is on, stream() and bhtMissRate() bypass
     * the lock-free prepared table -- a freed buffer must never be
     * reachable through it -- and take the lazy lock instead: one
     * short lock per group, not per branch.  Call before dispatching
     * executors; not thread-safe against concurrent lookups.
     */
    void planRelease(const std::vector<FusedGroup> &groups);

    /**
     * One group of the planned release set finished executing: drop
     * any stream whose consumers are all done.  No-op without
     * planRelease().  Thread-safe.
     */
    void groupFinished(const FusedGroup &group);

    /** First-level stream buffers currently resident. */
    std::size_t residentStreams() const;
    /** High-water mark of residentStreams() over the cache lifetime. */
    std::size_t peakResidentStreams() const;

  private:
    struct BhtStream
    {
        std::vector<std::uint64_t> stream;
        double missRate = -1.0;
        /** Buffer freed by groupFinished(); missRate still valid.  A
         *  later lookup rebuilds the stream (counted as a build). */
        bool released = false;
    };

    const std::vector<std::uint64_t> &pathStreamLocked();
    const BhtStream &bhtStreamLocked(unsigned row_bits);
    /** Count a freshly built stream toward the resident high-water. */
    void noteStreamResidentLocked();
    /** Lock-free lookup in the prepared table; nullptr on miss. */
    const BhtStream *preparedBhtStream(unsigned row_bits) const;

    const PreparedTrace &trace_;
    SweepOptions opts_;
    mutable std::mutex mutex_;
    std::optional<std::vector<std::uint64_t>> path_;
    std::map<unsigned, BhtStream> bht_;
    std::size_t streamBuilds_ = 0;
    /**
     * Lock-free lookup table published by prepare(): stable pointers
     * into path_ / bht_ (map nodes never move, lazy inserts never
     * touch these), read by stream()/bhtMissRate() without the lock.
     */
    const std::vector<std::uint64_t> *preparedPath_ = nullptr;
    std::vector<std::pair<unsigned, const BhtStream *>> preparedBht_;
    mutable std::atomic<std::size_t> lockedLookups_{0};
    /** Release-after-last-consumer state (planRelease). */
    bool releaseTracking_ = false;
    std::size_t pathConsumers_ = 0;
    std::map<unsigned, std::size_t> bhtConsumers_;
    std::size_t residentStreams_ = 0;
    std::size_t peakResidentStreams_ = 0;
};

/**
 * Execute one planned job against @p cache's trace.  Thread-safe once
 * the cache is prepared for the job's scheme and row width.
 */
ConfigResult runConfigJob(const ConfigJob &job, StreamCache &cache);

/**
 * Execute one fused group, writing each member job's result into
 * slots[job index].  @p slots addresses the whole planned job vector.
 * Fused groups walk the trace once, updating every member's packed
 * pattern table per branch through the lane-batched SIMD kernel
 * (SweepOptions::simd picks the dispatch target); fallback groups
 * delegate to runConfigJob.  When @p telemetry is non-null the group's
 * kernel counters are accumulated into it.  Thread-safe once @p cache
 * is prepared for the group.
 */
void runFusedGroup(const FusedGroup &group,
                   const std::vector<ConfigJob> &jobs,
                   StreamCache &cache, ConfigResult *slots,
                   KernelTelemetry *telemetry = nullptr);

/** Surfaces over the whole configuration space of one scheme. */
struct SweepResult
{
    Surface misprediction;
    Surface aliasing;
    Surface harmless;
    /** PAsFinite only: the BHT tag miss rate (identical across tiers). */
    double bhtMissRate = 0.0;
    /** How the sweep executed (dispatch target, lanes, blocks). */
    KernelTelemetry kernel;

    SweepResult(const std::string &scheme_name,
                const std::string &trace_name);
};

/**
 * Sweep @p kind over every tier in [minTotalBits, maxTotalBits] and
 * every row/column split within each tier, using opts.threads
 * concurrent trace replays.  The result is bit-identical for any
 * thread count.
 */
SweepResult sweepScheme(const PreparedTrace &trace, SchemeKind kind,
                        const SweepOptions &opts = {});

/**
 * Measure a single configuration (2^row_bits x 2^col_bits) through a
 * caller-held cache, sharing first-level streams across calls.
 */
ConfigResult simulateConfig(StreamCache &cache, SchemeKind kind,
                            unsigned row_bits, unsigned col_bits);

/**
 * Measure a single configuration with a transient cache.  Slower per
 * point than the cache-taking overload when called repeatedly (the
 * first-level streams are rebuilt per call); intended for spot checks
 * and tests.
 */
ConfigResult simulateConfig(const PreparedTrace &trace, SchemeKind kind,
                            unsigned row_bits, unsigned col_bits,
                            const SweepOptions &opts = {});

/**
 * The TAGE geometry a sweep point denotes: rowBits -> per-component
 * entry bits, colBits -> base-table bits, remaining knobs from
 * SweepOptions.  One mapping shared by the sweep kernel, the
 * interference analyzer, and the differential tests.
 */
TageParams tageSweepParams(unsigned row_bits, unsigned col_bits,
                           const SweepOptions &opts);

/**
 * The hashed-perceptron geometry a sweep point denotes: rowBits ->
 * history bits, colBits -> per-table entry bits.
 */
PerceptronParams perceptronSweepParams(unsigned row_bits,
                                       unsigned col_bits,
                                       const SweepOptions &opts);

} // namespace bpsim

#endif // BPSIM_SIM_SWEEP_HH

#include "sim/sweep_session.hh"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/config.hh"
#include "common/thread_pool.hh"
#include "workload/trace_key.hh"

namespace bpsim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

SweepSession::SweepSession(std::string cache_dir,
                           std::uint64_t cache_budget_bytes)
    : cache_(std::move(cache_dir), cache_budget_bytes)
{
}

Result<TraceHandle>
SweepSession::internProfile(const std::string &profile,
                            std::uint64_t target_conditionals)
{
    return bpsim::internProfile(registry_, profile,
                                target_conditionals);
}

TraceHandle
SweepSession::internTrace(MemoryTrace trace)
{
    return registry_.internTrace(std::move(trace));
}

Result<TraceHandle>
SweepSession::internFile(const std::string &path)
{
    return registry_.internFile(path);
}

namespace {

/**
 * The result-affecting options shared by every tier of a scheme --
 * everything cacheConfigKey() serialises except the tier range.  This
 * is exactly what two requests must agree on to share one envelope
 * replay (batchGroupKey), since the first-level stream and per-config
 * semantics depend on nothing else.
 */
std::vector<std::string>
schemeOptionTokens(SchemeKind kind, const SweepOptions &opts)
{
    std::vector<std::string> tokens = {
        "alias=" + std::to_string(opts.trackAliasing ? 1 : 0),
    };
    if (kind == SchemeKind::Path) {
        tokens.push_back("pathbits=" +
                         std::to_string(opts.pathBitsPerTarget));
    }
    if (kind == SchemeKind::PAsFinite) {
        tokens.push_back("bht=" + std::to_string(opts.bhtEntries));
        tokens.push_back("assoc=" + std::to_string(opts.bhtAssoc));
        tokens.push_back(
            "reset=" +
            std::to_string(static_cast<int>(opts.bhtResetPolicy)));
    }
    if (kind == SchemeKind::Tage) {
        tokens.push_back("tagbits=" +
                         std::to_string(opts.tageTagBits));
        // The history lengths are one list-valued token; canonicalKey
        // sorts all-integer lists, so equivalent orderings collapse.
        std::string lengths;
        for (unsigned h : opts.tageHistories) {
            if (!lengths.empty())
                lengths += ',';
            lengths += std::to_string(h);
        }
        tokens.push_back("histories=" + lengths);
    }
    if (kind == SchemeKind::Perceptron) {
        tokens.push_back("ptables=" +
                         std::to_string(opts.perceptronTables));
    }
    // Speculative segment replay changes results, so a speculative
    // sweep must never serve (or be served by) an exact one.  The
    // resolved count is keyed -- not the raw option -- so an explicit
    // segments=4 and a BPSIM_SEGMENTS=4 run share an entry, and exact
    // mode (the resolved default) keeps its historical key.  The
    // warm-up width joins only alongside segments: it is read only
    // when K > 1.
    const unsigned segments = resolveSegments(opts);
    if (segments > 1) {
        tokens.push_back("segments=" + std::to_string(segments));
        tokens.push_back("warmup=" +
                         std::to_string(opts.segmentWarmup));
    }
    return tokens;
}

} // namespace

std::string
SweepSession::cacheConfigKey(SchemeKind kind, const SweepOptions &opts)
{
    // Only result-affecting options, and of those only the ones the
    // scheme reads: a gshare sweep must not miss because an unused
    // BHT knob changed.  threads/fuseJobs/simd/fusedThreads are
    // bit-identical execution knobs (pinned by the differential
    // tests) and are deliberately absent; segments joins the key only
    // when it resolves speculative (see schemeOptionTokens).
    std::vector<std::string> tokens = schemeOptionTokens(kind, opts);
    tokens.push_back("min=" + std::to_string(opts.minTotalBits));
    tokens.push_back("max=" + std::to_string(opts.maxTotalBits));
    return Config::parseTokens(tokens).canonicalKey();
}

std::string
SweepSession::batchGroupKey(const SweepRequest &request)
{
    std::string key = request.trace.hex();
    key += "|";
    key += schemeKindName(request.kind);
    key += "|";
    key += Config::parseTokens(
               schemeOptionTokens(request.kind, request.options))
               .canonicalKey();
    return key;
}

CacheKey
SweepSession::cacheKey(const SweepRequest &request)
{
    return CacheKey{request.trace, schemeKindName(request.kind),
                    cacheConfigKey(request.kind, request.options),
                    kEngineVersion};
}

Result<std::shared_ptr<const PreparedTrace>>
SweepSession::prepared(const TraceHash &trace)
{
    // The lock is held across preparation, mirroring the registry's
    // intern discipline: concurrent requests for the same trace wait
    // for one build instead of duplicating it.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = prepared_.find(trace);
    if (it != prepared_.end())
        return it->second.prepared;
    TraceHandle handle = registry_.lookup(trace);
    if (!handle.valid()) {
        return BPSIM_ERROR("trace ", trace.hex(),
                           " is not interned in this session (and "
                           "the result cache cannot answer)");
    }
    auto prep =
        std::make_shared<const PreparedTrace>(*handle.trace);
    prepared_.emplace(trace,
                      PreparedEntry{prep, handle.trace});
    return prep;
}

Result<SweepResponse>
SweepSession::sweep(const SweepRequest &request)
{
    const auto start = std::chrono::steady_clock::now();
    const CacheKey key = cacheKey(request);

    if (!request.bypassCache) {
        bool from_disk = false;
        std::optional<CachedSweep> hit =
            cache_.lookup(key, &from_disk);
        if (hit) {
            // Rehydrate: cached surfaces carry their full names, so
            // the hit is byte-identical to the original result.
            // Kernel telemetry stays zeroed -- nothing executed.
            SweepResponse response(SweepResult("", ""));
            response.result.misprediction = hit->misprediction;
            response.result.aliasing = hit->aliasing;
            response.result.harmless = hit->harmless;
            response.result.bhtMissRate = hit->bhtMissRate;
            response.cacheHit = true;
            response.diskHit = from_disk;
            response.seconds = secondsSince(start);
            return response;
        }
    }

    Result<std::shared_ptr<const PreparedTrace>> prep =
        prepared(request.trace);
    if (!prep.ok())
        return prep.error();

    SweepResponse response(
        sweepScheme(*prep.value(), request.kind, request.options));
    if (!request.bypassCache) {
        CachedSweep payload{response.result.misprediction,
                            response.result.aliasing,
                            response.result.harmless,
                            response.result.bhtMissRate};
        // Disk-store failures are counted in cache().stats() but do
        // not fail the sweep: the result in hand is correct.
        static_cast<void>(cache_.store(key, payload));
    }
    response.seconds = secondsSince(start);
    return response;
}

namespace {

/** Copy the tiers of @p src with min <= totalBits <= max, preserving
 *  name and point order (plan order, budget then row ascending). */
Surface
sliceSurface(const Surface &src, unsigned min_bits, unsigned max_bits)
{
    Surface out(src.name());
    for (const SurfaceTier &tier : src.tiers()) {
        if (tier.totalBits < min_bits || tier.totalBits > max_bits)
            continue;
        for (const SurfacePoint &pt : tier.points)
            out.add(tier.totalBits, pt.rowBits, pt.colBits, pt.value);
    }
    return out;
}

} // namespace

std::vector<Result<SweepResponse>>
SweepSession::sweepBatch(const std::vector<SweepRequest> &requests,
                         BatchCounters *counters)
{
    const auto start = std::chrono::steady_clock::now();
    BatchCounters local;
    std::vector<std::optional<Result<SweepResponse>>> out(
        requests.size());

    // Phase 1: answer what the cache can, group the rest by their
    // envelope-sharing key.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const SweepRequest &req = requests[i];
        if (!req.bypassCache) {
            bool from_disk = false;
            std::optional<CachedSweep> hit =
                cache_.lookup(cacheKey(req), &from_disk);
            if (hit) {
                SweepResponse response(SweepResult("", ""));
                response.result.misprediction = hit->misprediction;
                response.result.aliasing = hit->aliasing;
                response.result.harmless = hit->harmless;
                response.result.bhtMissRate = hit->bhtMissRate;
                response.cacheHit = true;
                response.diskHit = from_disk;
                response.seconds = secondsSince(start);
                out[i] = Result<SweepResponse>(std::move(response));
                ++local.cacheHits;
                continue;
            }
        }
        groups[batchGroupKey(req)].push_back(i);
    }

    // Phase 2: one envelope replay per group, sliced per member.
    for (const auto &[group_key, members] : groups) {
        static_cast<void>(group_key);
        const SweepRequest &first = requests[members.front()];
        Result<std::shared_ptr<const PreparedTrace>> prep =
            prepared(first.trace);
        if (!prep.ok()) {
            for (std::size_t m : members)
                out[m] = Result<SweepResponse>(prep.error());
            continue;
        }

        SweepOptions envelope = first.options;
        for (std::size_t m : members) {
            const SweepOptions &o = requests[m].options;
            envelope.minTotalBits =
                std::min(envelope.minTotalBits, o.minTotalBits);
            envelope.maxTotalBits =
                std::max(envelope.maxTotalBits, o.maxTotalBits);
        }
        SweepResult swept =
            sweepScheme(*prep.value(), first.kind, envelope);
        const bool multi = members.size() > 1;
        ++local.envelopeSweeps;
        local.kernel.merge(swept.kernel);
        if (multi) {
            ++local.fusedGroupsFormed;
            local.coalescedRequests += members.size();
        }

        for (std::size_t m : members) {
            const SweepRequest &req = requests[m];
            SweepResult sliced = swept;
            sliced.misprediction =
                sliceSurface(swept.misprediction,
                             req.options.minTotalBits,
                             req.options.maxTotalBits);
            sliced.aliasing = sliceSurface(swept.aliasing,
                                           req.options.minTotalBits,
                                           req.options.maxTotalBits);
            sliced.harmless = sliceSurface(swept.harmless,
                                           req.options.minTotalBits,
                                           req.options.maxTotalBits);
            if (!req.bypassCache) {
                CachedSweep payload{sliced.misprediction,
                                    sliced.aliasing, sliced.harmless,
                                    sliced.bhtMissRate};
                static_cast<void>(
                    cache_.store(cacheKey(req), payload));
            }
            SweepResponse response(std::move(sliced));
            response.coalesced = multi;
            response.seconds = secondsSince(start);
            out[m] = Result<SweepResponse>(std::move(response));
        }
    }

    if (counters)
        counters->merge(local);
    std::vector<Result<SweepResponse>> results;
    results.reserve(out.size());
    for (std::optional<Result<SweepResponse>> &slot : out)
        results.push_back(std::move(*slot));
    return results;
}

Result<ConfigResult>
SweepSession::point(const TraceHash &trace, SchemeKind kind,
                    unsigned row_bits, unsigned col_bits,
                    const SweepOptions &opts)
{
    // The 2-bit family tolerates degenerate (0-bit) axes; the zoo
    // schemes assert on them.  A daemon must answer a bad point
    // request with an error, not an abort, so pre-check here.
    if (kind == SchemeKind::Tage &&
        (row_bits < 1 || row_bits > 28 || col_bits < 1 ||
         col_bits > 28))
        return BPSIM_ERROR("tage point needs rows (tagged entry "
                           "bits) and cols (base PHT bits) in 1..28; "
                           "got rows=", row_bits, " cols=", col_bits);
    if (kind == SchemeKind::Perceptron &&
        (row_bits < 1 || row_bits > 64 || col_bits > 28))
        return BPSIM_ERROR("perceptron point needs rows (history "
                           "bits) in 1..64 and cols (table entry "
                           "bits) <= 28; got rows=", row_bits,
                           " cols=", col_bits);
    Result<std::shared_ptr<const PreparedTrace>> prep =
        prepared(trace);
    if (!prep.ok())
        return prep.error();
    return simulateConfig(*prep.value(), kind, row_bits, col_bits,
                          opts);
}

Result<std::vector<BestConfigRow>>
SweepSession::bestConfigs(const TraceHash &trace,
                          const Table3Options &opts)
{
    const std::vector<Table3SchemeSpec> plan = table3Plan(opts);

    std::vector<std::optional<SweepResponse>> sweeps(plan.size());
    std::vector<Status> statuses(plan.size());
    const unsigned threads = ThreadPool::resolveThreads(opts.threads);
    auto run_one = [&](std::size_t i) {
        Result<SweepResponse> r = sweep(
            SweepRequest{trace, plan[i].kind, plan[i].options});
        if (r.ok())
            sweeps[i] = std::move(r).value();
        else
            statuses[i] = r.error();
    };
    if (threads <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            run_one(i);
    } else {
        ThreadPool::shared().parallelFor(plan.size(), threads,
                                         run_one);
    }

    std::vector<BestConfigRow> rows;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (!statuses[i].ok())
            return statuses[i].error();
        rows.push_back(bestConfigRowFromSweep(
            plan[i], sweeps[i]->result, opts.budgetBits));
    }
    return rows;
}

} // namespace bpsim

#include "sim/sweep_session.hh"

#include <chrono>
#include <optional>

#include "common/config.hh"
#include "common/thread_pool.hh"
#include "workload/trace_key.hh"

namespace bpsim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

SweepSession::SweepSession(std::string cache_dir)
    : cache_(std::move(cache_dir))
{
}

Result<TraceHandle>
SweepSession::internProfile(const std::string &profile,
                            std::uint64_t target_conditionals)
{
    return bpsim::internProfile(registry_, profile,
                                target_conditionals);
}

TraceHandle
SweepSession::internTrace(MemoryTrace trace)
{
    return registry_.internTrace(std::move(trace));
}

Result<TraceHandle>
SweepSession::internFile(const std::string &path)
{
    return registry_.internFile(path);
}

std::string
SweepSession::cacheConfigKey(SchemeKind kind, const SweepOptions &opts)
{
    // Only result-affecting options, and of those only the ones the
    // scheme reads: a gshare sweep must not miss because an unused
    // BHT knob changed.  threads/fuseJobs/simd are bit-identical
    // execution knobs (pinned by the differential tests) and are
    // deliberately absent.
    std::vector<std::string> tokens = {
        "min=" + std::to_string(opts.minTotalBits),
        "max=" + std::to_string(opts.maxTotalBits),
        "alias=" + std::to_string(opts.trackAliasing ? 1 : 0),
    };
    if (kind == SchemeKind::Path) {
        tokens.push_back("pathbits=" +
                         std::to_string(opts.pathBitsPerTarget));
    }
    if (kind == SchemeKind::PAsFinite) {
        tokens.push_back("bht=" + std::to_string(opts.bhtEntries));
        tokens.push_back("assoc=" + std::to_string(opts.bhtAssoc));
        tokens.push_back(
            "reset=" +
            std::to_string(static_cast<int>(opts.bhtResetPolicy)));
    }
    return Config::parseTokens(tokens).canonicalKey();
}

CacheKey
SweepSession::cacheKey(const SweepRequest &request)
{
    return CacheKey{request.trace, schemeKindName(request.kind),
                    cacheConfigKey(request.kind, request.options),
                    kEngineVersion};
}

Result<std::shared_ptr<const PreparedTrace>>
SweepSession::prepared(const TraceHash &trace)
{
    // The lock is held across preparation, mirroring the registry's
    // intern discipline: concurrent requests for the same trace wait
    // for one build instead of duplicating it.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = prepared_.find(trace);
    if (it != prepared_.end())
        return it->second.prepared;
    TraceHandle handle = registry_.lookup(trace);
    if (!handle.valid()) {
        return BPSIM_ERROR("trace ", trace.hex(),
                           " is not interned in this session (and "
                           "the result cache cannot answer)");
    }
    auto prep =
        std::make_shared<const PreparedTrace>(*handle.trace);
    prepared_.emplace(trace,
                      PreparedEntry{prep, handle.trace});
    return prep;
}

Result<SweepResponse>
SweepSession::sweep(const SweepRequest &request)
{
    const auto start = std::chrono::steady_clock::now();
    const CacheKey key = cacheKey(request);

    if (!request.bypassCache) {
        bool from_disk = false;
        std::optional<CachedSweep> hit =
            cache_.lookup(key, &from_disk);
        if (hit) {
            // Rehydrate: cached surfaces carry their full names, so
            // the hit is byte-identical to the original result.
            // Kernel telemetry stays zeroed -- nothing executed.
            SweepResponse response(SweepResult("", ""));
            response.result.misprediction = hit->misprediction;
            response.result.aliasing = hit->aliasing;
            response.result.harmless = hit->harmless;
            response.result.bhtMissRate = hit->bhtMissRate;
            response.cacheHit = true;
            response.diskHit = from_disk;
            response.seconds = secondsSince(start);
            return response;
        }
    }

    Result<std::shared_ptr<const PreparedTrace>> prep =
        prepared(request.trace);
    if (!prep.ok())
        return prep.error();

    SweepResponse response(
        sweepScheme(*prep.value(), request.kind, request.options));
    if (!request.bypassCache) {
        CachedSweep payload{response.result.misprediction,
                            response.result.aliasing,
                            response.result.harmless,
                            response.result.bhtMissRate};
        // Disk-store failures are counted in cache().stats() but do
        // not fail the sweep: the result in hand is correct.
        static_cast<void>(cache_.store(key, payload));
    }
    response.seconds = secondsSince(start);
    return response;
}

Result<ConfigResult>
SweepSession::point(const TraceHash &trace, SchemeKind kind,
                    unsigned row_bits, unsigned col_bits,
                    const SweepOptions &opts)
{
    Result<std::shared_ptr<const PreparedTrace>> prep =
        prepared(trace);
    if (!prep.ok())
        return prep.error();
    return simulateConfig(*prep.value(), kind, row_bits, col_bits,
                          opts);
}

Result<std::vector<BestConfigRow>>
SweepSession::bestConfigs(const TraceHash &trace,
                          const Table3Options &opts)
{
    const std::vector<Table3SchemeSpec> plan = table3Plan(opts);

    std::vector<std::optional<SweepResponse>> sweeps(plan.size());
    std::vector<Status> statuses(plan.size());
    const unsigned threads = ThreadPool::resolveThreads(opts.threads);
    auto run_one = [&](std::size_t i) {
        Result<SweepResponse> r = sweep(
            SweepRequest{trace, plan[i].kind, plan[i].options});
        if (r.ok())
            sweeps[i] = std::move(r).value();
        else
            statuses[i] = r.error();
    };
    if (threads <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            run_one(i);
    } else {
        ThreadPool::shared().parallelFor(plan.size(), threads,
                                         run_one);
    }

    std::vector<BestConfigRow> rows;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (!statuses[i].ok())
            return statuses[i].error();
        rows.push_back(bestConfigRowFromSweep(
            plan[i], sweeps[i]->result, opts.budgetBits));
    }
    return rows;
}

} // namespace bpsim

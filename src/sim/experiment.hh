/**
 * @file
 * Reusable experiment drivers shared by the bench binaries and examples:
 * best-configuration extraction (Table 3), difference surfaces
 * (Figures 7 and 8), and convenient profile-to-prepared-trace plumbing.
 */

#ifndef BPSIM_SIM_EXPERIMENT_HH
#define BPSIM_SIM_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/prepared_trace.hh"
#include "sim/sweep.hh"

namespace bpsim {

/** Generate a profile's trace and prepare it for sweeping. */
PreparedTrace prepareProfile(const std::string &profile,
                             std::uint64_t target_conditionals = 0);

/** A best-in-tier entry for Table 3. */
struct BestConfig
{
    unsigned rowBits = 0;
    unsigned colBits = 0;
    double mispRate = 0.0;
};

/** One scheme's Table 3 row: best config per counter budget. */
struct BestConfigRow
{
    std::string scheme;
    /** First-level miss rate; negative when not applicable. */
    double bhtMissRate = -1.0;
    /** One entry per requested budget (log2 counters). */
    std::vector<std::optional<BestConfig>> best;
};

/**
 * The scheme lineup of the paper's Table 3: GAs, gshare, PAs with an
 * infinite first level, and PAs with 2048-, 1024- and 128-entry 4-way
 * BHTs.
 */
struct Table3Options
{
    /** Budgets as log2 counter counts (paper: 512, 4096, 32768). */
    std::vector<unsigned> budgetBits = {9, 12, 15};
    std::vector<std::size_t> bhtSizes = {2048, 1024, 128};
    unsigned bhtAssoc = 4;
    /**
     * Concurrent executors across and within the per-scheme sweeps
     * (0 = one per hardware thread, 1 = serial).  The row order and
     * every value are identical for any setting.
     */
    unsigned threads = 1;
};

/** One entry of the Table 3 scheme lineup: display name + sweep. */
struct Table3SchemeSpec
{
    std::string name;
    SchemeKind kind = SchemeKind::GAs;
    SweepOptions options;
};

/**
 * Expand @p opts into the concrete per-scheme sweeps of Table 3.
 * Shared by bestConfigTable and SweepSession::bestConfigs so the two
 * paths replay byte-identical configuration lattices (which is what
 * lets the session serve Table 3 from the result cache).
 */
std::vector<Table3SchemeSpec> table3Plan(const Table3Options &opts);

/** Reduce one scheme's sweep to its Table 3 row. */
BestConfigRow
bestConfigRowFromSweep(const Table3SchemeSpec &spec,
                       const SweepResult &sweep,
                       const std::vector<unsigned> &budget_bits);

/** Compute the Table 3 rows for one prepared trace. */
std::vector<BestConfigRow>
bestConfigTable(const PreparedTrace &trace,
                const Table3Options &opts = {});

/** The paper's tier range: 2^4 (16) through 2^15 (32768) counters. */
SweepOptions paperSweepOptions();

} // namespace bpsim

#endif // BPSIM_SIM_EXPERIMENT_HH

/**
 * @file
 * The trace-driven simulation loop: replay a trace through a predictor,
 * collecting prediction statistics.  Conditional branches are predicted
 * and trained; other control transfers pass through untouched (the
 * predictors studied here are direction predictors).
 */

#ifndef BPSIM_SIM_ENGINE_HH
#define BPSIM_SIM_ENGINE_HH

#include "predictor/predictor.hh"
#include "stats/prediction_stats.hh"
#include "trace/trace_source.hh"

namespace bpsim {

/**
 * Replay @p source through @p predictor.
 * @param track_sites keep a per-static-branch breakdown
 * @return aggregate prediction statistics
 */
PredictionStats runPredictor(TraceSource &source,
                             BranchPredictor &predictor,
                             bool track_sites = false);

/**
 * Replay @p source through several predictors in lock-step (they all see
 * the same stream; useful for head-to-head example output).
 */
std::vector<PredictionStats>
runPredictors(TraceSource &source,
              const std::vector<BranchPredictor *> &predictors);

} // namespace bpsim

#endif // BPSIM_SIM_ENGINE_HH

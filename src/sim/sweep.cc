#include "sim/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>

#include "common/logging.hh"
#include "common/packed_pht.hh"
#include "common/sat_counter.hh"
#include "common/thread_pool.hh"
#include "stats/aliasing.hh"

namespace bpsim {

namespace {

/**
 * The inner simulation kernel: one configuration, with the row index and
 * the all-ones-pattern flag supplied per instance by functors so each
 * scheme compiles to a tight loop.
 */
template <typename RowFn, typename OnesFn>
ConfigResult
runKernel(const PreparedTrace &t, unsigned row_bits, unsigned col_bits,
          bool track_aliasing, RowFn row_of, OnesFn all_ones_of)
{
    const std::uint64_t row_mask = mask(row_bits);
    const std::uint64_t col_mask = mask(col_bits);
    std::vector<TwoBitCounter> counters(
        std::size_t{1} << (row_bits + col_bits));
    AliasTracker tracker(track_aliasing ? counters.size() : 1);

    std::uint64_t mispredicts = 0;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t row = row_of(i) & row_mask;
        std::uint64_t col = wordIndex(t.pc(i)) & col_mask;
        auto idx =
            static_cast<std::size_t>((row << col_bits) | col);
        if (track_aliasing)
            tracker.access(idx, t.pc(i),
                           row_bits > 0 && all_ones_of(i));
        bool taken = t.taken(i);
        if (counters[idx].predict() != taken)
            ++mispredicts;
        counters[idx].update(taken);
    }

    ConfigResult out;
    out.mispRate =
        n ? static_cast<double>(mispredicts) / static_cast<double>(n)
          : 0.0;
    if (track_aliasing) {
        out.aliasRate = tracker.aliasRate();
        out.harmlessFraction = tracker.harmlessFraction();
    }
    return out;
}

/**
 * Replay a full multi-table model (TAGE / perceptron) over the trace.
 * These schemes have no packed-counter form, no AliasTracker hook (the
 * aliasing/harmless surfaces stay zero; analyzeInterference owns their
 * interference story), and no fused kernel -- one model, one pass.
 */
template <typename Model>
ConfigResult
runModelReplay(const PreparedTrace &t, Model model)
{
    std::uint64_t mispredicts = 0;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        bool taken = t.taken(i);
        if (model.step(t.pc(i), t.globalHistory(i), taken).prediction !=
            taken)
            ++mispredicts;
    }
    ConfigResult out;
    out.mispRate =
        n ? static_cast<double>(mispredicts) / static_cast<double>(n)
          : 0.0;
    return out;
}

/** Dispatch the kernel for one configuration of one scheme. */
ConfigResult
runConfig(const PreparedTrace &t, SchemeKind kind, unsigned row_bits,
          unsigned col_bits, const SweepOptions &opts,
          const std::vector<std::uint64_t> *aux_stream)
{
    const bool track_aliasing = opts.trackAliasing;
    const std::uint64_t row_mask = mask(row_bits);
    auto never_ones = [](std::size_t) { return false; };

    switch (kind) {
      case SchemeKind::AddressIndexed:
        bpsim_assert(row_bits == 0, "address-indexed tables have no "
                     "rows");
        return runKernel(t, row_bits, col_bits, track_aliasing,
                         [](std::size_t) { return std::uint64_t{0}; },
                         never_ones);

      case SchemeKind::GAg:
      case SchemeKind::GAs:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.globalHistory(i); },
            [&](std::size_t i) {
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Gshare:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) {
                return t.globalHistory(i) ^ wordIndex(t.pc(i));
            },
            [&](std::size_t i) {
                // Harmlessness keys on the outcome pattern itself.
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Path:
        bpsim_assert(aux_stream, "path sweep needs a history stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            never_ones);

      case SchemeKind::PAsPerfect:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.selfHistory(i); },
            [&](std::size_t i) {
                return (t.selfHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::PAsFinite:
        bpsim_assert(aux_stream, "finite-PAs sweep needs a BHT stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            [&](std::size_t i) {
                return ((*aux_stream)[i] & row_mask) == row_mask;
            });

      case SchemeKind::Tage:
        return runModelReplay(
            t, TageModel(tageSweepParams(row_bits, col_bits, opts)));

      case SchemeKind::Perceptron:
        return runModelReplay(
            t, PerceptronModel(
                   perceptronSweepParams(row_bits, col_bits, opts)));
    }
    bpsim_panic("unreachable scheme kind");
}

/** Resolved within-group execution shape for one fused replay. */
struct ReplayExec
{
    /** Lane shard executors (resolveFusedThreads, >= 1). */
    unsigned shards = 1;
    /** Trace segments (resolveSegments, >= 1; 1 = exact). */
    unsigned segments = 1;
    /** Warm-up branches before each speculative segment. */
    std::size_t warmup = 2048;
};

/**
 * The fused replay: one trace pass updates every member configuration.
 * Per branch the raw row value and the pc word index are computed once
 * (the members share them by construction); each member then derives
 * its own table index by masking and trains its packed counter table.
 *
 * The pass is block-tiled for locality: a block of branches is decoded
 * once into a compact per-branch record, then every lane makes one
 * tight pass over the decoded block.  The decode cost (row functor,
 * word-index column, outcome bit) is amortised over all lanes, the
 * block stays L1-resident while the lanes stream it, and each lane's
 * packed table stays cache-hot for the whole block instead of being
 * evicted between branches by a hundred sibling tables.
 *
 * When every member fits narrow limits (row and column <= 15 bits --
 * always true for the paper's <= 2^15-counter tables), lanes are
 * further grouped by column width: every lane with colBits == c indexes
 * its table with ((row & rowMask) << c) | (col & colMask), which is
 * ((row << c) | (col & mask(c))) & mask(totalBits).  The c-dependent
 * part is shared, so it is materialised once per (block, c) as a
 * structure-of-arrays uint32 record stream carrying the outcome in bit
 * 31 (outcomes come from the prepared trace's packed bit stream, one
 * 64-branch word at a time), and the hot loop touches only that
 * stream, the outcome bits already folded into it, and the lane
 * tables.  Lanes sharing a record stream are then replayed
 * LaneBatch::kMaxLanes at a time through the runtime-dispatched SIMD
 * kernel (common/simd.hh): per record, one shared stream load feeds
 * 4-16 lanes' mask+gather+packed-counter-RMW in parallel, instead of
 * one scalar pass per lane.  Every dispatch target is bit-identical to
 * the scalar loop.
 *
 * Within the group the replay is decomposed into (shard x segment)
 * tasks (see DESIGN.md "Segment-parallel replay").  Shards partition
 * the *lanes*: each task owns a disjoint, contiguous run of the
 * colBits-sorted lane list with private packed tables, so sharding
 * never changes any lane's update sequence and results are
 * bit-identical for any shard count -- the only cost is that each
 * shard repeats the block decode.  Segments partition the *trace* at
 * block boundaries: segment k > 0 starts from cold counter state,
 * replays an uncounted warm-up window of exec.warmup branches before
 * its range to converge the counters, then counts its own range; the
 * per-(lane, segment) counts are summed in segment order.  Segment
 * boundaries and warm-up depend only on (trace length, segments,
 * warmup), so speculative results are deterministic and independent of
 * shard/worker counts; segments == 1 replays [0, n) cold-started
 * exactly like the serial engine.
 */
template <typename RowFn>
void
runFusedReplay(const PreparedTrace &t,
               const std::vector<ConfigJob> &jobs,
               const std::vector<std::size_t> &members, RowFn row_of,
               ConfigResult *slots, SimdTarget target,
               const ReplayExec &exec, KernelTelemetry *telemetry)
{
    struct LaneSpec
    {
        std::size_t member;
        std::uint64_t rowMask;
        std::uint64_t colMask;
        unsigned colBits;
    };

    struct Lane
    {
        std::uint64_t rowMask;
        std::uint64_t colMask;
        unsigned colBits;
        std::uint64_t mispredicts = 0;
        PackedPht pht;

        explicit Lane(const LaneSpec &spec)
            : rowMask(spec.rowMask), colMask(spec.colMask),
              colBits(spec.colBits),
              pht((static_cast<std::size_t>(spec.rowMask) + 1) *
                  (static_cast<std::size_t>(spec.colMask) + 1))
        {
        }
    };

    std::vector<LaneSpec> specs;
    specs.reserve(members.size());
    bool narrow = true;
    for (std::size_t member : members) {
        const ConfigJob &job = jobs[member];
        specs.push_back(LaneSpec{member, mask(job.rowBits),
                                 mask(job.colBits), job.colBits});
        if (job.rowBits > 15 || job.colBits > 15)
            narrow = false;
    }
    // Keep column classes contiguous so each shard materialises as few
    // per-column record streams as possible.  Stable: plan order is
    // preserved within a class, and the sort affects execution
    // placement only -- every lane's result lands in slots[member].
    std::stable_sort(specs.begin(), specs.end(),
                     [](const LaneSpec &a, const LaneSpec &b) {
                         return a.colBits < b.colBits;
                     });

    // 2048 * 4 bytes keeps each decoded block at 8 KiB -- small enough
    // to share L1 with the largest packed table a paper sweep uses
    // (2^15 counters = 8 KiB).  A multiple of 64 so blocks consume
    // whole packed-outcome words.
    constexpr std::size_t blockSize = 2048;
    static_assert(blockSize % 64 == 0,
                  "blocks must consume whole taken words");
    const std::size_t n = t.size();
    const std::size_t nblocks = (n + blockSize - 1) / blockSize;

    // Segments split at block boundaries (so counted tiles stay
    // 64-aligned) and never exceed the block count; shards never
    // exceed the lane count.  Balanced integer splits keep both
    // partitions deterministic.
    const std::size_t lane_count = specs.size();
    const std::size_t shards = std::max<std::size_t>(
        1, std::min<std::size_t>(exec.shards, lane_count));
    const std::size_t segs = std::max<std::size_t>(
        1, std::min<std::size_t>(exec.segments,
                                 std::max<std::size_t>(nblocks, 1)));
    const std::size_t tasks = shards * segs;
    const auto shard_begin = [&](std::size_t s) {
        return s * lane_count / shards;
    };
    const auto seg_begin = [&](std::size_t k) {
        return std::min(n, k * nblocks / segs * blockSize);
    };

    // Per-(segment, lane) mispredict counts: task (s, k) writes only
    // its shard's slice of row k, so placement is deterministic and
    // unsynchronised.
    std::vector<std::uint64_t> seg_misses(segs * lane_count, 0);
    std::vector<KernelTelemetry> task_tel(tasks);

    const auto run_task = [&](std::size_t task_idx) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t s = task_idx / segs;
        const std::size_t k = task_idx % segs;
        const std::size_t lane_lo = shard_begin(s);
        const std::size_t lane_hi = shard_begin(s + 1);
        const std::size_t seg_lo = seg_begin(k);
        const std::size_t seg_hi = seg_begin(k + 1);
        // Segment 0 starts at the true trace start and needs no
        // warm-up; later segments converge their cold counters on the
        // window just before their range (uncounted).
        const std::size_t warm_lo =
            seg_lo > exec.warmup ? seg_lo - exec.warmup : 0;
        KernelTelemetry &tel = task_tel[task_idx];
        tel.warmupBranches += seg_lo - warm_lo;

        // Private tables per task: shards must not share bytes (the
        // SIMD kernels require disjoint lanes), and speculative
        // segments must start cold by construction.
        std::vector<Lane> lanes;
        lanes.reserve(lane_hi - lane_lo);
        for (std::size_t j = lane_lo; j < lane_hi; ++j)
            lanes.emplace_back(specs[j]);

        if (narrow) {
            // Lanes sharing a column width share their fused record;
            // the record for c occupies bits 0..29 (row << c tops out
            // at bit 14 + 15), so the outcome bit in 31 never collides
            // with any total-bits mask.
            std::vector<std::vector<Lane *>> by_col(16);
            for (Lane &lane : lanes)
                by_col[lane.colBits].push_back(&lane);

            // Raw decode: outcome in bit 31, row in bits 29..15,
            // column in bits 14..0.  Lanes only read the row/column
            // bits their masks cover, so the 15-bit truncation is
            // lossless.
            std::vector<std::uint32_t> decoded(blockSize);
            std::vector<std::uint32_t> record(blockSize);
            const auto replay_span = [&](std::size_t lo,
                                         std::size_t hi, bool count) {
                for (std::size_t base = lo; base < hi;
                     base += blockSize) {
                    const std::size_t m =
                        std::min(blockSize, hi - base);
                    if (count)
                        ++tel.blocksReplayed;
                    std::uint64_t taken_word = 0;
                    for (std::size_t i = 0; i < m; ++i) {
                        const std::size_t g = base + i;
                        // Outcomes arrive packed, one 64-branch word
                        // at a time; reload at word boundaries and on
                        // the first (possibly unaligned, for warm-up
                        // spans) branch.
                        if (i == 0 || (g & 63) == 0)
                            taken_word = t.takenWord(g >> 6);
                        const auto tk = static_cast<std::uint32_t>(
                            (taken_word >> (g & 63)) & 1u);
                        decoded[i] =
                            (tk << 31) |
                            ((static_cast<std::uint32_t>(row_of(g)) &
                              0x7FFFu) << 15) |
                            (t.wordBits(g) & 0x7FFFu);
                    }
                    for (unsigned c = 0; c < by_col.size(); ++c) {
                        std::vector<Lane *> &col_lanes = by_col[c];
                        if (col_lanes.empty())
                            continue;
                        const auto col_mask =
                            static_cast<std::uint32_t>(mask(c));
                        for (std::size_t i = 0; i < m; ++i) {
                            const std::uint32_t d = decoded[i];
                            record[i] = (d & 0x80000000u) |
                                        (((d >> 15) & 0x7FFFu) << c) |
                                        (d & col_mask);
                        }
                        // Replay the shared record stream through the
                        // lanes, LaneBatch::kMaxLanes at a time, on
                        // the dispatched SIMD kernel.
                        for (std::size_t first = 0;
                             first < col_lanes.size();
                             first += LaneBatch::kMaxLanes) {
                            LaneBatch batch;
                            batch.lanes = static_cast<unsigned>(
                                std::min<std::size_t>(
                                    LaneBatch::kMaxLanes,
                                    col_lanes.size() - first));
                            for (unsigned l = 0; l < batch.lanes; ++l) {
                                Lane *lane = col_lanes[first + l];
                                batch.totalMask[l] =
                                    static_cast<std::uint32_t>(
                                        (lane->rowMask << c) |
                                        lane->colMask);
                                batch.pht[l] = lane->pht.data();
                            }
                            replayLaneBatch(target, record.data(), m,
                                            batch);
                            if (count) {
                                for (unsigned l = 0; l < batch.lanes;
                                     ++l)
                                    col_lanes[first + l]->mispredicts +=
                                        batch.misses[l];
                                ++tel.laneBatches;
                            }
                        }
                    }
                }
            };
            replay_span(warm_lo, seg_lo, false);
            replay_span(seg_lo, seg_hi, true);
        } else {
            // Wide fallback for configurations beyond the packed-
            // record limits: same tiling, 64-bit row/column records.
            std::vector<std::uint64_t> rows(blockSize),
                cols(blockSize);
            std::vector<std::uint8_t> takens(blockSize);
            const auto replay_span = [&](std::size_t lo,
                                         std::size_t hi, bool count) {
                for (std::size_t base = lo; base < hi;
                     base += blockSize) {
                    const std::size_t m =
                        std::min(blockSize, hi - base);
                    if (count)
                        ++tel.blocksReplayed;
                    for (std::size_t i = 0; i < m; ++i) {
                        const std::size_t g = base + i;
                        rows[i] = row_of(g);
                        cols[i] = wordIndex(t.pc(g));
                        takens[i] =
                            static_cast<std::uint8_t>(t.taken(g));
                    }
                    for (Lane &lane : lanes) {
                        const std::uint64_t row_mask = lane.rowMask;
                        const std::uint64_t col_mask = lane.colMask;
                        const unsigned col_bits = lane.colBits;
                        std::uint8_t *bytes = lane.pht.data();
                        std::uint64_t misses = 0;
                        for (std::size_t i = 0; i < m; ++i) {
                            const auto idx = static_cast<std::size_t>(
                                ((rows[i] & row_mask) << col_bits) |
                                (cols[i] & col_mask));
                            misses += PackedPht::predictAndUpdateRaw(
                                bytes, idx, takens[i]);
                        }
                        if (count)
                            lane.mispredicts += misses;
                    }
                }
            };
            replay_span(warm_lo, seg_lo, false);
            replay_span(seg_lo, seg_hi, true);
        }

        for (std::size_t j = 0; j < lanes.size(); ++j)
            seg_misses[k * lane_count + lane_lo + j] =
                lanes[j].mispredicts;
        tel.busySeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    };

    // Executors: the fusedThreads knob sizes the shard dimension, and
    // a speculative request implies its segments want to run
    // concurrently, so the task phase may use whichever is larger --
    // purely an execution choice, results never depend on it.
    const auto workers = static_cast<unsigned>(std::min<std::size_t>(
        tasks,
        std::max<std::size_t>(exec.shards, segs > 1 ? segs : 1)));
    const auto span0 = std::chrono::steady_clock::now();
    if (tasks == 1 || workers <= 1) {
        for (std::size_t task_idx = 0; task_idx < tasks; ++task_idx)
            run_task(task_idx);
    } else {
        ThreadPool::shared().parallelFor(tasks, workers, run_task);
    }

    KernelTelemetry counters;
    counters.target = target;
    counters.fusedGroups = 1;
    counters.lanes = lane_count;
    counters.wideLanes = narrow ? 0 : lane_count;
    counters.segments = segs;
    counters.laneShards = shards;
    counters.shardTasks = tasks;
    counters.shardWorkers = workers;
    counters.spanSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - span0)
            .count();
    for (const KernelTelemetry &tel : task_tel) {
        counters.blocksReplayed += tel.blocksReplayed;
        counters.laneBatches += tel.laneBatches;
        counters.warmupBranches += tel.warmupBranches;
        counters.busySeconds += tel.busySeconds;
    }

    // Reconcile: sum each lane's per-segment counts in segment order.
    // For segs == 1 this is exactly the serial total; for segs > 1 it
    // is the speculative estimate whose delta against exact mode the
    // bench and differential tests report.
    for (std::size_t j = 0; j < lane_count; ++j) {
        std::uint64_t total = 0;
        for (std::size_t k = 0; k < segs; ++k)
            total += seg_misses[k * lane_count + j];
        ConfigResult &out = slots[specs[j].member];
        out = ConfigResult{};
        out.mispRate =
            n ? static_cast<double>(total) / static_cast<double>(n)
              : 0.0;
    }
    if (telemetry)
        telemetry->merge(counters);
}

/**
 * The batched model-lane replay: one trace pass steps every member
 * TAGE or perceptron model of a model group (DESIGN.md "Batched
 * model-lane replay").  The multi-table zoo has no packed-2-bit form,
 * but it shares the fused engine's two amortisable costs: the per-
 * branch decode (pc word index, global history, outcome) is identical
 * for every member, and the xorFold hash chains depend only on shared
 * geometry -- every member of a sweep shares tagBits/histories (TAGE)
 * or the table count (perceptron), and members sharing an entry width
 * share their index folds exactly.  So the pass block-tiles the trace
 * like runFusedReplay (same 2048-branch tiles), decodes each block
 * once, materialises the hash keys once per (block, shared-geometry
 * class), and then:
 *
 *  - TAGE lanes replay through TageModel::stepWithKeys on the
 *    component-major key blocks -- the predict/train/allocate logic is
 *    the model's own, so batched and per-config replay cannot drift;
 *  - perceptron lanes drop their weights into int8 structure-of-arrays
 *    banks and replay PerceptronBatch::kMaxLanes at a time through the
 *    runtime-dispatched SIMD dot-product/update kernel
 *    (common/simd.hh), bit-identical to PerceptronModel::step.
 *
 * The within-group execution shape is runFusedReplay's shard x segment
 * task grid verbatim: shards partition the lanes (private models and
 * banks, bit-identical for any shard count), segments partition the
 * trace at block boundaries with the same uncounted warm-up window,
 * and the per-(lane, segment) counts are summed in segment order.
 * Cache-key semantics are therefore identical to the fused 2-bit path:
 * results depend on (trace, geometry, segments, warmup), never on
 * shard or worker counts.
 */
void
runModelBatch(const PreparedTrace &t, const SweepOptions &opts,
              const std::vector<ConfigJob> &jobs,
              const std::vector<std::size_t> &members,
              ConfigResult *slots, SimdTarget target,
              const ReplayExec &exec, KernelTelemetry *telemetry)
{
    static_assert(
        PerceptronBatch::kWeightMin == PerceptronModel::kWeightMin &&
            PerceptronBatch::kWeightMax == PerceptronModel::kWeightMax,
        "the SIMD perceptron kernel clamps to the model's range");

    bpsim_assert(!members.empty(), "empty model group");
    const SchemeKind kind = jobs[members.front()].kind;
    bpsim_assert(kind == SchemeKind::Tage ||
                     kind == SchemeKind::Perceptron,
                 "model groups hold only multi-table schemes");
    for (std::size_t member : members)
        bpsim_assert(jobs[member].kind == kind,
                     "model groups never mix schemes");

    struct LaneSpec
    {
        std::size_t member;
        unsigned rowBits;
        unsigned colBits;
    };
    std::vector<LaneSpec> specs;
    specs.reserve(members.size());
    for (std::size_t member : members)
        specs.push_back(LaneSpec{member, jobs[member].rowBits,
                                 jobs[member].colBits});
    // Keep entry-width classes contiguous (TAGE components and
    // perceptron tables are 2^entryBits entries: rowBits for TAGE,
    // colBits for perceptron) so each shard materialises as few index
    // folds as possible.  Stable, execution placement only.
    const bool is_tage = kind == SchemeKind::Tage;
    std::stable_sort(specs.begin(), specs.end(),
                     [is_tage](const LaneSpec &a, const LaneSpec &b) {
                         return (is_tage ? a.rowBits : a.colBits) <
                                (is_tage ? b.rowBits : b.colBits);
                     });

    // Same tile size as the fused replay: the decoded block (8-byte
    // word index + 8-byte history + outcome) stays L2-resident while
    // every lane streams it.
    constexpr std::size_t blockSize = 2048;
    static_assert(blockSize % 64 == 0,
                  "blocks must consume whole taken words");
    const std::size_t n = t.size();
    const std::size_t nblocks = (n + blockSize - 1) / blockSize;

    const std::size_t lane_count = specs.size();
    const std::size_t shards = std::max<std::size_t>(
        1, std::min<std::size_t>(exec.shards, lane_count));
    const std::size_t segs = std::max<std::size_t>(
        1, std::min<std::size_t>(exec.segments,
                                 std::max<std::size_t>(nblocks, 1)));
    const std::size_t tasks = shards * segs;
    const auto shard_begin = [&](std::size_t s) {
        return s * lane_count / shards;
    };
    const auto seg_begin = [&](std::size_t k) {
        return std::min(n, k * nblocks / segs * blockSize);
    };

    std::vector<std::uint64_t> seg_misses(segs * lane_count, 0);
    std::vector<KernelTelemetry> task_tel(tasks);

    const auto run_task = [&](std::size_t task_idx) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t s = task_idx / segs;
        const std::size_t k = task_idx % segs;
        const std::size_t lane_lo = shard_begin(s);
        const std::size_t lane_hi = shard_begin(s + 1);
        const std::size_t seg_lo = seg_begin(k);
        const std::size_t seg_hi = seg_begin(k + 1);
        const std::size_t warm_lo =
            seg_lo > exec.warmup ? seg_lo - exec.warmup : 0;
        KernelTelemetry &tel = task_tel[task_idx];
        tel.warmupBranches += seg_lo - warm_lo;

        const std::size_t task_lanes = lane_hi - lane_lo;
        std::vector<std::uint64_t> lane_misses(task_lanes, 0);

        // Shared per-block decode: full 64-bit pc word index (the zoo
        // hashes fold all of it, unlike the 15-bit packed columns),
        // the history register, and the unpacked outcome byte the
        // perceptron kernel consumes directly.
        std::vector<std::uint64_t> widx(blockSize), gh(blockSize);
        std::vector<std::uint8_t> tk(blockSize);
        const auto decode_block = [&](std::size_t base,
                                      std::size_t m) {
            for (std::size_t i = 0; i < m; ++i) {
                const std::size_t g = base + i;
                widx[i] = wordIndex(t.pc(g));
                gh[i] = t.globalHistory(g);
                tk[i] = static_cast<std::uint8_t>(t.taken(g));
            }
        };

        if (is_tage) {
            const auto ncomp =
                static_cast<unsigned>(opts.tageHistories.size());
            const unsigned tag_bits = opts.tageTagBits;
            std::uint64_t hmask[8];
            for (unsigned j = 0; j < ncomp && j < 8; ++j)
                hmask[j] = mask(opts.tageHistories[j]);

            std::vector<TageModel> models;
            models.reserve(task_lanes);
            for (std::size_t j = lane_lo; j < lane_hi; ++j)
                models.emplace_back(tageSweepParams(
                    specs[j].rowBits, specs[j].colBits, opts));

            // Component-major key blocks, shared across lanes: tags
            // depend only on (tagBits, histories) -- group-wide -- and
            // entry indices additionally on entryBits, so they are
            // materialised once per (block, entry-width class).
            std::vector<std::uint16_t> tags(ncomp * blockSize);
            std::vector<std::uint32_t> idxf(ncomp * blockSize);
            std::vector<std::uint16_t> wtagf(blockSize);
            std::vector<std::uint32_t> wfold(blockSize);

            const auto replay_span = [&](std::size_t lo,
                                         std::size_t hi, bool count) {
                for (std::size_t base = lo; base < hi;
                     base += blockSize) {
                    const std::size_t m =
                        std::min(blockSize, hi - base);
                    if (count)
                        ++tel.blocksReplayed;
                    decode_block(base, m);
                    for (std::size_t i = 0; i < m; ++i)
                        wtagf[i] = static_cast<std::uint16_t>(
                            xorFold(widx[i], tag_bits));
                    for (unsigned j = 0; j < ncomp; ++j) {
                        std::uint16_t *out = tags.data() +
                                             j * blockSize;
                        for (std::size_t i = 0; i < m; ++i) {
                            const std::uint64_t h = gh[i] & hmask[j];
                            out[i] = static_cast<std::uint16_t>(
                                (wtagf[i] ^ xorFold(h, tag_bits) ^
                                 (xorFold(h, tag_bits - 1) << 1)) &
                                mask(tag_bits));
                        }
                    }
                    for (std::size_t first = 0; first < task_lanes;) {
                        const unsigned eb =
                            specs[lane_lo + first].rowBits;
                        std::size_t last = first;
                        while (last < task_lanes &&
                               specs[lane_lo + last].rowBits == eb)
                            ++last;
                        if (count)
                            ++tel.modelBatches;
                        const std::uint64_t eb_mask = mask(eb);
                        for (std::size_t i = 0; i < m; ++i)
                            wfold[i] = static_cast<std::uint32_t>(
                                xorFold(widx[i], eb));
                        for (unsigned j = 0; j < ncomp; ++j) {
                            std::uint32_t *out = idxf.data() +
                                                 j * blockSize;
                            for (std::size_t i = 0; i < m; ++i)
                                out[i] = static_cast<std::uint32_t>(
                                    (xorFold(gh[i] & hmask[j], eb) ^
                                     wfold[i]) &
                                    eb_mask);
                        }
                        for (std::size_t j = first; j < last; ++j) {
                            TageModel &model = models[j];
                            const std::uint64_t base_mask =
                                mask(specs[lane_lo + j].colBits);
                            std::uint64_t misses = 0;
                            for (std::size_t i = 0; i < m; ++i) {
                                const bool taken = tk[i] != 0;
                                const bool pred =
                                    model
                                        .stepWithKeys(
                                            static_cast<std::size_t>(
                                                widx[i] & base_mask),
                                            idxf.data() + i,
                                            blockSize,
                                            tags.data() + i,
                                            blockSize, taken)
                                        .prediction;
                                misses += pred != taken;
                            }
                            if (count)
                                lane_misses[j] += misses;
                        }
                        first = last;
                    }
                }
            };
            replay_span(warm_lo, seg_lo, false);
            replay_span(seg_lo, seg_hi, true);
        } else {
            const unsigned tables = opts.perceptronTables;
            struct PerceptronLane
            {
                std::vector<std::int8_t> bank;
                std::int32_t theta;
                unsigned entryBits;
            };
            std::vector<PerceptronLane> lanes;
            lanes.reserve(task_lanes);
            for (std::size_t j = lane_lo; j < lane_hi; ++j) {
                // Validate through the real params (geometry errors
                // surface exactly as on the per-config path).
                perceptronSweepParams(specs[j].rowBits,
                                      specs[j].colBits, opts)
                    .validate();
                PerceptronLane lane;
                lane.entryBits = specs[j].colBits;
                // The SoA bank: table t's weight e at (t << eb) + e,
                // gather slack past the last weight (simd.hh).
                lane.bank.assign(
                    (static_cast<std::size_t>(tables)
                     << lane.entryBits) +
                        PackedPht::kGatherSlack,
                    0);
                lane.theta = static_cast<std::int32_t>(
                    (193u * specs[j].rowBits) / 100u + 14u);
                lanes.push_back(std::move(lane));
            }

            // Sub-tile the block for the pre-offset index buffer:
            // 64 branches x tables x kMaxLanes stays L1-resident.
            constexpr std::size_t kTile = 64;
            std::vector<std::uint32_t> idxbuf(
                kTile * tables * PerceptronBatch::kMaxLanes);

            const auto replay_span = [&](std::size_t lo,
                                         std::size_t hi, bool count) {
                for (std::size_t base = lo; base < hi;
                     base += blockSize) {
                    const std::size_t m =
                        std::min(blockSize, hi - base);
                    if (count)
                        ++tel.blocksReplayed;
                    decode_block(base, m);
                    for (std::size_t b_lo = 0; b_lo < task_lanes;
                         b_lo += PerceptronBatch::kMaxLanes) {
                        PerceptronBatch batch;
                        batch.lanes = static_cast<unsigned>(
                            std::min<std::size_t>(
                                PerceptronBatch::kMaxLanes,
                                task_lanes - b_lo));
                        batch.tables = tables;
                        for (unsigned l = 0; l < batch.lanes; ++l) {
                            PerceptronLane &lane = lanes[b_lo + l];
                            batch.weights[l] = lane.bank.data();
                            batch.theta[l] = lane.theta;
                        }
                        if (count)
                            ++tel.modelBatches;
                        std::uint32_t wfold[kTile];
                        for (std::size_t off = 0; off < m;
                             off += kTile) {
                            const std::size_t mt =
                                std::min(kTile, m - off);
                            int cur_eb = -1;
                            for (unsigned l = 0; l < batch.lanes;
                                 ++l) {
                                const PerceptronLane &lane =
                                    lanes[b_lo + l];
                                const unsigned eb = lane.entryBits;
                                const auto eb_mask =
                                    static_cast<std::uint32_t>(
                                        mask(eb));
                                if (static_cast<int>(eb) != cur_eb) {
                                    cur_eb = static_cast<int>(eb);
                                    for (std::size_t i = 0; i < mt;
                                         ++i)
                                        wfold[i] = static_cast<
                                            std::uint32_t>(
                                            xorFold(widx[off + i],
                                                    eb));
                                }
                                const unsigned h =
                                    specs[lane_lo + b_lo + l].rowBits;
                                const std::size_t stride =
                                    static_cast<std::size_t>(tables) *
                                    PerceptronBatch::kMaxLanes;
                                std::uint32_t *col = idxbuf.data() + l;
                                for (std::size_t i = 0; i < mt; ++i)
                                    col[i * stride] =
                                        static_cast<std::uint32_t>(
                                            widx[off + i]) &
                                        eb_mask;
                                const unsigned nseg = tables - 1;
                                for (unsigned tb = 1; tb < tables;
                                     ++tb) {
                                    const unsigned seg_l =
                                        (tb - 1) * h / nseg;
                                    const unsigned seg_h =
                                        tb * h / nseg;
                                    const auto off_t =
                                        static_cast<std::uint32_t>(
                                            tb)
                                        << eb;
                                    std::uint32_t *out =
                                        idxbuf.data() +
                                        tb *
                                            PerceptronBatch::
                                                kMaxLanes +
                                        l;
                                    for (std::size_t i = 0; i < mt;
                                         ++i) {
                                        const std::uint64_t seg =
                                            bitsAt(gh[off + i],
                                                   seg_l,
                                                   seg_h - seg_l);
                                        out[i * stride] =
                                            ((static_cast<
                                                  std::uint32_t>(
                                                  xorFold(seg, eb)) ^
                                              wfold[i]) &
                                             eb_mask) +
                                            off_t;
                                    }
                                }
                            }
                            replayPerceptronBatch(target,
                                                  idxbuf.data(),
                                                  tk.data() + off, mt,
                                                  batch);
                        }
                        if (count)
                            for (unsigned l = 0; l < batch.lanes; ++l)
                                lane_misses[b_lo + l] +=
                                    batch.misses[l];
                    }
                }
            };
            replay_span(warm_lo, seg_lo, false);
            replay_span(seg_lo, seg_hi, true);
        }

        for (std::size_t j = 0; j < task_lanes; ++j)
            seg_misses[k * lane_count + lane_lo + j] = lane_misses[j];
        tel.busySeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    };

    const auto workers = static_cast<unsigned>(std::min<std::size_t>(
        tasks,
        std::max<std::size_t>(exec.shards, segs > 1 ? segs : 1)));
    const auto span0 = std::chrono::steady_clock::now();
    if (tasks == 1 || workers <= 1) {
        for (std::size_t task_idx = 0; task_idx < tasks; ++task_idx)
            run_task(task_idx);
    } else {
        ThreadPool::shared().parallelFor(tasks, workers, run_task);
    }

    KernelTelemetry counters;
    counters.target = target;
    counters.modelGroups = 1;
    counters.modelLanes = lane_count;
    counters.segments = segs;
    counters.laneShards = shards;
    counters.shardTasks = tasks;
    counters.shardWorkers = workers;
    counters.spanSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - span0)
            .count();
    for (const KernelTelemetry &tel : task_tel) {
        counters.blocksReplayed += tel.blocksReplayed;
        counters.modelBatches += tel.modelBatches;
        counters.warmupBranches += tel.warmupBranches;
        counters.busySeconds += tel.busySeconds;
    }

    for (std::size_t j = 0; j < lane_count; ++j) {
        std::uint64_t total = 0;
        for (std::size_t k = 0; k < segs; ++k)
            total += seg_misses[k * lane_count + j];
        ConfigResult &out = slots[specs[j].member];
        out = ConfigResult{};
        out.mispRate =
            n ? static_cast<double>(total) / static_cast<double>(n)
              : 0.0;
    }
    if (telemetry)
        telemetry->merge(counters);
}

} // namespace

double
KernelTelemetry::lanesPerGroup() const
{
    return fusedGroups ? static_cast<double>(lanes) /
                             static_cast<double>(fusedGroups)
                       : 0.0;
}

double
KernelTelemetry::modelLanesPerGroup() const
{
    return modelGroups ? static_cast<double>(modelLanes) /
                             static_cast<double>(modelGroups)
                       : 0.0;
}

double
KernelTelemetry::hotBytesPerBranch() const
{
    if (lanes == 0)
        return 0.0;
    return (4.0 * static_cast<double>(lanes - wideLanes) +
            17.0 * static_cast<double>(wideLanes)) /
           static_cast<double>(lanes);
}

double
KernelTelemetry::segmentsPerGroup() const
{
    // Fused and model groups both run the shard x segment grid, so
    // the per-group means average over the combined population.
    const std::uint64_t groups = fusedGroups + modelGroups;
    return groups ? static_cast<double>(segments) /
                        static_cast<double>(groups)
                  : 0.0;
}

double
KernelTelemetry::shardsPerGroup() const
{
    const std::uint64_t groups = fusedGroups + modelGroups;
    return groups ? static_cast<double>(laneShards) /
                        static_cast<double>(groups)
                  : 0.0;
}

double
KernelTelemetry::workerUtilization() const
{
    if (spanSeconds <= 0.0 || shardWorkers == 0)
        return 0.0;
    return busySeconds /
           (spanSeconds * static_cast<double>(shardWorkers));
}

void
KernelTelemetry::merge(const KernelTelemetry &other)
{
    target = other.target;
    fusedGroups += other.fusedGroups;
    fallbackJobs += other.fallbackJobs;
    lanes += other.lanes;
    wideLanes += other.wideLanes;
    laneBatches += other.laneBatches;
    blocksReplayed += other.blocksReplayed;
    segments += other.segments;
    laneShards += other.laneShards;
    shardTasks += other.shardTasks;
    warmupBranches += other.warmupBranches;
    modelGroups += other.modelGroups;
    modelLanes += other.modelLanes;
    modelBatches += other.modelBatches;
    busySeconds += other.busySeconds;
    spanSeconds += other.spanSeconds;
    // The widest task phase seen; utilisation divides busy time by
    // span * this, so taking the max keeps the ratio conservative.
    shardWorkers = std::max(shardWorkers, other.shardWorkers);
}

unsigned
resolveFusedThreads(const SweepOptions &opts)
{
    return ThreadPool::resolveThreads(opts.fusedThreads);
}

unsigned
resolveSegments(const SweepOptions &opts)
{
    unsigned segs = opts.segments;
    if (segs == 0) {
        // Read fresh on every call: tests and long-lived services
        // toggle BPSIM_SEGMENTS between sweeps.
        segs = 1;
        if (const char *env = std::getenv("BPSIM_SEGMENTS")) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end && *end == '\0' && end != env && v >= 1 &&
                v <= SweepOptions::kMaxSegments) {
                segs = static_cast<unsigned>(v);
            } else {
                bpsim_warn("ignoring unrecognised BPSIM_SEGMENTS ",
                           "value '", env,
                           "' (expected an integer in [1, ",
                           SweepOptions::kMaxSegments, "])");
            }
        }
    }
    return std::max(1u,
                    std::min(segs, SweepOptions::kMaxSegments));
}

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::AddressIndexed: return "addr";
      case SchemeKind::GAg: return "GAg";
      case SchemeKind::GAs: return "GAs";
      case SchemeKind::Gshare: return "gshare";
      case SchemeKind::Path: return "path";
      case SchemeKind::PAsPerfect: return "PAs(inf)";
      case SchemeKind::PAsFinite: return "PAs(bht)";
      case SchemeKind::Tage: return "tage";
      case SchemeKind::Perceptron: return "perceptron";
    }
    return "?";
}

TageParams
tageSweepParams(unsigned row_bits, unsigned col_bits,
                const SweepOptions &opts)
{
    TageParams params;
    params.entryBits = row_bits;
    params.baseBits = col_bits;
    params.tagBits = opts.tageTagBits;
    params.histories = opts.tageHistories;
    return params;
}

PerceptronParams
perceptronSweepParams(unsigned row_bits, unsigned col_bits,
                      const SweepOptions &opts)
{
    PerceptronParams params;
    params.historyBits = row_bits;
    params.entryBits = col_bits;
    params.tables = opts.perceptronTables;
    return params;
}

std::vector<ConfigJob>
planSweep(SchemeKind kind, const SweepOptions &opts)
{
    bpsim_assert(opts.minTotalBits <= opts.maxTotalBits,
                 "sweep tier range reversed");
    std::vector<ConfigJob> jobs;
    for (unsigned total = opts.minTotalBits; total <= opts.maxTotalBits;
         ++total) {
        for (unsigned r = 0; r <= total; ++r) {
            unsigned c = total - r;
            // Degenerate schemes contribute a single split per tier.
            if (kind == SchemeKind::AddressIndexed && r != 0)
                continue;
            if (kind == SchemeKind::GAg && c != 0)
                continue;
            // The zoo schemes have hard geometry floors: TAGE needs a
            // real component table AND a real base table; perceptron
            // needs at least one history bit (entryBits 0 is a legal
            // single-weight-per-table point).  Out-of-range splits are
            // simply absent from the surface, like the degenerate
            // schemes' missing splits.
            if (kind == SchemeKind::Tage && (r < 1 || c < 1))
                continue;
            if (kind == SchemeKind::Perceptron && (r < 1 || r > 64))
                continue;
            jobs.push_back(ConfigJob{kind, total, r, c});
        }
    }
    return jobs;
}

std::vector<FusedGroup>
planFusedGroups(const std::vector<ConfigJob> &jobs,
                const SweepOptions &opts, unsigned threads)
{
    std::vector<FusedGroup> groups;

    // AliasTracker needs the per-access branch address, which the
    // packed kernel deliberately does not thread through -- the 2-bit
    // family falls back to one per-config replay per job when aliasing
    // is tracked (Figure 5 semantics untouched).  The zoo is exempt
    // from that fallback: its aliasing surfaces are identically zero
    // whether tracked or not (analyzeInterference owns its
    // interference story), so zoo jobs batch whenever fusion is on.
    const auto zoo = [](SchemeKind kind) {
        return kind == SchemeKind::Tage ||
               kind == SchemeKind::Perceptron;
    };
    if (!opts.fuseJobs ||
        (opts.trackAliasing &&
         std::none_of(jobs.begin(), jobs.end(),
                      [&](const ConfigJob &j) { return zoo(j.kind); }))) {
        groups.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            FusedGroup g;
            g.kind = jobs[i].kind;
            g.streamRowBits = jobs[i].rowBits;
            g.fused = false;
            g.jobs.push_back(i);
            groups.push_back(std::move(g));
        }
        return groups;
    }

    // Bucket by shared first-level stream, in first-appearance order.
    // Only PAsFinite streams depend on the row width (the 0xC3FF reset
    // prefix differs); every other scheme shares one bucket per kind.
    struct Bucket
    {
        SchemeKind kind;
        unsigned streamRowBits;
        std::vector<std::size_t> jobs;
    };
    std::vector<Bucket> buckets;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ConfigJob &job = jobs[i];
        // Aliasing-tracked 2-bit jobs still take the per-config
        // fallback (only reachable in a mixed plan alongside zoo
        // jobs); zoo jobs bucket into model groups by kind -- one
        // sweep's members share tagBits/histories/tables by
        // construction, so any subset batches together.
        if (opts.trackAliasing && !zoo(job.kind)) {
            FusedGroup g;
            g.kind = job.kind;
            g.streamRowBits = job.rowBits;
            g.fused = false;
            g.jobs.push_back(i);
            groups.push_back(std::move(g));
            continue;
        }
        const unsigned key =
            job.kind == SchemeKind::PAsFinite ? job.rowBits : 0;
        Bucket *bucket = nullptr;
        for (Bucket &b : buckets) {
            if (b.kind == job.kind && b.streamRowBits == key) {
                bucket = &b;
                break;
            }
        }
        if (!bucket) {
            buckets.push_back(Bucket{job.kind, key, {}});
            bucket = &buckets.back();
        }
        bucket->jobs.push_back(i);
    }

    // Chunk each bucket into at most `threads` contiguous groups so
    // the pool can spread one large bucket across executors.  Each
    // chunk replays the trace once; the per-job results are identical
    // for any chunking, so the split is free to vary with the thread
    // count.
    const std::size_t chunk_target = threads > 1 ? threads : 1;
    for (Bucket &bucket : buckets) {
        const std::size_t size = bucket.jobs.size();
        const std::size_t chunks = std::min(chunk_target, size);
        const std::size_t base = size / chunks;
        const std::size_t extra = size % chunks;
        std::size_t next = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t take = base + (c < extra ? 1 : 0);
            FusedGroup g;
            g.kind = bucket.kind;
            g.streamRowBits = bucket.streamRowBits;
            g.fused = true;
            g.jobs.assign(bucket.jobs.begin() +
                              static_cast<std::ptrdiff_t>(next),
                          bucket.jobs.begin() +
                              static_cast<std::ptrdiff_t>(next + take));
            next += take;
            groups.push_back(std::move(g));
        }
    }
    return groups;
}

StreamCache::StreamCache(const PreparedTrace &trace,
                         const SweepOptions &opts)
    : trace_(trace), opts_(opts)
{
}

const std::vector<std::uint64_t> &
StreamCache::pathStreamLocked()
{
    if (!path_) {
        path_ = trace_.pathHistoryStream(opts_.pathBitsPerTarget);
        ++streamBuilds_;
        noteStreamResidentLocked();
    }
    return *path_;
}

const StreamCache::BhtStream &
StreamCache::bhtStreamLocked(unsigned row_bits)
{
    auto it = bht_.find(row_bits);
    if (it == bht_.end() || it->second.released) {
        BhtStream built;
        built.stream = trace_.bhtHistoryStream(
            opts_.bhtEntries, opts_.bhtAssoc, row_bits,
            &built.missRate, opts_.bhtResetPolicy);
        ++streamBuilds_;
        noteStreamResidentLocked();
        if (it == bht_.end()) {
            it = bht_.emplace(row_bits, std::move(built)).first;
        } else {
            // Rebuild in place: the node (and thus any prepared-table
            // pointer to it) stays put.
            it->second = std::move(built);
        }
    }
    return it->second;
}

void
StreamCache::noteStreamResidentLocked()
{
    ++residentStreams_;
    peakResidentStreams_ =
        std::max(peakResidentStreams_, residentStreams_);
}

void
StreamCache::prepare(const std::vector<ConfigJob> &jobs,
                     unsigned threads)
{
    bool need_path = false;
    std::set<unsigned> widths;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ConfigJob &job : jobs) {
            if (job.kind == SchemeKind::Path && !path_) {
                need_path = true;
            } else if (job.kind == SchemeKind::PAsFinite) {
                auto it = bht_.find(job.rowBits);
                if (it == bht_.end() || it->second.released)
                    widths.insert(job.rowBits);
            }
        }
    }

    std::vector<std::function<void()>> builds;
    if (need_path) {
        builds.push_back([this] {
            auto stream =
                trace_.pathHistoryStream(opts_.pathBitsPerTarget);
            std::lock_guard<std::mutex> lock(mutex_);
            ++streamBuilds_;
            if (!path_) {
                path_ = std::move(stream);
                noteStreamResidentLocked();
            }
        });
    }
    for (unsigned width : widths) {
        builds.push_back([this, width] {
            BhtStream built;
            built.stream = trace_.bhtHistoryStream(
                opts_.bhtEntries, opts_.bhtAssoc, width,
                &built.missRate, opts_.bhtResetPolicy);
            std::lock_guard<std::mutex> lock(mutex_);
            ++streamBuilds_;
            noteStreamResidentLocked();
            auto it = bht_.find(width);
            if (it == bht_.end())
                bht_.emplace(width, std::move(built));
            else
                it->second = std::move(built);
        });
    }

    if (!builds.empty()) {
        if (threads <= 1 || builds.size() == 1) {
            for (auto &build : builds)
                build();
        } else {
            ThreadPool::shared().parallelFor(
                builds.size(), threads,
                [&](std::size_t i) { builds[i](); });
        }
    }

    // Publish the lock-free lookup table -- even when nothing needed
    // building, so a prepared cache never locks in the execution hot
    // path.  The pointers are stable: path_ is emplaced once and map
    // nodes never move, and lazy (post-prepare) inserts only add
    // entries these tables do not reference.
    std::lock_guard<std::mutex> lock(mutex_);
    preparedPath_ = path_ ? &*path_ : nullptr;
    preparedBht_.clear();
    preparedBht_.reserve(bht_.size());
    for (const auto &entry : bht_)
        preparedBht_.emplace_back(entry.first, &entry.second);
}

const StreamCache::BhtStream *
StreamCache::preparedBhtStream(unsigned row_bits) const
{
    for (const auto &entry : preparedBht_) {
        if (entry.first == row_bits)
            return entry.second;
    }
    return nullptr;
}

const std::vector<std::uint64_t> *
StreamCache::stream(SchemeKind kind, unsigned row_bits)
{
    // Release tracking bypasses the lock-free table: a stream another
    // group finished with may be freed (and rebuilt) at any moment, so
    // the lookup must observe release state under the lock.  That is
    // one short lock per group, not per branch.
    if (kind == SchemeKind::Path) {
        if (!releaseTracking_ && preparedPath_)
            return preparedPath_;
        lockedLookups_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        return &pathStreamLocked();
    }
    if (kind == SchemeKind::PAsFinite) {
        if (!releaseTracking_) {
            if (const BhtStream *prepared =
                    preparedBhtStream(row_bits))
                return &prepared->stream;
        }
        lockedLookups_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        return &bhtStreamLocked(row_bits).stream;
    }
    return nullptr;
}

double
StreamCache::bhtMissRate(unsigned row_bits)
{
    if (!releaseTracking_) {
        if (const BhtStream *prepared = preparedBhtStream(row_bits))
            return prepared->missRate;
    }
    lockedLookups_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    // The rate is recorded at build time and survives release; only
    // rebuild when the entry has never been built at all.
    auto it = bht_.find(row_bits);
    if (it != bht_.end())
        return it->second.missRate;
    return bhtStreamLocked(row_bits).missRate;
}

std::size_t
StreamCache::lockedLookups() const
{
    return lockedLookups_.load(std::memory_order_relaxed);
}

std::size_t
StreamCache::streamBuilds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return streamBuilds_;
}

double
StreamCache::sweepBhtMissRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bht_.empty() ? -1.0 : bht_.rbegin()->second.missRate;
}

void
StreamCache::planRelease(const std::vector<FusedGroup> &groups)
{
    std::lock_guard<std::mutex> lock(mutex_);
    releaseTracking_ = true;
    pathConsumers_ = 0;
    bhtConsumers_.clear();
    for (const FusedGroup &group : groups) {
        if (group.kind == SchemeKind::Path)
            ++pathConsumers_;
        else if (group.kind == SchemeKind::PAsFinite)
            ++bhtConsumers_[group.streamRowBits];
    }
}

void
StreamCache::groupFinished(const FusedGroup &group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!releaseTracking_)
        return;
    if (group.kind == SchemeKind::Path) {
        if (pathConsumers_ > 0 && --pathConsumers_ == 0 && path_) {
            path_.reset();
            preparedPath_ = nullptr;
            --residentStreams_;
        }
        return;
    }
    if (group.kind != SchemeKind::PAsFinite)
        return;
    auto consumers = bhtConsumers_.find(group.streamRowBits);
    if (consumers == bhtConsumers_.end() || --consumers->second > 0)
        return;
    bhtConsumers_.erase(consumers);
    auto it = bht_.find(group.streamRowBits);
    if (it != bht_.end() && !it->second.released) {
        // Free the buffer, keep the node: missRate stays readable and
        // any prepared-table pointer to the node stays valid (though
        // release tracking already routes lookups around that table).
        it->second.stream.clear();
        it->second.stream.shrink_to_fit();
        it->second.released = true;
        --residentStreams_;
    }
}

std::size_t
StreamCache::residentStreams() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return residentStreams_;
}

std::size_t
StreamCache::peakResidentStreams() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peakResidentStreams_;
}

ConfigResult
runConfigJob(const ConfigJob &job, StreamCache &cache)
{
    const std::vector<std::uint64_t> *aux =
        cache.stream(job.kind, job.rowBits);
    ConfigResult out =
        runConfig(cache.trace(), job.kind, job.rowBits, job.colBits,
                  cache.options(), aux);
    if (job.kind == SchemeKind::PAsFinite)
        out.bhtMissRate = cache.bhtMissRate(job.rowBits);
    return out;
}

void
runFusedGroup(const FusedGroup &group,
              const std::vector<ConfigJob> &jobs, StreamCache &cache,
              ConfigResult *slots, KernelTelemetry *telemetry)
{
    if (!group.fused) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t member : group.jobs)
            slots[member] = runConfigJob(jobs[member], cache);
        if (telemetry) {
            // Zero-lane groups still report a measured (busy, span)
            // pair -- one serial executor, fully busy -- so sweep-level
            // utilization stays well-defined when every group took the
            // fallback path (aliasing-tracked or multi-table sweeps).
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            KernelTelemetry counters;
            counters.target = resolveSimdTarget(cache.options().simd);
            counters.fallbackJobs = group.jobs.size();
            counters.busySeconds = seconds;
            counters.spanSeconds = seconds;
            counters.shardWorkers = 1;
            telemetry->merge(counters);
        }
        return;
    }

    const PreparedTrace &t = cache.trace();
    const SimdTarget target = resolveSimdTarget(cache.options().simd);
    // The within-group execution shape: lane shards (always
    // bit-identical) and trace segments (speculative when > 1).
    ReplayExec exec;
    exec.shards = resolveFusedThreads(cache.options());
    exec.segments = resolveSegments(cache.options());
    exec.warmup = cache.options().segmentWarmup;
    // One stream lookup per group, not per job or per branch.
    const std::vector<std::uint64_t> *aux =
        cache.stream(group.kind, group.streamRowBits);

    switch (group.kind) {
      case SchemeKind::AddressIndexed:
        runFusedReplay(t, jobs, group.jobs,
                       [](std::size_t) { return std::uint64_t{0}; },
                       slots, target, exec, telemetry);
        break;
      case SchemeKind::GAg:
      case SchemeKind::GAs:
        runFusedReplay(
            t, jobs, group.jobs,
            [&](std::size_t i) { return t.globalHistory(i); }, slots,
            target, exec, telemetry);
        break;
      case SchemeKind::Gshare:
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) {
                           return t.globalHistory(i) ^
                                  wordIndex(t.pc(i));
                       },
                       slots, target, exec, telemetry);
        break;
      case SchemeKind::Path:
        bpsim_assert(aux, "fused path group needs a history stream");
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) { return (*aux)[i]; },
                       slots, target, exec, telemetry);
        break;
      case SchemeKind::PAsPerfect:
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) { return t.selfHistory(i); },
                       slots, target, exec, telemetry);
        break;
      case SchemeKind::PAsFinite: {
        bpsim_assert(aux, "fused finite-PAs group needs a BHT stream");
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) { return (*aux)[i]; },
                       slots, target, exec, telemetry);
        const double miss = cache.bhtMissRate(group.streamRowBits);
        for (std::size_t member : group.jobs)
            slots[member].bhtMissRate = miss;
        break;
      }
      case SchemeKind::Tage:
      case SchemeKind::Perceptron:
        runModelBatch(t, cache.options(), jobs, group.jobs, slots,
                      target, exec, telemetry);
        break;
    }
}

SweepResult::SweepResult(const std::string &scheme_name,
                         const std::string &trace_name)
    : misprediction(scheme_name + " misprediction: " + trace_name),
      aliasing(scheme_name + " aliasing: " + trace_name),
      harmless(scheme_name + " harmless-alias fraction: " + trace_name)
{
}

SweepResult
sweepScheme(const PreparedTrace &trace, SchemeKind kind,
            const SweepOptions &opts)
{
    SweepResult result(schemeKindName(kind), trace.name());

    // Plan: enumerate the space, partition into fused groups, and
    // precompute shared inputs.  Serial sweeps skip the eager stream
    // prepare: groups run one at a time, so lazy builds plus
    // release-after-last-consumer keep at most the streams the current
    // group needs resident.  Parallel sweeps still prepare up front
    // (concurrent groups need their streams simultaneously) and
    // release as groups drain.
    const std::vector<ConfigJob> jobs = planSweep(kind, opts);
    const unsigned threads = ThreadPool::resolveThreads(opts.threads);
    const std::vector<FusedGroup> groups =
        planFusedGroups(jobs, opts, threads);
    StreamCache cache(trace, opts);
    if (threads > 1)
        cache.prepare(jobs, threads);
    cache.planRelease(groups);

    // Execute: the pool distributes whole groups; every group writes
    // only its own members' slots (and telemetry slot), so placement
    // stays deterministic.
    std::vector<ConfigResult> slots(jobs.size());
    std::vector<KernelTelemetry> group_telemetry(groups.size());
    if (threads <= 1) {
        for (std::size_t g = 0; g < groups.size(); ++g) {
            runFusedGroup(groups[g], jobs, cache, slots.data(),
                          &group_telemetry[g]);
            cache.groupFinished(groups[g]);
        }
    } else {
        ThreadPool::shared().parallelFor(
            groups.size(), threads, [&](std::size_t g) {
                runFusedGroup(groups[g], jobs, cache, slots.data(),
                              &group_telemetry[g]);
                cache.groupFinished(groups[g]);
            });
    }
    // Aggregate: every group resolved the same dispatch target, so
    // merging in any order yields one coherent telemetry record.
    result.kernel.target = resolveSimdTarget(opts.simd);
    for (const KernelTelemetry &group : group_telemetry)
        result.kernel.merge(group);
    result.kernel.target = resolveSimdTarget(opts.simd);

    // Merge in plan order: bit-identical to the serial sweep.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ConfigJob &job = jobs[i];
        result.misprediction.add(job.totalBits, job.rowBits,
                                 job.colBits, slots[i].mispRate);
        if (opts.trackAliasing) {
            result.aliasing.add(job.totalBits, job.rowBits, job.colBits,
                                slots[i].aliasRate);
            result.harmless.add(job.totalBits, job.rowBits, job.colBits,
                                slots[i].harmlessFraction);
        }
    }
    if (kind == SchemeKind::PAsFinite)
        result.bhtMissRate = cache.sweepBhtMissRate();
    return result;
}

ConfigResult
simulateConfig(StreamCache &cache, SchemeKind kind, unsigned row_bits,
               unsigned col_bits)
{
    ConfigJob job{kind, row_bits + col_bits, row_bits, col_bits};
    return runConfigJob(job, cache);
}

ConfigResult
simulateConfig(const PreparedTrace &trace, SchemeKind kind,
               unsigned row_bits, unsigned col_bits,
               const SweepOptions &opts)
{
    StreamCache cache(trace, opts);
    return simulateConfig(cache, kind, row_bits, col_bits);
}

} // namespace bpsim

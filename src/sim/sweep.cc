#include "sim/sweep.hh"

#include <map>

#include "common/logging.hh"
#include "common/sat_counter.hh"
#include "stats/aliasing.hh"

namespace bpsim {

namespace {

/**
 * The inner simulation kernel: one configuration, with the row index and
 * the all-ones-pattern flag supplied per instance by functors so each
 * scheme compiles to a tight loop.
 */
template <typename RowFn, typename OnesFn>
ConfigResult
runKernel(const PreparedTrace &t, unsigned row_bits, unsigned col_bits,
          bool track_aliasing, RowFn row_of, OnesFn all_ones_of)
{
    const std::uint64_t row_mask = mask(row_bits);
    const std::uint64_t col_mask = mask(col_bits);
    std::vector<TwoBitCounter> counters(
        std::size_t{1} << (row_bits + col_bits));
    AliasTracker tracker(track_aliasing ? counters.size() : 1);

    std::uint64_t mispredicts = 0;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t row = row_of(i) & row_mask;
        std::uint64_t col = wordIndex(t.pc(i)) & col_mask;
        auto idx =
            static_cast<std::size_t>((row << col_bits) | col);
        if (track_aliasing)
            tracker.access(idx, t.pc(i),
                           row_bits > 0 && all_ones_of(i));
        bool taken = t.taken(i);
        if (counters[idx].predict() != taken)
            ++mispredicts;
        counters[idx].update(taken);
    }

    ConfigResult out;
    out.mispRate =
        n ? static_cast<double>(mispredicts) / static_cast<double>(n)
          : 0.0;
    if (track_aliasing) {
        out.aliasRate = tracker.aliasRate();
        out.harmlessFraction = tracker.harmlessFraction();
    }
    return out;
}

/** Dispatch the kernel for one configuration of one scheme. */
ConfigResult
runConfig(const PreparedTrace &t, SchemeKind kind, unsigned row_bits,
          unsigned col_bits, bool track_aliasing,
          const std::vector<std::uint64_t> *aux_stream)
{
    const std::uint64_t row_mask = mask(row_bits);
    auto never_ones = [](std::size_t) { return false; };

    switch (kind) {
      case SchemeKind::AddressIndexed:
        bpsim_assert(row_bits == 0, "address-indexed tables have no "
                     "rows");
        return runKernel(t, row_bits, col_bits, track_aliasing,
                         [](std::size_t) { return std::uint64_t{0}; },
                         never_ones);

      case SchemeKind::GAg:
      case SchemeKind::GAs:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.globalHistory(i); },
            [&](std::size_t i) {
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Gshare:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) {
                return t.globalHistory(i) ^ wordIndex(t.pc(i));
            },
            [&](std::size_t i) {
                // Harmlessness keys on the outcome pattern itself.
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Path:
        bpsim_assert(aux_stream, "path sweep needs a history stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            never_ones);

      case SchemeKind::PAsPerfect:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.selfHistory(i); },
            [&](std::size_t i) {
                return (t.selfHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::PAsFinite:
        bpsim_assert(aux_stream, "finite-PAs sweep needs a BHT stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            [&](std::size_t i) {
                return ((*aux_stream)[i] & row_mask) == row_mask;
            });
    }
    bpsim_panic("unreachable scheme kind");
}

} // namespace

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::AddressIndexed: return "addr";
      case SchemeKind::GAg: return "GAg";
      case SchemeKind::GAs: return "GAs";
      case SchemeKind::Gshare: return "gshare";
      case SchemeKind::Path: return "path";
      case SchemeKind::PAsPerfect: return "PAs(inf)";
      case SchemeKind::PAsFinite: return "PAs(bht)";
    }
    return "?";
}

SweepResult::SweepResult(const std::string &scheme_name,
                         const std::string &trace_name)
    : misprediction(scheme_name + " misprediction: " + trace_name),
      aliasing(scheme_name + " aliasing: " + trace_name),
      harmless(scheme_name + " harmless-alias fraction: " + trace_name)
{
}

SweepResult
sweepScheme(const PreparedTrace &trace, SchemeKind kind,
            const SweepOptions &opts)
{
    bpsim_assert(opts.minTotalBits <= opts.maxTotalBits,
                 "sweep tier range reversed");
    SweepResult result(schemeKindName(kind), trace.name());

    // Streams shared across configurations.
    std::vector<std::uint64_t> path_stream;
    if (kind == SchemeKind::Path)
        path_stream = trace.pathHistoryStream(opts.pathBitsPerTarget);
    // Finite-BHT streams depend on the row width (the reset prefix
    // does); cache one per width.
    std::map<unsigned, std::vector<std::uint64_t>> bht_streams;

    for (unsigned total = opts.minTotalBits; total <= opts.maxTotalBits;
         ++total) {
        for (unsigned r = 0; r <= total; ++r) {
            unsigned c = total - r;
            // Degenerate schemes contribute a single split per tier.
            if (kind == SchemeKind::AddressIndexed && r != 0)
                continue;
            if (kind == SchemeKind::GAg && c != 0)
                continue;

            const std::vector<std::uint64_t> *aux = nullptr;
            if (kind == SchemeKind::Path) {
                aux = &path_stream;
            } else if (kind == SchemeKind::PAsFinite) {
                auto it = bht_streams.find(r);
                if (it == bht_streams.end()) {
                    double miss = 0.0;
                    it = bht_streams
                             .emplace(r, trace.bhtHistoryStream(
                                             opts.bhtEntries,
                                             opts.bhtAssoc, r, &miss,
                                             opts.bhtResetPolicy))
                             .first;
                    result.bhtMissRate = miss;
                }
                aux = &it->second;
            }

            ConfigResult point = runConfig(trace, kind, r, c,
                                           opts.trackAliasing, aux);
            result.misprediction.add(total, r, c, point.mispRate);
            if (opts.trackAliasing) {
                result.aliasing.add(total, r, c, point.aliasRate);
                result.harmless.add(total, r, c,
                                    point.harmlessFraction);
            }
        }
    }
    return result;
}

ConfigResult
simulateConfig(const PreparedTrace &trace, SchemeKind kind,
               unsigned row_bits, unsigned col_bits,
               const SweepOptions &opts)
{
    std::vector<std::uint64_t> aux;
    const std::vector<std::uint64_t> *aux_ptr = nullptr;
    if (kind == SchemeKind::Path) {
        aux = trace.pathHistoryStream(opts.pathBitsPerTarget);
        aux_ptr = &aux;
    } else if (kind == SchemeKind::PAsFinite) {
        aux = trace.bhtHistoryStream(opts.bhtEntries, opts.bhtAssoc,
                                     row_bits, nullptr,
                                     opts.bhtResetPolicy);
        aux_ptr = &aux;
    }
    return runConfig(trace, kind, row_bits, col_bits,
                     opts.trackAliasing, aux_ptr);
}

} // namespace bpsim

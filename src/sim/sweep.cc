#include "sim/sweep.hh"

#include <set>

#include "common/logging.hh"
#include "common/sat_counter.hh"
#include "common/thread_pool.hh"
#include "stats/aliasing.hh"

namespace bpsim {

namespace {

/**
 * The inner simulation kernel: one configuration, with the row index and
 * the all-ones-pattern flag supplied per instance by functors so each
 * scheme compiles to a tight loop.
 */
template <typename RowFn, typename OnesFn>
ConfigResult
runKernel(const PreparedTrace &t, unsigned row_bits, unsigned col_bits,
          bool track_aliasing, RowFn row_of, OnesFn all_ones_of)
{
    const std::uint64_t row_mask = mask(row_bits);
    const std::uint64_t col_mask = mask(col_bits);
    std::vector<TwoBitCounter> counters(
        std::size_t{1} << (row_bits + col_bits));
    AliasTracker tracker(track_aliasing ? counters.size() : 1);

    std::uint64_t mispredicts = 0;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t row = row_of(i) & row_mask;
        std::uint64_t col = wordIndex(t.pc(i)) & col_mask;
        auto idx =
            static_cast<std::size_t>((row << col_bits) | col);
        if (track_aliasing)
            tracker.access(idx, t.pc(i),
                           row_bits > 0 && all_ones_of(i));
        bool taken = t.taken(i);
        if (counters[idx].predict() != taken)
            ++mispredicts;
        counters[idx].update(taken);
    }

    ConfigResult out;
    out.mispRate =
        n ? static_cast<double>(mispredicts) / static_cast<double>(n)
          : 0.0;
    if (track_aliasing) {
        out.aliasRate = tracker.aliasRate();
        out.harmlessFraction = tracker.harmlessFraction();
    }
    return out;
}

/** Dispatch the kernel for one configuration of one scheme. */
ConfigResult
runConfig(const PreparedTrace &t, SchemeKind kind, unsigned row_bits,
          unsigned col_bits, bool track_aliasing,
          const std::vector<std::uint64_t> *aux_stream)
{
    const std::uint64_t row_mask = mask(row_bits);
    auto never_ones = [](std::size_t) { return false; };

    switch (kind) {
      case SchemeKind::AddressIndexed:
        bpsim_assert(row_bits == 0, "address-indexed tables have no "
                     "rows");
        return runKernel(t, row_bits, col_bits, track_aliasing,
                         [](std::size_t) { return std::uint64_t{0}; },
                         never_ones);

      case SchemeKind::GAg:
      case SchemeKind::GAs:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.globalHistory(i); },
            [&](std::size_t i) {
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Gshare:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) {
                return t.globalHistory(i) ^ wordIndex(t.pc(i));
            },
            [&](std::size_t i) {
                // Harmlessness keys on the outcome pattern itself.
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Path:
        bpsim_assert(aux_stream, "path sweep needs a history stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            never_ones);

      case SchemeKind::PAsPerfect:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.selfHistory(i); },
            [&](std::size_t i) {
                return (t.selfHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::PAsFinite:
        bpsim_assert(aux_stream, "finite-PAs sweep needs a BHT stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            [&](std::size_t i) {
                return ((*aux_stream)[i] & row_mask) == row_mask;
            });
    }
    bpsim_panic("unreachable scheme kind");
}

} // namespace

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::AddressIndexed: return "addr";
      case SchemeKind::GAg: return "GAg";
      case SchemeKind::GAs: return "GAs";
      case SchemeKind::Gshare: return "gshare";
      case SchemeKind::Path: return "path";
      case SchemeKind::PAsPerfect: return "PAs(inf)";
      case SchemeKind::PAsFinite: return "PAs(bht)";
    }
    return "?";
}

std::vector<ConfigJob>
planSweep(SchemeKind kind, const SweepOptions &opts)
{
    bpsim_assert(opts.minTotalBits <= opts.maxTotalBits,
                 "sweep tier range reversed");
    std::vector<ConfigJob> jobs;
    for (unsigned total = opts.minTotalBits; total <= opts.maxTotalBits;
         ++total) {
        for (unsigned r = 0; r <= total; ++r) {
            unsigned c = total - r;
            // Degenerate schemes contribute a single split per tier.
            if (kind == SchemeKind::AddressIndexed && r != 0)
                continue;
            if (kind == SchemeKind::GAg && c != 0)
                continue;
            jobs.push_back(ConfigJob{kind, total, r, c});
        }
    }
    return jobs;
}

StreamCache::StreamCache(const PreparedTrace &trace,
                         const SweepOptions &opts)
    : trace_(trace), opts_(opts)
{
}

const std::vector<std::uint64_t> &
StreamCache::pathStreamLocked()
{
    if (!path_) {
        path_ = trace_.pathHistoryStream(opts_.pathBitsPerTarget);
        ++streamBuilds_;
    }
    return *path_;
}

const StreamCache::BhtStream &
StreamCache::bhtStreamLocked(unsigned row_bits)
{
    auto it = bht_.find(row_bits);
    if (it == bht_.end()) {
        BhtStream built;
        built.stream = trace_.bhtHistoryStream(
            opts_.bhtEntries, opts_.bhtAssoc, row_bits,
            &built.missRate, opts_.bhtResetPolicy);
        ++streamBuilds_;
        it = bht_.emplace(row_bits, std::move(built)).first;
    }
    return it->second;
}

void
StreamCache::prepare(const std::vector<ConfigJob> &jobs,
                     unsigned threads)
{
    bool need_path = false;
    std::set<unsigned> widths;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ConfigJob &job : jobs) {
            if (job.kind == SchemeKind::Path && !path_)
                need_path = true;
            else if (job.kind == SchemeKind::PAsFinite &&
                     bht_.find(job.rowBits) == bht_.end())
                widths.insert(job.rowBits);
        }
    }

    std::vector<std::function<void()>> builds;
    if (need_path) {
        builds.push_back([this] {
            auto stream =
                trace_.pathHistoryStream(opts_.pathBitsPerTarget);
            std::lock_guard<std::mutex> lock(mutex_);
            ++streamBuilds_;
            if (!path_)
                path_ = std::move(stream);
        });
    }
    for (unsigned width : widths) {
        builds.push_back([this, width] {
            BhtStream built;
            built.stream = trace_.bhtHistoryStream(
                opts_.bhtEntries, opts_.bhtAssoc, width,
                &built.missRate, opts_.bhtResetPolicy);
            std::lock_guard<std::mutex> lock(mutex_);
            ++streamBuilds_;
            bht_.emplace(width, std::move(built));
        });
    }

    if (builds.empty())
        return;
    if (threads <= 1 || builds.size() == 1) {
        for (auto &build : builds)
            build();
    } else {
        ThreadPool::shared().parallelFor(
            builds.size(), threads,
            [&](std::size_t i) { builds[i](); });
    }
}

const std::vector<std::uint64_t> *
StreamCache::stream(SchemeKind kind, unsigned row_bits)
{
    if (kind == SchemeKind::Path) {
        std::lock_guard<std::mutex> lock(mutex_);
        return &pathStreamLocked();
    }
    if (kind == SchemeKind::PAsFinite) {
        std::lock_guard<std::mutex> lock(mutex_);
        return &bhtStreamLocked(row_bits).stream;
    }
    return nullptr;
}

double
StreamCache::bhtMissRate(unsigned row_bits)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bhtStreamLocked(row_bits).missRate;
}

std::size_t
StreamCache::streamBuilds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return streamBuilds_;
}

double
StreamCache::sweepBhtMissRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bht_.empty() ? -1.0 : bht_.rbegin()->second.missRate;
}

ConfigResult
runConfigJob(const ConfigJob &job, StreamCache &cache)
{
    const std::vector<std::uint64_t> *aux =
        cache.stream(job.kind, job.rowBits);
    ConfigResult out =
        runConfig(cache.trace(), job.kind, job.rowBits, job.colBits,
                  cache.options().trackAliasing, aux);
    if (job.kind == SchemeKind::PAsFinite)
        out.bhtMissRate = cache.bhtMissRate(job.rowBits);
    return out;
}

SweepResult::SweepResult(const std::string &scheme_name,
                         const std::string &trace_name)
    : misprediction(scheme_name + " misprediction: " + trace_name),
      aliasing(scheme_name + " aliasing: " + trace_name),
      harmless(scheme_name + " harmless-alias fraction: " + trace_name)
{
}

SweepResult
sweepScheme(const PreparedTrace &trace, SchemeKind kind,
            const SweepOptions &opts)
{
    SweepResult result(schemeKindName(kind), trace.name());

    // Plan: enumerate the space and precompute shared inputs.
    const std::vector<ConfigJob> jobs = planSweep(kind, opts);
    const unsigned threads = ThreadPool::resolveThreads(opts.threads);
    StreamCache cache(trace, opts);
    cache.prepare(jobs, threads);

    // Execute: one deterministic result slot per job.
    std::vector<ConfigResult> slots(jobs.size());
    if (threads <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            slots[i] = runConfigJob(jobs[i], cache);
    } else {
        ThreadPool::shared().parallelFor(
            jobs.size(), threads,
            [&](std::size_t i) { slots[i] = runConfigJob(jobs[i], cache); });
    }

    // Merge in plan order: bit-identical to the serial sweep.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ConfigJob &job = jobs[i];
        result.misprediction.add(job.totalBits, job.rowBits,
                                 job.colBits, slots[i].mispRate);
        if (opts.trackAliasing) {
            result.aliasing.add(job.totalBits, job.rowBits, job.colBits,
                                slots[i].aliasRate);
            result.harmless.add(job.totalBits, job.rowBits, job.colBits,
                                slots[i].harmlessFraction);
        }
    }
    if (kind == SchemeKind::PAsFinite)
        result.bhtMissRate = cache.sweepBhtMissRate();
    return result;
}

ConfigResult
simulateConfig(StreamCache &cache, SchemeKind kind, unsigned row_bits,
               unsigned col_bits)
{
    ConfigJob job{kind, row_bits + col_bits, row_bits, col_bits};
    return runConfigJob(job, cache);
}

ConfigResult
simulateConfig(const PreparedTrace &trace, SchemeKind kind,
               unsigned row_bits, unsigned col_bits,
               const SweepOptions &opts)
{
    StreamCache cache(trace, opts);
    return simulateConfig(cache, kind, row_bits, col_bits);
}

} // namespace bpsim

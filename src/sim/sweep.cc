#include "sim/sweep.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/packed_pht.hh"
#include "common/sat_counter.hh"
#include "common/thread_pool.hh"
#include "stats/aliasing.hh"

namespace bpsim {

namespace {

/**
 * The inner simulation kernel: one configuration, with the row index and
 * the all-ones-pattern flag supplied per instance by functors so each
 * scheme compiles to a tight loop.
 */
template <typename RowFn, typename OnesFn>
ConfigResult
runKernel(const PreparedTrace &t, unsigned row_bits, unsigned col_bits,
          bool track_aliasing, RowFn row_of, OnesFn all_ones_of)
{
    const std::uint64_t row_mask = mask(row_bits);
    const std::uint64_t col_mask = mask(col_bits);
    std::vector<TwoBitCounter> counters(
        std::size_t{1} << (row_bits + col_bits));
    AliasTracker tracker(track_aliasing ? counters.size() : 1);

    std::uint64_t mispredicts = 0;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t row = row_of(i) & row_mask;
        std::uint64_t col = wordIndex(t.pc(i)) & col_mask;
        auto idx =
            static_cast<std::size_t>((row << col_bits) | col);
        if (track_aliasing)
            tracker.access(idx, t.pc(i),
                           row_bits > 0 && all_ones_of(i));
        bool taken = t.taken(i);
        if (counters[idx].predict() != taken)
            ++mispredicts;
        counters[idx].update(taken);
    }

    ConfigResult out;
    out.mispRate =
        n ? static_cast<double>(mispredicts) / static_cast<double>(n)
          : 0.0;
    if (track_aliasing) {
        out.aliasRate = tracker.aliasRate();
        out.harmlessFraction = tracker.harmlessFraction();
    }
    return out;
}

/** Dispatch the kernel for one configuration of one scheme. */
ConfigResult
runConfig(const PreparedTrace &t, SchemeKind kind, unsigned row_bits,
          unsigned col_bits, bool track_aliasing,
          const std::vector<std::uint64_t> *aux_stream)
{
    const std::uint64_t row_mask = mask(row_bits);
    auto never_ones = [](std::size_t) { return false; };

    switch (kind) {
      case SchemeKind::AddressIndexed:
        bpsim_assert(row_bits == 0, "address-indexed tables have no "
                     "rows");
        return runKernel(t, row_bits, col_bits, track_aliasing,
                         [](std::size_t) { return std::uint64_t{0}; },
                         never_ones);

      case SchemeKind::GAg:
      case SchemeKind::GAs:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.globalHistory(i); },
            [&](std::size_t i) {
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Gshare:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) {
                return t.globalHistory(i) ^ wordIndex(t.pc(i));
            },
            [&](std::size_t i) {
                // Harmlessness keys on the outcome pattern itself.
                return (t.globalHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::Path:
        bpsim_assert(aux_stream, "path sweep needs a history stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            never_ones);

      case SchemeKind::PAsPerfect:
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return t.selfHistory(i); },
            [&](std::size_t i) {
                return (t.selfHistory(i) & row_mask) == row_mask;
            });

      case SchemeKind::PAsFinite:
        bpsim_assert(aux_stream, "finite-PAs sweep needs a BHT stream");
        return runKernel(
            t, row_bits, col_bits, track_aliasing,
            [&](std::size_t i) { return (*aux_stream)[i]; },
            [&](std::size_t i) {
                return ((*aux_stream)[i] & row_mask) == row_mask;
            });
    }
    bpsim_panic("unreachable scheme kind");
}

/**
 * The fused replay: one trace pass updates every member configuration.
 * Per branch the raw row value and the pc word index are computed once
 * (the members share them by construction); each member then derives
 * its own table index by masking and trains its packed counter table.
 *
 * The pass is block-tiled for locality: a block of branches is decoded
 * once into a compact per-branch record, then every lane makes one
 * tight pass over the decoded block.  The decode cost (row functor, pc
 * word index, outcome load) is amortised over all lanes, the block
 * stays L1-resident while the lanes stream it, and each lane's packed
 * table stays cache-hot for the whole block instead of being evicted
 * between branches by a hundred sibling tables.
 *
 * When every member fits narrow limits (row and column <= 15 bits --
 * always true for the paper's <= 2^15-counter tables), lanes are
 * further grouped by column width: every lane with colBits == c indexes
 * its table with ((row & rowMask) << c) | (col & colMask), which is
 * ((row << c) | (col & mask(c))) & mask(totalBits).  The c-dependent
 * part is shared, so it is materialised once per (block, c) as a uint32
 * record carrying the outcome in bit 31, and the lane inner loop
 * collapses to one 4-byte L1 load, one AND, and one packed-counter
 * read-modify-write -- strictly less work per branch than the
 * per-config kernel, on top of the single-pass trace traversal.
 */
template <typename RowFn>
void
runFusedReplay(const PreparedTrace &t,
               const std::vector<ConfigJob> &jobs,
               const std::vector<std::size_t> &members, RowFn row_of,
               ConfigResult *slots)
{
    struct Lane
    {
        std::uint64_t rowMask;
        std::uint64_t colMask;
        unsigned colBits;
        std::uint64_t mispredicts = 0;
        PackedPht pht;

        explicit Lane(const ConfigJob &job)
            : rowMask(mask(job.rowBits)), colMask(mask(job.colBits)),
              colBits(job.colBits),
              pht(std::size_t{1} << (job.rowBits + job.colBits))
        {
        }
    };

    std::vector<Lane> lanes;
    lanes.reserve(members.size());
    bool narrow = true;
    for (std::size_t member : members) {
        lanes.emplace_back(jobs[member]);
        if (jobs[member].rowBits > 15 || jobs[member].colBits > 15)
            narrow = false;
    }

    // 2048 * 4 bytes keeps each decoded block at 8 KiB -- small enough
    // to share L1 with the largest packed table a paper sweep uses
    // (2^15 counters = 8 KiB).
    constexpr std::size_t blockSize = 2048;
    const std::size_t n = t.size();

    if (narrow) {
        // Lanes sharing a column width share their fused record; the
        // record for c occupies bits 0..29 (row << c tops out at bit
        // 14 + 15), so the outcome bit in 31 never collides with any
        // total-bits mask.
        std::vector<std::vector<Lane *>> by_col(16);
        for (Lane &lane : lanes)
            by_col[lane.colBits].push_back(&lane);

        // Raw decode: outcome in bit 31, row in bits 29..15, column
        // in bits 14..0.  Lanes only read the row/column bits their
        // masks cover, so the 15-bit truncation is lossless.
        std::vector<std::uint32_t> decoded(blockSize);
        std::vector<std::uint32_t> record(blockSize);
        for (std::size_t base = 0; base < n; base += blockSize) {
            const std::size_t m = std::min(blockSize, n - base);
            for (std::size_t i = 0; i < m; ++i) {
                const std::size_t g = base + i;
                decoded[i] =
                    (static_cast<std::uint32_t>(t.taken(g)) << 31) |
                    ((static_cast<std::uint32_t>(row_of(g)) &
                      0x7FFFu) << 15) |
                    (static_cast<std::uint32_t>(wordIndex(t.pc(g))) &
                     0x7FFFu);
            }
            for (unsigned c = 0; c < by_col.size(); ++c) {
                if (by_col[c].empty())
                    continue;
                const auto col_mask =
                    static_cast<std::uint32_t>(mask(c));
                for (std::size_t i = 0; i < m; ++i) {
                    const std::uint32_t d = decoded[i];
                    record[i] = (d & 0x80000000u) |
                                (((d >> 15) & 0x7FFFu) << c) |
                                (d & col_mask);
                }
                const std::uint32_t *block = record.data();
                for (Lane *lane : by_col[c]) {
                    const auto total_mask = static_cast<std::uint32_t>(
                        (lane->rowMask << c) | lane->colMask);
                    std::uint8_t *bytes = lane->pht.data();
                    std::uint64_t misses = 0;
                    for (std::size_t i = 0; i < m; ++i) {
                        const std::uint32_t rc = block[i];
                        misses += PackedPht::predictAndUpdateRaw(
                            bytes, rc & total_mask, rc >> 31);
                    }
                    lane->mispredicts += misses;
                }
            }
        }
    } else {
        // Wide fallback for configurations beyond the packed-record
        // limits: same tiling, 64-bit row/column records.
        std::vector<std::uint64_t> rows(blockSize), cols(blockSize);
        std::vector<std::uint8_t> takens(blockSize);
        for (std::size_t base = 0; base < n; base += blockSize) {
            const std::size_t m = std::min(blockSize, n - base);
            for (std::size_t i = 0; i < m; ++i) {
                const std::size_t g = base + i;
                rows[i] = row_of(g);
                cols[i] = wordIndex(t.pc(g));
                takens[i] = static_cast<std::uint8_t>(t.taken(g));
            }
            for (Lane &lane : lanes) {
                const std::uint64_t row_mask = lane.rowMask;
                const std::uint64_t col_mask = lane.colMask;
                const unsigned col_bits = lane.colBits;
                std::uint8_t *bytes = lane.pht.data();
                std::uint64_t misses = 0;
                for (std::size_t i = 0; i < m; ++i) {
                    const auto idx = static_cast<std::size_t>(
                        ((rows[i] & row_mask) << col_bits) |
                        (cols[i] & col_mask));
                    misses += PackedPht::predictAndUpdateRaw(
                        bytes, idx, takens[i]);
                }
                lane.mispredicts += misses;
            }
        }
    }

    for (std::size_t j = 0; j < members.size(); ++j) {
        ConfigResult &out = slots[members[j]];
        out = ConfigResult{};
        out.mispRate =
            n ? static_cast<double>(lanes[j].mispredicts) /
                    static_cast<double>(n)
              : 0.0;
    }
}

} // namespace

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::AddressIndexed: return "addr";
      case SchemeKind::GAg: return "GAg";
      case SchemeKind::GAs: return "GAs";
      case SchemeKind::Gshare: return "gshare";
      case SchemeKind::Path: return "path";
      case SchemeKind::PAsPerfect: return "PAs(inf)";
      case SchemeKind::PAsFinite: return "PAs(bht)";
    }
    return "?";
}

std::vector<ConfigJob>
planSweep(SchemeKind kind, const SweepOptions &opts)
{
    bpsim_assert(opts.minTotalBits <= opts.maxTotalBits,
                 "sweep tier range reversed");
    std::vector<ConfigJob> jobs;
    for (unsigned total = opts.minTotalBits; total <= opts.maxTotalBits;
         ++total) {
        for (unsigned r = 0; r <= total; ++r) {
            unsigned c = total - r;
            // Degenerate schemes contribute a single split per tier.
            if (kind == SchemeKind::AddressIndexed && r != 0)
                continue;
            if (kind == SchemeKind::GAg && c != 0)
                continue;
            jobs.push_back(ConfigJob{kind, total, r, c});
        }
    }
    return jobs;
}

std::vector<FusedGroup>
planFusedGroups(const std::vector<ConfigJob> &jobs,
                const SweepOptions &opts, unsigned threads)
{
    std::vector<FusedGroup> groups;

    // AliasTracker needs the per-access branch address, which the
    // packed kernel deliberately does not thread through -- fall back
    // to one per-config replay per job (Figure 5 semantics untouched).
    if (opts.trackAliasing || !opts.fuseJobs) {
        groups.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            FusedGroup g;
            g.kind = jobs[i].kind;
            g.streamRowBits = jobs[i].rowBits;
            g.fused = false;
            g.jobs.push_back(i);
            groups.push_back(std::move(g));
        }
        return groups;
    }

    // Bucket by shared first-level stream, in first-appearance order.
    // Only PAsFinite streams depend on the row width (the 0xC3FF reset
    // prefix differs); every other scheme shares one bucket per kind.
    struct Bucket
    {
        SchemeKind kind;
        unsigned streamRowBits;
        std::vector<std::size_t> jobs;
    };
    std::vector<Bucket> buckets;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ConfigJob &job = jobs[i];
        const unsigned key =
            job.kind == SchemeKind::PAsFinite ? job.rowBits : 0;
        Bucket *bucket = nullptr;
        for (Bucket &b : buckets) {
            if (b.kind == job.kind && b.streamRowBits == key) {
                bucket = &b;
                break;
            }
        }
        if (!bucket) {
            buckets.push_back(Bucket{job.kind, key, {}});
            bucket = &buckets.back();
        }
        bucket->jobs.push_back(i);
    }

    // Chunk each bucket into at most `threads` contiguous groups so
    // the pool can spread one large bucket across executors.  Each
    // chunk replays the trace once; the per-job results are identical
    // for any chunking, so the split is free to vary with the thread
    // count.
    const std::size_t chunk_target = threads > 1 ? threads : 1;
    for (Bucket &bucket : buckets) {
        const std::size_t size = bucket.jobs.size();
        const std::size_t chunks = std::min(chunk_target, size);
        const std::size_t base = size / chunks;
        const std::size_t extra = size % chunks;
        std::size_t next = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t take = base + (c < extra ? 1 : 0);
            FusedGroup g;
            g.kind = bucket.kind;
            g.streamRowBits = bucket.streamRowBits;
            g.fused = true;
            g.jobs.assign(bucket.jobs.begin() +
                              static_cast<std::ptrdiff_t>(next),
                          bucket.jobs.begin() +
                              static_cast<std::ptrdiff_t>(next + take));
            next += take;
            groups.push_back(std::move(g));
        }
    }
    return groups;
}

StreamCache::StreamCache(const PreparedTrace &trace,
                         const SweepOptions &opts)
    : trace_(trace), opts_(opts)
{
}

const std::vector<std::uint64_t> &
StreamCache::pathStreamLocked()
{
    if (!path_) {
        path_ = trace_.pathHistoryStream(opts_.pathBitsPerTarget);
        ++streamBuilds_;
    }
    return *path_;
}

const StreamCache::BhtStream &
StreamCache::bhtStreamLocked(unsigned row_bits)
{
    auto it = bht_.find(row_bits);
    if (it == bht_.end()) {
        BhtStream built;
        built.stream = trace_.bhtHistoryStream(
            opts_.bhtEntries, opts_.bhtAssoc, row_bits,
            &built.missRate, opts_.bhtResetPolicy);
        ++streamBuilds_;
        it = bht_.emplace(row_bits, std::move(built)).first;
    }
    return it->second;
}

void
StreamCache::prepare(const std::vector<ConfigJob> &jobs,
                     unsigned threads)
{
    bool need_path = false;
    std::set<unsigned> widths;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ConfigJob &job : jobs) {
            if (job.kind == SchemeKind::Path && !path_)
                need_path = true;
            else if (job.kind == SchemeKind::PAsFinite &&
                     bht_.find(job.rowBits) == bht_.end())
                widths.insert(job.rowBits);
        }
    }

    std::vector<std::function<void()>> builds;
    if (need_path) {
        builds.push_back([this] {
            auto stream =
                trace_.pathHistoryStream(opts_.pathBitsPerTarget);
            std::lock_guard<std::mutex> lock(mutex_);
            ++streamBuilds_;
            if (!path_)
                path_ = std::move(stream);
        });
    }
    for (unsigned width : widths) {
        builds.push_back([this, width] {
            BhtStream built;
            built.stream = trace_.bhtHistoryStream(
                opts_.bhtEntries, opts_.bhtAssoc, width,
                &built.missRate, opts_.bhtResetPolicy);
            std::lock_guard<std::mutex> lock(mutex_);
            ++streamBuilds_;
            bht_.emplace(width, std::move(built));
        });
    }

    if (!builds.empty()) {
        if (threads <= 1 || builds.size() == 1) {
            for (auto &build : builds)
                build();
        } else {
            ThreadPool::shared().parallelFor(
                builds.size(), threads,
                [&](std::size_t i) { builds[i](); });
        }
    }

    // Publish the lock-free lookup table -- even when nothing needed
    // building, so a prepared cache never locks in the execution hot
    // path.  The pointers are stable: path_ is emplaced once and map
    // nodes never move, and lazy (post-prepare) inserts only add
    // entries these tables do not reference.
    std::lock_guard<std::mutex> lock(mutex_);
    preparedPath_ = path_ ? &*path_ : nullptr;
    preparedBht_.clear();
    preparedBht_.reserve(bht_.size());
    for (const auto &entry : bht_)
        preparedBht_.emplace_back(entry.first, &entry.second);
}

const StreamCache::BhtStream *
StreamCache::preparedBhtStream(unsigned row_bits) const
{
    for (const auto &entry : preparedBht_) {
        if (entry.first == row_bits)
            return entry.second;
    }
    return nullptr;
}

const std::vector<std::uint64_t> *
StreamCache::stream(SchemeKind kind, unsigned row_bits)
{
    if (kind == SchemeKind::Path) {
        if (preparedPath_)
            return preparedPath_;
        lockedLookups_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        return &pathStreamLocked();
    }
    if (kind == SchemeKind::PAsFinite) {
        if (const BhtStream *prepared = preparedBhtStream(row_bits))
            return &prepared->stream;
        lockedLookups_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        return &bhtStreamLocked(row_bits).stream;
    }
    return nullptr;
}

double
StreamCache::bhtMissRate(unsigned row_bits)
{
    if (const BhtStream *prepared = preparedBhtStream(row_bits))
        return prepared->missRate;
    lockedLookups_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    return bhtStreamLocked(row_bits).missRate;
}

std::size_t
StreamCache::lockedLookups() const
{
    return lockedLookups_.load(std::memory_order_relaxed);
}

std::size_t
StreamCache::streamBuilds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return streamBuilds_;
}

double
StreamCache::sweepBhtMissRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bht_.empty() ? -1.0 : bht_.rbegin()->second.missRate;
}

ConfigResult
runConfigJob(const ConfigJob &job, StreamCache &cache)
{
    const std::vector<std::uint64_t> *aux =
        cache.stream(job.kind, job.rowBits);
    ConfigResult out =
        runConfig(cache.trace(), job.kind, job.rowBits, job.colBits,
                  cache.options().trackAliasing, aux);
    if (job.kind == SchemeKind::PAsFinite)
        out.bhtMissRate = cache.bhtMissRate(job.rowBits);
    return out;
}

void
runFusedGroup(const FusedGroup &group,
              const std::vector<ConfigJob> &jobs, StreamCache &cache,
              ConfigResult *slots)
{
    if (!group.fused) {
        for (std::size_t member : group.jobs)
            slots[member] = runConfigJob(jobs[member], cache);
        return;
    }

    const PreparedTrace &t = cache.trace();
    // One stream lookup per group, not per job or per branch.
    const std::vector<std::uint64_t> *aux =
        cache.stream(group.kind, group.streamRowBits);

    switch (group.kind) {
      case SchemeKind::AddressIndexed:
        runFusedReplay(t, jobs, group.jobs,
                       [](std::size_t) { return std::uint64_t{0}; },
                       slots);
        break;
      case SchemeKind::GAg:
      case SchemeKind::GAs:
        runFusedReplay(
            t, jobs, group.jobs,
            [&](std::size_t i) { return t.globalHistory(i); }, slots);
        break;
      case SchemeKind::Gshare:
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) {
                           return t.globalHistory(i) ^
                                  wordIndex(t.pc(i));
                       },
                       slots);
        break;
      case SchemeKind::Path:
        bpsim_assert(aux, "fused path group needs a history stream");
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) { return (*aux)[i]; },
                       slots);
        break;
      case SchemeKind::PAsPerfect:
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) { return t.selfHistory(i); },
                       slots);
        break;
      case SchemeKind::PAsFinite: {
        bpsim_assert(aux, "fused finite-PAs group needs a BHT stream");
        runFusedReplay(t, jobs, group.jobs,
                       [&](std::size_t i) { return (*aux)[i]; },
                       slots);
        const double miss = cache.bhtMissRate(group.streamRowBits);
        for (std::size_t member : group.jobs)
            slots[member].bhtMissRate = miss;
        break;
      }
    }
}

SweepResult::SweepResult(const std::string &scheme_name,
                         const std::string &trace_name)
    : misprediction(scheme_name + " misprediction: " + trace_name),
      aliasing(scheme_name + " aliasing: " + trace_name),
      harmless(scheme_name + " harmless-alias fraction: " + trace_name)
{
}

SweepResult
sweepScheme(const PreparedTrace &trace, SchemeKind kind,
            const SweepOptions &opts)
{
    SweepResult result(schemeKindName(kind), trace.name());

    // Plan: enumerate the space, partition into fused groups, and
    // precompute shared inputs.
    const std::vector<ConfigJob> jobs = planSweep(kind, opts);
    const unsigned threads = ThreadPool::resolveThreads(opts.threads);
    const std::vector<FusedGroup> groups =
        planFusedGroups(jobs, opts, threads);
    StreamCache cache(trace, opts);
    cache.prepare(jobs, threads);

    // Execute: the pool distributes whole groups; every group writes
    // only its own members' slots, so placement stays deterministic.
    std::vector<ConfigResult> slots(jobs.size());
    if (threads <= 1) {
        for (const FusedGroup &group : groups)
            runFusedGroup(group, jobs, cache, slots.data());
    } else {
        ThreadPool::shared().parallelFor(
            groups.size(), threads, [&](std::size_t g) {
                runFusedGroup(groups[g], jobs, cache, slots.data());
            });
    }

    // Merge in plan order: bit-identical to the serial sweep.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ConfigJob &job = jobs[i];
        result.misprediction.add(job.totalBits, job.rowBits,
                                 job.colBits, slots[i].mispRate);
        if (opts.trackAliasing) {
            result.aliasing.add(job.totalBits, job.rowBits, job.colBits,
                                slots[i].aliasRate);
            result.harmless.add(job.totalBits, job.rowBits, job.colBits,
                                slots[i].harmlessFraction);
        }
    }
    if (kind == SchemeKind::PAsFinite)
        result.bhtMissRate = cache.sweepBhtMissRate();
    return result;
}

ConfigResult
simulateConfig(StreamCache &cache, SchemeKind kind, unsigned row_bits,
               unsigned col_bits)
{
    ConfigJob job{kind, row_bits + col_bits, row_bits, col_bits};
    return runConfigJob(job, cache);
}

ConfigResult
simulateConfig(const PreparedTrace &trace, SchemeKind kind,
               unsigned row_bits, unsigned col_bits,
               const SweepOptions &opts)
{
    StreamCache cache(trace, opts);
    return simulateConfig(cache, kind, row_bits, col_bits);
}

} // namespace bpsim

/**
 * @file
 * Interference decomposition for two-level predictor tables.
 *
 * The paper stresses that "not all of this aliasing is destructive":
 * some conflicts are harmless (both branches want the same outcome) and
 * a few even help.  Young, Gloy and Smith (ISCA 1995), cited by the
 * paper, formalised this as destructive / neutral / constructive
 * interference.  This analyzer measures the decomposition exactly, by
 * replaying a trace through the real (shared) table and, in lock-step,
 * through an idealised table that gives every (row, branch) pair its
 * own counter:
 *
 *   destructive: shared table wrong, private counter right
 *   constructive: shared table right, private counter wrong
 *   neutral: both agree (right or wrong together)
 *
 * The net aliasing damage is destructive - constructive mispredictions;
 * comparing it with the raw conflict rate of Figure 5 quantifies how
 * much of the paper's measured aliasing actually costs accuracy.
 *
 * The analyzer additionally partitions every SHARED misprediction into
 * the three-C-style classes the modern-predictor re-study needs:
 *
 *   aliasing: destructive (the private twin got it right)
 *   cold:     both twins wrong AND the miss is a first-touch /
 *             allocation event (see below)
 *   capacity: both twins wrong otherwise (the pattern simply had not
 *             converged, or the table is too small to hold it)
 *
 * so sharedMispredicts == aliasing + cold + capacity always holds.
 * "First-touch" is scheme-specific but deterministic:
 *
 *   - classic two-level schemes: the private (index, pc) counter had
 *     never been trained;
 *   - TAGE: the shared provider entry had never been trained, or the
 *     mispredict triggered a tagged-entry allocation -- the paper-era
 *     machinery would call these aliasing, but a tag mismatch never
 *     silently trains a stranger's counter, so they are compulsory
 *     (cold) misses, not interference;
 *   - perceptron: the private per-branch twin had never been trained.
 */

#ifndef BPSIM_SIM_INTERFERENCE_HH
#define BPSIM_SIM_INTERFERENCE_HH

#include <cstdint>

#include "sim/prepared_trace.hh"
#include "sim/sweep.hh"

namespace bpsim {

/** Outcome of an interference decomposition run. */
struct InterferenceResult
{
    /** Conditional instances replayed. */
    std::uint64_t instances = 0;
    /** Mispredictions of the real (shared) table. */
    std::uint64_t sharedMispredicts = 0;
    /** Mispredictions of the idealised per-branch table. */
    std::uint64_t privateMispredicts = 0;
    /** Instances where sharing flipped a right answer to wrong. */
    std::uint64_t destructive = 0;
    /** Instances where sharing flipped a wrong answer to right. */
    std::uint64_t constructive = 0;
    /** Both twins wrong on a first-touch / allocation event. */
    std::uint64_t coldMispredicts = 0;
    /** Both twins wrong with trained state (capacity / convergence). */
    std::uint64_t capacityMispredicts = 0;

    double
    sharedMispRate() const
    {
        return instances ?
            static_cast<double>(sharedMispredicts) /
                static_cast<double>(instances)
            : 0.0;
    }

    double
    privateMispRate() const
    {
        return instances ?
            static_cast<double>(privateMispredicts) /
                static_cast<double>(instances)
            : 0.0;
    }

    /** Fraction of instances where sharing hurt. */
    double
    destructiveRate() const
    {
        return instances ?
            static_cast<double>(destructive) /
                static_cast<double>(instances)
            : 0.0;
    }

    /** Fraction of instances where sharing helped. */
    double
    constructiveRate() const
    {
        return instances ?
            static_cast<double>(constructive) /
                static_cast<double>(instances)
            : 0.0;
    }

    /** Net accuracy cost of sharing (can be negative). */
    double
    netDamage() const
    {
        return destructiveRate() - constructiveRate();
    }

    /**
     * Shared mispredictions attributable to interference: exactly the
     * destructive count, renamed for the three-way decomposition
     * (aliasing + cold + capacity == sharedMispredicts).
     */
    std::uint64_t aliasingMispredicts() const { return destructive; }

    double
    aliasingRate() const
    {
        return destructiveRate();
    }

    double
    coldRate() const
    {
        return instances ?
            static_cast<double>(coldMispredicts) /
                static_cast<double>(instances)
            : 0.0;
    }

    double
    capacityRate() const
    {
        return instances ?
            static_cast<double>(capacityMispredicts) /
                static_cast<double>(instances)
            : 0.0;
    }
};

/**
 * Decompose the interference of one configuration of one scheme.
 * The private reference table is unbounded (hash map keyed by counter
 * index and branch address) and trains on exactly the same stream.
 *
 * @param trace prepared conditional-branch stream
 * @param kind predictor family (first-level semantics as in sweep.hh)
 * @param row_bits, col_bits second-level geometry
 * @param opts per-scheme knobs (path bits, BHT geometry)
 */
InterferenceResult
analyzeInterference(const PreparedTrace &trace, SchemeKind kind,
                    unsigned row_bits, unsigned col_bits,
                    const SweepOptions &opts = {});

} // namespace bpsim

#endif // BPSIM_SIM_INTERFERENCE_HH

#include "sim/experiment.hh"

#include <sstream>

#include "common/logging.hh"
#include "workload/synthetic.hh"

namespace bpsim {

PreparedTrace
prepareProfile(const std::string &profile,
               std::uint64_t target_conditionals)
{
    MemoryTrace trace =
        generateProfileTrace(profile, target_conditionals);
    return PreparedTrace(trace);
}

SweepOptions
paperSweepOptions()
{
    SweepOptions opts;
    opts.minTotalBits = 4;  // 16 counters, the rearmost tier
    opts.maxTotalBits = 15; // 32768 counters, the frontmost tier
    opts.trackAliasing = true;
    return opts;
}

namespace {

/** Extract per-budget best configs from a sweep's misprediction data. */
BestConfigRow
rowFromSweep(const std::string &scheme, const SweepResult &sweep,
             const std::vector<unsigned> &budget_bits,
             double bht_miss_rate)
{
    BestConfigRow row;
    row.scheme = scheme;
    row.bhtMissRate = bht_miss_rate;
    for (unsigned bits : budget_bits) {
        auto best = sweep.misprediction.bestInTier(bits);
        if (best) {
            row.best.push_back(
                BestConfig{best->rowBits, best->colBits, best->value});
        } else {
            row.best.push_back(std::nullopt);
        }
    }
    return row;
}

} // namespace

std::vector<BestConfigRow>
bestConfigTable(const PreparedTrace &trace, const Table3Options &opts)
{
    bpsim_assert(!opts.budgetBits.empty(), "no budgets requested");

    SweepOptions sweep_opts;
    sweep_opts.trackAliasing = false; // misprediction only; faster
    unsigned lo = opts.budgetBits.front();
    unsigned hi = opts.budgetBits.front();
    for (unsigned b : opts.budgetBits) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    sweep_opts.minTotalBits = lo;
    sweep_opts.maxTotalBits = hi;

    std::vector<BestConfigRow> rows;

    rows.push_back(rowFromSweep(
        "GAs", sweepScheme(trace, SchemeKind::GAs, sweep_opts),
        opts.budgetBits, -1.0));
    rows.push_back(rowFromSweep(
        "gshare", sweepScheme(trace, SchemeKind::Gshare, sweep_opts),
        opts.budgetBits, -1.0));
    rows.push_back(rowFromSweep(
        "PAs(inf)",
        sweepScheme(trace, SchemeKind::PAsPerfect, sweep_opts),
        opts.budgetBits, -1.0));

    for (std::size_t entries : opts.bhtSizes) {
        SweepOptions finite = sweep_opts;
        finite.bhtEntries = entries;
        finite.bhtAssoc = opts.bhtAssoc;
        SweepResult sweep =
            sweepScheme(trace, SchemeKind::PAsFinite, finite);
        std::ostringstream name;
        if (entries % 1024 == 0)
            name << "PAs(" << entries / 1024 << "k)";
        else
            name << "PAs(" << entries << ")";
        rows.push_back(rowFromSweep(name.str(), sweep, opts.budgetBits,
                                    sweep.bhtMissRate));
    }
    return rows;
}

} // namespace bpsim

#include "sim/experiment.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "workload/synthetic.hh"

namespace bpsim {

PreparedTrace
prepareProfile(const std::string &profile,
               std::uint64_t target_conditionals)
{
    MemoryTrace trace =
        generateProfileTrace(profile, target_conditionals);
    return PreparedTrace(trace);
}

SweepOptions
paperSweepOptions()
{
    SweepOptions opts;
    opts.minTotalBits = 4;  // 16 counters, the rearmost tier
    opts.maxTotalBits = 15; // 32768 counters, the frontmost tier
    opts.trackAliasing = true;
    return opts;
}

std::vector<Table3SchemeSpec>
table3Plan(const Table3Options &opts)
{
    bpsim_assert(!opts.budgetBits.empty(), "no budgets requested");

    SweepOptions sweep_opts;
    sweep_opts.trackAliasing = false; // misprediction only; faster
    sweep_opts.threads = opts.threads;
    unsigned lo = opts.budgetBits.front();
    unsigned hi = opts.budgetBits.front();
    for (unsigned b : opts.budgetBits) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    sweep_opts.minTotalBits = lo;
    sweep_opts.maxTotalBits = hi;

    std::vector<Table3SchemeSpec> plan = {
        {"GAs", SchemeKind::GAs, sweep_opts},
        {"gshare", SchemeKind::Gshare, sweep_opts},
        {"PAs(inf)", SchemeKind::PAsPerfect, sweep_opts},
    };
    for (std::size_t entries : opts.bhtSizes) {
        SweepOptions finite = sweep_opts;
        finite.bhtEntries = entries;
        finite.bhtAssoc = opts.bhtAssoc;
        std::ostringstream name;
        if (entries % 1024 == 0)
            name << "PAs(" << entries / 1024 << "k)";
        else
            name << "PAs(" << entries << ")";
        plan.push_back({name.str(), SchemeKind::PAsFinite, finite});
    }
    return plan;
}

BestConfigRow
bestConfigRowFromSweep(const Table3SchemeSpec &spec,
                       const SweepResult &sweep,
                       const std::vector<unsigned> &budget_bits)
{
    BestConfigRow row;
    row.scheme = spec.name;
    row.bhtMissRate = spec.kind == SchemeKind::PAsFinite
                          ? sweep.bhtMissRate
                          : -1.0;
    for (unsigned bits : budget_bits) {
        auto best = sweep.misprediction.bestInTier(bits);
        if (best) {
            row.best.push_back(
                BestConfig{best->rowBits, best->colBits, best->value});
        } else {
            row.best.push_back(std::nullopt);
        }
    }
    return row;
}

std::vector<BestConfigRow>
bestConfigTable(const PreparedTrace &trace, const Table3Options &opts)
{
    // Execute the per-scheme sweeps on the shared pool.  Each sweep
    // parallelizes internally too; the pool caps the combined
    // concurrency.
    const std::vector<Table3SchemeSpec> plan = table3Plan(opts);
    std::vector<SweepResult> sweeps(plan.size(),
                                    SweepResult("", trace.name()));
    const unsigned threads = ThreadPool::resolveThreads(opts.threads);
    auto run_one = [&](std::size_t i) {
        sweeps[i] = sweepScheme(trace, plan[i].kind, plan[i].options);
    };
    if (threads <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            run_one(i);
    } else {
        ThreadPool::shared().parallelFor(plan.size(), threads, run_one);
    }

    std::vector<BestConfigRow> rows;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        rows.push_back(bestConfigRowFromSweep(plan[i], sweeps[i],
                                              opts.budgetBits));
    }
    return rows;
}

} // namespace bpsim

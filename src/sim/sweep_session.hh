/**
 * @file
 * The session facade of the engine core.
 *
 * Everything outside src/sim used to drive sweeps by hand: generate a
 * trace, build a PreparedTrace, call sweepScheme/bestConfigTable, and
 * rebuild all of it on the next run.  A SweepSession packages that
 * pipeline behind declarative requests:
 *
 *     SweepSession session("bpc-cache");           // optional dir
 *     auto trace = session.internProfile("gcc");
 *     auto resp  = session.sweep({trace.value().hash,
 *                                 SchemeKind::Gshare, opts});
 *
 * The session owns the three lower layers -- a TraceRegistry interning
 * traces by content/generator key, a map of PreparedTraces (one per
 * interned trace, built on first use), and a ResultCache of finished
 * sweeps (memory + optional .bpc directory).  A repeated request is a
 * cache hit: bit-identical surfaces, no replay, and on a warm disk
 * cache not even trace generation.
 *
 * Caching discipline:
 *
 *  - The cache key is (trace key, scheme, canonical config key,
 *    kEngineVersion).  cacheConfigKey() serializes exactly the options
 *    that affect *results*: tier range, aliasing tracking, the
 *    per-scheme parameters the scheme actually reads, and -- only when
 *    a request resolves speculative (resolveSegments > 1) -- the
 *    segment count and warm-up width, so speculative and exact results
 *    never cross-serve.  Execution knobs (threads, fuseJobs, simd,
 *    fusedThreads) are bit-identical by construction -- pinned by the
 *    differential tests -- and are excluded, so a sweep computed with
 *    8 threads is a hit for a serial rerun.
 *
 *  - kEngineVersion MUST be bumped whenever replay semantics change
 *    (new tie-breaking, counter init, history seeding, ...): old .bpc
 *    entries then miss and recompute instead of resurfacing stale
 *    numbers.  See DESIGN.md "Session core".
 *
 *  - A cache hit reports zeroed kernel telemetry: the telemetry
 *    describes an execution, and no execution happened.
 */

#ifndef BPSIM_SIM_SWEEP_SESSION_HH
#define BPSIM_SIM_SWEEP_SESSION_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cache/result_cache.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "trace/trace_registry.hh"

namespace bpsim {

/**
 * Version of the replay semantics baked into cached results.  Bump on
 * ANY change that can alter a sweep's numbers; never reuse a value.
 *
 * History:
 *  - 1: the 2-bit-family engine through PR 8.
 *  - 2: modern-predictor zoo (TAGE + perceptron scheme kinds, xorFold
 *       hashing, list-valued canonical config keys).  v1 entries must
 *       never serve v2 requests: the planner's job enumeration gained
 *       validity filtering and canonicalKey changed for list values.
 *  - 3: batched model-lane replay.  Zoo sweeps now honour
 *       segments/segmentWarmup (v2 always replayed the zoo exactly,
 *       so a v2 entry keyed segments>1 holds exact numbers the v3
 *       engine would compute speculatively -- those keys must not be
 *       served across the boundary).  Exact (segments==1) results are
 *       bit-identical to v2, but versioning is per-engine, not
 *       per-key.
 */
constexpr std::uint32_t kEngineVersion = 3;

/** One declarative sweep: which trace, which scheme, which lattice. */
struct SweepRequest
{
    /** Registry key of an interned trace (TraceHandle::hash). */
    TraceHash trace;
    SchemeKind kind = SchemeKind::GAs;
    SweepOptions options;
    /**
     * Skip cache lookup AND store: always replay.  The differential
     * tests compare bypass runs against hits to pin that cached
     * results are bit-identical to recomputed ones.
     */
    bool bypassCache = false;
};

/** A finished sweep plus where it came from. */
struct SweepResponse
{
    SweepResult result;
    /** Served from the result cache (memory or disk). */
    bool cacheHit = false;
    /** ... specifically from a .bpc file of an earlier process. */
    bool diskHit = false;
    /**
     * Served by a shared fused replay that also answered at least one
     * other request of the same batch (sweepBatch).  The reported
     * kernel telemetry then describes that shared envelope execution.
     */
    bool coalesced = false;
    /** Wall-clock seconds spent serving this request. */
    double seconds = 0.0;

    explicit SweepResponse(SweepResult r) : result(std::move(r)) {}
};

/** Execution accounting for one sweepBatch() call. */
struct BatchCounters
{
    /** Requests answered straight from the result cache. */
    std::uint64_t cacheHits = 0;
    /** Envelope replays executed (one per distinct fused group). */
    std::uint64_t envelopeSweeps = 0;
    /** Fused groups that served two or more requests. */
    std::uint64_t fusedGroupsFormed = 0;
    /** Requests served by a multi-request fused group. */
    std::uint64_t coalescedRequests = 0;
    /**
     * Kernel telemetry summed over every envelope replay this batch
     * executed (cache hits contribute nothing -- nothing ran).  The
     * service stats op surfaces it so a long-lived daemon reports its
     * cumulative dispatch target, segment/shard shape and worker
     * utilisation.
     */
    KernelTelemetry kernel;

    void
    merge(const BatchCounters &other)
    {
        cacheHits += other.cacheHits;
        envelopeSweeps += other.envelopeSweeps;
        fusedGroupsFormed += other.fusedGroupsFormed;
        coalescedRequests += other.coalescedRequests;
        // Only merge telemetry that describes an execution: a hit-only
        // batch's zeroed record must not reset the dispatch target.
        if (other.envelopeSweeps != 0)
            kernel.merge(other.kernel);
    }
};

/**
 * Session facade over registry, prepared traces and result cache.
 * Thread-safe: concurrent sweep() calls are allowed (bestConfigs
 * relies on it).  Create one per process/bench invocation; pass a
 * cache directory to keep results across processes.
 */
class SweepSession
{
  public:
    /**
     * @param cache_dir .bpc mirror directory; empty = memory only.
     * @param cache_budget_bytes on-disk LRU size budget (0 = none).
     */
    explicit SweepSession(std::string cache_dir = {},
                          std::uint64_t cache_budget_bytes = 0);

    SweepSession(const SweepSession &) = delete;
    SweepSession &operator=(const SweepSession &) = delete;

    /** Intern a named workload profile (generator-keyed; see
     *  workload/trace_key.hh).  Errors on unknown profile names. */
    Result<TraceHandle> internProfile(const std::string &profile,
                                      std::uint64_t target_conditionals
                                      = 0);

    /** Intern an already materialised trace (content-keyed). */
    TraceHandle internTrace(MemoryTrace trace);

    /** Load and intern a .bpt trace file (content-keyed). */
    Result<TraceHandle> internFile(const std::string &path);

    /**
     * Serve one sweep request: result cache, then replay through the
     * plan/fuse/SIMD machinery.  Results are bit-identical to a
     * direct sweepScheme() call with the same options.  Errors when
     * the trace key is not interned (and the cache cannot answer).
     */
    Result<SweepResponse> sweep(const SweepRequest &request);

    /**
     * Serve a batch of requests, coalescing the cache misses: misses
     * that share a first-level input stream -- same trace, scheme,
     * aliasing mode and scheme parameters, any tier range -- are
     * answered by ONE envelope replay spanning the union of their
     * tier ranges, then sliced per request.  The fused kernel's
     * grouping invariance makes every slice bit-identical to a
     * standalone sweep() of the same request (pinned by tests), so
     * coalescing is purely a throughput optimisation: M clients
     * asking for overlapping lattices cost one trace replay.
     *
     * Results are returned in request order.  Each computed slice is
     * stored in the result cache under its own key (bypassCache
     * requests neither look up nor store, but still join envelopes --
     * they asked for a replay and get one).  @p counters, when
     * non-null, accumulates the batch accounting the service layer
     * reports.
     */
    std::vector<Result<SweepResponse>>
    sweepBatch(const std::vector<SweepRequest> &requests,
               BatchCounters *counters = nullptr);

    /**
     * The coalescing group key of a request: everything in the cache
     * key except the tier range.  Requests with equal batch keys can
     * share one envelope replay.  Exposed for the service layer's
     * queue and for tests.
     */
    static std::string batchGroupKey(const SweepRequest &request);

    /**
     * Probe a single configuration (uncached -- single points are
     * cheap and pollute the key space).  @p opts carries the
     * per-scheme parameters; tier bounds are ignored.
     */
    Result<ConfigResult> point(const TraceHash &trace, SchemeKind kind,
                               unsigned row_bits, unsigned col_bits,
                               const SweepOptions &opts = {});

    /**
     * Table 3 for an interned trace: same rows as bestConfigTable(),
     * but each underlying scheme sweep routes through the result
     * cache.  Scheme sweeps run concurrently per Table3Options::threads.
     */
    Result<std::vector<BestConfigRow>>
    bestConfigs(const TraceHash &trace, const Table3Options &opts = {});

    /**
     * The prepared (sweep-optimised) form of an interned trace,
     * built on first use and shared; for clients that drive
     * simulateConfig/StreamCache directly.
     */
    Result<std::shared_ptr<const PreparedTrace>>
    prepared(const TraceHash &trace);

    /**
     * The canonical config-key fragment of a request (exposed for
     * tests and the trace_tool cache inspector).  Only result-
     * affecting options are included; see the file comment.
     */
    static std::string cacheConfigKey(SchemeKind kind,
                                      const SweepOptions &opts);

    /** The full cache key a request resolves to. */
    static CacheKey cacheKey(const SweepRequest &request);

    TraceRegistry &registry() { return registry_; }
    ResultCache &cache() { return cache_; }

  private:
    struct PreparedEntry
    {
        std::shared_ptr<const PreparedTrace> prepared;
        /** Keeps the interned bytes alive as long as the prepared
         *  form references them. */
        std::shared_ptr<const MemoryTrace> owner;
    };

    TraceRegistry registry_;
    ResultCache cache_;
    std::mutex mutex_; ///< guards prepared_
    std::map<TraceHash, PreparedEntry> prepared_;
};

} // namespace bpsim

#endif // BPSIM_SIM_SWEEP_SESSION_HH

/**
 * @file
 * Persistent, content-addressed cache of sweep results.
 *
 * The third layer of the session core (DESIGN.md "Session core"):
 * once a (trace, scheme, configuration lattice) sweep has been
 * replayed, its surfaces are worth keeping -- replay costs seconds,
 * the result is a few kilobytes, and both the trace key and the
 * engine are deterministic.  A ResultCache holds finished sweeps in
 * memory and, when given a directory, mirrors them to .bpc files so
 * the *next process* starts warm too.
 *
 * Keying discipline:
 *
 *  - CacheKey is (trace key, scheme name, canonical config key,
 *    engine version).  The trace key is the registry key -- a content
 *    hash for ingested traces, a generator key for synthetic ones
 *    (workload/trace_key.hh); both are reproducible across hosts.
 *  - The config key comes from Config::canonicalKey(), so option
 *    order and numeric spelling cannot split the cache.  Execution
 *    knobs (threads, fusing, SIMD lane width) are bit-identical by
 *    construction and MUST be excluded by the key builder.
 *  - The engine version (sim/sweep_session.hh) is bumped whenever
 *    replay semantics change; stale entries then miss instead of
 *    resurfacing outdated numbers.
 *
 * Failure discipline: a cache must never convert disk state into a
 * wrong answer.  Every .bpc carries its total length and a 128-bit
 * checksum over the body; any corruption, truncation, version skew
 * or key mismatch is a structured load error, which lookup() turns
 * into a miss (counted in Stats::corrupt) -- the caller recomputes.
 * verify/fault_injection.hh fuzzes this contract bit by bit.
 *
 * Multi-process discipline: any number of processes may share one
 * cache directory (the sweep_server daemon plus ad-hoc bench runs).
 * Writers serialise on an exclusive flock over <dir>/.bpsim.cache.lock
 * (common/file_lock.hh) and publish entries by writing a private
 * .tmp file and atomically renaming it into place, so a concurrent
 * reader observes either the previous complete entry or the new
 * complete entry -- never interleaved bytes, and a failed write can
 * only ever remove its own .tmp, not a good entry another process
 * published.  Readers take no lock at all; the checksum covers the
 * remaining failure modes.
 *
 * Eviction discipline: with a non-zero disk budget, every store
 * enforces it under the writer lock -- oldest entries (by mtime,
 * which disk hits refresh, making mtime order LRU order) are removed
 * until the directory fits.  The entry just stored is never the one
 * evicted, so a store always lands even when the budget is smaller
 * than one entry.
 */

#ifndef BPSIM_CACHE_RESULT_CACHE_HH
#define BPSIM_CACHE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/byte_io.hh"
#include "common/error.hh"
#include "stats/surface.hh"
#include "trace/trace_hash.hh"

namespace bpsim {

/** Identity of one cached sweep; equality means reusable result. */
struct CacheKey
{
    /** Registry key of the replayed trace (content or generator). */
    TraceHash trace;
    /** Scheme display name (schemeKindName). */
    std::string scheme;
    /** Canonical option rendering (Config::canonicalKey). */
    std::string configKey;
    /** Replay-semantics version; see sim/sweep_session.hh. */
    std::uint32_t engineVersion = 0;

    bool
    operator==(const CacheKey &other) const
    {
        return trace == other.trace && scheme == other.scheme &&
               configKey == other.configKey &&
               engineVersion == other.engineVersion;
    }
    bool operator!=(const CacheKey &other) const
    {
        return !(*this == other);
    }

    /** Full human-readable rendering (the in-memory map key). */
    std::string canonical() const;

    /** Hash of canonical(), in its own domain; names the .bpc file. */
    TraceHash digest() const;
};

/**
 * The cacheable portion of a SweepResult: the three surfaces and the
 * BHT miss rate.  Kernel telemetry describes one *execution* and is
 * deliberately not cached (a hit reports zero kernel work, which is
 * the truth).  Lives here rather than in sim/ so the cache layer
 * depends only on common/stats/trace.
 */
struct CachedSweep
{
    Surface misprediction{""};
    Surface aliasing{""};
    Surface harmless{""};
    double bhtMissRate = 0.0;
};

/** A fully parsed .bpc file: who it belongs to plus the payload. */
struct BpcImage
{
    CacheKey key;
    CachedSweep payload;
};

/**
 * Serialize one cached sweep as a .bpc image.  Little-endian
 * throughout; layout is a 32-byte fixed header (magic "BPC1", format
 * version, total length, 128-bit body checksum) followed by the
 * checksummed body (key fields, then surfaces).  Short writes and
 * stream faults surface as structured errors.
 */
Status writeBpc(ByteStream &out, const CacheKey &key,
                const CachedSweep &payload);

/**
 * Parse a .bpc image.  The declared total length is validated against
 * the real stream size before any allocation, and the body checksum
 * must match, so no corrupt or truncated file can parse; errors name
 * the stream and the reason.
 */
Result<BpcImage> readBpc(ByteStream &in);

/**
 * In-memory + optional on-disk result cache.  Thread-safe; all
 * methods may be called concurrently.  With an empty directory the
 * cache is memory-only (results live for the session).
 */
class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t memoryHits = 0;
        std::uint64_t diskHits = 0;
        std::uint64_t misses = 0;
        /** Disk entries rejected (corrupt/skewed); each also a miss. */
        std::uint64_t corrupt = 0;
        /** Failed disk writes (the in-memory entry still lands). */
        std::uint64_t storeFailures = 0;
        /** .bpc files removed by the size-budget LRU policy. */
        std::uint64_t diskEvictions = 0;

        std::uint64_t hits() const { return memoryHits + diskHits; }
    };

    /**
     * @param directory mirror entries to .bpc files under this path
     * (created if absent); empty for a memory-only cache.
     * @param disk_budget_bytes LRU-evict .bpc files after each store
     * until the directory's .bpc payload fits; 0 = unbounded.
     */
    explicit ResultCache(std::string directory = {},
                         std::uint64_t disk_budget_bytes = 0);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Find a finished sweep: memory first, then the key's .bpc file.
     * A disk hit is re-validated (full key match, checksum) and
     * promoted into memory.  Anything wrong with the file is a miss.
     * @param from_disk when non-null, set to whether the hit came
     *        from the disk mirror rather than memory.
     */
    std::optional<CachedSweep> lookup(const CacheKey &key,
                                      bool *from_disk = nullptr);

    /**
     * Record a finished sweep.  Always lands in memory; the disk
     * mirror is best-effort (a failed or partial write only ever
     * removes its own temporary file, never a published entry).
     * Disk writes go to a private .tmp and are renamed into place
     * under the cross-process writer lock, then the size budget is
     * enforced.  The returned status reports the disk outcome for
     * callers that care.
     */
    Status store(const CacheKey &key, const CachedSweep &value);

    /** Drop @p key from memory and disk. @return true if found. */
    bool evict(const CacheKey &key);

    /** Path of the key's .bpc file; empty for memory-only caches. */
    std::string filePath(const CacheKey &key) const;

    /** Path of the cross-process writer lock file (empty when
     *  memory-only). */
    std::string lockFilePath() const;

    const std::string &directory() const { return dir_; }
    std::uint64_t diskBudgetBytes() const { return diskBudget_; }
    /** Total bytes of .bpc entries currently on disk (0 when
     *  memory-only). */
    std::uint64_t diskUsageBytes() const;
    std::size_t residentEntries() const;
    Stats stats() const;

    /**
     * Test hook: make the next disk store fail after a partial .tmp
     * write, simulating disk-full mid-entry.  Pins the regression
     * that a failed store can never clobber or truncate a published
     * entry (the pre-locking code wrote the final path in place, so
     * a concurrent or failed writer silently destroyed it).
     */
    void failNextDiskStoreForTesting();

  private:
    std::optional<CachedSweep> loadFromDisk(const CacheKey &key);
    /** Remove oldest .bpc files until the budget holds; never
     *  removes @p protect.  Caller holds the writer file lock. */
    void enforceBudgetLocked(const std::string &protect);

    mutable std::mutex mutex_;
    std::string dir_;
    std::uint64_t diskBudget_ = 0;
    std::map<std::string, CachedSweep> memory_;
    Stats stats_;
    bool failNextStore_ = false;
};

} // namespace bpsim

#endif // BPSIM_CACHE_RESULT_CACHE_HH

#include "cache/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include <unistd.h>

#include "common/file_lock.hh"

namespace bpsim {

namespace {

constexpr unsigned char kMagic[4] = {'B', 'P', 'C', '1'};
constexpr std::uint32_t kBpcFormatVersion = 1;
/** magic + format version + total length + 128-bit body checksum. */
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;
constexpr const char *kBodyDomain = "bpsim.cache.bpc.v1";
constexpr const char *kKeyDomain = "bpsim.cache.key.v1";

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putSurface(std::string &out, const Surface &s)
{
    putStr(out, s.name());
    putU32(out, static_cast<std::uint32_t>(s.tiers().size()));
    for (const SurfaceTier &tier : s.tiers()) {
        putU32(out, tier.totalBits);
        putU32(out, static_cast<std::uint32_t>(tier.points.size()));
        for (const SurfacePoint &pt : tier.points) {
            putU32(out, pt.rowBits);
            putU32(out, pt.colBits);
            putF64(out, pt.value);
        }
    }
}

/** Bounds-checked little-endian reader over the body buffer. */
class BodyCursor
{
  public:
    explicit BodyCursor(const std::string &buf) : buf_(buf) {}

    bool
    u32(std::uint32_t &v)
    {
        if (buf_.size() - pos_ < 4)
            return false;
        v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) |
                static_cast<unsigned char>(buf_[pos_ + i]);
        pos_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (buf_.size() - pos_ < 8)
            return false;
        v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) |
                static_cast<unsigned char>(buf_[pos_ + i]);
        pos_ += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        std::uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    str(std::string &s)
    {
        std::uint32_t len;
        if (!u32(len) || buf_.size() - pos_ < len)
            return false;
        s.assign(buf_, pos_, len);
        pos_ += len;
        return true;
    }

    bool done() const { return pos_ == buf_.size(); }

  private:
    const std::string &buf_;
    std::size_t pos_ = 0;
};

bool
readSurface(BodyCursor &cur, Surface &out)
{
    std::string name;
    std::uint32_t tier_count;
    if (!cur.str(name) || !cur.u32(tier_count))
        return false;
    Surface s(std::move(name));
    for (std::uint32_t t = 0; t < tier_count; ++t) {
        std::uint32_t total_bits, point_count;
        if (!cur.u32(total_bits) || !cur.u32(point_count))
            return false;
        for (std::uint32_t p = 0; p < point_count; ++p) {
            std::uint32_t row, col;
            double value;
            if (!cur.u32(row) || !cur.u32(col) || !cur.f64(value))
                return false;
            s.add(total_bits, row, col, value);
        }
    }
    out = std::move(s);
    return true;
}

TraceHash
bodyChecksum(const std::string &body)
{
    HashStream h(kBodyDomain);
    for (char c : body)
        h.u8(static_cast<std::uint8_t>(c));
    return h.digest();
}

std::string
encodeBody(const CacheKey &key, const CachedSweep &payload)
{
    std::string body;
    putU32(body, key.engineVersion);
    putU64(body, key.trace.hi);
    putU64(body, key.trace.lo);
    putStr(body, key.scheme);
    putStr(body, key.configKey);
    putF64(body, payload.bhtMissRate);
    putSurface(body, payload.misprediction);
    putSurface(body, payload.aliasing);
    putSurface(body, payload.harmless);
    return body;
}

} // namespace

std::string
CacheKey::canonical() const
{
    std::string out = "engine=";
    out += std::to_string(engineVersion);
    out += "|trace=";
    out += trace.hex();
    out += "|scheme=";
    out += scheme;
    out += "|";
    out += configKey;
    return out;
}

TraceHash
CacheKey::digest() const
{
    HashStream h(kKeyDomain);
    h.u32(engineVersion);
    h.u64(trace.hi);
    h.u64(trace.lo);
    h.str(scheme);
    h.str(configKey);
    return h.digest();
}

Status
writeBpc(ByteStream &out, const CacheKey &key,
         const CachedSweep &payload)
{
    const std::string body = encodeBody(key, payload);
    const TraceHash sum = bodyChecksum(body);

    std::string header;
    header.append(reinterpret_cast<const char *>(kMagic),
                  sizeof(kMagic));
    putU32(header, kBpcFormatVersion);
    putU64(header, kHeaderBytes + body.size());
    putU64(header, sum.hi);
    putU64(header, sum.lo);

    if (out.write(header.data(), header.size()) != header.size() ||
        out.write(body.data(), body.size()) != body.size()) {
        return BPSIM_ERROR("short write to cache file ",
                           out.describe());
    }
    if (!out.flush())
        return BPSIM_ERROR("cannot flush cache file ", out.describe(),
                           " (disk full?)");
    return Status();
}

Result<BpcImage>
readBpc(ByteStream &in)
{
    const std::string &where = in.describe();

    unsigned char hdr[kHeaderBytes];
    if (in.read(hdr, sizeof(hdr)) != sizeof(hdr))
        return BPSIM_ERROR(where, ": truncated cache header");
    if (std::memcmp(hdr, kMagic, sizeof(kMagic)) != 0)
        return BPSIM_ERROR(where,
                           " is not a .bpc cache file (bad magic)");

    auto decU32 = [&hdr](std::size_t off) {
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | hdr[off + i];
        return v;
    };
    auto decU64 = [&hdr](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | hdr[off + i];
        return v;
    };

    const std::uint32_t format = decU32(4);
    if (format != kBpcFormatVersion) {
        return BPSIM_ERROR(where,
                           ": unsupported cache format version ",
                           format);
    }
    const std::uint64_t declared = decU64(8);
    const TraceHash sum{decU64(16), decU64(24)};

    // Validate the declared length against the real stream size
    // BEFORE allocating: truncation, trailing garbage and length
    // tampering are all caught here, and the body allocation below
    // is bounded by the actual file size.
    std::uint64_t actual = 0;
    if (!in.size(actual))
        return BPSIM_ERROR(where,
                           ": cannot determine cache file size");
    if (declared != actual || declared < kHeaderBytes) {
        return BPSIM_ERROR(where, ": header declares ", declared,
                           " bytes but the file holds ", actual);
    }

    std::string body(declared - kHeaderBytes, '\0');
    if (in.read(body.data(), body.size()) != body.size())
        return BPSIM_ERROR(where, ": truncated cache body");
    if (bodyChecksum(body) != sum)
        return BPSIM_ERROR(where,
                           ": cache body checksum mismatch "
                           "(corrupt file)");

    // The checksum already vouches for the bytes; the bounds checks
    // below guard the parser itself against malformed-but-matching
    // bodies (which only a deliberate writer could produce).
    BpcImage image;
    BodyCursor cur(body);
    std::uint64_t hi, lo;
    if (!cur.u32(image.key.engineVersion) || !cur.u64(hi) ||
        !cur.u64(lo) || !cur.str(image.key.scheme) ||
        !cur.str(image.key.configKey)) {
        return BPSIM_ERROR(where, ": malformed cache key block");
    }
    image.key.trace = TraceHash{hi, lo};
    if (!cur.f64(image.payload.bhtMissRate) ||
        !readSurface(cur, image.payload.misprediction) ||
        !readSurface(cur, image.payload.aliasing) ||
        !readSurface(cur, image.payload.harmless)) {
        return BPSIM_ERROR(where, ": malformed cache payload");
    }
    if (!cur.done())
        return BPSIM_ERROR(where,
                           ": trailing bytes after cache payload");
    return image;
}

ResultCache::ResultCache(std::string directory,
                         std::uint64_t disk_budget_bytes)
    : dir_(std::move(directory)), diskBudget_(disk_budget_bytes)
{
    if (!dir_.empty()) {
        // Best-effort: when creation fails every store() fails and
        // is counted, but lookups still work from memory.
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
    }
}

std::string
ResultCache::lockFilePath() const
{
    if (dir_.empty())
        return {};
    return dir_ + "/.bpsim.cache.lock";
}

std::string
ResultCache::filePath(const CacheKey &key) const
{
    if (dir_.empty())
        return {};
    return dir_ + "/" + key.digest().hex() + ".bpc";
}

std::optional<CachedSweep>
ResultCache::loadFromDisk(const CacheKey &key)
{
    const std::string path = filePath(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec)
        return std::nullopt; // plain miss, nothing to validate

    auto stream = StdioFileStream::openRead(path);
    if (!stream.ok()) {
        ++stats_.corrupt;
        return std::nullopt;
    }
    Result<BpcImage> image = readBpc(*stream.value());
    // A parse error OR a full-key mismatch (digest collision) both
    // degrade to recompute; the file never becomes a wrong answer.
    if (!image.ok() || image.value().key != key) {
        ++stats_.corrupt;
        return std::nullopt;
    }
    return std::move(image).value().payload;
}

std::optional<CachedSweep>
ResultCache::lookup(const CacheKey &key, bool *from_disk)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (from_disk)
        *from_disk = false;
    const std::string canon = key.canonical();
    auto it = memory_.find(canon);
    if (it != memory_.end()) {
        ++stats_.memoryHits;
        return it->second;
    }
    if (!dir_.empty()) {
        std::optional<CachedSweep> disk = loadFromDisk(key);
        if (disk) {
            ++stats_.diskHits;
            if (from_disk)
                *from_disk = true;
            // Refresh the entry's mtime so the LRU eviction policy
            // sees it as recently used (best-effort; a failure only
            // makes the entry look older than it is).
            std::error_code ec;
            std::filesystem::last_write_time(
                filePath(key),
                std::filesystem::file_time_type::clock::now(), ec);
            memory_.emplace(canon, *disk);
            return disk;
        }
    }
    ++stats_.misses;
    return std::nullopt;
}

Status
ResultCache::store(const CacheKey &key, const CachedSweep &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    memory_.insert_or_assign(key.canonical(), value);
    if (dir_.empty())
        return Status();

    const std::string path = filePath(key);
    // Private temporary: the pid disambiguates concurrent processes,
    // the key digest disambiguates concurrent threads of one process
    // (which are already serialised by mutex_ anyway).
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const bool inject_failure = failNextStore_;
    failNextStore_ = false;

    auto writeTmp = [&]() -> Status {
        auto stream = StdioFileStream::openWrite(tmp);
        if (!stream.ok())
            return stream.error();
        if (inject_failure) {
            // Simulate disk-full mid-entry: a few garbage bytes land
            // in the .tmp, then the write reports failure.
            static_cast<void>(stream.value()->write("BPC", 3));
            static_cast<void>(stream.value()->close());
            return BPSIM_ERROR("injected store failure for ", tmp);
        }
        Status st = writeBpc(*stream.value(), key, value);
        if (!st.ok())
            return st;
        if (!stream.value()->close()) {
            return BPSIM_ERROR("error closing cache file ", tmp,
                               " (disk full?)");
        }
        return Status();
    };

    // Serialise against writers in OTHER processes; publish by atomic
    // rename so readers (which take no lock) can never observe a
    // partial entry, and a failed write can only remove its own .tmp.
    Result<FileLock> dirLock = FileLock::acquire(lockFilePath());
    Status st = writeTmp();
    if (st.ok()) {
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            st = BPSIM_ERROR("cannot publish cache file ", path, ": ",
                             ec.message());
        }
    }
    if (!st.ok()) {
        std::remove(tmp.c_str()); // never leave tmp debris
        ++stats_.storeFailures;
    } else if (diskBudget_ > 0) {
        enforceBudgetLocked(path);
    }
    // dirLock releases here; a failed acquire degrades to unlocked
    // operation (rename is still atomic, only eviction races remain).
    return st;
}

void
ResultCache::enforceBudgetLocked(const std::string &protect)
{
    struct Entry
    {
        std::string path;
        std::uint64_t size;
        std::filesystem::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : std::filesystem::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file() || de.path().extension() != ".bpc")
            continue;
        std::error_code fec;
        Entry e{de.path().string(),
                static_cast<std::uint64_t>(de.file_size(fec)),
                de.last_write_time(fec)};
        if (fec)
            continue;
        total += e.size;
        entries.push_back(std::move(e));
    }
    if (total <= diskBudget_)
        return;
    // Oldest first == least recently used: stores and disk hits both
    // refresh mtime.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry &e : entries) {
        if (total <= diskBudget_)
            break;
        if (e.path == protect)
            continue; // the store that triggered us always lands
        std::error_code rec;
        if (std::filesystem::remove(e.path, rec) && !rec) {
            total -= e.size;
            ++stats_.diskEvictions;
        }
    }
}

std::uint64_t
ResultCache::diskUsageBytes() const
{
    if (dir_.empty())
        return 0;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : std::filesystem::directory_iterator(dir_, ec)) {
        std::error_code fec;
        if (de.is_regular_file() && de.path().extension() == ".bpc")
            total += static_cast<std::uint64_t>(de.file_size(fec));
    }
    return total;
}

void
ResultCache::failNextDiskStoreForTesting()
{
    std::lock_guard<std::mutex> lock(mutex_);
    failNextStore_ = true;
}

bool
ResultCache::evict(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    bool found = memory_.erase(key.canonical()) > 0;
    if (!dir_.empty()) {
        Result<FileLock> dirLock = FileLock::acquire(lockFilePath());
        std::error_code ec;
        found = std::filesystem::remove(filePath(key), ec) || found;
    }
    return found;
}

std::size_t
ResultCache::residentEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memory_.size();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace bpsim

#include "workload/profiles.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bpsim {

namespace {

/** Everything that distinguishes one profile, in one row. */
struct ProfileRow
{
    PaperBenchmarkData paper;
    /** Seed; distinct per profile so traces are uncorrelated. */
    std::uint64_t seed;
    double zipfExponent;
    /** Scaled trace length (profile default). */
    std::uint64_t defaultConditionals;
};

// Paper Table 1 reference values.
const ProfileRow profileRows[] = {
    // SPECint92 (user-level traces)
    {{"compress", Suite::SpecInt92, 83'947'354, 11'739'532, 236, 13},
     101, 1.10, 1'500'000},
    {{"eqntott", Suite::SpecInt92, 1'395'165'044, 342'595'193, 494, 51},
     102, 1.05, 2'500'000},
    {{"espresso", Suite::SpecInt92, 521'130'798, 76'466'469, 1764, 110},
     103, 1.20, 2'500'000},
    {{"gcc", Suite::SpecInt92, 142'359'130, 21'579'307, 9531, 2020},
     104, 0.80, 2'000'000},
    {{"xlisp", Suite::SpecInt92, 1'307'000'716, 147'425'333, 489, 48},
     105, 1.10, 2'500'000},
    {{"sc", Suite::SpecInt92, 889'057'006, 150'381'340, 1269, 157},
     106, 1.05, 2'000'000},
    // IBS-Ultrix (user + kernel traces)
    {{"groff", Suite::IbsUltrix, 104'943'750, 11'901'481, 6333, 459},
     201, 1.05, 2'000'000},
    {{"gs", Suite::IbsUltrix, 118'090'975, 16'308'247, 12852, 1160},
     202, 0.85, 2'000'000},
    {{"mpeg_play", Suite::IbsUltrix, 99'430'055, 9'566'290, 5598, 532},
     203, 1.00, 2'500'000},
    {{"nroff", Suite::IbsUltrix, 130'249'374, 22'574'884, 5249, 228},
     204, 1.15, 2'000'000},
    {{"real_gcc", Suite::IbsUltrix, 107'374'368, 14'309'667, 17361,
      3214},
     205, 0.72, 2'500'000},
    {{"sdet", Suite::IbsUltrix, 42'051'612, 5'514'439, 5310, 506},
     206, 1.20, 1'500'000},
    {{"verilog", Suite::IbsUltrix, 47'055'243, 6'212'381, 4636, 650},
     207, 1.00, 1'500'000},
    {{"video_play", Suite::IbsUltrix, 52'508'059, 5'759'231, 4606, 757},
     208, 1.05, 1'500'000},
};

const ProfileRow *
findRow(const std::string &name)
{
    for (const auto &row : profileRows) {
        if (row.paper.name == name)
            return &row;
    }
    return nullptr;
}

/** Behaviour-mix template for the small-footprint SPECint92 programs. */
void
applySpecSmallMix(WorkloadParams &p)
{
    // Small programs: fewer, less biased, more correlated branches
    // (Section 2 calls out eqntott and compress as low-bias; the suite
    // overall overstates the benefit of multi-counter subcasing).
    p.loopFraction = 0.32;
    p.meanTripsHot = 40.0;
    p.meanTripsCold = 20.0;
    p.loopDepthDecay = 2.0;
    p.fixedTripFraction = 0.55;
    p.fixedTripMin = 3;
    p.fixedTripMax = 6;
    p.tripJitterProb = 0.04;
    p.minHomeTrips = 16;
    p.hardContentDepthScale = 0.45;
    p.correlatedDepthScale = 0.45;
    p.tightLoopFraction = 0.70;
    p.shadowMaxDepth = 3;
    p.fracPattern = 0.04;
    p.fracCorrelated = 0.03;
    p.fracShadow = 0.10;
    p.fracMarkov = 0.03;
    p.fracLowBias = 0.03;
    p.highBiasMin = 0.97;
    p.highBiasMax = 0.9993;
    p.lowBiasMin = 0.65;
    p.lowBiasMax = 0.90;
    p.noise = 0.02;
    p.kernelFraction = 0.0;
    p.uniformPickFraction = 0.03;
    p.driverBurstMean = 12.0;
}

/** Behaviour-mix template for gcc and the IBS-Ultrix programs. */
void
applyLargeProgramMix(WorkloadParams &p, bool kernel)
{
    // Large programs: "proportionally even more instances of these
    // highly biased branches" (Section 2); correlation exists but is a
    // smaller share of the dynamic stream.
    p.loopFraction = 0.22;
    p.meanTripsHot = 14.0;
    p.meanTripsCold = 9.0;
    p.loopDepthDecay = 3.0;
    p.fixedTripFraction = 0.35;
    p.fixedTripMin = 4;
    p.fixedTripMax = 9;
    p.tripJitterProb = 0.10;
    p.minHomeTrips = 4;
    p.hardContentDepthScale = 0.40;
    p.correlatedDepthScale = 0.40;
    p.tightLoopFraction = 0.75;
    p.shadowMaxDepth = 1;
    p.fracPattern = 0.03;
    p.fracCorrelated = 0.03;
    p.fracShadow = 0.02;
    p.fracMarkov = 0.03;
    p.fracLowBias = 0.03;
    p.highBiasMin = 0.97;
    p.highBiasMax = 0.9995;
    p.lowBiasMin = 0.65;
    p.lowBiasMax = 0.90;
    p.noise = 0.02;
    p.kernelFraction = kernel ? 0.25 : 0.0;
    // IBS-style traces interleave the application with kernel and
    // X-server activity: a sizeable share of driver picks lands on
    // cold functions, which keeps the instantaneous branch working set
    // large enough to stress small first-level tables (the paper's
    // PAs(128) collapse).
    p.uniformPickFraction = 0.10;
    p.driverBurstMean = 5.0;
}

} // namespace

const std::vector<std::string> &
profileNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &row : profileRows)
            out.push_back(row.paper.name);
        return out;
    }();
    return names;
}

const std::vector<std::string> &
focusProfileNames()
{
    static const std::vector<std::string> names = {"espresso",
                                                   "mpeg_play",
                                                   "real_gcc"};
    return names;
}

bool
isProfileName(const std::string &name)
{
    return findRow(name) != nullptr;
}

WorkloadParams
profileParams(const std::string &name,
              std::uint64_t target_conditionals)
{
    const ProfileRow *row = findRow(name);
    if (!row) {
        bpsim_fatal("unknown workload profile '", name,
                    "'; known profiles: compress eqntott espresso gcc "
                    "xlisp sc groff gs mpeg_play nroff real_gcc sdet "
                    "verilog video_play");
    }

    WorkloadParams p;
    p.name = row->paper.name;
    p.seed = row->seed;
    // Build more sites than the Table 1 static count: branches guarding
    // never-taken paths (error handling) are built but never execute,
    // exactly as in real binaries, and Table 1 counts executed branches.
    bool small_spec = row->paper.suite == Suite::SpecInt92 &&
        row->paper.staticConditionals < 2000;
    double inflation = small_spec ? 1.12 : 1.35;
    p.staticBranches = static_cast<std::size_t>(
        inflation * static_cast<double>(row->paper.staticConditionals));
    // About a dozen conditional sites per function, as compiled C code.
    p.functionCount = std::max<std::size_t>(8, p.staticBranches / 12);
    p.zipfExponent = row->zipfExponent;
    p.targetConditionals =
        target_conditionals ? target_conditionals
                            : row->defaultConditionals;

    if (small_spec) {
        applySpecSmallMix(p);
        // eqntott and compress: notably low-bias active branches.
        if (p.name == "eqntott" || p.name == "compress")
            p.fracLowBias = 0.30;
    } else {
        applyLargeProgramMix(p,
                             row->paper.suite == Suite::IbsUltrix);
    }
    return p;
}

const PaperBenchmarkData &
paperData(const std::string &name)
{
    const ProfileRow *row = findRow(name);
    if (!row)
        bpsim_fatal("unknown workload profile '", name, "'");
    return row->paper;
}

const std::vector<PaperFrequencyRow> &
paperFrequencyRows()
{
    // Paper Table 2.
    static const std::vector<PaperFrequencyRow> rows = {
        {"espresso", {12, 93, 296, 1376}},
        {"mpeg_play", {64, 466, 1372, 3694}},
        {"real_gcc", {327, 2877, 6398, 5749}},
    };
    return rows;
}

} // namespace bpsim

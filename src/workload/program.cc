#include "workload/program.hh"

#include "common/logging.hh"

namespace bpsim {

void
SyntheticProgram::verify() const
{
    bpsim_assert(!code.empty(), "empty program");
    bpsim_assert(!functions.empty(), "program with no functions");

    for (std::size_t f = 0; f < functions.size(); ++f) {
        const Function &fn = functions[f];
        bpsim_assert(fn.entry < code.size(), "function ", fn.name,
                     " entry out of range");
        bpsim_assert(fn.end <= code.size() && fn.entry < fn.end,
                     "function ", fn.name, " extent invalid");
        bpsim_assert(fn.hotness >= 0.0, "negative hotness");
    }

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Insn &insn = code[i];
        switch (insn.op) {
          case Op::Plain:
          case Op::Ret:
            break;
          case Op::Cond:
            bpsim_assert(insn.site < sites.size(), "slot ", i,
                         ": site index out of range");
            bpsim_assert(sites[insn.site].slot == i, "slot ", i,
                         ": site table disagrees about slot");
            [[fallthrough]];
          case Op::Jump:
            bpsim_assert(insn.target < code.size(), "slot ", i,
                         ": jump target out of range");
            break;
          case Op::Call:
            bpsim_assert(insn.target < functions.size(), "slot ", i,
                         ": callee out of range");
            break;
        }
    }

    for (std::size_t s = 0; s < sites.size(); ++s) {
        const BranchSite &site = sites[s];
        bpsim_assert(site.predicate != nullptr, "site ", s,
                     " has no predicate");
        bpsim_assert(site.slot < code.size() &&
                         code[site.slot].op == Op::Cond,
                     "site ", s, " does not point at a Cond slot");
        bpsim_assert(site.function < functions.size(), "site ", s,
                     " function out of range");
    }
}

void
SyntheticProgram::resetPredicates()
{
    for (auto &site : sites)
        site.predicate->reset();
}

} // namespace bpsim

/**
 * @file
 * Fetch-execute interpreter for synthetic programs.
 *
 * The executor is a TraceSource: each call to next() steps the program
 * until a control-transfer instruction executes, and emits the
 * corresponding BranchRecord.  A top-level driver picks which function to
 * run: first one coverage pass touching every function once (so every
 * static branch site appears in the trace, populating the long tail of
 * Table 2), then hotness-weighted sampling until the conditional-branch
 * target is reached.
 */

#ifndef BPSIM_WORKLOAD_EXECUTOR_HH
#define BPSIM_WORKLOAD_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "trace/trace_source.hh"
#include "workload/builder.hh"
#include "workload/program.hh"

namespace bpsim {

/** Runs a SyntheticProgram, streaming BranchRecords. */
class ProgramExecutor : public TraceSource, private ExecContext
{
  public:
    /**
     * @param program built program; must outlive the executor.  The
     *        executor mutates predicate state, so two executors must not
     *        share a program concurrently.
     * @param params the same params the program was built from (supplies
     *        scheduling knobs and the stop target).
     */
    ProgramExecutor(SyntheticProgram &program,
                    const WorkloadParams &params);

    bool next(BranchRecord &out) override;
    void reset() override;
    const std::string &name() const override { return traceName; }

    /** Conditional records emitted so far. */
    std::uint64_t conditionalsEmitted() const { return condEmitted; }

  private:
    /// ExecContext interface (seen by predicates)
    Pcg32 &rng() override { return rng_; }
    std::uint64_t globalOutcomeHistory() const override { return ghist; }
    bool lastOutcomeOf(std::size_t site_id) const override;

    /** Driver: select and enter the next top-level function. */
    bool enterNextFunction();

    /** Step one instruction; @return true if a record was emitted. */
    bool step(BranchRecord &out);

    /** Fill the common fields of an emitted record. */
    void emit(BranchRecord &out, Addr pc, Addr target, BranchType type,
              bool taken);

    SyntheticProgram &prog;
    WorkloadParams params;
    std::string traceName;
    Pcg32 rng_;
    DiscreteSampler hotness;

    /** One stack frame: return slot + the function returned into. */
    struct Frame
    {
        std::uint32_t returnSlot;
        std::uint32_t function;
    };

    std::uint32_t pc = 0;
    std::uint32_t currentFunction = 0;
    bool running = false;
    std::vector<Frame> stack;

    std::uint64_t ghist = 0;
    std::vector<std::uint8_t> lastOutcome;
    std::uint32_t instGap = 0;
    std::uint64_t condEmitted = 0;
    /** Remaining repeats of the current burst function. */
    std::uint64_t burstRemaining = 0;
    /** Function being repeated by the current burst. */
    std::uint32_t burstFunction = 0;
    /** Index into the initial per-function coverage pass. */
    std::size_t coverageCursor = 0;
    /** Coverage pass order (hotness-rank order: hottest first). */
    std::vector<std::uint32_t> coverageOrder;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_EXECUTOR_HH

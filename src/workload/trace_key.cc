#include "workload/trace_key.hh"

#include "workload/profiles.hh"
#include "workload/synthetic.hh"

namespace bpsim {

TraceHash
syntheticTraceKey(const WorkloadParams &p)
{
    // Every generation-relevant field, in declaration order.  A new
    // WorkloadParams field must be added here AND the domain version
    // bumped (old keys describe traces the new generator no longer
    // reproduces).
    HashStream h("bpsim.trace.synthetic.v1");
    h.str(p.name);
    h.u64(p.seed);
    h.u64(p.staticBranches);
    h.u64(p.functionCount);
    h.f64(p.meanBlockLen);
    h.f64(p.callDensity);
    h.u32(p.maxNestDepth);
    h.f64(p.zipfExponent);
    h.f64(p.uniformPickFraction);
    h.f64(p.driverBurstMean);
    h.f64(p.kernelFraction);
    h.f64(p.loopFraction);
    h.f64(p.meanTripsHot);
    h.f64(p.meanTripsCold);
    h.f64(p.loopDepthDecay);
    h.f64(p.topTestFraction);
    h.f64(p.fixedTripFraction);
    h.u32(p.fixedTripMin);
    h.u32(p.fixedTripMax);
    h.f64(p.tripJitterProb);
    h.u32(p.minHomeTrips);
    h.f64(p.tightLoopFraction);
    h.f64(p.hardContentDepthScale);
    h.f64(p.correlatedDepthScale);
    h.u32(p.shadowMaxDepth);
    h.f64(p.fracPattern);
    h.f64(p.fracCorrelated);
    h.f64(p.fracShadow);
    h.f64(p.fracMarkov);
    h.f64(p.fracLowBias);
    h.f64(p.highBiasMin);
    h.f64(p.highBiasMax);
    h.f64(p.lowBiasMin);
    h.f64(p.lowBiasMax);
    h.f64(p.noise);
    h.u64(p.targetConditionals);
    return h.digest();
}

Result<TraceHash>
profileTraceKey(const std::string &profile,
                std::uint64_t target_conditionals)
{
    if (!isProfileName(profile))
        return BPSIM_ERROR("unknown workload profile '", profile, "'");
    return syntheticTraceKey(
        profileParams(profile, target_conditionals));
}

Result<TraceHandle>
internProfile(TraceRegistry &registry, const std::string &profile,
              std::uint64_t target_conditionals)
{
    if (!isProfileName(profile))
        return BPSIM_ERROR("unknown workload profile '", profile, "'");
    return internParams(registry,
                        profileParams(profile, target_conditionals));
}

TraceHandle
internParams(TraceRegistry &registry, const WorkloadParams &params)
{
    return registry.internSynthetic(
        syntheticTraceKey(params),
        [&params] { return generateTrace(params); });
}

} // namespace bpsim

/**
 * @file
 * Named workload profiles standing in for the paper's fourteen
 * benchmarks (six SPECint92 traces, eight IBS-Ultrix traces).
 *
 * Each profile pins the observable characteristics the paper reports and
 * identifies as causal: static conditional branch count (Table 1),
 * dynamic frequency skew (Table 2), bias mix (Section 2), and --
 * qualitatively -- the stronger correlation content of the small
 * SPECint92 programs.  The paper's own Table 1/2 numbers are carried
 * alongside for paper-vs-measured comparisons.
 */

#ifndef BPSIM_WORKLOAD_PROFILES_HH
#define BPSIM_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/builder.hh"

namespace bpsim {

/** Which suite a profile models. */
enum class Suite
{
    SpecInt92,
    IbsUltrix,
};

/** Reference numbers from the paper, for side-by-side reporting. */
struct PaperBenchmarkData
{
    std::string name;
    Suite suite;
    /** Table 1: total dynamic instructions. */
    std::uint64_t dynamicInstructions;
    /** Table 1: dynamic conditional branch instances. */
    std::uint64_t dynamicConditionals;
    /** Table 1: static conditional branch sites. */
    std::size_t staticConditionals;
    /** Table 1: static branches constituting 90% of instances. */
    std::size_t staticCovering90;
};

/** Paper Table 2 reference row (espresso, mpeg_play, real_gcc only). */
struct PaperFrequencyRow
{
    std::string name;
    /** Static branches in the first 50% / next 40% / next 9% / last 1%. */
    std::size_t quartiles[4];
};

/** All fourteen profile names, in the paper's Table 1 order. */
const std::vector<std::string> &profileNames();

/** The three benchmarks the paper's figures focus on. */
const std::vector<std::string> &focusProfileNames();

/** @return true when @p name is one of the fourteen profiles. */
bool isProfileName(const std::string &name);

/**
 * Workload parameters for a named profile; fatal() on unknown names.
 * @param target_conditionals override the trace length (0 = profile
 *        default of about two million conditional branches)
 */
WorkloadParams profileParams(const std::string &name,
                             std::uint64_t target_conditionals = 0);

/** Paper Table 1 data for a profile; fatal() on unknown names. */
const PaperBenchmarkData &paperData(const std::string &name);

/** Paper Table 2 rows (three focus benchmarks). */
const std::vector<PaperFrequencyRow> &paperFrequencyRows();

} // namespace bpsim

#endif // BPSIM_WORKLOAD_PROFILES_HH

/**
 * @file
 * The synthetic program representation: a lowered code image over a tiny
 * control-flow ISA, plus the conditional branch sites (each owning a
 * behaviour predicate) and the function table.
 *
 * The builder (builder.hh) lowers structured constructs -- if / if-else,
 * top- and bottom-test loops, calls -- into this image; the executor
 * (executor.hh) is then a plain fetch-execute loop, which is what makes
 * the generated traces behave like traces of real code: consecutive
 * branches follow program paths, so global history patterns identify
 * branch sites, the property correlation-based predictors exploit.
 */

#ifndef BPSIM_WORKLOAD_PROGRAM_HH
#define BPSIM_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "workload/predicate.hh"

namespace bpsim {

/** Opcodes of the synthetic ISA. */
enum class Op : std::uint8_t
{
    /** A non-branch instruction (ALU/load/store filler). */
    Plain,
    /** Conditional branch; jumps to target when taken. */
    Cond,
    /** Unconditional jump to target. */
    Jump,
    /** Call: push return, jump to the entry of function `target`. */
    Call,
    /** Return to the pushed address. */
    Ret,
};

/** One instruction slot; slot i sits at address base + 4*i. */
struct Insn
{
    Op op = Op::Plain;
    /**
     * Cond/Jump: destination slot index.  Call: callee function id.
     * Plain/Ret: unused.
     */
    std::uint32_t target = 0;
    /** Cond only: index into the program's branch-site table. */
    std::uint32_t site = 0;
};

/** A conditional branch site: identity plus behaviour. */
struct BranchSite
{
    /** Slot index of the branch instruction. */
    std::uint32_t slot = 0;
    /** Owning function id. */
    std::uint32_t function = 0;
    /** Outcome generator; never null in a built program. */
    std::unique_ptr<Predicate> predicate;
    /**
     * True when the branch is TAKEN to EXIT a top-test loop whose
     * predicate expresses "continue looping": outcome = !predicate.
     * Bottom-test loops and plain ifs wire the predicate to taken
     * directly.
     */
    bool invertPredicate = false;
};

/** A function: entry slot, layout extent, and scheduling metadata. */
struct Function
{
    std::string name;
    std::uint32_t entry = 0;
    /** One past the last slot belonging to this function. */
    std::uint32_t end = 0;
    /** Executes in kernel mode (IBS-style traces). */
    bool kernel = false;
    /** Relative probability of being picked by the top-level driver. */
    double hotness = 0.0;
};

/**
 * A synthetic program: code image, branch-site table, function table.
 * Built by ProgramBuilder (which fills the public containers directly),
 * then treated as immutable apart from predicate state.
 */
class SyntheticProgram
{
  public:
    SyntheticProgram() = default;

    SyntheticProgram(const SyntheticProgram &) = delete;
    SyntheticProgram &operator=(const SyntheticProgram &) = delete;
    SyntheticProgram(SyntheticProgram &&) = default;
    SyntheticProgram &operator=(SyntheticProgram &&) = default;

    /** Base virtual address of user-mode code (MIPS text segment). */
    static constexpr Addr userBase = 0x00400000;
    /** Address offset applied to kernel-mode code (MIPS kseg0). */
    static constexpr Addr kernelBase = 0x80000000;

    /** Address of slot @p idx for user (or kernel) mode code. */
    Addr
    addressOf(std::uint32_t idx, bool kernel) const
    {
        return (kernel ? kernelBase : Addr{0}) + userBase + Addr{4} * idx;
    }

    /** Validate internal consistency; panic()s on a builder bug. */
    void verify() const;

    /** Reset all mutable predicate state (fresh trace generation). */
    void resetPredicates();

    /** Count of conditional branch sites. */
    std::size_t staticBranchCount() const { return sites.size(); }

    std::vector<Insn> code;
    std::vector<Function> functions;
    std::vector<BranchSite> sites;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_PROGRAM_HH

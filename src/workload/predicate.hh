/**
 * @file
 * Branch behaviour models ("predicates") driving the conditional branches
 * of synthetic programs.
 *
 * The mix of these models is what gives each benchmark profile its
 * character, following the populations the paper identifies in Section 2:
 * highly biased branches (error/bounds checks and other routine
 * conditionals), loop branches, branches with periodic self-history
 * patterns, branches correlated with earlier branch outcomes, and noisy
 * low-bias branches.
 */

#ifndef BPSIM_WORKLOAD_PREDICATE_HH
#define BPSIM_WORKLOAD_PREDICATE_HH

#include <cstdint>
#include <memory>

#include "common/random.hh"

namespace bpsim {

/**
 * The slice of executor state a predicate may consult when producing an
 * outcome.  Keeping this narrow documents exactly which inter-branch
 * information the workload can encode.
 */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** Workload RNG (shared; deterministic for a given seed). */
    virtual Pcg32 &rng() = 0;

    /**
     * The last 64 conditional outcomes executed, most recent in bit 0 --
     * the ground truth that global-history predictors try to mirror.
     */
    virtual std::uint64_t globalOutcomeHistory() const = 0;

    /** Last outcome of conditional site @p site_id (false if never run). */
    virtual bool lastOutcomeOf(std::size_t site_id) const = 0;
};

/** Abstract outcome generator attached to one conditional branch site. */
class Predicate
{
  public:
    virtual ~Predicate() = default;

    /** Produce the outcome for one execution of the branch. */
    virtual bool evaluate(ExecContext &ctx) = 0;

    /** Reset mutable per-site state (new trace generation run). */
    virtual void reset() {}

    /** Behaviour-class name for analysis tools ("biased", "loop", ...). */
    virtual const char *typeName() const = 0;
};

/** Taken with fixed probability @p p, independently each execution. */
class BiasedPredicate : public Predicate
{
  public:
    explicit BiasedPredicate(double p);
    bool evaluate(ExecContext &ctx) override;
    const char *typeName() const override
    {
        return p >= 0.9 || p <= 0.1 ? "biased-high" : "biased-low";
    }

    double takenProbability() const { return p; }

  private:
    double p;
};

/**
 * Repeats a fixed outcome pattern of @p length bits (bit 0 first).
 * Perfectly predictable from @p length bits of self history; models
 * alternating/periodic program conditions.
 */
class PatternPredicate : public Predicate
{
  public:
    PatternPredicate(std::uint64_t pattern, unsigned length,
                     double noise = 0.0);
    bool evaluate(ExecContext &ctx) override;
    void reset() override { pos = 0; }
    const char *typeName() const override { return "pattern"; }

    unsigned length() const { return len; }

  private:
    std::uint64_t pattern;
    unsigned len;
    double noise;
    unsigned pos = 0;
};

/**
 * Two-state Markov chain: repeats its previous outcome with probability
 * @p p_stay.  Models run-structured conditions (phase behaviour);
 * predictable from one bit of self history when p_stay > 1/2.
 */
class MarkovPredicate : public Predicate
{
  public:
    MarkovPredicate(double p_stay, bool initial = true);
    bool evaluate(ExecContext &ctx) override;
    void reset() override { last = initial; }
    const char *typeName() const override { return "markov"; }

  private:
    double pStay;
    bool initial;
    bool last;
};

/**
 * Outcome is the XOR (optionally inverted) of selected recent *global*
 * outcomes, flipped with probability @p noise.  This is inter-branch
 * correlation in its purest form: a GAg/GAs predictor with history length
 * covering the deepest selected bit predicts it almost perfectly, while
 * self-history predictors see noise.
 */
class CorrelatedPredicate : public Predicate
{
  public:
    /**
     * @param history_mask which global-history bits feed the XOR
     *        (bit 0 = most recent outcome); must be nonzero
     * @param invert flip the XOR result
     * @param noise probability of flipping the final outcome
     */
    CorrelatedPredicate(std::uint64_t history_mask, bool invert,
                        double noise);
    bool evaluate(ExecContext &ctx) override;
    const char *typeName() const override { return "correlated"; }

    std::uint64_t historyMask() const { return maskBits; }

  private:
    std::uint64_t maskBits;
    bool invert;
    double noise;
};

/**
 * Mirrors (or negates) the last outcome of another branch site --
 * the classic "if (x < 0) ... if (x >= 0)" correlation pair from the
 * correlating-predictor literature.
 */
class ShadowPredicate : public Predicate
{
  public:
    ShadowPredicate(std::size_t other_site, bool invert, double noise);
    bool evaluate(ExecContext &ctx) override;
    const char *typeName() const override { return "shadow"; }

  private:
    std::size_t otherSite;
    bool invert;
    double noise;
};

/**
 * Loop-control predicate.  Draws a trip count at loop entry and reports
 * "continue" for the first T-1 evaluations, then "exit".
 *
 * Three trip models, reflecting how real loop branches behave:
 *  - fixed: exactly T trips every entry (compile-time bounds) -- the
 *    canonical history-predictable branch, costing 1/T for a plain
 *    two-bit counter;
 *  - jittered: a stable "home" trip count, occasionally replaced by a
 *    geometric redraw (data-dependent bounds that are usually the same);
 *  - geometric: memoryless exits (mean trips), which no history can
 *    anticipate -- only the taken bias is learnable.
 *
 * evaluate() returns true to CONTINUE the loop; the program builder wires
 * that to taken/not-taken according to the loop shape (bottom-test loops
 * take the backedge to continue; top-test loops take the exit edge to
 * stop).
 */
class LoopTripPredicate : public Predicate
{
  public:
    /** Geometric trip counts with the given mean (>= 1). */
    static std::unique_ptr<LoopTripPredicate> geometric(double mean_trips);
    /** Exactly @p trips iterations every entry (>= 1). */
    static std::unique_ptr<LoopTripPredicate> fixed(std::uint64_t trips);
    /**
     * Usually @p home_trips; with probability @p jitter_prob a fresh
     * geometric draw with mean home_trips instead.
     */
    static std::unique_ptr<LoopTripPredicate>
    jittered(std::uint64_t home_trips, double jitter_prob);

    bool evaluate(ExecContext &ctx) override;
    void reset() override { countdown = 0; }
    const char *typeName() const override
    {
        if (jitterProb <= 0.0)
            return "loop-fixed";
        return jitterProb >= 1.0 ? "loop-geometric" : "loop-home";
    }

  private:
    LoopTripPredicate(double mean, std::uint64_t home_trips,
                      double jitter_prob);

    /** Geometric mean; 0 when the home count applies. */
    double meanTrips;
    /** Home trip count; 0 for pure geometric. */
    std::uint64_t homeTrips;
    /** Probability of a geometric redraw instead of the home count. */
    double jitterProb;
    std::uint64_t countdown = 0;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_PREDICATE_HH

#include "workload/predicate.hh"

#include <bit>

#include "common/logging.hh"

namespace bpsim {

BiasedPredicate::BiasedPredicate(double p_)
    : p(p_)
{
    bpsim_assert(p >= 0.0 && p <= 1.0, "bias probability out of range");
}

bool
BiasedPredicate::evaluate(ExecContext &ctx)
{
    return ctx.rng().bernoulli(p);
}

PatternPredicate::PatternPredicate(std::uint64_t pattern_, unsigned length,
                                   double noise_)
    : pattern(pattern_), len(length), noise(noise_)
{
    bpsim_assert(len >= 1 && len <= 64, "pattern length out of range");
}

bool
PatternPredicate::evaluate(ExecContext &ctx)
{
    bool out = (pattern >> pos) & 1;
    pos = (pos + 1) % len;
    if (noise > 0.0 && ctx.rng().bernoulli(noise))
        out = !out;
    return out;
}

MarkovPredicate::MarkovPredicate(double p_stay, bool initial_)
    : pStay(p_stay), initial(initial_), last(initial_)
{
    bpsim_assert(pStay >= 0.0 && pStay <= 1.0,
                 "stay probability out of range");
}

bool
MarkovPredicate::evaluate(ExecContext &ctx)
{
    if (!ctx.rng().bernoulli(pStay))
        last = !last;
    return last;
}

CorrelatedPredicate::CorrelatedPredicate(std::uint64_t history_mask,
                                         bool invert_, double noise_)
    : maskBits(history_mask), invert(invert_), noise(noise_)
{
    bpsim_assert(maskBits != 0, "correlated predicate needs history bits");
}

bool
CorrelatedPredicate::evaluate(ExecContext &ctx)
{
    std::uint64_t selected = ctx.globalOutcomeHistory() & maskBits;
    bool out = (std::popcount(selected) & 1) != 0;
    if (invert)
        out = !out;
    if (noise > 0.0 && ctx.rng().bernoulli(noise))
        out = !out;
    return out;
}

ShadowPredicate::ShadowPredicate(std::size_t other_site, bool invert_,
                                 double noise_)
    : otherSite(other_site), invert(invert_), noise(noise_)
{
}

bool
ShadowPredicate::evaluate(ExecContext &ctx)
{
    bool out = ctx.lastOutcomeOf(otherSite);
    if (invert)
        out = !out;
    if (noise > 0.0 && ctx.rng().bernoulli(noise))
        out = !out;
    return out;
}

LoopTripPredicate::LoopTripPredicate(double mean,
                                     std::uint64_t home_trips,
                                     double jitter_prob)
    : meanTrips(mean), homeTrips(home_trips), jitterProb(jitter_prob)
{
}

std::unique_ptr<LoopTripPredicate>
LoopTripPredicate::geometric(double mean_trips)
{
    bpsim_assert(mean_trips >= 1.0, "loop mean trips must be >= 1");
    return std::unique_ptr<LoopTripPredicate>(
        new LoopTripPredicate(mean_trips, 0, 1.0));
}

std::unique_ptr<LoopTripPredicate>
LoopTripPredicate::fixed(std::uint64_t trips)
{
    bpsim_assert(trips >= 1, "loop trip count must be >= 1");
    return std::unique_ptr<LoopTripPredicate>(
        new LoopTripPredicate(0.0, trips, 0.0));
}

std::unique_ptr<LoopTripPredicate>
LoopTripPredicate::jittered(std::uint64_t home_trips, double jitter_prob)
{
    bpsim_assert(home_trips >= 1, "loop trip count must be >= 1");
    bpsim_assert(jitter_prob >= 0.0 && jitter_prob <= 1.0,
                 "jitter probability out of range");
    return std::unique_ptr<LoopTripPredicate>(new LoopTripPredicate(
        static_cast<double>(home_trips), home_trips, jitter_prob));
}

bool
LoopTripPredicate::evaluate(ExecContext &ctx)
{
    if (countdown == 0) {
        bool redraw = jitterProb > 0.0 &&
            (jitterProb >= 1.0 || ctx.rng().bernoulli(jitterProb));
        countdown = redraw ? ctx.rng().geometric(meanTrips)
                           : homeTrips;
    }
    --countdown;
    return countdown > 0;
}

} // namespace bpsim

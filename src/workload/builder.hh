/**
 * @file
 * Seeded construction of synthetic programs.
 *
 * WorkloadParams captures everything that distinguishes one benchmark
 * profile from another: program size (static branch count, function
 * count), dynamic-frequency skew (function hotness, loop trip counts),
 * and the behaviour mix of the conditional branches.  ProgramBuilder
 * turns the parameters into a concrete SyntheticProgram, deterministically
 * for a given seed.
 */

#ifndef BPSIM_WORKLOAD_BUILDER_HH
#define BPSIM_WORKLOAD_BUILDER_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "workload/program.hh"

namespace bpsim {

/** Full parameterisation of a synthetic workload. */
struct WorkloadParams
{
    std::string name = "synthetic";
    std::uint64_t seed = 1;

    /// Structure
    /** Target number of static conditional branch sites. */
    std::size_t staticBranches = 2000;
    std::size_t functionCount = 200;
    /** Mean plain (non-branch) instructions per basic block. */
    double meanBlockLen = 5.0;
    /** Probability that a body element is a call to an earlier function. */
    double callDensity = 0.12;
    unsigned maxNestDepth = 4;

    /// Scheduling and skew
    /** Zipf exponent over function hotness ranks (bigger = more skew). */
    double zipfExponent = 1.0;
    /** Fraction of driver picks made uniformly (long-tail coverage). */
    double uniformPickFraction = 0.05;
    /**
     * Mean length of a driver burst: the top-level driver calls the
     * same function this many times in a row (geometric) before picking
     * afresh.  Real programs process items in runs (frames, lines,
     * cubes), so a function's entry context in the global history is
     * usually the tail of its own previous execution; without bursts
     * every entry would see a random suffix and global-history schemes
     * would face far more pattern diffusion than they do on real code.
     */
    double driverBurstMean = 10.0;
    /** Fraction of functions executing in kernel mode. */
    double kernelFraction = 0.0;

    /// Loop shape
    /** Fraction of constructs that are loops. */
    double loopFraction = 0.25;
    /** Mean loop trips in the hottest function (decays toward cold). */
    double meanTripsHot = 24.0;
    /** Mean loop trips in the coldest function. */
    double meanTripsCold = 4.0;
    /**
     * Trip means shrink by this factor per nesting level, bounding the
     * multiplicative blow-up of nested loops (real inner loops are
     * short).
     */
    double loopDepthDecay = 6.0;
    /** Fraction of loops lowered as top-test (taken = exit). */
    double topTestFraction = 0.35;
    /**
     * Fraction of loops with a FIXED trip count (drawn once at build
     * time from [fixedTripMin, fixedTripMax]).  Fixed-trip loops are the
     * canonical history-predictable branches: an N-iteration loop is
     * perfect for any history of at least N bits but costs a steady
     * 1/N misprediction for a plain two-bit counter.  Geometric loops,
     * by contrast, have memoryless exits that history cannot see.
     */
    double fixedTripFraction = 0.4;
    unsigned fixedTripMin = 3;
    unsigned fixedTripMax = 10;
    /**
     * For non-fixed loops: probability that one entry's trip count is a
     * geometric redraw instead of the loop's stable home count.
     */
    double tripJitterProb = 0.15;
    /** Floor on a non-fixed loop's home trip count. */
    unsigned minHomeTrips = 6;
    /**
     * Fraction of loops that are TIGHT: no conditional branches in the
     * body.  A tight loop's backedge leaves a pure run of taken bits in
     * the global history (the paper's all-ones pattern), so its period
     * fits in a short history window and global schemes can predict the
     * exit; loops with branchy bodies have periods far wider than any
     * realistic history register.
     */
    double tightLoopFraction = 0.75;
    /**
     * Per nesting level, the non-biased behaviour fractions shrink by
     * this factor: code inside hot inner loops is dominated by highly
     * biased routine checks in real programs, and this is what keeps
     * the dynamic stream as biased as the paper reports.
     */
    double hardContentDepthScale = 0.45;
    /**
     * Depth scale applied to the correlated class alone.  Near 1.0 lets
     * inter-branch correlation live inside hot inner loops (the
     * espresso/eqntott signature the correlating-predictor literature
     * was built on); small values confine it to cold control code.
     */
    double correlatedDepthScale = 0.45;

    /** Deepest nesting level at which shadow groups are emitted. */
    unsigned shadowMaxDepth = 1;

    /// Behaviour mix for non-loop conditionals (remainder: high bias)
    double fracPattern = 0.08;
    double fracCorrelated = 0.10;
    double fracShadow = 0.05;
    double fracMarkov = 0.06;
    double fracLowBias = 0.12;

    /// Bias and noise levels
    double highBiasMin = 0.95;
    double highBiasMax = 0.995;
    double lowBiasMin = 0.55;
    double lowBiasMax = 0.80;
    /** Outcome flip probability for pattern/correlated/shadow models. */
    double noise = 0.03;

    /// Trace generation
    /** Conditional branch instances to generate (driver stop target). */
    std::uint64_t targetConditionals = 2'000'000;

    /** fatal() on out-of-range or inconsistent values. */
    void validate() const;
};

/**
 * Builds a SyntheticProgram from WorkloadParams.  All randomness comes
 * from the params seed; building the same params twice yields identical
 * programs.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const WorkloadParams &params);

    /** Construct, verify and return the program. */
    SyntheticProgram build();

  private:
    /** Append one function starting at the current image end. */
    void buildFunction(std::uint32_t fid);

    /**
     * Emit a structured body consuming up to @p site_budget conditional
     * sites.  @return sites actually consumed.
     */
    std::size_t emitBody(std::uint32_t fid, std::size_t site_budget,
                         unsigned depth);

    /** Append a run of Plain filler instructions. */
    void emitBlock();

    /** Append an if (optionally with else); one site. */
    void emitIf(std::uint32_t fid, std::size_t body_sites, unsigned depth,
                bool with_else);

    /**
     * Append a shadow group -- one varying source if plus 1..3 follower
     * ifs replaying (or negating) the source's outcome; consumes
     * 1 + followers sites, bounded by @p site_budget.
     * @return sites consumed
     */
    std::size_t emitShadowGroup(std::uint32_t fid,
                                std::size_t site_budget);

    /** Append a loop with a nested body; one site + body sites. */
    void emitLoop(std::uint32_t fid, std::size_t body_sites,
                  unsigned depth);

    /** Append a call to a (strictly earlier) function, if any. */
    void emitCall(std::uint32_t fid);

    /** Append a Cond slot wired to @p pred; returns the slot index. */
    std::uint32_t emitCond(std::uint32_t fid,
                           std::unique_ptr<Predicate> pred,
                           bool invert_predicate);

    /** Pick a non-loop predicate according to the behaviour mix. */
    std::unique_ptr<Predicate> makeLeafPredicate(unsigned depth);

    /**
     * Mean loop trips for a loop at nesting @p depth in function
     * @p fid, given the function's hotness rank.
     */
    double meanTripsFor(std::uint32_t fid, unsigned depth) const;

    WorkloadParams params;
    Pcg32 rng;
    SyntheticProgram prog;
    /** Hotness rank of each function: 0 = hottest. */
    std::vector<std::size_t> hotRank;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_BUILDER_HH

/**
 * @file
 * Top-level workload entry points: profile or params in, program or
 * fully materialised trace out.
 */

#ifndef BPSIM_WORKLOAD_SYNTHETIC_HH
#define BPSIM_WORKLOAD_SYNTHETIC_HH

#include <string>

#include "trace/memory_trace.hh"
#include "workload/builder.hh"
#include "workload/program.hh"

namespace bpsim {

/** Build the synthetic program described by @p params. */
SyntheticProgram buildProgram(const WorkloadParams &params);

/** Build and execute: the whole trace, in memory. */
MemoryTrace generateTrace(const WorkloadParams &params);

/**
 * Generate the trace for a named profile (profiles.hh).
 * @param target_conditionals 0 = the profile's default length
 */
MemoryTrace generateProfileTrace(const std::string &profile,
                                 std::uint64_t target_conditionals = 0);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_SYNTHETIC_HH

#include "workload/executor.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace bpsim {

namespace {

std::vector<double>
hotnessWeights(const SyntheticProgram &prog)
{
    std::vector<double> w;
    w.reserve(prog.functions.size());
    for (const auto &fn : prog.functions)
        w.push_back(fn.hotness);
    return w;
}

} // namespace

ProgramExecutor::ProgramExecutor(SyntheticProgram &program,
                                 const WorkloadParams &params_)
    : prog(program), params(params_), traceName(params_.name),
      rng_(params_.seed ^ 0xabcdef0123456789ULL, 0x5851f42d4c957f2dULL),
      hotness(hotnessWeights(program)),
      lastOutcome(program.sites.size(), 0)
{
    // Coverage pass in descending hotness so the hot code trains early.
    coverageOrder.resize(prog.functions.size());
    std::iota(coverageOrder.begin(), coverageOrder.end(), 0u);
    std::sort(coverageOrder.begin(), coverageOrder.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (prog.functions[a].hotness !=
                      prog.functions[b].hotness) {
                      return prog.functions[a].hotness >
                          prog.functions[b].hotness;
                  }
                  return a < b;
              });
}

void
ProgramExecutor::reset()
{
    pc = 0;
    currentFunction = 0;
    running = false;
    stack.clear();
    ghist = 0;
    std::fill(lastOutcome.begin(), lastOutcome.end(), 0);
    instGap = 0;
    condEmitted = 0;
    burstRemaining = 0;
    burstFunction = 0;
    coverageCursor = 0;
    rng_ = Pcg32(params.seed ^ 0xabcdef0123456789ULL,
                 0x5851f42d4c957f2dULL);
    prog.resetPredicates();
}

bool
ProgramExecutor::lastOutcomeOf(std::size_t site_id) const
{
    bpsim_assert(site_id < lastOutcome.size(),
                 "predicate references unknown site ", site_id);
    return lastOutcome[site_id] != 0;
}

bool
ProgramExecutor::enterNextFunction()
{
    std::uint32_t fid;
    if (condEmitted >= params.targetConditionals)
        return false;
    if (coverageCursor < coverageOrder.size()) {
        fid = coverageOrder[coverageCursor++];
    } else if (burstRemaining > 0) {
        // Continue the current burst: real programs call the same
        // routine in runs, keeping its entry context stable.
        --burstRemaining;
        fid = burstFunction;
    } else {
        if (rng_.bernoulli(params.uniformPickFraction)) {
            fid = rng_.nextBounded(
                static_cast<std::uint32_t>(prog.functions.size()));
        } else {
            fid = static_cast<std::uint32_t>(hotness.sample(rng_));
        }
        burstFunction = fid;
        burstRemaining = rng_.geometric(params.driverBurstMean) - 1;
    }
    currentFunction = fid;
    pc = prog.functions[fid].entry;
    running = true;
    return true;
}

void
ProgramExecutor::emit(BranchRecord &out, Addr pc_addr, Addr target,
                      BranchType type, bool taken)
{
    out.pc = pc_addr;
    out.target = target;
    out.instGap = instGap;
    out.type = type;
    out.taken = taken;
    out.kernel = prog.functions[currentFunction].kernel;
    instGap = 0;
}

bool
ProgramExecutor::step(BranchRecord &out)
{
    const Insn &insn = prog.code[pc];
    bool kern = prog.functions[currentFunction].kernel;

    switch (insn.op) {
      case Op::Plain:
        ++instGap;
        ++pc;
        return false;

      case Op::Cond: {
        BranchSite &site = prog.sites[insn.site];
        bool taken = site.predicate->evaluate(*this);
        if (site.invertPredicate)
            taken = !taken;
        ghist = (ghist << 1) | (taken ? 1u : 0u);
        lastOutcome[insn.site] = taken ? 1 : 0;
        ++condEmitted;
        Addr here = prog.addressOf(pc, kern);
        Addr dest = prog.addressOf(insn.target, kern);
        emit(out, here, dest, BranchType::Conditional, taken);
        pc = taken ? insn.target : pc + 1;
        return true;
      }

      case Op::Jump: {
        Addr here = prog.addressOf(pc, kern);
        Addr dest = prog.addressOf(insn.target, kern);
        emit(out, here, dest, BranchType::Unconditional, true);
        pc = insn.target;
        return true;
      }

      case Op::Call: {
        const Function &callee = prog.functions[insn.target];
        Addr here = prog.addressOf(pc, kern);
        Addr dest = prog.addressOf(callee.entry, callee.kernel);
        emit(out, here, dest, BranchType::Call, true);
        stack.push_back(Frame{pc + 1, currentFunction});
        currentFunction = insn.target;
        pc = callee.entry;
        return true;
      }

      case Op::Ret: {
        if (stack.empty()) {
            // Top-level return: hand control back to the driver without
            // emitting a record (the driver is not program code).
            running = false;
            return false;
        }
        Frame frame = stack.back();
        stack.pop_back();
        Addr here = prog.addressOf(pc, kern);
        bool ret_kern = prog.functions[frame.function].kernel;
        Addr dest = prog.addressOf(frame.returnSlot, ret_kern);
        emit(out, here, dest, BranchType::Return, true);
        currentFunction = frame.function;
        pc = frame.returnSlot;
        return true;
      }
    }
    bpsim_panic("unreachable opcode");
}

bool
ProgramExecutor::next(BranchRecord &out)
{
    // Hard stop: the driver normally finishes the current function, but
    // a deeply nested hot call chain can emit millions of branches in
    // one invocation, so the length target is also enforced here.
    if (condEmitted >= params.targetConditionals)
        return false;
    for (;;) {
        if (!running) {
            if (!enterNextFunction())
                return false;
        }
        // Bounded inner loop: Plain runs between branches are short by
        // construction; guard against a builder bug creating a
        // branch-free infinite path.
        for (std::uint64_t steps = 0; running; ++steps) {
            bpsim_assert(steps < (1ULL << 32),
                         "runaway branch-free execution");
            if (step(out))
                return true;
        }
    }
}

} // namespace bpsim

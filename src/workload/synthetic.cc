#include "workload/synthetic.hh"

#include "workload/executor.hh"
#include "workload/profiles.hh"

namespace bpsim {

SyntheticProgram
buildProgram(const WorkloadParams &params)
{
    return ProgramBuilder(params).build();
}

MemoryTrace
generateTrace(const WorkloadParams &params)
{
    SyntheticProgram program = buildProgram(params);
    ProgramExecutor executor(program, params);
    MemoryTrace trace(params.name);
    trace.appendAll(executor);
    return trace;
}

MemoryTrace
generateProfileTrace(const std::string &profile,
                     std::uint64_t target_conditionals)
{
    return generateTrace(profileParams(profile, target_conditionals));
}

} // namespace bpsim

/**
 * @file
 * Generator keys for synthetic traces.
 *
 * Trace generation is deterministic: a WorkloadParams value fully
 * determines the produced record stream (builder.hh).  The registry
 * can therefore key a synthetic trace by a hash of its generating
 * parameters -- reproducible across sessions and hosts without ever
 * materializing the bytes -- instead of hashing two million records.
 *
 * The key lives in its own hash domain ("bpsim.trace.synthetic.v1"),
 * disjoint from the content-hash domain, so a generator key can never
 * collide with a content hash.  Adding a field to WorkloadParams that
 * changes generated traces requires bumping the domain version here;
 * the golden values in tests/test_trace_hash.cc turn a forgotten bump
 * into a tier-1 failure.
 */

#ifndef BPSIM_WORKLOAD_TRACE_KEY_HH
#define BPSIM_WORKLOAD_TRACE_KEY_HH

#include <string>

#include "common/error.hh"
#include "trace/trace_hash.hh"
#include "trace/trace_registry.hh"
#include "workload/builder.hh"

namespace bpsim {

/** Registry key of the trace @p params generates. */
TraceHash syntheticTraceKey(const WorkloadParams &params);

/**
 * Registry key of a named profile's trace at @p target_conditionals
 * (0 = profile default).  Errors on unknown profile names.
 */
Result<TraceHash> profileTraceKey(const std::string &profile,
                                  std::uint64_t target_conditionals = 0);

/**
 * Intern a named profile's trace: compute the generator key, then
 * generate only when the registry has no entry for it.  Errors on
 * unknown profile names.
 */
Result<TraceHandle> internProfile(TraceRegistry &registry,
                                  const std::string &profile,
                                  std::uint64_t target_conditionals = 0);

/** Intern the trace @p params generates (same key discipline). */
TraceHandle internParams(TraceRegistry &registry,
                         const WorkloadParams &params);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_TRACE_KEY_HH

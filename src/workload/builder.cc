#include "workload/builder.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace bpsim {

void
WorkloadParams::validate() const
{
    if (staticBranches == 0)
        bpsim_fatal(name, ": staticBranches must be positive");
    if (functionCount == 0)
        bpsim_fatal(name, ": functionCount must be positive");
    if (meanBlockLen < 0.0)
        bpsim_fatal(name, ": meanBlockLen must be non-negative");
    double mix = fracPattern + fracCorrelated + fracShadow + fracMarkov +
        fracLowBias;
    if (mix > 1.0 + 1e-9)
        bpsim_fatal(name, ": behaviour-mix fractions exceed 1");
    for (double p : {callDensity, uniformPickFraction, kernelFraction,
                     loopFraction, topTestFraction, noise,
                     fixedTripFraction, tripJitterProb,
                     tightLoopFraction}) {
        if (p < 0.0 || p > 1.0)
            bpsim_fatal(name, ": probability parameter out of [0,1]");
    }
    if (meanTripsHot < 1.0 || meanTripsCold < 1.0)
        bpsim_fatal(name, ": loop trip means must be >= 1");
    if (loopDepthDecay < 1.0)
        bpsim_fatal(name, ": loopDepthDecay must be >= 1");
    if (fixedTripMin < 1 || fixedTripMin > fixedTripMax)
        bpsim_fatal(name, ": fixed trip range invalid");
    if (highBiasMin > highBiasMax || lowBiasMin > lowBiasMax)
        bpsim_fatal(name, ": bias ranges reversed");
    if (zipfExponent < 0.0)
        bpsim_fatal(name, ": zipfExponent must be non-negative");
    if (driverBurstMean < 1.0)
        bpsim_fatal(name, ": driverBurstMean must be >= 1");
    if (targetConditionals == 0)
        bpsim_fatal(name, ": targetConditionals must be positive");
}

ProgramBuilder::ProgramBuilder(const WorkloadParams &params_)
    : params(params_), rng(params_.seed, 0x9e3779b97f4a7c15ULL)
{
    params.validate();
}

SyntheticProgram
ProgramBuilder::build()
{
    std::size_t nfuncs = params.functionCount;

    // Hotness ranks: a random permutation decouples a function's position
    // in the image (and thus its callees) from how hot it is.
    hotRank.resize(nfuncs);
    std::iota(hotRank.begin(), hotRank.end(), std::size_t{0});
    for (std::size_t i = nfuncs; i > 1; --i) {
        std::size_t j = rng.nextBounded(static_cast<std::uint32_t>(i));
        std::swap(hotRank[i - 1], hotRank[j]);
    }

    prog.functions.resize(nfuncs);
    for (std::uint32_t fid = 0; fid < nfuncs; ++fid) {
        Function &fn = prog.functions[fid];
        fn.name = "f" + std::to_string(fid);
        fn.kernel = rng.bernoulli(params.kernelFraction);
        fn.hotness = 1.0 /
            std::pow(static_cast<double>(hotRank[fid] + 1),
                     params.zipfExponent);
        buildFunction(fid);
    }

    prog.verify();
    return std::move(prog);
}

void
ProgramBuilder::buildFunction(std::uint32_t fid)
{
    Function &fn = prog.functions[fid];
    fn.entry = static_cast<std::uint32_t>(prog.code.size());

    // Share the site budget across functions so the total lands on
    // staticBranches: hand each function its proportional slice, with
    // jitter for size variety and a minimum of one site.
    std::size_t nfuncs = params.functionCount;
    double per_func = static_cast<double>(params.staticBranches) /
        static_cast<double>(nfuncs);
    std::size_t already =
        prog.sites.size(); // sites built by earlier functions
    std::size_t fair_share = static_cast<std::size_t>(
        per_func * static_cast<double>(fid + 1));
    std::size_t budget =
        fair_share > already ? fair_share - already : 0;
    // Jitter: +/- 50% of a slice, bounded below by one site.
    if (budget > 1 && per_func >= 2.0) {
        double jitter = rng.nextDouble() * per_func - per_func / 2.0;
        double jittered = static_cast<double>(budget) + jitter;
        budget = jittered < 1.0 ? 1
                                : static_cast<std::size_t>(jittered);
    }
    budget = std::max<std::size_t>(1, budget);

    emitBlock();
    emitBody(fid, budget, 0);
    emitBlock();
    prog.code.push_back(Insn{Op::Ret, 0, 0});
    fn.end = static_cast<std::uint32_t>(prog.code.size());
}

std::size_t
ProgramBuilder::emitBody(std::uint32_t fid, std::size_t site_budget,
                         unsigned depth)
{
    std::size_t consumed = 0;
    while (consumed < site_budget) {
        std::size_t remaining = site_budget - consumed;

        // Calls sitting inside nested loops execute their whole callee
        // once per iteration product; thin them out with depth so the
        // expected work per top-level invocation stays bounded.
        if (rng.bernoulli(params.callDensity /
                          std::pow(4.0, static_cast<double>(depth))))
            emitCall(fid);

        // Pick the next construct.  Nesting requires spare budget and
        // headroom in depth.
        bool can_nest = depth < params.maxNestDepth && remaining >= 2;
        std::size_t nested = 0;
        if (can_nest) {
            // Nested bodies take a healthy slice of the remaining
            // budget (2-4 sites when available) so loop bodies can hold
            // real content like shadow groups.
            nested = 2 + rng.nextBounded(3);
            nested = std::min(nested, remaining - 1);
        }

        if (remaining >= 2 && depth <= params.shadowMaxDepth &&
            rng.bernoulli(params.fracShadow)) {
            // Shadow groups first: inside loop bodies (depth >= 1) this
            // is the content that gives correlation its dynamic weight.
            consumed += emitShadowGroup(fid, remaining);
        } else if (rng.bernoulli(params.loopFraction)) {
            // Tight loops keep their body branch-free; the unused
            // nested budget stays available for later constructs.
            if (rng.bernoulli(params.tightLoopFraction))
                nested = 0;
            emitLoop(fid, nested, depth);
            consumed += 1 + nested;
        } else {
            bool with_else = rng.bernoulli(0.4);
            emitIf(fid, nested, depth, with_else);
            consumed += 1 + nested;
        }
        emitBlock();
    }
    return consumed;
}

void
ProgramBuilder::emitBlock()
{
    if (params.meanBlockLen <= 0.0)
        return;
    auto len = static_cast<std::size_t>(
        rng.geometric(params.meanBlockLen));
    for (std::size_t i = 0; i < len; ++i)
        prog.code.push_back(Insn{Op::Plain, 0, 0});
}

std::uint32_t
ProgramBuilder::emitCond(std::uint32_t fid,
                         std::unique_ptr<Predicate> pred,
                         bool invert_predicate)
{
    auto slot = static_cast<std::uint32_t>(prog.code.size());
    auto site_id = static_cast<std::uint32_t>(prog.sites.size());
    prog.code.push_back(Insn{Op::Cond, 0, site_id});
    BranchSite site;
    site.slot = slot;
    site.function = fid;
    site.predicate = std::move(pred);
    site.invertPredicate = invert_predicate;
    prog.sites.push_back(std::move(site));
    return slot;
}

void
ProgramBuilder::emitIf(std::uint32_t fid, std::size_t body_sites,
                       unsigned depth, bool with_else)
{
    // Lowering: Cond jumps PAST the then-body when taken (a compiler's
    // "branch if condition false"), so the predicate's taken-probability
    // is the probability of skipping the body.
    std::uint32_t cond_slot =
        emitCond(fid, makeLeafPredicate(depth), false);
    emitBlock();
    if (body_sites > 0)
        emitBody(fid, body_sites, depth + 1);
    if (with_else) {
        auto jump_slot = static_cast<std::uint32_t>(prog.code.size());
        prog.code.push_back(Insn{Op::Jump, 0, 0});
        prog.code[cond_slot].target =
            static_cast<std::uint32_t>(prog.code.size());
        emitBlock();
        prog.code[jump_slot].target =
            static_cast<std::uint32_t>(prog.code.size());
    } else {
        prog.code[cond_slot].target =
            static_cast<std::uint32_t>(prog.code.size());
    }
}

std::size_t
ProgramBuilder::emitShadowGroup(std::uint32_t fid,
                                std::size_t site_budget)
{
    // "if (x < 0) A; ...; if (x >= 0) B; ...; if (x < t) C;" -- the
    // followers replay (or negate) the source's outcome a few branches
    // later.  This is the workload class on which global history shines
    // and self history is blind: the source varies unpredictably, and a
    // follower's own past says nothing about the source's latest draw.
    bpsim_assert(site_budget >= 2, "shadow group needs >= 2 sites");
    double p = params.lowBiasMin +
        rng.nextDouble() * (params.lowBiasMax - params.lowBiasMin);
    std::uint32_t source =
        emitCond(fid, std::make_unique<BiasedPredicate>(p), false);
    prog.code[source].target =
        static_cast<std::uint32_t>(prog.code.size() + 1);
    // Give the skipped arm at least one slot so the branch is real.
    prog.code.push_back(Insn{Op::Plain, 0, 0});
    std::size_t source_site = prog.sites.size() - 1;

    std::size_t followers = std::min<std::size_t>(
        site_budget - 1, 1 + rng.nextBounded(3));
    for (std::size_t i = 0; i < followers; ++i) {
        emitBlock();
        bool invert = rng.bernoulli(0.5);
        std::uint32_t f = emitCond(
            fid,
            std::make_unique<ShadowPredicate>(source_site, invert,
                                              params.noise),
            false);
        prog.code[f].target =
            static_cast<std::uint32_t>(prog.code.size() + 1);
        prog.code.push_back(Insn{Op::Plain, 0, 0});
    }
    return 1 + followers;
}

void
ProgramBuilder::emitLoop(std::uint32_t fid, std::size_t body_sites,
                         unsigned depth)
{
    std::unique_ptr<LoopTripPredicate> pred;
    if (rng.bernoulli(params.fixedTripFraction)) {
        auto trips = static_cast<std::uint64_t>(rng.uniformInt(
            params.fixedTripMin, params.fixedTripMax));
        pred = LoopTripPredicate::fixed(trips);
    } else {
        // A stable home trip count drawn per loop at build time; entries
        // occasionally redraw (data-dependent bound changes).  The
        // offset-geometric draw spreads homes over a wide range instead
        // of piling them on the floor value.
        double mean = meanTripsFor(fid, depth);
        std::uint64_t floor_trips = params.minHomeTrips;
        double spread_mean =
            std::max(1.0, mean - static_cast<double>(floor_trips));
        std::uint64_t home =
            floor_trips - 1 + rng.geometric(spread_mean + 1.0);
        pred = LoopTripPredicate::jittered(home, params.tripJitterProb);
    }

    if (rng.bernoulli(params.topTestFraction)) {
        // Top-test: head Cond is TAKEN to EXIT; predicate says continue.
        std::uint32_t head = emitCond(fid, std::move(pred), true);
        emitBlock();
        if (body_sites > 0)
            emitBody(fid, body_sites, depth + 1);
        prog.code.push_back(
            Insn{Op::Jump, head, 0});
        prog.code[head].target =
            static_cast<std::uint32_t>(prog.code.size());
    } else {
        // Bottom-test: body first, backedge Cond TAKEN to CONTINUE.
        auto body_start = static_cast<std::uint32_t>(prog.code.size());
        emitBlock();
        if (body_sites > 0)
            emitBody(fid, body_sites, depth + 1);
        std::uint32_t backedge = emitCond(fid, std::move(pred), false);
        prog.code[backedge].target = body_start;
    }
}

void
ProgramBuilder::emitCall(std::uint32_t fid)
{
    if (fid == 0)
        return;
    // Prefer low-index callees: squaring the uniform draw concentrates
    // calls on early "utility" functions, the shared-library effect.
    double u = rng.nextDouble();
    auto callee = static_cast<std::uint32_t>(u * u * fid);
    prog.code.push_back(Insn{Op::Call, callee, 0});
}

std::unique_ptr<Predicate>
ProgramBuilder::makeLeafPredicate(unsigned depth)
{
    double u = rng.nextDouble();
    // Deep inside loops, routine biased checks dominate.
    double scale = std::pow(params.hardContentDepthScale,
                            static_cast<double>(depth));

    double corr_scale = std::pow(params.correlatedDepthScale,
                                 static_cast<double>(depth));

    double acc = params.fracPattern * scale;
    if (u < acc) {
        unsigned len = 2 + rng.nextBounded(5); // 2..6
        std::uint64_t pattern = rng.next() | 1; // avoid all-zeros
        return std::make_unique<PatternPredicate>(bits(pattern, len), len,
                                                  params.noise);
    }
    acc += params.fracCorrelated * corr_scale;
    if (u < acc) {
        // 1..2 taps within the 5 most recent global outcomes, so a
        // short global history suffices and training converges fast.
        unsigned taps = 1 + rng.nextBounded(2);
        std::uint64_t tap_mask = 0;
        for (unsigned t = 0; t < taps; ++t)
            tap_mask |= std::uint64_t{1} << rng.nextBounded(5);
        return std::make_unique<CorrelatedPredicate>(
            tap_mask, rng.bernoulli(0.5), params.noise);
    }
    acc += params.fracMarkov * scale;
    if (u < acc) {
        double stay = 0.88 + rng.nextDouble() * 0.11;
        return std::make_unique<MarkovPredicate>(stay,
                                                 rng.bernoulli(0.5));
    }
    acc += params.fracLowBias * scale;
    if (u < acc) {
        double p = params.lowBiasMin +
            rng.nextDouble() * (params.lowBiasMax - params.lowBiasMin);
        if (rng.bernoulli(0.5))
            p = 1.0 - p;
        return std::make_unique<BiasedPredicate>(p);
    }
    // Remainder (incl. the fracShadow slice when it falls through to a
    // leaf context): highly biased, taken- or not-taken-leaning.  The
    // miss probability (1 - p) is drawn LOG-uniformly between the ends
    // of the configured range: most routine checks almost never fire
    // (the paper's "almost always or almost never taken" population),
    // with a thinner layer of merely-strongly-biased branches.
    double miss_hi = 1.0 - params.highBiasMin;
    double miss_lo = 1.0 - params.highBiasMax;
    double u2 = rng.nextDouble();
    double p = 1.0 -
        miss_lo * std::pow(miss_hi / std::max(miss_lo, 1e-6), u2);
    if (rng.bernoulli(0.5))
        p = 1.0 - p;
    return std::make_unique<BiasedPredicate>(p);
}

double
ProgramBuilder::meanTripsFor(std::uint32_t fid, unsigned depth) const
{
    // Hot functions get long loops: interpolate from meanTripsHot at
    // rank 0 down to meanTripsCold, decaying with the same shape as the
    // hotness weights themselves.
    double frac = static_cast<double>(hotRank[fid]) /
        static_cast<double>(std::max<std::size_t>(
            1, params.functionCount - 1));
    double hot_decay = std::pow(1.0 - frac, 3.0);
    double mean = params.meanTripsCold +
        (params.meanTripsHot - params.meanTripsCold) * hot_decay;
    // Inner loops are short: shrink the mean per nesting level so the
    // multiplicative iteration blow-up of nested loops stays bounded.
    double nest_scale = std::pow(params.loopDepthDecay,
                                 static_cast<double>(depth));
    return 1.0 + (mean - 1.0) / nest_scale;
}

} // namespace bpsim

#include "common/logging.hh"

#include <atomic>
#include <cstdio>

namespace bpsim {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool q)
{
    quietFlag.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(const char *prefix, const std::string &msg, const char *file,
           int line)
{
    if (file) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(), file,
                     line);
    } else {
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    }
    std::fflush(stderr);
}

} // namespace detail

void
panicImpl(const std::string &msg, const char *file, int line)
{
    detail::logMessage("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    detail::logMessage("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg, const char *file, int line)
{
    if (!quiet())
        detail::logMessage("warn", msg, file, line);
}

void
informImpl(const std::string &msg)
{
    if (!quiet()) {
        std::fprintf(stderr, "info: %s\n", msg.c_str());
        std::fflush(stderr);
    }
}

} // namespace bpsim

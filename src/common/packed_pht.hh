/**
 * @file
 * Packed pattern-history table: 2-bit saturating counters stored four
 * per byte, with branchless predict-and-update.
 *
 * The fused sweep kernel (sim/sweep.cc) keeps one live table per
 * configuration in a job group -- more than a hundred tables for a full
 * paper sweep -- so table footprint decides whether the working set
 * stays cache-resident.  Packing quarters the footprint of the
 * std::vector<TwoBitCounter> layout, and the branchless update removes
 * the data-dependent branches that dominate the per-counter cost on
 * hard-to-predict outcome streams.
 *
 * Semantics are bit-identical to SatCounter<2> (tests/test_packed_pht
 * proves every transition): states 0..3, prediction = MSB, weakly-taken
 * (2) reset, saturation at both ends.
 */

#ifndef BPSIM_COMMON_PACKED_PHT_HH
#define BPSIM_COMMON_PACKED_PHT_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"

namespace bpsim {

/** A table of 2-bit counters packed four per byte. */
class PackedPht
{
  public:
    /**
     * Padding bytes allocated past the last counter byte.  The
     * AVX2/AVX-512 fused kernels read table bytes with 4-byte hardware
     * gathers (vpgatherqd) at arbitrary byte offsets, and the AVX-512
     * kernel writes the update back with a 4-byte scatter (vpscatterqd)
     * that round-trips the three neighbour bytes unchanged -- so the
     * highest counter byte needs 3 readable *and writable* bytes after
     * it.  The slack lives inside the table's own allocation; its
     * value is never interpreted.
     */
    static constexpr std::size_t kGatherSlack = 3;

    /** @param counters table size; every counter resets weakly taken. */
    explicit PackedPht(std::size_t counters)
        : size_(counters),
          // Four weakly-taken (0b10) counters per byte, plus gather
          // slack (never addressed as counters, value irrelevant).
          bytes_((counters + 3) / 4 + kGatherSlack, std::uint8_t{0xAA})
    {
    }

    std::size_t size() const { return size_; }

    /** @return counter @p idx's prediction (its MSB). */
    bool
    predict(std::size_t idx) const
    {
        return ((bytes_[idx >> 2] >> shiftOf(idx)) & 2u) != 0;
    }

    /** Raw 2-bit state of counter @p idx. */
    std::uint8_t
    counter(std::size_t idx) const
    {
        return (bytes_[idx >> 2] >> shiftOf(idx)) & 3u;
    }

    /** Train counter @p idx toward @p taken (branchless saturation). */
    void
    update(std::size_t idx, bool taken)
    {
        std::uint8_t &byte = bytes_[idx >> 2];
        const unsigned shift = shiftOf(idx);
        const unsigned v = (byte >> shift) & 3u;
        const unsigned next = step(v, taken);
        byte = static_cast<std::uint8_t>(
            (byte & ~(3u << shift)) | (next << shift));
    }

    /**
     * The fused-kernel hot path: predict, train, and report the
     * misprediction in one read-modify-write.
     * @return 1 when the prediction differed from @p taken, else 0.
     */
    std::uint64_t
    predictAndUpdate(std::size_t idx, bool taken)
    {
        return predictAndUpdateRaw(bytes_.data(), idx,
                                   static_cast<unsigned>(taken));
    }

    /**
     * Raw storage for the hot loop.  uint8_t writes may alias
     * anything, so an inner loop going through the member vector
     * reloads its data pointer on every store; hoisting data() into a
     * local lets the compiler keep it in a register.
     */
    std::uint8_t *data() { return bytes_.data(); }

    /** predictAndUpdate against a hoisted data() pointer; @p taken
     *  must be 0 or 1. */
    static std::uint64_t
    predictAndUpdateRaw(std::uint8_t *bytes, std::size_t idx,
                        unsigned taken)
    {
        std::uint8_t &byte = bytes[idx >> 2];
        const unsigned shift = shiftOf(idx);
        const unsigned v = (byte >> shift) & 3u;
        const unsigned next = step(v, taken != 0);
        byte = static_cast<std::uint8_t>(
            (byte & ~(3u << shift)) | (next << shift));
        return (v >> 1) ^ taken;
    }

  private:
    static unsigned shiftOf(std::size_t idx) { return (idx & 3u) << 1; }

    /** One SatCounter<2> transition, computed without branches. */
    static unsigned
    step(unsigned v, bool taken)
    {
        const unsigned t = static_cast<unsigned>(taken);
        return v + (t & static_cast<unsigned>(v != 3u)) -
               ((t ^ 1u) & static_cast<unsigned>(v != 0u));
    }

    std::size_t size_;
    std::vector<std::uint8_t> bytes_;
};

} // namespace bpsim

#endif // BPSIM_COMMON_PACKED_PHT_HH

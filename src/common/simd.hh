/**
 * @file
 * Portable lane-batched SIMD layer for the fused sweep kernel.
 *
 * The fused replay (sim/sweep.cc) trains one packed pattern table per
 * configuration "lane", and every lane in a group updates a *disjoint*
 * table from the same per-branch fused record -- so the per-branch work
 * is trivially data-parallel across lanes.  This header exposes that
 * parallelism behind a dispatch target chosen once at runtime:
 *
 *   Scalar  the reference implementation -- exactly the PR 3 fused
 *           inner loop (one load, one AND, one packed-counter RMW per
 *           lane).  Always available, and the semantics every vector
 *           kernel is held to, bit for bit (tests/test_simd.cc,
 *           tests/differential/test_fused_kernel.cc).
 *   SSE2    4 lanes per 128-bit vector.  No variable per-element
 *           shifts exist in SSE2, so counter extraction and insertion
 *           go through power-of-two multiplies (pmullw); table bytes
 *           are moved with scalar loads/stores.
 *   AVX2    8 lanes per 256-bit vector with hardware gathers
 *           (vpgatherqd on absolute byte addresses) and variable
 *           shifts (vpsrlvd/vpsllvd); stores remain scalar because x86
 *           has no AVX2 scatter.
 *   AVX512  16 lanes per 512-bit vector.  Gathers as AVX2 (two
 *           8-wide vpgatherqd on absolute addresses), but stores go
 *           through hardware scatters (vpscatterqd), which is safe
 *           precisely because lanes train disjoint tables -- the
 *           4-byte scatter element only ever lands inside the owning
 *           lane's allocation (table bytes + PackedPht slack).
 *           Compiled only when the toolchain understands the avx512f
 *           target attribute (CMake probe -> BPSIM_HAVE_AVX512);
 *           otherwise the target reports unsupported and dispatch
 *           clamps to AVX2.
 *
 * Dispatch is runtime CPUID -- no ISA flags are baked into tier-1
 * builds, so one binary runs everywhere and selects the widest kernel
 * the host supports.  `BPSIM_SIMD=scalar|sse2|avx2|avx512` in the
 * environment overrides auto-detection (the sanitizer CI presets force
 * `scalar` so they stay green on hardware without AVX2); an explicit
 * `SweepOptions::simd` request beats the environment.  Requests wider
 * than the host supports clamp down to the widest available target.
 * A malformed BPSIM_SIMD value is reported two ways: kernels resolve
 * it leniently to Auto (a library deep inside a sweep must not abort),
 * while CLI boundaries call simdEnvStatus() and surface the structured
 * Status before any work starts.
 *
 * AVX2/AVX-512 gathers load 4 bytes at the addressed table byte -- and
 * the AVX-512 replay scatters 4 bytes back -- so every buffer a
 * LaneBatch points at must carry PackedPht::kGatherSlack writable
 * padding bytes past its last addressable byte (PackedPht allocates
 * the slack itself).
 */

#ifndef BPSIM_COMMON_SIMD_HH
#define BPSIM_COMMON_SIMD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"

namespace bpsim {

/** A fused-kernel dispatch target. */
enum class SimdTarget
{
    Auto,   ///< pick the widest target the host supports
    Scalar, ///< reference loop, always available
    SSE2,   ///< 4 lanes per vector
    AVX2,   ///< 8 lanes per vector, hardware gathers
    AVX512, ///< 16 lanes per vector, hardware gathers and scatters
};

/** @return "auto", "scalar", "sse2", "avx2" or "avx512". */
const char *simdTargetName(SimdTarget target);

/**
 * Parse a target name as accepted by BPSIM_SIMD.  Unknown names are a
 * structured error naming the offending value and the accepted set;
 * tests pin the message (tests/test_simd.cc).
 */
Result<SimdTarget> parseSimdTargetName(const std::string &name);

/**
 * Validate the BPSIM_SIMD environment override.  Success when the
 * variable is unset, empty, or a recognised target name; otherwise the
 * same structured error parseSimdTargetName() raises.  CLI boundaries
 * (bench drivers, the sweep service) check this once at startup so a
 * typo'd override fails loudly instead of silently running Auto.
 * Reads the environment on every call so it observes setenv() from
 * tests; resolveSimdTarget() keeps its own first-use cache.
 */
Status simdEnvStatus();

/** @return whether this host can execute @p target (Auto: true). */
bool simdTargetSupported(SimdTarget target);

/** Widest target the host supports (CPUID probe, cached). */
SimdTarget detectSimdTarget();

/**
 * The target a kernel invocation actually runs: an explicit request
 * wins, then the BPSIM_SIMD environment override, then detection.
 * Unsupported requests clamp to the widest supported narrower target,
 * so the result is always executable.  Never returns Auto.
 */
SimdTarget resolveSimdTarget(SimdTarget requested = SimdTarget::Auto);

/** Every concrete target this host supports, narrowest first. */
std::vector<SimdTarget> supportedSimdTargets();

/**
 * One batch of fused-kernel lanes in structure-of-arrays form.  Lane l
 * trains the packed 2-bit counter table at pht[l] (a PackedPht data()
 * pointer -- the table carries PackedPht::kGatherSlack writable bytes
 * of padding for the AVX2/AVX-512 gathers and scatters) with counter
 * index `record & totalMask[l]`; misses[l] accumulates its
 * mispredictions.  Live lanes must point at pairwise-disjoint
 * allocations: the AVX-512 replay kernel read-modify-writes a 4-byte
 * window around each addressed table byte, which is only race- and
 * clobber-free when no two lanes share bytes.
 */
struct LaneBatch
{
    static constexpr unsigned kMaxLanes = 16;
    std::uint32_t totalMask[kMaxLanes] = {};
    std::uint8_t *pht[kMaxLanes] = {};
    std::uint64_t misses[kMaxLanes] = {};
    /** Live lanes (1..kMaxLanes); vector kernels pad the rest. */
    unsigned lanes = 0;
};

/**
 * Replay @p n fused records through every lane of @p batch on
 * @p target.  A record carries the branch outcome in bit 31 and the
 * pre-shifted row|column index in bits 0..30 (see sim/sweep.cc); per
 * record each lane masks out its table index and performs one
 * predict-and-update, accumulating the misprediction into
 * batch.misses.  All targets are bit-identical: identical final table
 * bytes, identical miss counts.  @p target must be concrete
 * (resolveSimdTarget), not Auto.  @p target is a ceiling, not a
 * mandate: an under-occupied batch (fewer live lanes than a vector
 * kernel's break-even width) drops to the next narrower kernel,
 * because vector kernels pay for dead padding lanes.  Batches wider
 * than a kernel's native width are processed in native-width chunks
 * (16 lanes on an AVX2 host run as two 8-wide calls).
 */
void replayLaneBatch(SimdTarget target, const std::uint32_t *records,
                     std::size_t n, LaneBatch &batch);

/**
 * One batch of hashed-perceptron model lanes in structure-of-arrays
 * form, for the batched zoo replay (sim/sweep.cc).  Lane l owns an
 * int8 weight bank at weights[l]: all of its tables concatenated, the
 * weight for (table t, entry e) at byte (t << entryBits) + e.  Banks
 * must be pairwise disjoint and carry PackedPht::kGatherSlack writable
 * padding bytes past the last weight (the AVX2/AVX-512 kernels gather
 * a 4-byte window at each addressed weight; updates are written back
 * as single-byte stores, so the padding is only ever read).  The bank
 * is int8 because the model clamps weights to [kWeightMin, kWeightMax]
 * -- the same constants as PerceptronModel, pinned by a static_assert
 * at the sweep integration point.
 */
struct PerceptronBatch
{
    static constexpr unsigned kMaxLanes = 16;
    static constexpr unsigned kMaxTables = 16;
    static constexpr int kWeightMin = -64;
    static constexpr int kWeightMax = 63;
    /** Live lanes (1..kMaxLanes); vector kernels pad the rest. */
    unsigned lanes = 0;
    /** Weight tables per lane -- shared across the batch (1..16). */
    unsigned tables = 0;
    std::int8_t *weights[kMaxLanes] = {};
    /** Per-lane integer training threshold ((193 * h) / 100 + 14). */
    std::int32_t theta[kMaxLanes] = {};
    /** Per-lane mispredict accumulators. */
    std::uint64_t misses[kMaxLanes] = {};
};

/**
 * Replay @p n branches through every lane of @p batch on @p target.
 * idx[(i * batch.tables + t) * PerceptronBatch::kMaxLanes + l] holds
 * lane l's PRE-OFFSET weight index for branch i and table t -- i.e.
 * (t << entryBits_l) + tableIndex -- so the kernel needs no per-lane
 * geometry: the weight read is weights[l][idx...].  taken[i] is the
 * branch outcome (0/1).  Per branch each lane sums its tables' signed
 * weights, predicts sum >= 0, counts a mispredict into batch.misses,
 * and on a mispredict or |sum| <= theta[l] trains every addressed
 * weight by +/-1 clamped to [kWeightMin, kWeightMax] -- exactly
 * PerceptronModel::step.  All targets are bit-identical: identical
 * final weight banks, identical miss counts (integer sums are
 * order-free and every update is a single-byte store).  @p target must
 * be concrete and is a ceiling as in replayLaneBatch: under-occupied
 * batches drop to the next narrower kernel (same break-evens), and
 * wider batches run in native-width chunks.  @p n must stay below
 * 2^30 (per-call int32 miss accumulators); the sweep engine's block
 * tiles are 4 orders of magnitude smaller.
 */
void replayPerceptronBatch(SimdTarget target, const std::uint32_t *idx,
                           const std::uint8_t *taken, std::size_t n,
                           PerceptronBatch &batch);

/**
 * Gather one table byte per lane: out[l] = bases[l][byteIdx[l]] for
 * l < lanes (lanes <= LaneBatch::kMaxLanes).  The AVX2/AVX-512
 * variants use hardware gathers over absolute addresses, so each
 * bases[l] buffer must extend PackedPht::kGatherSlack bytes past
 * byteIdx[l].
 */
void gatherLaneBytes(SimdTarget target,
                     const std::uint8_t *const *bases,
                     const std::uint32_t *byteIdx, unsigned lanes,
                     std::uint8_t *out);

/**
 * Scatter one table byte per lane: bases[l][byteIdx[l]] = in[l].
 * Every target issues scalar stores: AVX-512's vpscatterqd moves
 * 4-byte elements, so a byte-granular scatter would need a
 * read-modify-write round trip that costs more than four byte stores
 * (the replay kernel can use the hardware scatter only because it
 * already holds the gathered 4-byte window).  The helper exists so
 * gather/scatter round-trips are pinned per target (tests) and
 * measurable (bench/micro_predictor_ops).
 */
void scatterLaneBytes(SimdTarget target, std::uint8_t *const *bases,
                      const std::uint32_t *byteIdx, unsigned lanes,
                      const std::uint8_t *in);

} // namespace bpsim

#endif // BPSIM_COMMON_SIMD_HH

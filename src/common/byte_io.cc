#include "common/byte_io.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace bpsim {

// --- StdioFileStream ---------------------------------------------------

StdioFileStream::StdioFileStream(std::FILE *file, std::string path)
    : file_(file), path_(std::move(path))
{}

Result<std::unique_ptr<ByteStream>>
StdioFileStream::openRead(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return BPSIM_ERROR("cannot open trace file ", path, ": ",
                           std::strerror(errno));
    }
    return std::unique_ptr<ByteStream>(new StdioFileStream(f, path));
}

Result<std::unique_ptr<ByteStream>>
StdioFileStream::openWrite(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        return BPSIM_ERROR("cannot create trace file ", path, ": ",
                           std::strerror(errno));
    }
    return std::unique_ptr<ByteStream>(new StdioFileStream(f, path));
}

StdioFileStream::~StdioFileStream()
{
    close();
}

std::size_t
StdioFileStream::read(void *dst, std::size_t n)
{
    if (!file_)
        return 0;
    return std::fread(dst, 1, n, file_);
}

std::size_t
StdioFileStream::write(const void *src, std::size_t n)
{
    if (!file_)
        return 0;
    return std::fwrite(src, 1, n, file_);
}

bool
StdioFileStream::seek(std::uint64_t pos)
{
    return file_ &&
           std::fseek(file_, static_cast<long>(pos), SEEK_SET) == 0;
}

bool
StdioFileStream::size(std::uint64_t &out)
{
    if (!file_)
        return false;
    long here = std::ftell(file_);
    if (here < 0 || std::fseek(file_, 0, SEEK_END) != 0)
        return false;
    long end = std::ftell(file_);
    if (end < 0 || std::fseek(file_, here, SEEK_SET) != 0)
        return false;
    out = static_cast<std::uint64_t>(end);
    return true;
}

bool
StdioFileStream::flush()
{
    return file_ && std::fflush(file_) == 0;
}

bool
StdioFileStream::close()
{
    if (!file_)
        return true;
    std::FILE *f = file_;
    file_ = nullptr;
    return std::fclose(f) == 0;
}

// --- MemoryByteStream --------------------------------------------------

MemoryByteStream::MemoryByteStream(std::string initial, std::string name)
    : buf_(std::move(initial)), name_(std::move(name))
{}

std::size_t
MemoryByteStream::read(void *dst, std::size_t n)
{
    if (closed_ || pos_ >= buf_.size())
        return 0;
    std::size_t take = std::min(n, buf_.size() - pos_);
    std::memcpy(dst, buf_.data() + pos_, take);
    pos_ += take;
    return take;
}

std::size_t
MemoryByteStream::write(const void *src, std::size_t n)
{
    if (closed_)
        return 0;
    if (pos_ + n > buf_.size())
        buf_.resize(pos_ + n);
    std::memcpy(buf_.data() + pos_, src, n);
    pos_ += n;
    return n;
}

bool
MemoryByteStream::seek(std::uint64_t pos)
{
    if (closed_ || pos > buf_.size())
        return false;
    pos_ = static_cast<std::size_t>(pos);
    return true;
}

bool
MemoryByteStream::size(std::uint64_t &out)
{
    if (closed_)
        return false;
    out = buf_.size();
    return true;
}

bool
MemoryByteStream::flush()
{
    return !closed_;
}

bool
MemoryByteStream::close()
{
    closed_ = true;
    return true;
}

} // namespace bpsim

/**
 * @file
 * Error and status reporting, modelled on the gem5 logging conventions.
 *
 * panic()  -- an internal invariant is broken (a bug in bpsim itself);
 *             aborts so a core dump / debugger is useful.
 * fatal()  -- the simulation cannot continue because of user input
 *             (bad configuration, unreadable trace file); exits cleanly.
 * warn()   -- something suspicious but survivable.
 * inform() -- plain status output.
 */

#ifndef BPSIM_COMMON_LOGGING_HH
#define BPSIM_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace bpsim {

namespace detail {

/** Shared implementation: format, print with a severity prefix. */
void logMessage(const char *prefix, const std::string &msg,
                const char *file, int line);

/** Stream-concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort the process: internal invariant violated. */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/** Exit the process: unrecoverable user-level error. */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

/** Print a warning; execution continues. */
void warnImpl(const std::string &msg, const char *file, int line);

/** Print an informational message. */
void informImpl(const std::string &msg);

/**
 * Suppress all non-fatal log output (used by tests and by benches that
 * must keep their stdout machine-readable).
 */
void setQuiet(bool quiet);

/** @return whether non-fatal output is currently suppressed. */
bool quiet();

} // namespace bpsim

#define bpsim_panic(...) \
    ::bpsim::panicImpl(::bpsim::detail::concat(__VA_ARGS__), __FILE__, \
                       __LINE__)
#define bpsim_fatal(...) \
    ::bpsim::fatalImpl(::bpsim::detail::concat(__VA_ARGS__), __FILE__, \
                       __LINE__)
#define bpsim_warn(...) \
    ::bpsim::warnImpl(::bpsim::detail::concat(__VA_ARGS__), __FILE__, \
                      __LINE__)
#define bpsim_inform(...) \
    ::bpsim::informImpl(::bpsim::detail::concat(__VA_ARGS__))

/** panic() unless the stated internal invariant holds. */
#define bpsim_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::bpsim::panicImpl( \
                ::bpsim::detail::concat("assertion '", #cond, \
                                        "' failed: ", ##__VA_ARGS__), \
                __FILE__, __LINE__); \
        } \
    } while (0)

#endif // BPSIM_COMMON_LOGGING_HH

/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Every stochastic choice in the simulator draws from a seeded Pcg32 so
 * that traces, programs and therefore every figure and table are exactly
 * reproducible from a profile name + seed.  std::mt19937 is avoided
 * because its stream is not guaranteed identical across standard library
 * implementations for the distribution adaptors; we implement the
 * distributions we need directly.
 */

#ifndef BPSIM_COMMON_RANDOM_HH
#define BPSIM_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace bpsim {

/**
 * PCG32 (Melissa O'Neill's pcg32_random_r), a small fast generator with
 * a 64-bit state and 64-bit stream-selection constant.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** @return the next 32 raw bits. */
    std::uint32_t next();

    /** @return a uniform integer in [0, bound). bound must be nonzero. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool bernoulli(double p);

    /** @return a uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /**
     * @return a geometrically distributed trip count >= 1 with the given
     * mean (mean must be >= 1).  Used for loop iteration counts.
     */
    std::uint64_t geometric(double mean);

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

/**
 * Sampler for a Zipf-like (power-law) distribution over ranks
 * 0..n-1: P(rank k) proportional to 1 / (k + 1)^s.
 *
 * Used to give static branches the heavily skewed dynamic execution
 * frequencies characterised in Table 2 of the paper.  Sampling is by
 * binary search over the precomputed CDF: O(log n) per draw.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of ranks (> 0)
     * @param s skew exponent (>= 0; 0 degenerates to uniform)
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw a rank in [0, n). */
    std::size_t sample(Pcg32 &rng) const;

    /** @return the probability mass of rank @p k. */
    double pmf(std::size_t k) const;

    /** @return number of ranks. */
    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

/**
 * Sampler over an arbitrary discrete weight vector (weights need not be
 * normalised).  O(log n) per draw via CDF binary search.
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index in [0, size()). */
    std::size_t sample(Pcg32 &rng) const;

    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace bpsim

#endif // BPSIM_COMMON_RANDOM_HH

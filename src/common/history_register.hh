/**
 * @file
 * Fixed-width branch history shift register.
 *
 * Used for global outcome history (GAg/GAs/gshare rows), per-branch
 * self-history (PAs rows), and -- with a configurable shift amount -- for
 * Nair's path history, where each event contributes several target-address
 * bits rather than one outcome bit.
 */

#ifndef BPSIM_COMMON_HISTORY_REGISTER_HH
#define BPSIM_COMMON_HISTORY_REGISTER_HH

#include <cstdint>

#include "common/bitutil.hh"

namespace bpsim {

/**
 * A history register of up to 64 bits.  New events shift in at the least
 * significant end, so bit 0 always holds the most recent event -- the
 * convention used when the low r bits index a 2^r-row table.
 */
class HistoryRegister
{
  public:
    /** @param width_ number of bits retained (0..64). */
    constexpr explicit HistoryRegister(unsigned width_ = 0,
                                       std::uint64_t initial = 0)
        : value_(bits(initial, width_)), width_(width_)
    {}

    /** Shift in a single outcome bit (1 = taken). */
    constexpr void
    push(bool taken)
    {
        value_ = bits((value_ << 1) | (taken ? 1u : 0u), width_);
    }

    /**
     * Shift in an @p nbits-bit event code (path history: low bits of a
     * branch target address).  nbits may exceed width, in which case only
     * the low bits survive.
     */
    constexpr void
    pushBits(std::uint64_t event, unsigned nbits)
    {
        value_ = bits((value_ << nbits) | bits(event, nbits), width_);
    }

    /** @return the current register contents (width low bits). */
    constexpr std::uint64_t value() const { return value_; }

    /** @return the low @p nbits bits of the register. */
    constexpr std::uint64_t low(unsigned nbits) const
    {
        return bits(value_, nbits);
    }

    /** Replace the register contents (masked to width). */
    constexpr void
    set(std::uint64_t v)
    {
        value_ = bits(v, width_);
    }

    constexpr unsigned width() const { return width_; }

    /** @return true when every retained bit records a taken branch. */
    constexpr bool
    allOnes() const
    {
        return width_ > 0 && value_ == mask(width_);
    }

    constexpr bool operator==(const HistoryRegister &) const = default;

  private:
    std::uint64_t value_;
    unsigned width_;
};

/**
 * The appropriate-length prefix of the 16-bit pattern 0xC3FF
 * (1100001111111111), the reset value the paper specifies for first-level
 * history entries displaced from a finite BHT.  "Prefix" takes the
 * high-order bits so that short histories get the 11000... mixture rather
 * than all-ones (which would alias with loop patterns, the situation the
 * pattern is chosen to avoid).
 *
 * Widths beyond 16 repeat the pattern, keeping the mixture property.
 */
constexpr std::uint64_t
c3ffPrefix(unsigned width)
{
    constexpr std::uint64_t pattern = 0xC3FF;
    if (width == 0)
        return 0;
    std::uint64_t out = 0;
    unsigned produced = 0;
    while (produced < width) {
        unsigned chunk = (width - produced) < 16 ? (width - produced) : 16;
        // Take the chunk high-order bits of the 16-bit pattern.
        out = (out << chunk) | (pattern >> (16 - chunk));
        produced += chunk;
    }
    return bits(out, width);
}

} // namespace bpsim

#endif // BPSIM_COMMON_HISTORY_REGISTER_HH

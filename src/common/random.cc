#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace bpsim {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1) | 1)
{
    next();
    state += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    bpsim_assert(bound != 0, "nextBounded(0)");
    // Debiased modulo (Lemire-style threshold rejection).
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::int64_t
Pcg32::uniformInt(std::int64_t lo, std::int64_t hi)
{
    bpsim_assert(lo <= hi, "uniformInt bounds reversed");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {
        // Full 64-bit span: compose two draws.
        return static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(next()) << 32) | next());
    }
    if (span <= 0xffffffffULL)
        return lo + nextBounded(static_cast<std::uint32_t>(span));
    // Wide span: rejection sample on 64-bit draws.
    std::uint64_t limit = span * ((~std::uint64_t{0}) / span);
    for (;;) {
        std::uint64_t r =
            (static_cast<std::uint64_t>(next()) << 32) | next();
        if (r < limit)
            return lo + static_cast<std::int64_t>(r % span);
    }
}

std::uint64_t
Pcg32::geometric(double mean)
{
    bpsim_assert(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0)
        return 1;
    // Trip count T >= 1 with P(T = k) = (1-p)^(k-1) p, E[T] = 1/p.
    double p = 1.0 / mean;
    double u = nextDouble();
    // Avoid log(0).
    if (u >= 1.0)
        u = 0.9999999999;
    auto k = static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p))) + 1;
    return k == 0 ? 1 : k;
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    bpsim_assert(n > 0, "ZipfSampler over zero ranks");
    cdf.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf[k] = total;
    }
    for (auto &v : cdf)
        v /= total;
}

std::size_t
ZipfSampler::sample(Pcg32 &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return cdf.size() - 1;
    return static_cast<std::size_t>(it - cdf.begin());
}

double
ZipfSampler::pmf(std::size_t k) const
{
    bpsim_assert(k < cdf.size(), "pmf rank out of range");
    return k == 0 ? cdf[0] : cdf[k] - cdf[k - 1];
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    bpsim_assert(!weights.empty(), "DiscreteSampler over no weights");
    cdf.resize(weights.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        bpsim_assert(weights[i] >= 0.0, "negative weight");
        total += weights[i];
        cdf[i] = total;
    }
    bpsim_assert(total > 0.0, "all weights zero");
    for (auto &v : cdf)
        v /= total;
}

std::size_t
DiscreteSampler::sample(Pcg32 &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return cdf.size() - 1;
    return static_cast<std::size_t>(it - cdf.begin());
}

} // namespace bpsim

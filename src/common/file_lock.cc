#include "common/file_lock.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace bpsim {

Result<FileLock>
FileLock::acquire(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        return BPSIM_ERROR("cannot open lock file ", path, ": ",
                           std::strerror(errno));
    }
    int rc;
    do {
        rc = ::flock(fd, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        int err = errno;
        ::close(fd);
        return BPSIM_ERROR("cannot lock ", path, ": ",
                           std::strerror(err));
    }
    return FileLock(fd);
}

FileLock::FileLock(FileLock &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        release();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

FileLock::~FileLock()
{
    release();
}

void
FileLock::release()
{
    if (fd_ >= 0) {
        // close() drops the flock with the file description.
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace bpsim

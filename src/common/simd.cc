#include "common/simd.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "common/packed_pht.hh"

#if defined(__x86_64__) || defined(__i386__)
#define BPSIM_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bpsim {

namespace {

/** The next narrower concrete target (clamping order). */
SimdTarget
narrower(SimdTarget target)
{
    switch (target) {
      case SimdTarget::AVX512: return SimdTarget::AVX2;
      case SimdTarget::AVX2: return SimdTarget::SSE2;
      default: return SimdTarget::Scalar;
    }
}

/**
 * Lenient BPSIM_SIMD read for the resolve path: Auto for unset or
 * unrecognised.  A kernel deep inside a sweep must not abort on a
 * typo'd environment; boundaries surface the structured error via
 * simdEnvStatus() instead.
 */
SimdTarget
parseEnvTarget()
{
    const char *env = std::getenv("BPSIM_SIMD");
    if (!env || !*env)
        return SimdTarget::Auto;
    const Result<SimdTarget> parsed = parseSimdTargetName(env);
    if (!parsed.ok()) {
        bpsim_warn("ignoring BPSIM_SIMD: ",
                   parsed.error().message());
        return SimdTarget::Auto;
    }
    return parsed.value();
}

/** Cached environment override (read once, first use). */
SimdTarget
envTarget()
{
    static const SimdTarget cached = parseEnvTarget();
    return cached;
}

// ---------------------------------------------------------------------
// Scalar kernels: the reference semantics every vector variant is held
// to.  The replay loop is exactly the PR 3 fused inner loop.

void
replayLaneBatchScalar(const std::uint32_t *records, std::size_t n,
                      LaneBatch &batch)
{
    for (unsigned l = 0; l < batch.lanes; ++l) {
        std::uint8_t *bytes = batch.pht[l];
        const std::uint32_t total_mask = batch.totalMask[l];
        std::uint64_t misses = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t rc = records[i];
            misses += PackedPht::predictAndUpdateRaw(
                bytes, rc & total_mask, rc >> 31);
        }
        batch.misses[l] += misses;
    }
}

void
gatherLaneBytesScalar(const std::uint8_t *const *bases,
                      const std::uint32_t *byte_idx, unsigned lanes,
                      std::uint8_t *out)
{
    for (unsigned l = 0; l < lanes; ++l)
        out[l] = bases[l][byte_idx[l]];
}

void
scatterLaneBytesScalar(std::uint8_t *const *bases,
                       const std::uint32_t *byte_idx, unsigned lanes,
                       const std::uint8_t *in)
{
    for (unsigned l = 0; l < lanes; ++l)
        bases[l][byte_idx[l]] = in[l];
}

/**
 * The perceptron reference kernel: the semantics of
 * PerceptronModel::step over a pre-hashed index stream, one lane at a
 * time.  Every vector variant below is held to this loop bit for bit.
 */
void
replayPerceptronBatchScalar(const std::uint32_t *idx,
                            const std::uint8_t *taken, std::size_t n,
                            PerceptronBatch &batch)
{
    const unsigned tables = batch.tables;
    const std::size_t stride =
        static_cast<std::size_t>(tables) * PerceptronBatch::kMaxLanes;
    for (unsigned l = 0; l < batch.lanes; ++l) {
        std::int8_t *bank = batch.weights[l];
        const int theta = batch.theta[l];
        std::uint64_t misses = 0;
        const std::uint32_t *row = idx + l;
        for (std::size_t i = 0; i < n; ++i, row += stride) {
            int sum = 0;
            for (unsigned t = 0; t < tables; ++t)
                sum += bank[row[t * PerceptronBatch::kMaxLanes]];
            const bool pred = sum >= 0;
            const bool tk = taken[i] != 0;
            misses += pred != tk;
            const int magnitude = sum < 0 ? -sum : sum;
            if (pred != tk || magnitude <= theta) {
                const int delta = tk ? 1 : -1;
                for (unsigned t = 0; t < tables; ++t) {
                    std::int8_t &w =
                        bank[row[t * PerceptronBatch::kMaxLanes]];
                    int next = w + delta;
                    if (next > PerceptronBatch::kWeightMax)
                        next = PerceptronBatch::kWeightMax;
                    if (next < PerceptronBatch::kWeightMin)
                        next = PerceptronBatch::kWeightMin;
                    w = static_cast<std::int8_t>(next);
                }
            }
        }
        batch.misses[l] += misses;
    }
}

#if BPSIM_SIMD_X86

// ---------------------------------------------------------------------
// SSE2: 4 lanes per 128-bit vector, 32-bit elements.  SSE2 has no
// per-element variable shifts, so `x << shift` and `x >> shift` for
// shift in {0,2,4,6} are expressed as multiplies by 1 << shift and
// 64 >> shift (pmullw is safe: every factor and product fits in the
// low 16 bits of its 32-bit element, and the zero high halves keep
// element products from crossing element boundaries).  Table bytes
// move through scalar loads/stores (no gather before AVX2).

/** 4-lane inner body; lanes beyond `live` train the caller's dummy. */
__attribute__((target("sse2"))) void
replayLanes4Sse2(const std::uint32_t *records, std::size_t n,
                 std::uint8_t *const bases[4],
                 const std::uint32_t masks[4], std::uint64_t misses[4])
{
    const __m128i mask_v = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(masks));
    const __m128i zero = _mm_setzero_si128();
    const __m128i one = _mm_set1_epi32(1);
    const __m128i three = _mm_set1_epi32(3);
    const __m128i four = _mm_set1_epi32(4);
    const __m128i fifteen = _mm_set1_epi32(15);
    const __m128i sixteen = _mm_set1_epi32(16);

    alignas(16) std::uint32_t bx[4];
    alignas(16) std::uint32_t by[4];
    alignas(16) std::uint32_t nb[4];
    alignas(16) std::uint32_t acc_out[4];

    std::size_t done = 0;
    while (done < n) {
        // Flush the 32-bit accumulator before it can saturate.
        const std::size_t stop =
            done + std::min<std::size_t>(n - done,
                                         std::size_t{1} << 30);
        __m128i acc = zero;
        for (std::size_t i = done; i < stop; ++i) {
            const std::uint32_t rc = records[i];
            const std::uint32_t t = rc >> 31;
            const __m128i idx = _mm_and_si128(
                _mm_set1_epi32(static_cast<int>(rc)), mask_v);
            const __m128i bidx = _mm_srli_epi32(idx, 2);
            // shift = (idx & 3) * 2; m2 = 1 << shift as
            // (1 + 3*bit0(idx)) * (1 + 15*bit1(idx)), m1 = 64 >> shift
            // from the complemented bits.
            const __m128i b0 = _mm_and_si128(idx, one);
            const __m128i b1 =
                _mm_and_si128(_mm_srli_epi32(idx, 1), one);
            const __m128i m2 = _mm_mullo_epi16(
                _mm_add_epi32(one, _mm_mullo_epi16(b0, three)),
                _mm_add_epi32(one, _mm_mullo_epi16(b1, fifteen)));
            const __m128i m1 = _mm_mullo_epi16(
                _mm_sub_epi32(four, _mm_mullo_epi16(b0, three)),
                _mm_sub_epi32(sixteen, _mm_mullo_epi16(b1, fifteen)));

            _mm_store_si128(reinterpret_cast<__m128i *>(bx), bidx);
            by[0] = bases[0][bx[0]];
            by[1] = bases[1][bx[1]];
            by[2] = bases[2][bx[2]];
            by[3] = bases[3][bx[3]];
            const __m128i byte = _mm_load_si128(
                reinterpret_cast<const __m128i *>(by));

            // cur = (byte >> shift) & 3 == ((byte * (64 >> shift))
            // >> 6) & 3 -- byte * m1 <= 255 * 64 stays in 16 bits.
            const __m128i cur = _mm_and_si128(
                _mm_srli_epi32(_mm_mullo_epi16(byte, m1), 6), three);
            const __m128i tv = _mm_set1_epi32(static_cast<int>(t));
            const __m128i ntv =
                _mm_set1_epi32(static_cast<int>(t ^ 1u));
            const __m128i inc =
                _mm_andnot_si128(_mm_cmpeq_epi32(cur, three), tv);
            const __m128i dec =
                _mm_andnot_si128(_mm_cmpeq_epi32(cur, zero), ntv);
            const __m128i next =
                _mm_sub_epi32(_mm_add_epi32(cur, inc), dec);
            // byte ^ ((cur ^ next) << shift) clears the old state and
            // inserts the new one in a single XOR.
            const __m128i newbyte = _mm_xor_si128(
                byte,
                _mm_mullo_epi16(_mm_xor_si128(cur, next), m2));

            _mm_store_si128(reinterpret_cast<__m128i *>(nb), newbyte);
            bases[0][bx[0]] = static_cast<std::uint8_t>(nb[0]);
            bases[1][bx[1]] = static_cast<std::uint8_t>(nb[1]);
            bases[2][bx[2]] = static_cast<std::uint8_t>(nb[2]);
            bases[3][bx[3]] = static_cast<std::uint8_t>(nb[3]);

            acc = _mm_add_epi32(
                acc, _mm_xor_si128(_mm_srli_epi32(cur, 1), tv));
        }
        _mm_store_si128(reinterpret_cast<__m128i *>(acc_out), acc);
        for (unsigned l = 0; l < 4; ++l)
            misses[l] += acc_out[l];
        done = stop;
    }
}

void
replayLaneBatchSse2(const std::uint32_t *records, std::size_t n,
                    LaneBatch &batch)
{
    for (unsigned l0 = 0; l0 < batch.lanes; l0 += 4) {
        alignas(16) std::uint8_t dummy[8] = {};
        std::uint8_t *bases[4];
        std::uint32_t masks[4];
        std::uint64_t misses[4] = {};
        const unsigned live = std::min(4u, batch.lanes - l0);
        for (unsigned l = 0; l < 4; ++l) {
            bases[l] = l < live ? batch.pht[l0 + l] : dummy;
            masks[l] = l < live ? batch.totalMask[l0 + l] : 0;
        }
        replayLanes4Sse2(records, n, bases, masks, misses);
        for (unsigned l = 0; l < live; ++l)
            batch.misses[l0 + l] += misses[l];
    }
}

/**
 * 4-lane perceptron inner body.  Weight bytes move through scalar
 * loads/stores (no gather before AVX2); the dot product, the
 * mispredict/low-confidence train decision and the clamped update run
 * vectorised.  Lanes beyond `live_v` have their indices masked to 0
 * and their train mask forced off, so they only ever READ the caller's
 * dummy bank.
 */
__attribute__((target("sse2"))) void
perceptronLanes4Sse2(const std::uint32_t *idx, unsigned tables,
                     const std::uint8_t *taken, std::size_t n,
                     std::int8_t *const bases[4],
                     const std::uint32_t live[4],
                     const std::int32_t thetas[4],
                     std::uint64_t misses[4])
{
    const __m128i live_v = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(live));
    const __m128i theta_v = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(thetas));
    const __m128i zero = _mm_setzero_si128();
    const __m128i one = _mm_set1_epi32(1);
    const __m128i allones = _mm_set1_epi32(-1);
    // Weights live in [-64, 63] and train by +/-1, so the only
    // out-of-range sums are exactly kWeightMax + 1 and kWeightMin - 1:
    // clamping is one compare-and-correct per bound.
    const __m128i over =
        _mm_set1_epi32(PerceptronBatch::kWeightMax + 1);
    const __m128i under =
        _mm_set1_epi32(PerceptronBatch::kWeightMin - 1);

    alignas(16) std::uint32_t ixa[PerceptronBatch::kMaxTables][4];
    alignas(16) std::int32_t wa[PerceptronBatch::kMaxTables][4];
    alignas(16) std::int32_t nb[4];
    alignas(16) std::uint32_t acc_out[4];

    const std::size_t stride =
        static_cast<std::size_t>(tables) * PerceptronBatch::kMaxLanes;
    __m128i acc = zero;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t *row = idx + i * stride;
        __m128i sum = zero;
        for (unsigned t = 0; t < tables; ++t) {
            const __m128i iv = _mm_and_si128(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    row + t * PerceptronBatch::kMaxLanes)),
                live_v);
            _mm_store_si128(reinterpret_cast<__m128i *>(ixa[t]), iv);
            // int8 -> int32 sign extension is the scalar load itself.
            wa[t][0] = bases[0][ixa[t][0]];
            wa[t][1] = bases[1][ixa[t][1]];
            wa[t][2] = bases[2][ixa[t][2]];
            wa[t][3] = bases[3][ixa[t][3]];
            sum = _mm_add_epi32(
                sum, _mm_load_si128(
                         reinterpret_cast<const __m128i *>(wa[t])));
        }
        const std::uint32_t tk = taken[i] & 1u;
        // prediction = (sum >= 0) = NOT sign bit, so
        // mispredict01 = sign(sum) xor (taken ^ 1).
        const __m128i miss01 = _mm_xor_si128(
            _mm_srli_epi32(sum, 31),
            _mm_set1_epi32(static_cast<int>(tk ^ 1u)));
        acc = _mm_add_epi32(acc, miss01);
        // |sum| without SSSE3: (sum ^ s) - s with s = sum >> 31.
        const __m128i s = _mm_srai_epi32(sum, 31);
        const __m128i abs = _mm_sub_epi32(_mm_xor_si128(sum, s), s);
        const __m128i missm = _mm_sub_epi32(zero, miss01);
        const __m128i lowconf =
            _mm_xor_si128(_mm_cmpgt_epi32(abs, theta_v), allones);
        const __m128i trainm = _mm_and_si128(
            _mm_or_si128(missm, lowconf), live_v);
        if (_mm_movemask_epi8(trainm) == 0)
            continue;
        const __m128i delta = _mm_and_si128(
            _mm_set1_epi32(tk ? 1 : -1), trainm);
        for (unsigned t = 0; t < tables; ++t) {
            __m128i next = _mm_add_epi32(
                _mm_load_si128(
                    reinterpret_cast<const __m128i *>(wa[t])),
                delta);
            next = _mm_sub_epi32(
                next,
                _mm_and_si128(_mm_cmpeq_epi32(next, over), one));
            next = _mm_add_epi32(
                next,
                _mm_and_si128(_mm_cmpeq_epi32(next, under), one));
            _mm_store_si128(reinterpret_cast<__m128i *>(nb), next);
            // Untrained lanes store their weight back unchanged --
            // single-threaded within a task, so the dead store is
            // cheaper than a branch per lane.
            bases[0][ixa[t][0]] = static_cast<std::int8_t>(nb[0]);
            bases[1][ixa[t][1]] = static_cast<std::int8_t>(nb[1]);
            bases[2][ixa[t][2]] = static_cast<std::int8_t>(nb[2]);
            bases[3][ixa[t][3]] = static_cast<std::int8_t>(nb[3]);
        }
    }
    _mm_store_si128(reinterpret_cast<__m128i *>(acc_out), acc);
    for (unsigned l = 0; l < 4; ++l)
        misses[l] += acc_out[l];
}

void
replayPerceptronBatchSse2(const std::uint32_t *idx,
                          const std::uint8_t *taken, std::size_t n,
                          PerceptronBatch &batch)
{
    for (unsigned l0 = 0; l0 < batch.lanes; l0 += 4) {
        alignas(16) std::int8_t dummy[8] = {};
        std::int8_t *bases[4];
        alignas(16) std::uint32_t live[4];
        alignas(16) std::int32_t thetas[4];
        std::uint64_t misses[4] = {};
        const unsigned live_count = std::min(4u, batch.lanes - l0);
        for (unsigned l = 0; l < 4; ++l) {
            bases[l] = l < live_count ? batch.weights[l0 + l] : dummy;
            live[l] = l < live_count ? 0xFFFFFFFFu : 0u;
            thetas[l] = l < live_count ? batch.theta[l0 + l] : -1;
        }
        perceptronLanes4Sse2(idx + l0, batch.tables, taken, n, bases,
                             live, thetas, misses);
        for (unsigned l = 0; l < live_count; ++l)
            batch.misses[l0 + l] += misses[l];
    }
}

// ---------------------------------------------------------------------
// AVX2: 8 lanes per 256-bit vector with variable shifts and hardware
// gathers.  The gather addresses are absolute (base pointer null,
// scale 1): per-lane table base + byte index, loading 4 bytes at the
// addressed byte -- which is why every table carries
// PackedPht::kGatherSlack padding.  Stores are scalar through a
// scratch spill (x86 has no AVX2 scatter).

/** 8-lane inner body; lanes beyond `live` train the caller's dummy. */
__attribute__((target("avx2"))) void
replayLanes8Avx2(const std::uint32_t *records, std::size_t n,
                 std::uint8_t *const bases[8],
                 const std::uint32_t masks[8], std::uint64_t misses[8])
{
    const __m256i mask_v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(masks));
    const __m256i base_lo = _mm256_set_epi64x(
        reinterpret_cast<long long>(bases[3]),
        reinterpret_cast<long long>(bases[2]),
        reinterpret_cast<long long>(bases[1]),
        reinterpret_cast<long long>(bases[0]));
    const __m256i base_hi = _mm256_set_epi64x(
        reinterpret_cast<long long>(bases[7]),
        reinterpret_cast<long long>(bases[6]),
        reinterpret_cast<long long>(bases[5]),
        reinterpret_cast<long long>(bases[4]));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i three = _mm256_set1_epi32(3);
    const __m256i low8 = _mm256_set1_epi32(0xFF);

    alignas(32) std::uint32_t bx[8];
    alignas(32) std::uint32_t nb[8];
    alignas(32) std::uint32_t acc_out[8];

    std::size_t done = 0;
    while (done < n) {
        const std::size_t stop =
            done + std::min<std::size_t>(n - done,
                                         std::size_t{1} << 30);
        __m256i acc = zero;
        for (std::size_t i = done; i < stop; ++i) {
            const std::uint32_t rc = records[i];
            const std::uint32_t t = rc >> 31;
            const __m256i idx = _mm256_and_si256(
                _mm256_set1_epi32(static_cast<int>(rc)), mask_v);
            const __m256i bidx = _mm256_srli_epi32(idx, 2);
            const __m256i shift = _mm256_slli_epi32(
                _mm256_and_si256(idx, three), 1);

            const __m256i addr_lo = _mm256_add_epi64(
                base_lo, _mm256_cvtepu32_epi64(
                             _mm256_castsi256_si128(bidx)));
            const __m256i addr_hi = _mm256_add_epi64(
                base_hi, _mm256_cvtepu32_epi64(
                             _mm256_extracti128_si256(bidx, 1)));
            const __m128i g_lo = _mm256_i64gather_epi32(
                static_cast<const int *>(nullptr), addr_lo, 1);
            const __m128i g_hi = _mm256_i64gather_epi32(
                static_cast<const int *>(nullptr), addr_hi, 1);
            const __m256i byte = _mm256_and_si256(
                _mm256_set_m128i(g_hi, g_lo), low8);

            const __m256i cur = _mm256_and_si256(
                _mm256_srlv_epi32(byte, shift), three);
            const __m256i tv =
                _mm256_set1_epi32(static_cast<int>(t));
            const __m256i ntv =
                _mm256_set1_epi32(static_cast<int>(t ^ 1u));
            const __m256i inc = _mm256_andnot_si256(
                _mm256_cmpeq_epi32(cur, three), tv);
            const __m256i dec = _mm256_andnot_si256(
                _mm256_cmpeq_epi32(cur, zero), ntv);
            const __m256i next =
                _mm256_sub_epi32(_mm256_add_epi32(cur, inc), dec);
            const __m256i newbyte = _mm256_xor_si256(
                byte, _mm256_sllv_epi32(_mm256_xor_si256(cur, next),
                                        shift));

            _mm256_store_si256(reinterpret_cast<__m256i *>(bx), bidx);
            _mm256_store_si256(reinterpret_cast<__m256i *>(nb),
                               newbyte);
            bases[0][bx[0]] = static_cast<std::uint8_t>(nb[0]);
            bases[1][bx[1]] = static_cast<std::uint8_t>(nb[1]);
            bases[2][bx[2]] = static_cast<std::uint8_t>(nb[2]);
            bases[3][bx[3]] = static_cast<std::uint8_t>(nb[3]);
            bases[4][bx[4]] = static_cast<std::uint8_t>(nb[4]);
            bases[5][bx[5]] = static_cast<std::uint8_t>(nb[5]);
            bases[6][bx[6]] = static_cast<std::uint8_t>(nb[6]);
            bases[7][bx[7]] = static_cast<std::uint8_t>(nb[7]);

            acc = _mm256_add_epi32(
                acc,
                _mm256_xor_si256(_mm256_srli_epi32(cur, 1), tv));
        }
        _mm256_store_si256(reinterpret_cast<__m256i *>(acc_out), acc);
        for (unsigned l = 0; l < 8; ++l)
            misses[l] += acc_out[l];
        done = stop;
    }
}

void
replayLaneBatchAvx2(const std::uint32_t *records, std::size_t n,
                    LaneBatch &batch)
{
    for (unsigned l0 = 0; l0 < batch.lanes; l0 += 8) {
        alignas(32) std::uint8_t dummy[8] = {};
        std::uint8_t *bases[8];
        alignas(32) std::uint32_t masks[8];
        std::uint64_t misses[8] = {};
        const unsigned live = std::min(8u, batch.lanes - l0);
        for (unsigned l = 0; l < 8; ++l) {
            bases[l] = l < live ? batch.pht[l0 + l] : dummy;
            masks[l] = l < live ? batch.totalMask[l0 + l] : 0;
        }
        replayLanes8Avx2(records, n, bases, masks, misses);
        for (unsigned l = 0; l < live; ++l)
            batch.misses[l0 + l] += misses[l];
    }
}

__attribute__((target("avx2"))) void
gatherLanes8Avx2(const std::uint8_t *const *bases,
                 const std::uint32_t *byte_idx, unsigned lanes,
                 std::uint8_t *out)
{
    alignas(32) const std::uint8_t dummy[8] = {};
    alignas(32) long long addrs[8];
    for (unsigned l = 0; l < 8; ++l) {
        const std::uint8_t *base = l < lanes ? bases[l] : dummy;
        const std::uint32_t idx = l < lanes ? byte_idx[l] : 0;
        addrs[l] = reinterpret_cast<long long>(base) + idx;
    }
    const __m128i g_lo = _mm256_i64gather_epi32(
        static_cast<const int *>(nullptr),
        _mm256_load_si256(reinterpret_cast<const __m256i *>(addrs)),
        1);
    const __m128i g_hi = _mm256_i64gather_epi32(
        static_cast<const int *>(nullptr),
        _mm256_load_si256(
            reinterpret_cast<const __m256i *>(addrs + 4)),
        1);
    alignas(32) std::uint32_t got[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(got),
                       _mm256_set_m128i(g_hi, g_lo));
    for (unsigned l = 0; l < lanes && l < 8; ++l)
        out[l] = static_cast<std::uint8_t>(got[l]);
}

void
gatherLaneBytesAvx2(const std::uint8_t *const *bases,
                    const std::uint32_t *byte_idx, unsigned lanes,
                    std::uint8_t *out)
{
    for (unsigned l0 = 0; l0 < lanes; l0 += 8)
        gatherLanes8Avx2(bases + l0, byte_idx + l0, lanes - l0,
                         out + l0);
}

/**
 * 8-lane perceptron inner body.  Weight reads are hardware gathers on
 * absolute addresses (the int8 sign extension is slli/srai on the
 * gathered dword); updates stay scalar byte stores -- no AVX2 scatter
 * exists, and adjacent int8 weights rule out 4-byte writebacks anyway
 * (a neighbouring table's weight can sit inside the window).
 */
__attribute__((target("avx2"))) void
perceptronLanes8Avx2(const std::uint32_t *idx, unsigned tables,
                     const std::uint8_t *taken, std::size_t n,
                     std::int8_t *const bases[8],
                     const std::uint32_t live[8],
                     const std::int32_t thetas[8],
                     std::uint64_t misses[8])
{
    const __m256i live_v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(live));
    const __m256i theta_v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(thetas));
    const __m256i base_lo = _mm256_set_epi64x(
        reinterpret_cast<long long>(bases[3]),
        reinterpret_cast<long long>(bases[2]),
        reinterpret_cast<long long>(bases[1]),
        reinterpret_cast<long long>(bases[0]));
    const __m256i base_hi = _mm256_set_epi64x(
        reinterpret_cast<long long>(bases[7]),
        reinterpret_cast<long long>(bases[6]),
        reinterpret_cast<long long>(bases[5]),
        reinterpret_cast<long long>(bases[4]));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i allones = _mm256_set1_epi32(-1);
    const __m256i over =
        _mm256_set1_epi32(PerceptronBatch::kWeightMax + 1);
    const __m256i under =
        _mm256_set1_epi32(PerceptronBatch::kWeightMin - 1);

    alignas(32) std::uint32_t ixa[PerceptronBatch::kMaxTables][8];
    alignas(32) std::int32_t wa[PerceptronBatch::kMaxTables][8];
    alignas(32) std::int32_t nb[8];
    alignas(32) std::uint32_t acc_out[8];

    const std::size_t stride =
        static_cast<std::size_t>(tables) * PerceptronBatch::kMaxLanes;
    __m256i acc = zero;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t *row = idx + i * stride;
        __m256i sum = zero;
        for (unsigned t = 0; t < tables; ++t) {
            const __m256i iv = _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    row + t * PerceptronBatch::kMaxLanes)),
                live_v);
            _mm256_store_si256(reinterpret_cast<__m256i *>(ixa[t]),
                               iv);
            const __m256i addr_lo = _mm256_add_epi64(
                base_lo, _mm256_cvtepu32_epi64(
                             _mm256_castsi256_si128(iv)));
            const __m256i addr_hi = _mm256_add_epi64(
                base_hi, _mm256_cvtepu32_epi64(
                             _mm256_extracti128_si256(iv, 1)));
            const __m128i g_lo = _mm256_i64gather_epi32(
                static_cast<const int *>(nullptr), addr_lo, 1);
            const __m128i g_hi = _mm256_i64gather_epi32(
                static_cast<const int *>(nullptr), addr_hi, 1);
            // Sign-extend the gathered low byte: << 24 then >> 24.
            const __m256i w = _mm256_srai_epi32(
                _mm256_slli_epi32(_mm256_set_m128i(g_hi, g_lo), 24),
                24);
            _mm256_store_si256(reinterpret_cast<__m256i *>(wa[t]), w);
            sum = _mm256_add_epi32(sum, w);
        }
        const std::uint32_t tk = taken[i] & 1u;
        const __m256i miss01 = _mm256_xor_si256(
            _mm256_srli_epi32(sum, 31),
            _mm256_set1_epi32(static_cast<int>(tk ^ 1u)));
        acc = _mm256_add_epi32(acc, miss01);
        const __m256i abs = _mm256_abs_epi32(sum);
        const __m256i missm = _mm256_sub_epi32(zero, miss01);
        const __m256i lowconf = _mm256_xor_si256(
            _mm256_cmpgt_epi32(abs, theta_v), allones);
        const __m256i trainm = _mm256_and_si256(
            _mm256_or_si256(missm, lowconf), live_v);
        if (_mm256_movemask_epi8(trainm) == 0)
            continue;
        const __m256i delta = _mm256_and_si256(
            _mm256_set1_epi32(tk ? 1 : -1), trainm);
        for (unsigned t = 0; t < tables; ++t) {
            __m256i next = _mm256_add_epi32(
                _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(wa[t])),
                delta);
            next = _mm256_sub_epi32(
                next,
                _mm256_and_si256(_mm256_cmpeq_epi32(next, over),
                                 one));
            next = _mm256_add_epi32(
                next,
                _mm256_and_si256(_mm256_cmpeq_epi32(next, under),
                                 one));
            _mm256_store_si256(reinterpret_cast<__m256i *>(nb), next);
            bases[0][ixa[t][0]] = static_cast<std::int8_t>(nb[0]);
            bases[1][ixa[t][1]] = static_cast<std::int8_t>(nb[1]);
            bases[2][ixa[t][2]] = static_cast<std::int8_t>(nb[2]);
            bases[3][ixa[t][3]] = static_cast<std::int8_t>(nb[3]);
            bases[4][ixa[t][4]] = static_cast<std::int8_t>(nb[4]);
            bases[5][ixa[t][5]] = static_cast<std::int8_t>(nb[5]);
            bases[6][ixa[t][6]] = static_cast<std::int8_t>(nb[6]);
            bases[7][ixa[t][7]] = static_cast<std::int8_t>(nb[7]);
        }
    }
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc_out), acc);
    for (unsigned l = 0; l < 8; ++l)
        misses[l] += acc_out[l];
}

void
replayPerceptronBatchAvx2(const std::uint32_t *idx,
                          const std::uint8_t *taken, std::size_t n,
                          PerceptronBatch &batch)
{
    for (unsigned l0 = 0; l0 < batch.lanes; l0 += 8) {
        alignas(32) std::int8_t dummy[8] = {};
        std::int8_t *bases[8];
        alignas(32) std::uint32_t live[8];
        alignas(32) std::int32_t thetas[8];
        std::uint64_t misses[8] = {};
        const unsigned live_count = std::min(8u, batch.lanes - l0);
        for (unsigned l = 0; l < 8; ++l) {
            bases[l] = l < live_count ? batch.weights[l0 + l] : dummy;
            live[l] = l < live_count ? 0xFFFFFFFFu : 0u;
            thetas[l] = l < live_count ? batch.theta[l0 + l] : -1;
        }
        perceptronLanes8Avx2(idx + l0, batch.tables, taken, n, bases,
                             live, thetas, misses);
        for (unsigned l = 0; l < live_count; ++l)
            batch.misses[l0 + l] += misses[l];
    }
}

#if defined(BPSIM_HAVE_AVX512)

// ---------------------------------------------------------------------
// AVX-512: 16 lanes per 512-bit vector.  Addressing mirrors AVX2 --
// two 8-wide vpgatherqd over absolute 64-bit addresses -- but the
// gathered dword is kept whole (not masked to the low byte) so the
// update can be written back with vpscatterqd: the counter XOR only
// touches bits 0..7 (shift <= 6, 2-bit field), the upper three bytes
// round-trip unchanged, and because lanes own disjoint tables the
// 4-byte store never lands in another lane's bytes.  The final table
// byte's scatter spills into PackedPht::kGatherSlack, which PackedPht
// allocates writable.  Only avx512f intrinsics are used, so one CPUID
// feature gates execution and one probe gates compilation.

/** 16-lane inner body; lanes beyond `live` train the caller's dummy. */
__attribute__((target("avx512f"))) void
replayLanes16Avx512(const std::uint32_t *records, std::size_t n,
                    std::uint8_t *const bases[16],
                    const std::uint32_t masks[16],
                    std::uint64_t misses[16])
{
    const __m512i mask_v = _mm512_loadu_si512(masks);
    const __m512i base_lo = _mm512_set_epi64(
        reinterpret_cast<long long>(bases[7]),
        reinterpret_cast<long long>(bases[6]),
        reinterpret_cast<long long>(bases[5]),
        reinterpret_cast<long long>(bases[4]),
        reinterpret_cast<long long>(bases[3]),
        reinterpret_cast<long long>(bases[2]),
        reinterpret_cast<long long>(bases[1]),
        reinterpret_cast<long long>(bases[0]));
    const __m512i base_hi = _mm512_set_epi64(
        reinterpret_cast<long long>(bases[15]),
        reinterpret_cast<long long>(bases[14]),
        reinterpret_cast<long long>(bases[13]),
        reinterpret_cast<long long>(bases[12]),
        reinterpret_cast<long long>(bases[11]),
        reinterpret_cast<long long>(bases[10]),
        reinterpret_cast<long long>(bases[9]),
        reinterpret_cast<long long>(bases[8]));
    const __m512i zero = _mm512_setzero_si512();
    const __m512i three = _mm512_set1_epi32(3);

    alignas(64) std::uint32_t acc_out[16];

    std::size_t done = 0;
    while (done < n) {
        // Flush the 32-bit accumulator before it can saturate.
        const std::size_t stop =
            done + std::min<std::size_t>(n - done,
                                         std::size_t{1} << 30);
        __m512i acc = zero;
        for (std::size_t i = done; i < stop; ++i) {
            const std::uint32_t rc = records[i];
            const std::uint32_t t = rc >> 31;
            const __m512i idx = _mm512_and_si512(
                _mm512_set1_epi32(static_cast<int>(rc)), mask_v);
            const __m512i bidx = _mm512_srli_epi32(idx, 2);
            const __m512i shift = _mm512_slli_epi32(
                _mm512_and_si512(idx, three), 1);

            const __m512i addr_lo = _mm512_add_epi64(
                base_lo, _mm512_cvtepu32_epi64(
                             _mm512_castsi512_si256(bidx)));
            const __m512i addr_hi = _mm512_add_epi64(
                base_hi, _mm512_cvtepu32_epi64(
                             _mm512_extracti64x4_epi64(bidx, 1)));
            const __m256i g_lo = _mm512_i64gather_epi32(
                addr_lo, static_cast<const int *>(nullptr), 1);
            const __m256i g_hi = _mm512_i64gather_epi32(
                addr_hi, static_cast<const int *>(nullptr), 1);
            // Keep the whole gathered dword: the update only flips
            // bits in the low byte, so scattering `word` back leaves
            // the three neighbour bytes exactly as read.
            const __m512i word = _mm512_inserti64x4(
                _mm512_castsi256_si512(g_lo), g_hi, 1);

            const __m512i cur = _mm512_and_si512(
                _mm512_srlv_epi32(word, shift), three);
            const __m512i tv =
                _mm512_set1_epi32(static_cast<int>(t));
            const __m512i ntv =
                _mm512_set1_epi32(static_cast<int>(t ^ 1u));
            const __m512i inc = _mm512_maskz_mov_epi32(
                _mm512_cmpneq_epi32_mask(cur, three), tv);
            const __m512i dec = _mm512_maskz_mov_epi32(
                _mm512_cmpneq_epi32_mask(cur, zero), ntv);
            const __m512i next =
                _mm512_sub_epi32(_mm512_add_epi32(cur, inc), dec);
            const __m512i newword = _mm512_xor_si512(
                word, _mm512_sllv_epi32(_mm512_xor_si512(cur, next),
                                        shift));

            _mm512_i64scatter_epi32(
                nullptr, addr_lo,
                _mm512_castsi512_si256(newword), 1);
            _mm512_i64scatter_epi32(
                nullptr, addr_hi,
                _mm512_extracti64x4_epi64(newword, 1), 1);

            acc = _mm512_add_epi32(
                acc,
                _mm512_xor_si512(_mm512_srli_epi32(cur, 1), tv));
        }
        _mm512_store_si512(acc_out, acc);
        for (unsigned l = 0; l < 16; ++l)
            misses[l] += acc_out[l];
        done = stop;
    }
}

void
replayLaneBatchAvx512(const std::uint32_t *records, std::size_t n,
                      LaneBatch &batch)
{
    for (unsigned l0 = 0; l0 < batch.lanes; l0 += 16) {
        alignas(64) std::uint8_t dummy[8] = {};
        std::uint8_t *bases[16];
        alignas(64) std::uint32_t masks[16];
        std::uint64_t misses[16] = {};
        const unsigned live = std::min(16u, batch.lanes - l0);
        for (unsigned l = 0; l < 16; ++l) {
            bases[l] = l < live ? batch.pht[l0 + l] : dummy;
            masks[l] = l < live ? batch.totalMask[l0 + l] : 0;
        }
        replayLanes16Avx512(records, n, bases, masks, misses);
        for (unsigned l = 0; l < live; ++l)
            batch.misses[l0 + l] += misses[l];
    }
}

__attribute__((target("avx512f"))) void
gatherLanes16Avx512(const std::uint8_t *const *bases,
                    const std::uint32_t *byte_idx, unsigned lanes,
                    std::uint8_t *out)
{
    alignas(64) const std::uint8_t dummy[8] = {};
    alignas(64) long long addrs[16];
    for (unsigned l = 0; l < 16; ++l) {
        const std::uint8_t *base = l < lanes ? bases[l] : dummy;
        const std::uint32_t idx = l < lanes ? byte_idx[l] : 0;
        addrs[l] = reinterpret_cast<long long>(base) + idx;
    }
    const __m256i g_lo = _mm512_i64gather_epi32(
        _mm512_load_si512(addrs),
        static_cast<const int *>(nullptr), 1);
    const __m256i g_hi = _mm512_i64gather_epi32(
        _mm512_load_si512(addrs + 8),
        static_cast<const int *>(nullptr), 1);
    alignas(64) std::uint32_t got[16];
    _mm512_store_si512(
        got, _mm512_inserti64x4(_mm512_castsi256_si512(g_lo),
                                g_hi, 1));
    for (unsigned l = 0; l < lanes && l < 16; ++l)
        out[l] = static_cast<std::uint8_t>(got[l]);
}

void
gatherLaneBytesAvx512(const std::uint8_t *const *bases,
                      const std::uint32_t *byte_idx, unsigned lanes,
                      std::uint8_t *out)
{
    for (unsigned l0 = 0; l0 < lanes; l0 += 16)
        gatherLanes16Avx512(bases + l0, byte_idx + l0, lanes - l0,
                            out + l0);
}

/**
 * 16-lane perceptron inner body.  Unlike the 2-bit replay, updates
 * CANNOT use vpscatterqd: weights are adjacent int8 bytes, so the
 * 4-byte scatter window would clobber three neighbouring weights --
 * including, when two of a lane's own table indices land within 4
 * bytes of each other, a weight this very branch just trained.
 * Stores stay scalar per byte; everything else is vector, with the
 * train decision carried in mask registers.
 */
__attribute__((target("avx512f"))) void
perceptronLanes16Avx512(const std::uint32_t *idx, unsigned tables,
                        const std::uint8_t *taken, std::size_t n,
                        std::int8_t *const bases[16],
                        const std::uint32_t live[16],
                        const std::int32_t thetas[16],
                        std::uint64_t misses[16])
{
    const __m512i live_v = _mm512_loadu_si512(live);
    const __m512i theta_v = _mm512_loadu_si512(thetas);
    const __mmask16 live_k = _mm512_test_epi32_mask(live_v, live_v);
    const __m512i base_lo = _mm512_set_epi64(
        reinterpret_cast<long long>(bases[7]),
        reinterpret_cast<long long>(bases[6]),
        reinterpret_cast<long long>(bases[5]),
        reinterpret_cast<long long>(bases[4]),
        reinterpret_cast<long long>(bases[3]),
        reinterpret_cast<long long>(bases[2]),
        reinterpret_cast<long long>(bases[1]),
        reinterpret_cast<long long>(bases[0]));
    const __m512i base_hi = _mm512_set_epi64(
        reinterpret_cast<long long>(bases[15]),
        reinterpret_cast<long long>(bases[14]),
        reinterpret_cast<long long>(bases[13]),
        reinterpret_cast<long long>(bases[12]),
        reinterpret_cast<long long>(bases[11]),
        reinterpret_cast<long long>(bases[10]),
        reinterpret_cast<long long>(bases[9]),
        reinterpret_cast<long long>(bases[8]));
    const __m512i zero = _mm512_setzero_si512();
    const __m512i over =
        _mm512_set1_epi32(PerceptronBatch::kWeightMax + 1);
    const __m512i under =
        _mm512_set1_epi32(PerceptronBatch::kWeightMin - 1);

    alignas(64) std::uint32_t ixa[PerceptronBatch::kMaxTables][16];
    alignas(64) std::int32_t wa[PerceptronBatch::kMaxTables][16];
    alignas(64) std::int32_t nb[16];
    alignas(64) std::uint32_t acc_out[16];

    const std::size_t stride =
        static_cast<std::size_t>(tables) * PerceptronBatch::kMaxLanes;
    __m512i acc = zero;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t *row = idx + i * stride;
        __m512i sum = zero;
        for (unsigned t = 0; t < tables; ++t) {
            const __m512i iv = _mm512_and_si512(
                _mm512_loadu_si512(
                    row + t * PerceptronBatch::kMaxLanes),
                live_v);
            _mm512_store_si512(ixa[t], iv);
            const __m512i addr_lo = _mm512_add_epi64(
                base_lo, _mm512_cvtepu32_epi64(
                             _mm512_castsi512_si256(iv)));
            const __m512i addr_hi = _mm512_add_epi64(
                base_hi, _mm512_cvtepu32_epi64(
                             _mm512_extracti64x4_epi64(iv, 1)));
            const __m256i g_lo = _mm512_i64gather_epi32(
                addr_lo, static_cast<const int *>(nullptr), 1);
            const __m256i g_hi = _mm512_i64gather_epi32(
                addr_hi, static_cast<const int *>(nullptr), 1);
            const __m512i w = _mm512_srai_epi32(
                _mm512_slli_epi32(
                    _mm512_inserti64x4(_mm512_castsi256_si512(g_lo),
                                       g_hi, 1),
                    24),
                24);
            _mm512_store_si512(wa[t], w);
            sum = _mm512_add_epi32(sum, w);
        }
        const std::uint32_t tk = taken[i] & 1u;
        const __m512i miss01 = _mm512_xor_si512(
            _mm512_srli_epi32(sum, 31),
            _mm512_set1_epi32(static_cast<int>(tk ^ 1u)));
        acc = _mm512_add_epi32(acc, miss01);
        const __mmask16 missk =
            _mm512_test_epi32_mask(miss01, miss01);
        const __mmask16 lowk =
            _mm512_cmple_epi32_mask(_mm512_abs_epi32(sum), theta_v);
        const __mmask16 traink = (missk | lowk) & live_k;
        if (traink == 0)
            continue;
        const __m512i delta = _mm512_maskz_mov_epi32(
            traink, _mm512_set1_epi32(tk ? 1 : -1));
        for (unsigned t = 0; t < tables; ++t) {
            __m512i next = _mm512_add_epi32(
                _mm512_load_si512(wa[t]), delta);
            next = _mm512_mask_sub_epi32(
                next, _mm512_cmpeq_epi32_mask(next, over), next,
                _mm512_set1_epi32(1));
            next = _mm512_mask_add_epi32(
                next, _mm512_cmpeq_epi32_mask(next, under), next,
                _mm512_set1_epi32(1));
            _mm512_store_si512(nb, next);
            for (unsigned l = 0; l < 16; ++l)
                bases[l][ixa[t][l]] = static_cast<std::int8_t>(nb[l]);
        }
    }
    _mm512_store_si512(acc_out, acc);
    for (unsigned l = 0; l < 16; ++l)
        misses[l] += acc_out[l];
}

void
replayPerceptronBatchAvx512(const std::uint32_t *idx,
                            const std::uint8_t *taken, std::size_t n,
                            PerceptronBatch &batch)
{
    for (unsigned l0 = 0; l0 < batch.lanes; l0 += 16) {
        alignas(64) std::int8_t dummy[8] = {};
        std::int8_t *bases[16];
        alignas(64) std::uint32_t live[16];
        alignas(64) std::int32_t thetas[16];
        std::uint64_t misses[16] = {};
        const unsigned live_count = std::min(16u, batch.lanes - l0);
        for (unsigned l = 0; l < 16; ++l) {
            bases[l] = l < live_count ? batch.weights[l0 + l] : dummy;
            live[l] = l < live_count ? 0xFFFFFFFFu : 0u;
            thetas[l] = l < live_count ? batch.theta[l0 + l] : -1;
        }
        perceptronLanes16Avx512(idx + l0, batch.tables, taken, n,
                                bases, live, thetas, misses);
        for (unsigned l = 0; l < live_count; ++l)
            batch.misses[l0 + l] += misses[l];
    }
}

#endif // BPSIM_HAVE_AVX512

#endif // BPSIM_SIMD_X86

} // namespace

const char *
simdTargetName(SimdTarget target)
{
    switch (target) {
      case SimdTarget::Auto: return "auto";
      case SimdTarget::Scalar: return "scalar";
      case SimdTarget::SSE2: return "sse2";
      case SimdTarget::AVX2: return "avx2";
      case SimdTarget::AVX512: return "avx512";
    }
    return "?";
}

Result<SimdTarget>
parseSimdTargetName(const std::string &name)
{
    if (name == "auto")
        return SimdTarget::Auto;
    if (name == "scalar")
        return SimdTarget::Scalar;
    if (name == "sse2")
        return SimdTarget::SSE2;
    if (name == "avx2")
        return SimdTarget::AVX2;
    if (name == "avx512")
        return SimdTarget::AVX512;
    return BPSIM_ERROR("unrecognised SIMD target '", name,
                       "' (expected scalar, sse2, avx2, avx512 or "
                       "auto)");
}

Status
simdEnvStatus()
{
    const char *env = std::getenv("BPSIM_SIMD");
    if (!env || !*env)
        return Status();
    const Result<SimdTarget> parsed = parseSimdTargetName(env);
    if (!parsed.ok())
        return BPSIM_ERROR("invalid BPSIM_SIMD value: ",
                           parsed.error().message());
    return Status();
}

bool
simdTargetSupported(SimdTarget target)
{
    switch (target) {
      case SimdTarget::Auto:
      case SimdTarget::Scalar:
        return true;
#if BPSIM_SIMD_X86
      case SimdTarget::SSE2:
        return __builtin_cpu_supports("sse2") != 0;
      case SimdTarget::AVX2:
        return __builtin_cpu_supports("avx2") != 0;
      case SimdTarget::AVX512:
#if defined(BPSIM_HAVE_AVX512)
        return __builtin_cpu_supports("avx512f") != 0;
#else
        // Toolchain could not compile the kernel; report unsupported
        // so dispatch clamps to AVX2 even on capable hardware.
        return false;
#endif
#else
      default:
        return false;
#endif
    }
    return false;
}

SimdTarget
detectSimdTarget()
{
    static const SimdTarget cached = [] {
#if BPSIM_SIMD_X86
        __builtin_cpu_init();
#if defined(BPSIM_HAVE_AVX512)
        if (__builtin_cpu_supports("avx512f"))
            return SimdTarget::AVX512;
#endif
        if (__builtin_cpu_supports("avx2"))
            return SimdTarget::AVX2;
        if (__builtin_cpu_supports("sse2"))
            return SimdTarget::SSE2;
#endif
        return SimdTarget::Scalar;
    }();
    return cached;
}

SimdTarget
resolveSimdTarget(SimdTarget requested)
{
    SimdTarget want = requested;
    if (want == SimdTarget::Auto)
        want = envTarget();
    if (want == SimdTarget::Auto)
        want = detectSimdTarget();
    while (want != SimdTarget::Scalar && !simdTargetSupported(want))
        want = narrower(want);
    return want;
}

std::vector<SimdTarget>
supportedSimdTargets()
{
    std::vector<SimdTarget> targets{SimdTarget::Scalar};
    for (SimdTarget t : {SimdTarget::SSE2, SimdTarget::AVX2,
                         SimdTarget::AVX512}) {
        if (simdTargetSupported(t))
            targets.push_back(t);
    }
    return targets;
}

void
replayLaneBatch(SimdTarget target, const std::uint32_t *records,
                std::size_t n, LaneBatch &batch)
{
    bpsim_assert(target != SimdTarget::Auto,
                 "replayLaneBatch needs a resolved target");
    bpsim_assert(batch.lanes >= 1 &&
                     batch.lanes <= LaneBatch::kMaxLanes,
                 "lane batch width ", batch.lanes, " out of range");
    // Occupancy-aware dispatch: a vector kernel pays for its full
    // width no matter how many lanes are live (dead lanes replay into
    // a dummy table), so an under-occupied batch is slower than the
    // scalar loop.  Measured on the scan in bench/micro_predictor_ops
    // terms, the 8-wide AVX2 kernel runs ~2x a scalar lane-update and
    // the 4-wide SSE2 kernel ~1.5x, putting break-even at 5 and 3
    // live lanes respectively; the 16-wide AVX-512 kernel only beats
    // two AVX2 passes once more than one 8-lane chunk is live, so its
    // break-even sits at 9.  Every path is bit-identical, so this is
    // purely a cost choice.
    switch (target) {
#if BPSIM_SIMD_X86
      case SimdTarget::AVX512:
#if defined(BPSIM_HAVE_AVX512)
        if (batch.lanes >= 9) {
            replayLaneBatchAvx512(records, n, batch);
            return;
        }
#endif
        [[fallthrough]];
      case SimdTarget::AVX2:
        if (batch.lanes >= 5) {
            replayLaneBatchAvx2(records, n, batch);
            return;
        }
        [[fallthrough]];
      case SimdTarget::SSE2:
        if (batch.lanes >= 3) {
            replayLaneBatchSse2(records, n, batch);
            return;
        }
        break;
#endif
      default:
        break;
    }
    replayLaneBatchScalar(records, n, batch);
}

void
replayPerceptronBatch(SimdTarget target, const std::uint32_t *idx,
                      const std::uint8_t *taken, std::size_t n,
                      PerceptronBatch &batch)
{
    bpsim_assert(target != SimdTarget::Auto,
                 "replayPerceptronBatch needs a resolved target");
    bpsim_assert(batch.lanes >= 1 &&
                     batch.lanes <= PerceptronBatch::kMaxLanes,
                 "perceptron batch width ", batch.lanes,
                 " out of range");
    bpsim_assert(batch.tables >= 1 &&
                     batch.tables <= PerceptronBatch::kMaxTables,
                 "perceptron batch tables ", batch.tables,
                 " out of range");
    bpsim_assert(n < (std::size_t{1} << 30),
                 "perceptron batch span ", n,
                 " overflows the per-call miss accumulator");
    // Same occupancy reasoning as replayLaneBatch: dead padding lanes
    // still pay gathers and stores, so under-occupied batches drop to
    // the next narrower kernel.  The break-evens are shared with the
    // 2-bit kernels -- the per-lane work differs (T gathers vs 1) but
    // the scalar loop scales by the same T, so the ratios hold.
    switch (target) {
#if BPSIM_SIMD_X86
      case SimdTarget::AVX512:
#if defined(BPSIM_HAVE_AVX512)
        if (batch.lanes >= 9) {
            replayPerceptronBatchAvx512(idx, taken, n, batch);
            return;
        }
#endif
        [[fallthrough]];
      case SimdTarget::AVX2:
        if (batch.lanes >= 5) {
            replayPerceptronBatchAvx2(idx, taken, n, batch);
            return;
        }
        [[fallthrough]];
      case SimdTarget::SSE2:
        if (batch.lanes >= 3) {
            replayPerceptronBatchSse2(idx, taken, n, batch);
            return;
        }
        break;
#endif
      default:
        break;
    }
    replayPerceptronBatchScalar(idx, taken, n, batch);
}

void
gatherLaneBytes(SimdTarget target, const std::uint8_t *const *bases,
                const std::uint32_t *byte_idx, unsigned lanes,
                std::uint8_t *out)
{
    bpsim_assert(lanes <= LaneBatch::kMaxLanes, "gather width ",
                 lanes, " out of range");
    switch (target) {
#if BPSIM_SIMD_X86
#if defined(BPSIM_HAVE_AVX512)
      case SimdTarget::AVX512:
        gatherLaneBytesAvx512(bases, byte_idx, lanes, out);
        return;
#endif
      case SimdTarget::AVX2:
        gatherLaneBytesAvx2(bases, byte_idx, lanes, out);
        return;
#endif
      default:
        gatherLaneBytesScalar(bases, byte_idx, lanes, out);
        return;
    }
}

void
scatterLaneBytes(SimdTarget target, std::uint8_t *const *bases,
                 const std::uint32_t *byte_idx, unsigned lanes,
                 const std::uint8_t *in)
{
    bpsim_assert(lanes <= LaneBatch::kMaxLanes, "scatter width ",
                 lanes, " out of range");
    // Every target stores scalar: vpscatterqd moves 4-byte elements,
    // so a byte-granular scatter needs a gather round-trip first, and
    // four byte stores stay cheaper than that emulation.
    (void)target;
    scatterLaneBytesScalar(bases, byte_idx, lanes, in);
}

} // namespace bpsim

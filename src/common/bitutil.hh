/**
 * @file
 * Bit-manipulation helpers used throughout the predictor and table code.
 *
 * All index computation in the simulator funnels through these functions so
 * that the (pc >> 2) word alignment and masking conventions pinned in
 * DESIGN.md live in exactly one place.
 */

#ifndef BPSIM_COMMON_BITUTIL_HH
#define BPSIM_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace bpsim {

/** Branch instruction address.  MIPS-style: word (4-byte) aligned. */
using Addr = std::uint64_t;

/** @return a mask with the low @p bits bits set (bits may be 0..64). */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

/** @return the low @p bits bits of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned nbits)
{
    return value & mask(nbits);
}

/** @return bits [lo, lo+nbits) of @p value, right-justified. */
constexpr std::uint64_t
bitsAt(std::uint64_t value, unsigned lo, unsigned nbits)
{
    return (value >> lo) & mask(nbits);
}

/**
 * The word index of an instruction address.  Instructions are 4-byte
 * aligned (MIPS R2000, as in the paper's traces), so the two low address
 * bits carry no information and every table-indexing scheme starts from
 * pc >> 2.
 */
constexpr std::uint64_t
wordIndex(Addr pc)
{
    return pc >> 2;
}

/**
 * Fold @p value down to @p nbits by repeated XOR of @p nbits-wide chunks.
 *
 * The multi-table schemes (TAGE, hashed perceptron) compress long history
 * values into narrow indices and tags with this fold.  The reference models
 * in src/verify/ re-implement the same loop naively; changing the fold here
 * is an engine-version bump.  A zero-width fold is defined as 0.
 */
constexpr std::uint64_t
xorFold(std::uint64_t value, unsigned nbits)
{
    if (nbits == 0)
        return 0;
    if (nbits >= 64)
        return value;
    std::uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & mask(nbits);
        value >>= nbits;
    }
    return folded;
}

/** @return true iff @p value is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** @return floor(log2(value)); value must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value | 1));
}

/** @return ceil(log2(value)); value must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return floorLog2(value) + (isPowerOfTwo(value) ? 0 : 1);
}

/** @return log2 of @p value, which must be an exact power of two. */
inline unsigned
exactLog2(std::uint64_t value)
{
    bpsim_assert(isPowerOfTwo(value), "value ", value,
                 " is not a power of two");
    return floorLog2(value);
}

} // namespace bpsim

#endif // BPSIM_COMMON_BITUTIL_HH

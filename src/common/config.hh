/**
 * @file
 * Minimal key=value command-line option parsing shared by the examples
 * and bench binaries.  Options look like "name=value"; bare words are
 * positional arguments.
 */

#ifndef BPSIM_COMMON_CONFIG_HH
#define BPSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hh"

namespace bpsim {

/** Parsed command line: positional arguments plus key=value options. */
class Config
{
  public:
    Config() = default;

    /** Parse argv[1..argc-1]. */
    static Config parseArgs(int argc, const char *const *argv);

    /** Parse a vector of tokens (for tests). */
    static Config parseTokens(const std::vector<std::string> &tokens);

    /** @return true if option @p key was supplied. */
    bool has(const std::string &key) const;

    /** @return option value, or @p fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /**
     * @return option parsed as signed integer (accepts 0x hex), or
     * @p fallback when absent.  Errors on malformed or out-of-range
     * values (cli::requireInt converts to a fatal exit at the CLI).
     */
    Result<std::int64_t> tryInt(const std::string &key,
                                std::int64_t fallback) const;

    /**
     * @return option parsed as double, or @p fallback when absent.
     * Errors on malformed or out-of-range values.
     */
    Result<double> tryDouble(const std::string &key,
                             double fallback) const;

    /** @return option parsed as bool (true/false/1/0/yes/no/on/off). */
    Result<bool> tryBool(const std::string &key, bool fallback) const;

    /** Positional (non key=value) arguments, in order. */
    const std::vector<std::string> &positional() const { return args; }

    /** All option keys, for "unknown option" diagnostics. */
    std::vector<std::string> keys() const;

    /**
     * Canonical rendering of the options, for use as a cache key:
     * keys sorted, each value normalized so spellings of the same
     * logical value collapse ("0x10" and "16" under tryInt's base-0
     * rules, "1.50" and "1.5", "yes" and "1").  Positional
     * arguments are excluded.  Two
     * configs built from differently ordered or differently spelled
     * tokens produce the same key exactly when they mean the same
     * options.
     */
    std::string canonicalKey() const;

  private:
    std::map<std::string, std::string> options;
    std::vector<std::string> args;
};

} // namespace bpsim

#endif // BPSIM_COMMON_CONFIG_HH

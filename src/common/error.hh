/**
 * @file
 * Recoverable error reporting for library code.
 *
 * The logging macros in logging.hh terminate the process, which is the
 * right behaviour at a CLI boundary but unacceptable inside library
 * code that may be embedded in a long-lived host (see DESIGN.md
 * "Error-handling conventions").  Ingestion and configuration paths
 * therefore report failures as values:
 *
 *   Error      -- a message plus the file/line where it was raised.
 *   Status     -- success, or an Error.
 *   Result<T>  -- a T, or an Error.
 *
 * Raise errors with BPSIM_ERROR(...), which stream-concatenates its
 * arguments exactly like bpsim_fatal() and captures __FILE__/__LINE__:
 *
 *   Result<MemoryTrace> load(const std::string &path) {
 *       if (!exists(path))
 *           return BPSIM_ERROR("cannot open trace file ", path);
 *       ...
 *       return trace;
 *   }
 *
 * At a CLI boundary, convert with cli::orFatal() (common/cli.hh),
 * which reproduces the exact bpsim_fatal() output -- including the
 * originating file/line -- and exits.  Accessing value() on an error
 * Result (or error() on a success) is a programming bug and panics.
 */

#ifndef BPSIM_COMMON_ERROR_HH
#define BPSIM_COMMON_ERROR_HH

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace bpsim {

/** A recoverable failure: message plus raise site. */
class Error
{
  public:
    Error(std::string msg, const char *file = nullptr, int line = 0)
        : msg_(std::move(msg)), file_(file), line_(line)
    {}

    const std::string &message() const { return msg_; }
    /** Raise site; file() may be nullptr for synthesised errors. */
    const char *file() const { return file_; }
    int line() const { return line_; }

    /** "message (file:line)" -- for embedding in another message. */
    std::string
    describe() const
    {
        if (!file_)
            return msg_;
        return detail::concat(msg_, " (", file_, ":", line_, ")");
    }

  private:
    std::string msg_;
    const char *file_;
    int line_;
};

/** Success, or an Error.  Default-constructed Status is success. */
class [[nodiscard]] Status
{
  public:
    Status() = default;
    Status(Error err) : err_(std::in_place, std::move(err)) {}

    bool ok() const { return !err_.has_value(); }

    const Error &
    error() const
    {
        bpsim_assert(!ok(), "error() on a success Status");
        return *err_;
    }

  private:
    std::optional<Error> err_;
};

/** A value of type T, or an Error. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
    Result(Error err) : v_(std::in_place_index<1>, std::move(err)) {}

    bool ok() const { return v_.index() == 0; }

    T &
    value() &
    {
        bpsim_assert(ok(), "value() on an error Result: ",
                     std::get<1>(v_).describe());
        return std::get<0>(v_);
    }

    const T &
    value() const &
    {
        bpsim_assert(ok(), "value() on an error Result: ",
                     std::get<1>(v_).describe());
        return std::get<0>(v_);
    }

    T &&
    value() &&
    {
        bpsim_assert(ok(), "value() on an error Result: ",
                     std::get<1>(v_).describe());
        return std::get<0>(std::move(v_));
    }

    /** The value, or @p fallback when this Result holds an error. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? std::get<0>(v_) : std::move(fallback);
    }

    const Error &
    error() const
    {
        bpsim_assert(!ok(), "error() on a success Result");
        return std::get<1>(v_);
    }

    /** Collapse to a Status (drops the value). */
    Status
    status() const
    {
        return ok() ? Status() : Status(std::get<1>(v_));
    }

  private:
    std::variant<T, Error> v_;
};

} // namespace bpsim

/** Build an Error from stream-concatenated args, capturing file/line. */
#define BPSIM_ERROR(...) \
    ::bpsim::Error(::bpsim::detail::concat(__VA_ARGS__), __FILE__, \
                   __LINE__)

#endif // BPSIM_COMMON_ERROR_HH

/**
 * @file
 * CLI-boundary adapters: convert recoverable errors (common/error.hh)
 * into bpsim_fatal() process exits.
 *
 * This header is the ONLY sanctioned place where library Errors become
 * fatal.  It must be included exclusively from main()-adjacent code in
 * examples/ and bench/ -- library code under src/ reports Errors and
 * never exits (see DESIGN.md "Error-handling conventions").  The fatal
 * message reuses the Error's own raise site, so user-visible output is
 * identical to the pre-Result behaviour.
 */

#ifndef BPSIM_COMMON_CLI_HH
#define BPSIM_COMMON_CLI_HH

#include <utility>

#include "common/config.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace bpsim::cli {

/** Exit via fatal() preserving the error's original raise site. */
[[noreturn]] inline void
fatalFrom(const Error &err)
{
    fatalImpl(err.message(), err.file(), err.line());
}

/** Continue on success; exit the process on error. */
inline void
orFatal(const Status &status)
{
    if (!status.ok())
        fatalFrom(status.error());
}

/** Unwrap a Result, exiting the process on error. */
template <typename T>
T
orFatal(Result<T> result)
{
    if (!result.ok())
        fatalFrom(result.error());
    return std::move(result).value();
}

/** Config::tryInt with malformed values converted to fatal exits. */
inline std::int64_t
requireInt(const Config &cfg, const std::string &key,
           std::int64_t fallback)
{
    return orFatal(cfg.tryInt(key, fallback));
}

/** Config::tryDouble with malformed values converted to fatal exits. */
inline double
requireDouble(const Config &cfg, const std::string &key, double fallback)
{
    return orFatal(cfg.tryDouble(key, fallback));
}

/** Config::tryBool with malformed values converted to fatal exits. */
inline bool
requireBool(const Config &cfg, const std::string &key, bool fallback)
{
    return orFatal(cfg.tryBool(key, fallback));
}

} // namespace bpsim::cli

#endif // BPSIM_COMMON_CLI_HH

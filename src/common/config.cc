#include "common/config.hh"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace bpsim {

Config
Config::parseArgs(int argc, const char *const *argv)
{
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i)
        tokens.emplace_back(argv[i]);
    return parseTokens(tokens);
}

Config
Config::parseTokens(const std::vector<std::string> &tokens)
{
    Config cfg;
    for (const auto &tok : tokens) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            cfg.args.push_back(tok);
        } else {
            cfg.options[tok.substr(0, eq)] = tok.substr(eq + 1);
        }
    }
    return cfg;
}

bool
Config::has(const std::string &key) const
{
    return options.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
}

Result<std::int64_t>
Config::tryInt(const std::string &key, std::int64_t fallback) const
{
    auto it = options.find(key);
    if (it == options.end())
        return fallback;
    const std::string &text = it->second;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        return BPSIM_ERROR("option ", key, "=", text,
                           " is not an integer");
    if (errno == ERANGE)
        return BPSIM_ERROR("option ", key, "=", text,
                           " is out of range for a 64-bit integer");
    return static_cast<std::int64_t>(v);
}

Result<double>
Config::tryDouble(const std::string &key, double fallback) const
{
    auto it = options.find(key);
    if (it == options.end())
        return fallback;
    const std::string &text = it->second;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return BPSIM_ERROR("option ", key, "=", text,
                           " is not a number");
    if (errno == ERANGE)
        return BPSIM_ERROR("option ", key, "=", text,
                           " is out of range for a double");
    return v;
}

Result<bool>
Config::tryBool(const std::string &key, bool fallback) const
{
    auto it = options.find(key);
    if (it == options.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    return BPSIM_ERROR("option ", key, "=", v, " is not a boolean");
}

namespace {

/**
 * Normalize one option value: integers (with tryInt's base-0 rules,
 * so 0x10 and 16 collapse) render as decimal, other numerics as the
 * shortest round-trip double, boolean words as 1/0, everything else
 * verbatim.
 */
std::string
canonicalValue(const std::string &text)
{
    if (!text.empty()) {
        char *end = nullptr;
        errno = 0;
        long long i = std::strtoll(text.c_str(), &end, 0);
        if (end != text.c_str() && *end == '\0' && errno != ERANGE)
            return std::to_string(i);
        errno = 0;
        double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() && *end == '\0' && errno != ERANGE) {
            char buf[32];
            auto r = std::to_chars(buf, buf + sizeof(buf), d);
            return std::string(buf, r.ptr);
        }
    }
    if (text == "true" || text == "yes" || text == "on")
        return "1";
    if (text == "false" || text == "no" || text == "off")
        return "0";
    return text;
}

/** True when @p text parses as an integer under tryInt's base-0 rules. */
bool
isIntegral(const std::string &text, long long &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    value = std::strtoll(text.c_str(), &end, 0);
    return end != text.c_str() && *end == '\0' && errno != ERANGE;
}

/**
 * Normalize a comma-separated list value.  List-valued keys (TAGE's
 * geometric history lengths) denote SETS of numbers for caching
 * purposes: "32,16,8,4" and "4,8,0x10,32" must hash identically, so
 * all-integer lists canonicalize each element and sort numerically.
 * Lists with any non-integer element keep their element order (it may
 * be meaningful) but still canonicalize each element.
 */
std::string
canonicalList(const std::string &text)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size()) {
        auto comma = text.find(',', start);
        items.push_back(comma == std::string::npos
                            ? text.substr(start)
                            : text.substr(start, comma - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }

    std::vector<long long> numbers;
    numbers.reserve(items.size());
    bool all_integral = true;
    for (const std::string &item : items) {
        long long v = 0;
        if (!isIntegral(item, v)) {
            all_integral = false;
            break;
        }
        numbers.push_back(v);
    }

    std::string out;
    if (all_integral) {
        std::sort(numbers.begin(), numbers.end());
        for (long long v : numbers) {
            if (!out.empty())
                out += ',';
            out += std::to_string(v);
        }
    } else {
        for (const std::string &item : items) {
            if (!out.empty())
                out += ',';
            out += canonicalValue(item);
        }
    }
    return out;
}

} // namespace

std::string
Config::canonicalKey() const
{
    // std::map iterates in key order, so the rendering is already
    // insensitive to the order options appeared on the command line.
    std::string out;
    for (const auto &kv : options) {
        if (!out.empty())
            out += ';';
        out += kv.first;
        out += '=';
        out += kv.second.find(',') != std::string::npos
                   ? canonicalList(kv.second)
                   : canonicalValue(kv.second);
    }
    return out;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(options.size());
    for (const auto &kv : options)
        out.push_back(kv.first);
    return out;
}

} // namespace bpsim

/**
 * @file
 * Cross-process advisory file locking for shared on-disk state.
 *
 * The persistent result cache (src/cache/) may be shared by several
 * processes -- a long-running sweep_server plus ad-hoc bench runs
 * pointed at the same directory.  Mutexes only serialise threads of
 * one process; FileLock serialises *processes* by holding an
 * exclusive flock(2) on a well-known lock file inside the shared
 * directory.
 *
 * Properties that matter for the cache:
 *
 *  - flock locks belong to the open file description, so two handles
 *    in one process exclude each other exactly like two processes do
 *    (tests can exercise the cross-process protocol with plain
 *    threads before paying for a fork).
 *  - The lock dies with the process: a crashed writer can never leave
 *    the cache wedged.
 *  - Locking is advisory.  Readers deliberately do not take it --
 *    writers publish entries by atomic rename, so a reader sees either
 *    the old complete file or the new complete file, and the .bpc
 *    checksum catches everything else.
 */

#ifndef BPSIM_COMMON_FILE_LOCK_HH
#define BPSIM_COMMON_FILE_LOCK_HH

#include <string>

#include "common/error.hh"

namespace bpsim {

/**
 * RAII exclusive lock on @p path (created if absent).  Blocks until
 * the lock is granted.  Movable, not copyable; releases on
 * destruction.
 */
class FileLock
{
  public:
    /** Acquire an exclusive lock on @p path, blocking. */
    static Result<FileLock> acquire(const std::string &path);

    FileLock(FileLock &&other) noexcept;
    FileLock &operator=(FileLock &&other) noexcept;
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;
    ~FileLock();

    /** Release early (idempotent). */
    void release();

    bool held() const { return fd_ >= 0; }

  private:
    explicit FileLock(int fd) : fd_(fd) {}

    int fd_ = -1;
};

} // namespace bpsim

#endif // BPSIM_COMMON_FILE_LOCK_HH

/**
 * @file
 * Minimal byte-stream abstraction behind the binary trace I/O.
 *
 * TraceReader/TraceWriter (trace/trace_io.hh) talk to a ByteStream
 * instead of a raw std::FILE so that
 *
 *   - the fault-injection harness (verify/fault_injection.hh) can wrap
 *     any stream and fail the Nth operation, short-transfer a read or
 *     write, or break flush/close -- exercising every error path the
 *     disk can produce;
 *   - the corruption fuzzer can replay mutated trace images from
 *     memory at full speed, without touching the filesystem.
 *
 * The interface is deliberately primitive: operations report success
 * via return values (byte counts / bools) and the layer above turns
 * failures into structured Errors with context.  Streams are
 * single-purpose (read-only or write-only in practice) and not
 * thread-safe.
 */

#ifndef BPSIM_COMMON_BYTE_IO_HH
#define BPSIM_COMMON_BYTE_IO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/error.hh"

namespace bpsim {

/** Seekable stream of bytes; the unit the fault injector wraps. */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /** Read up to @p n bytes into @p dst; @return bytes read. */
    virtual std::size_t read(void *dst, std::size_t n) = 0;

    /** Write @p n bytes from @p src; @return bytes written. */
    virtual std::size_t write(const void *src, std::size_t n) = 0;

    /** Seek to absolute offset @p pos; @return success. */
    virtual bool seek(std::uint64_t pos) = 0;

    /** Total stream size in bytes (independent of position). */
    virtual bool size(std::uint64_t &out) = 0;

    /** Push buffered writes down; @return success. */
    virtual bool flush() = 0;

    /**
     * Flush and release the stream.  Idempotent; later calls are
     * successful no-ops.  @return false when buffered data could not
     * be written (e.g. disk full at the final flush).
     */
    virtual bool close() = 0;

    /** Human-readable origin (path, "<memory>") for error messages. */
    virtual const std::string &describe() const = 0;
};

/** ByteStream over a stdio FILE; owns and closes the handle. */
class StdioFileStream : public ByteStream
{
  public:
    /** Open @p path for binary reading. */
    static Result<std::unique_ptr<ByteStream>>
    openRead(const std::string &path);

    /** Create/truncate @p path for binary writing. */
    static Result<std::unique_ptr<ByteStream>>
    openWrite(const std::string &path);

    ~StdioFileStream() override;

    StdioFileStream(const StdioFileStream &) = delete;
    StdioFileStream &operator=(const StdioFileStream &) = delete;

    std::size_t read(void *dst, std::size_t n) override;
    std::size_t write(const void *src, std::size_t n) override;
    bool seek(std::uint64_t pos) override;
    bool size(std::uint64_t &out) override;
    bool flush() override;
    bool close() override;
    const std::string &describe() const override { return path_; }

  private:
    StdioFileStream(std::FILE *file, std::string path);

    std::FILE *file_;
    std::string path_;
};

/**
 * ByteStream over an in-memory buffer.  Reading past the end returns a
 * short count; writing extends the buffer.  Used by the corruption
 * fuzzer and by tests that need byte-exact control over trace images.
 */
class MemoryByteStream : public ByteStream
{
  public:
    explicit MemoryByteStream(std::string initial = {},
                              std::string name = "<memory>");

    std::size_t read(void *dst, std::size_t n) override;
    std::size_t write(const void *src, std::size_t n) override;
    bool seek(std::uint64_t pos) override;
    bool size(std::uint64_t &out) override;
    bool flush() override;
    bool close() override;
    const std::string &describe() const override { return name_; }

    /** Current buffer contents (inspect what a writer produced). */
    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
    std::string name_;
    std::size_t pos_ = 0;
    bool closed_ = false;
};

} // namespace bpsim

#endif // BPSIM_COMMON_BYTE_IO_HH

/**
 * @file
 * N-bit saturating up/down counter -- the state machine populating every
 * second-level predictor table in the paper (two bits throughout the
 * paper's experiments; the width is a template parameter so ablations can
 * vary it).
 */

#ifndef BPSIM_COMMON_SAT_COUNTER_HH
#define BPSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

namespace bpsim {

/**
 * Saturating counter of Bits bits.  The value saturates at 0 and
 * 2^Bits - 1; the most significant bit is the taken/not-taken prediction.
 *
 * The canonical two-bit counter [Smith81] is SatCounter<2>, with states
 * 0 = strongly not-taken, 1 = weakly not-taken, 2 = weakly taken,
 * 3 = strongly taken.
 */
template <unsigned Bits = 2>
class SatCounter
{
    static_assert(Bits >= 1 && Bits <= 8, "supported widths: 1..8 bits");

  public:
    static constexpr std::uint8_t maxValue = (1u << Bits) - 1;
    /** Weakly-taken initial state, the common hardware reset value. */
    static constexpr std::uint8_t weaklyTaken = 1u << (Bits - 1);
    static constexpr std::uint8_t weaklyNotTaken = weaklyTaken - 1;

    constexpr SatCounter() : value(weaklyTaken) {}
    constexpr explicit SatCounter(std::uint8_t initial)
        : value(initial > maxValue ? maxValue : initial)
    {}

    /** @return the predicted direction: MSB of the counter. */
    constexpr bool predict() const { return value >= weaklyTaken; }

    /**
     * Train toward the actual outcome.  Branchless: the saturating
     * increment/decrement is computed arithmetically (no table lookup,
     * no data-dependent branch) because the outcome stream feeding hot
     * predictor loops is exactly the hard-to-predict kind.  The
     * transition function is unchanged -- tests/test_sat_counter pins
     * every (state, outcome) pair against the if/else specification.
     */
    constexpr void
    update(bool taken)
    {
        const unsigned t = static_cast<unsigned>(taken);
        const unsigned up = t & static_cast<unsigned>(value != maxValue);
        const unsigned down =
            (t ^ 1u) & static_cast<unsigned>(value != 0);
        value = static_cast<std::uint8_t>(value + up - down);
    }

    /** @return the raw counter state. */
    constexpr std::uint8_t raw() const { return value; }

    /** Force the counter to a specific state (clamped to range). */
    constexpr void
    set(std::uint8_t v)
    {
        value = v > maxValue ? maxValue : v;
    }

    /** @return true when an update in either direction changes nothing. */
    constexpr bool
    saturated() const
    {
        return value == 0 || value == maxValue;
    }

    constexpr bool operator==(const SatCounter &) const = default;

  private:
    std::uint8_t value;
};

using TwoBitCounter = SatCounter<2>;

} // namespace bpsim

#endif // BPSIM_COMMON_SAT_COUNTER_HH

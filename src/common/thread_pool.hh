/**
 * @file
 * A fixed-size worker pool shared by the sweep engine and the
 * experiment drivers.
 *
 * The design centre is parallelFor(): run a batch of independent,
 * index-addressed jobs with deterministic result placement.  Callers
 * write job i's output into their own slot i, so the merged result is
 * bit-identical to a serial loop regardless of scheduling.  The calling
 * thread always participates in its own batch, which makes nested
 * parallelFor() calls (a parallel experiment driver issuing parallel
 * sweeps) deadlock-free even when every worker is busy: the initiator
 * drains its batch itself and queued helpers become no-ops.
 *
 * The first exception thrown by a job cancels the remaining unclaimed
 * jobs and is rethrown in the caller once in-flight jobs drain.
 */

#ifndef BPSIM_COMMON_THREAD_POOL_HH
#define BPSIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bpsim {

class ThreadPool
{
  public:
    /** Spawn @p workers threads; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads owned by this pool. */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

    /**
     * Resolve a user-facing threads knob: 0 selects all hardware
     * threads, anything else is taken literally.
     */
    static unsigned resolveThreads(unsigned requested);

    /** The process-wide pool (hardwareThreads() workers, lazily built). */
    static ThreadPool &shared();

    /**
     * Whether the calling thread is a pool worker (of any ThreadPool).
     * Observability for tests of nested parallelFor(): an inner batch
     * issued from a worker must execute on workers or the initiator,
     * never by spawning ad-hoc threads.
     */
    static bool inWorkerThread();

    /**
     * Run fn(0) .. fn(n-1) with at most @p max_threads concurrent
     * executors (the calling thread plus up to max_threads-1 workers).
     * max_threads <= 1 degenerates to a plain serial loop.  Blocks
     * until every claimed job has finished; rethrows the first job
     * exception.  Each index is executed exactly once.
     */
    void parallelFor(std::size_t n, unsigned max_threads,
                     const std::function<void(std::size_t)> &fn);

    /** Queue one task; the future carries its result or exception. */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

  private:
    struct Batch;

    void enqueue(std::function<void()> task);
    void workerLoop();
    /** Claim-and-run loop every batch participant executes. */
    static void runBatch(Batch &batch);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace bpsim

#endif // BPSIM_COMMON_THREAD_POOL_HH

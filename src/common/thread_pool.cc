#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace bpsim {

/**
 * Shared state of one parallelFor() call.  Jobs are claimed under the
 * batch mutex; completion is "everything claimable has been claimed and
 * every claimed job has finished", so the initiator never waits on a
 * helper that has not been scheduled yet (queued helpers that arrive
 * late find nothing to claim and exit immediately).
 */
struct ThreadPool::Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;

    std::mutex m;
    std::condition_variable done;
    std::size_t nextIndex = 0; ///< under m
    std::size_t claimed = 0;   ///< under m
    std::size_t finished = 0;  ///< under m
    bool cancelled = false;    ///< under m; set on first exception
    std::exception_ptr error;  ///< under m; first exception only

    bool
    complete() const
    {
        return finished == claimed && (cancelled || nextIndex >= n);
    }
};

ThreadPool::ThreadPool(unsigned workers)
{
    unsigned count = workers ? workers : hardwareThreads();
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
ThreadPool::resolveThreads(unsigned requested)
{
    return requested ? requested : hardwareThreads();
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(hardwareThreads());
    return pool;
}

namespace {
thread_local bool t_in_worker = false;
} // namespace

bool
ThreadPool::inWorkerThread()
{
    return t_in_worker;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bpsim_assert(!stopping_, "task submitted to a stopping pool");
        queue_.push_back(std::move(task));
    }
    available_.notify_one();
}

void
ThreadPool::workerLoop()
{
    t_in_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::runBatch(Batch &batch)
{
    for (;;) {
        std::size_t index;
        {
            std::lock_guard<std::mutex> lock(batch.m);
            if (batch.cancelled || batch.nextIndex >= batch.n)
                return;
            index = batch.nextIndex++;
            ++batch.claimed;
        }

        std::exception_ptr error;
        try {
            (*batch.fn)(index);
        } catch (...) {
            error = std::current_exception();
        }

        {
            std::lock_guard<std::mutex> lock(batch.m);
            ++batch.finished;
            if (error) {
                batch.cancelled = true;
                if (!batch.error)
                    batch.error = error;
            }
            if (batch.complete())
                batch.done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n, unsigned max_threads,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    unsigned helpers = 0;
    if (max_threads > 1) {
        helpers = max_threads - 1;
        helpers = std::min<unsigned>(helpers, workerCount());
        helpers = std::min<std::size_t>(helpers, n - 1);
    }
    if (helpers == 0) {
        // Serial degenerate case: plain loop, direct propagation.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    for (unsigned i = 0; i < helpers; ++i)
        enqueue([batch] { runBatch(*batch); });

    runBatch(*batch);

    std::unique_lock<std::mutex> lock(batch->m);
    batch->done.wait(lock, [&] { return batch->complete(); });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace bpsim

/**
 * @file
 * The general two-level predictor of Figure 1: a RowSelector (first
 * level) composed with a PredictorTable (second level).  Every scheme in
 * the paper is an instance:
 *
 *   address-indexed  TwoLevelPredictor(NullSelector, 0, n)
 *   GAg              TwoLevelPredictor(GlobalHistorySelector, n, 0)
 *   GAs 2^r x 2^c    TwoLevelPredictor(GlobalHistorySelector, r, c)
 *   gshare           TwoLevelPredictor(GshareSelector, r, c)
 *   path             TwoLevelPredictor(PathSelector, r, c)
 *   PAs (perfect)    TwoLevelPredictor(PerfectPerAddressSelector, r, c)
 *   PAs (finite)     TwoLevelPredictor(BhtPerAddressSelector, r, c)
 */

#ifndef BPSIM_PREDICTOR_TWO_LEVEL_HH
#define BPSIM_PREDICTOR_TWO_LEVEL_HH

#include <memory>

#include "predictor/pht.hh"
#include "predictor/predictor.hh"
#include "predictor/row_selector.hh"

namespace bpsim {

/** RowSelector x PredictorTable composition. */
class TwoLevelPredictor : public BranchPredictor
{
  public:
    /**
     * @param selector first-level row-selection box (owned)
     * @param row_bits log2 rows of the second-level table
     * @param col_bits log2 columns (address-selected)
     * @param track_aliasing instrument the table for Figure 5
     */
    TwoLevelPredictor(std::unique_ptr<RowSelector> selector,
                      unsigned row_bits, unsigned col_bits,
                      bool track_aliasing = false);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override
    {
        return table.counterCount();
    }

    const PredictorTable &pht() const { return table; }
    const RowSelector &rowSelector() const { return *selector; }
    RowSelector &rowSelector() { return *selector; }

  private:
    std::unique_ptr<RowSelector> selector;
    PredictorTable table;
};

/// Convenience constructors for the paper's named schemes.

/** Address-indexed table of 2^n counters (Figure 2). */
std::unique_ptr<TwoLevelPredictor>
makeAddressIndexed(unsigned index_bits, bool track_aliasing = false);

/** GAg with n history bits into a 2^n-counter column (Figure 3). */
std::unique_ptr<TwoLevelPredictor>
makeGAg(unsigned history_bits, bool track_aliasing = false);

/** GAs 2^r rows x 2^c columns (Figure 4). */
std::unique_ptr<TwoLevelPredictor>
makeGAs(unsigned row_bits, unsigned col_bits, bool track_aliasing = false);

/** gshare 2^r x 2^c (Figure 6). */
std::unique_ptr<TwoLevelPredictor>
makeGshare(unsigned row_bits, unsigned col_bits,
           bool track_aliasing = false);

/** Nair path scheme 2^r x 2^c (Figure 8). */
std::unique_ptr<TwoLevelPredictor>
makePath(unsigned row_bits, unsigned col_bits, unsigned bits_per_target = 2,
         bool track_aliasing = false);

/** PAs with unbounded first level (Figure 9). */
std::unique_ptr<TwoLevelPredictor>
makePAsPerfect(unsigned row_bits, unsigned col_bits,
               bool track_aliasing = false);

/** SAs: untagged set of history registers as the first level. */
std::unique_ptr<TwoLevelPredictor>
makeSAs(unsigned row_bits, unsigned col_bits, unsigned set_bits,
        bool track_aliasing = false);

/** PAs with a finite set-associative BHT (Figure 10). */
std::unique_ptr<TwoLevelPredictor>
makePAsFinite(unsigned row_bits, unsigned col_bits, std::size_t bht_entries,
              unsigned bht_assoc = 4, bool track_aliasing = false);

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TWO_LEVEL_HH

/**
 * @file
 * Dealiased global-history predictors: the agree predictor and the
 * bi-mode predictor.
 *
 * The paper's conclusion -- "controlling aliasing will be the key to
 * improving prediction accuracy and taking advantage of inter-branch
 * correlations in global schemes" -- directly motivated this family of
 * designs.  Both keep gshare's index but convert destructive aliasing
 * into neutral or harmless aliasing:
 *
 *  - The AGREE predictor [Sprangle et al., ISCA 1997] stores a biasing
 *    bit per branch (here: the first observed outcome) and makes the
 *    shared counters predict whether the branch AGREES with its bias.
 *    Two biased branches aliasing to the same counter now usually push
 *    it the same way ("agree"), regardless of their directions.
 *
 *  - The BI-MODE predictor [Lee, Chen, Mudge -- the same group --
 *    MICRO 1997] splits the pattern table into a taken-leaning and a
 *    not-taken-leaning half, with an address-indexed choice table
 *    steering each branch to the half matching its bias, so branches
 *    aliasing in a direction table mostly share their bias.
 */

#ifndef BPSIM_PREDICTOR_DEALIASED_HH
#define BPSIM_PREDICTOR_DEALIASED_HH

#include <unordered_map>
#include <vector>

#include "common/history_register.hh"
#include "common/sat_counter.hh"
#include "predictor/predictor.hh"

namespace bpsim {

/** gshare-indexed agree predictor with per-branch biasing bits. */
class AgreePredictor : public BranchPredictor
{
  public:
    /**
     * @param index_bits log2 size of the agree-counter table
     * @param history_bits global history length XORed into the index
     */
    AgreePredictor(unsigned index_bits, unsigned history_bits);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override
    {
        return counters.size();
    }

    /** Branches whose biasing bit has been captured so far. */
    std::size_t biasedBranches() const { return biasBits.size(); }

  private:
    std::size_t indexOf(Addr pc) const;

    unsigned indexBits;
    HistoryRegister history;
    std::vector<TwoBitCounter> counters;
    /**
     * Biasing bit per branch: first observed outcome.  Hardware keeps
     * this in the BTB/instruction cache; the unbounded map models that
     * structure without a second capacity knob.
     */
    std::unordered_map<Addr, bool> biasBits;
};

/** Bi-mode predictor: choice table + two gshare-indexed direction
 *  tables. */
class BiModePredictor : public BranchPredictor
{
  public:
    /**
     * @param direction_bits log2 size of EACH direction table
     * @param choice_bits log2 size of the address-indexed choice table
     * @param history_bits global history length for direction indexing
     */
    BiModePredictor(unsigned direction_bits, unsigned choice_bits,
                    unsigned history_bits);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override
    {
        return taken.size() + notTaken.size() + choice.size();
    }

  private:
    unsigned directionBits;
    unsigned choiceBits;
    HistoryRegister history;
    std::vector<TwoBitCounter> taken;
    std::vector<TwoBitCounter> notTaken;
    std::vector<TwoBitCounter> choice;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_DEALIASED_HH

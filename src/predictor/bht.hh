/**
 * @file
 * Finite first-level branch history table (BHT) for PAs schemes.
 *
 * Set-associative, tag-checked, LRU-replaced.  On a miss the paper's
 * policy applies: the victim entry is re-tagged for the new branch and
 * its history register is reset to the appropriate-length prefix of the
 * pattern 0xC3FF, "avoiding excessive aliasing for the patterns of all
 * taken or all not taken branches" (Section 5).
 */

#ifndef BPSIM_PREDICTOR_BHT_HH
#define BPSIM_PREDICTOR_BHT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutil.hh"
#include "common/history_register.hh"

namespace bpsim {

/**
 * What a displaced BHT entry's history register is set to.  The paper
 * uses the 0xC3FF prefix; the alternatives exist for the ablation bench
 * that justifies that choice.
 */
enum class BhtResetPolicy
{
    C3ffPrefix, ///< the paper's mixture pattern (default)
    Zeros,      ///< all not-taken: aliases with never-taken branches
    Ones,       ///< all taken: aliases with the loop pattern
    Hold,       ///< keep the victim's history (no reset at all)
};

/** @return a short display name for a reset policy. */
const char *bhtResetPolicyName(BhtResetPolicy policy);

/** Result of one BHT visit. */
struct BhtLookup
{
    /** History register value for the branch (post any miss reset). */
    std::uint64_t history = 0;
    /** True when the visit missed (tag absent) and an entry was reset. */
    bool miss = false;
};

/** Set-associative per-address branch history table. */
class SetAssocBht
{
  public:
    /**
     * @param entries total entry count (power of two)
     * @param assoc associativity (divides entries; 1 = direct mapped)
     * @param history_bits width of each entry's history register
     */
    SetAssocBht(std::size_t entries, unsigned assoc,
                unsigned history_bits,
                BhtResetPolicy policy = BhtResetPolicy::C3ffPrefix);

    /**
     * Find (or allocate) the entry for @p pc, update LRU, and return its
     * current history.  A miss resets the victim's history to the 0xC3FF
     * prefix before returning it.
     */
    BhtLookup visit(Addr pc);

    /** Shift @p taken into the entry for @p pc (must have been visited). */
    void recordOutcome(Addr pc, bool taken);

    /**
     * Read the history for @p pc without touching LRU or miss counters.
     * @return nullopt when the branch is not currently resident.
     */
    std::optional<std::uint64_t> peek(Addr pc) const;

    std::size_t entryCount() const { return entries.size(); }
    unsigned associativity() const { return assoc; }
    unsigned historyBits() const { return historyBits_; }
    BhtResetPolicy resetPolicy() const { return policy; }

    std::uint64_t visits() const { return visits_; }
    std::uint64_t misses() const { return misses_; }

    /** Tag miss rate, the "First-level Table Miss Rate" of Table 3. */
    double
    missRate() const
    {
        return visits_ ?
            static_cast<double>(misses_) / static_cast<double>(visits_)
            : 0.0;
    }

    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        HistoryRegister history;
        /** Lower = older; set-relative stamp for LRU. */
        std::uint64_t stamp = 0;
    };

    /** First entry index of the set holding @p pc, and the pc's tag. */
    std::size_t setBase(Addr pc) const;
    std::uint64_t tagOf(Addr pc) const;

    /** Find a valid matching way in the pc's set, or nullptr. */
    Entry *find(Addr pc);

    /** History value installed on a miss (per the reset policy). */
    std::uint64_t resetValue() const;

    std::vector<Entry> entries;
    unsigned assoc;
    unsigned historyBits_;
    BhtResetPolicy policy;
    unsigned setIndexBits;
    std::uint64_t stampCounter = 0;
    std::uint64_t visits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_BHT_HH

/**
 * @file
 * The second-level pattern history table (PHT) of the general two-level
 * model (Figure 1 of the paper): 2^rowBits rows by 2^colBits columns of
 * two-bit saturating counters, selected by (row, column), with optional
 * per-counter aliasing instrumentation.
 */

#ifndef BPSIM_PREDICTOR_PHT_HH
#define BPSIM_PREDICTOR_PHT_HH

#include <memory>
#include <vector>

#include "common/bitutil.hh"
#include "common/sat_counter.hh"
#include "stats/aliasing.hh"

namespace bpsim {

/** Rows x columns of two-bit counters with aliasing measurement. */
class PredictorTable
{
  public:
    /**
     * @param row_bits log2 of the row count (history side)
     * @param col_bits log2 of the column count (address side)
     * @param track_aliasing shadow every counter with its last accessor
     *        to measure conflicts (Figure 5); costs one Addr per counter
     */
    PredictorTable(unsigned row_bits, unsigned col_bits,
                   bool track_aliasing = false);

    unsigned rowBits() const { return rowBits_; }
    unsigned colBits() const { return colBits_; }
    std::size_t counterCount() const { return counters.size(); }

    /** Flat counter index for (row, column); masks both coordinates. */
    std::size_t
    index(std::uint64_t row, std::uint64_t col) const
    {
        return static_cast<std::size_t>(
            (bits(row, rowBits_) << colBits_) | bits(col, colBits_));
    }

    /** Read the prediction at (row, col) without touching state. */
    bool
    predict(std::uint64_t row, std::uint64_t col) const
    {
        return counters[index(row, col)].predict();
    }

    /**
     * Predict-and-train one access.
     * @param pc accessing branch address (aliasing attribution)
     * @param all_ones_pattern the first-level pattern in force is the
     *        all-taken pattern (harmless-aliasing classification)
     * @return the prediction made before the counter is trained
     */
    bool
    access(std::uint64_t row, std::uint64_t col, Addr pc, bool taken,
           bool all_ones_pattern)
    {
        std::size_t idx = index(row, col);
        if (aliasing)
            aliasing->access(idx, pc, all_ones_pattern);
        bool prediction = counters[idx].predict();
        counters[idx].update(taken);
        return prediction;
    }

    /** Raw counter state (tests and ablations). */
    const TwoBitCounter &counterAt(std::size_t idx) const;
    TwoBitCounter &counterAt(std::size_t idx);

    /** Aliasing statistics; null unless tracking was requested. */
    const AliasTracker *aliasStats() const { return aliasing.get(); }

    /** All counters to weakly-taken, aliasing trackers cleared. */
    void reset();

  private:
    unsigned rowBits_;
    unsigned colBits_;
    std::vector<TwoBitCounter> counters;
    std::unique_ptr<AliasTracker> aliasing;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_PHT_HH

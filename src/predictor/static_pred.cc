// Static predictors are header-only; this translation unit exists so the
// header participates in the library build (and its include guards and
// syntax are checked even if no test includes it first).
#include "predictor/static_pred.hh"

/**
 * @file
 * The public predictor interface.
 *
 * Simulation is trace-driven, exactly as in the paper: the predictor sees
 * each conditional branch once, produces a prediction from its current
 * state, and is then trained with the actual outcome.  onBranch() does
 * both in one call, which keeps stateful first-level structures (the PAs
 * branch-history table performs its lookup-and-maybe-replace once per
 * instance) trivially correct.
 */

#ifndef BPSIM_PREDICTOR_PREDICTOR_HH
#define BPSIM_PREDICTOR_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "trace/branch_record.hh"

namespace bpsim {

/** A dynamic conditional-branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict-then-train on one conditional branch instance.
     * @param rec the executed branch (must be conditional)
     * @return the direction predicted before training
     */
    virtual bool onBranch(const BranchRecord &rec) = 0;

    /** Forget all state (tables to reset values, histories cleared). */
    virtual void reset() = 0;

    /** Scheme name plus configuration, e.g. "GAs 2^6 x 2^4". */
    virtual std::string name() const = 0;

    /**
     * Number of second-level state machines (two-bit counters), the
     * paper's cost axis.  Zero for predictors without a counter table.
     */
    virtual std::size_t counterCount() const { return 0; }
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_PREDICTOR_HH

/**
 * @file
 * The (2bc-)gskew predictor [Michaud, Seznec, Uhlig 1997] -- the third
 * major dealiased successor to gshare, also directly motivated by the
 * aliasing analyses of this paper and Young/Gloy/Smith.
 *
 * Three counter banks are indexed by three different hash functions of
 * (history, address); the prediction is the majority vote.  Two
 * branches that collide in one bank almost never collide in the other
 * two, so the majority masks any single-bank interference.  Updates
 * follow the partial-update policy: on a correct prediction only the
 * agreeing banks train; on a misprediction all banks train.
 */

#ifndef BPSIM_PREDICTOR_GSKEW_HH
#define BPSIM_PREDICTOR_GSKEW_HH

#include <array>
#include <vector>

#include "common/history_register.hh"
#include "common/sat_counter.hh"
#include "predictor/predictor.hh"

namespace bpsim {

/** Three-bank skewed global-history predictor with majority vote. */
class GskewPredictor : public BranchPredictor
{
  public:
    /**
     * @param bank_bits log2 size of EACH of the three banks
     * @param history_bits global history length
     */
    GskewPredictor(unsigned bank_bits, unsigned history_bits);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override
    {
        return 3 * banks[0].size();
    }

  private:
    /** The three skewing hashes over (history, word index). */
    std::size_t bankIndex(unsigned bank, Addr pc) const;

    unsigned bankBits;
    HistoryRegister history;
    std::array<std::vector<TwoBitCounter>, 3> banks;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_GSKEW_HH

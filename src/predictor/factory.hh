/**
 * @file
 * Name-driven predictor construction for the examples and CLI tools.
 *
 * Spec grammar (case-sensitive scheme names):
 *
 *   addr:<n>                       address-indexed, 2^n counters
 *   GAg:<n>                        GAg, n history bits
 *   GAs:<r>:<c>                    GAs, 2^r rows x 2^c columns
 *   gshare:<r>:<c>                 gshare
 *   path:<r>:<c>[:<g>]             Nair path, g bits/target (default 2)
 *   PAs:<r>:<c>                    PAs, unbounded first level
 *   PAs:<r>:<c>:<entries>[:<way>]  PAs, finite BHT (default 4-way)
 *   SAs:<r>:<c>:<set_bits>         PAs with an untagged first level
 *   agree:<n>[:<h>]                agree predictor (default h = n)
 *   bimode:<d>:<ch>[:<h>]          bi-mode predictor (default h = d)
 *   gskew:<n>[:<h>]                3-bank skewed majority (h = n)
 *   taken | not-taken | btfnt      static baselines
 *   tournament(<spec>,<spec>)[:<n>] combining predictor, 2^n choosers
 */

#ifndef BPSIM_PREDICTOR_FACTORY_HH
#define BPSIM_PREDICTOR_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "predictor/predictor.hh"

namespace bpsim {

/**
 * Build a predictor from a textual spec.  fatal() with a usage message
 * on malformed specs.
 * @param track_aliasing instrument second-level tables when applicable
 */
std::unique_ptr<BranchPredictor>
makePredictor(const std::string &spec, bool track_aliasing = false);

/** One-line usage summary of the spec grammar. */
std::string predictorSpecHelp();

} // namespace bpsim

#endif // BPSIM_PREDICTOR_FACTORY_HH

#include "predictor/tournament.hh"

#include <sstream>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace bpsim {

TournamentPredictor::TournamentPredictor(
    std::unique_ptr<BranchPredictor> first_,
    std::unique_ptr<BranchPredictor> second_, unsigned choice_bits)
    : first(std::move(first_)), second(std::move(second_)),
      choice(std::size_t{1} << choice_bits), choiceBits(choice_bits)
{
    bpsim_assert(first && second, "tournament needs two components");
}

bool
TournamentPredictor::onBranch(const BranchRecord &rec)
{
    std::size_t idx = static_cast<std::size_t>(
        bits(wordIndex(rec.pc), choiceBits));
    bool use_second = choice[idx].predict();

    // Both components always observe the branch (they train in parallel
    // in hardware); each returns its own pre-training prediction.
    bool p1 = first->onBranch(rec);
    bool p2 = second->onBranch(rec);
    bool prediction = use_second ? p2 : p1;

    ++instances;
    if (use_second)
        ++choseSecond;

    // Train the chooser only on disagreement, toward the correct one.
    bool c1 = p1 == rec.taken;
    bool c2 = p2 == rec.taken;
    if (c1 != c2)
        choice[idx].update(c2);
    return prediction;
}

void
TournamentPredictor::reset()
{
    first->reset();
    second->reset();
    std::fill(choice.begin(), choice.end(), TwoBitCounter{});
    instances = 0;
    choseSecond = 0;
}

std::string
TournamentPredictor::name() const
{
    std::ostringstream os;
    os << "tournament(" << first->name() << " | " << second->name()
       << ", 2^" << choiceBits << " choice)";
    return os.str();
}

std::size_t
TournamentPredictor::counterCount() const
{
    return first->counterCount() + second->counterCount() +
        choice.size();
}

double
TournamentPredictor::secondChosenRate() const
{
    return instances ?
        static_cast<double>(choseSecond) /
            static_cast<double>(instances)
        : 0.0;
}

} // namespace bpsim

/**
 * @file
 * McFarling-style combining ("tournament") predictor.
 *
 * The paper's conclusion points at "recent work ... examining ways of
 * combining schemes to provide more effective branch prediction"; this is
 * that extension, built from two arbitrary component predictors and a
 * table of two-bit choice counters indexed by branch address
 * [McFarling92].  The choice counter trains toward whichever component
 * was correct when they disagree.
 */

#ifndef BPSIM_PREDICTOR_TOURNAMENT_HH
#define BPSIM_PREDICTOR_TOURNAMENT_HH

#include <memory>
#include <vector>

#include "common/sat_counter.hh"
#include "predictor/predictor.hh"

namespace bpsim {

/** Two component predictors arbitrated by per-address choice counters. */
class TournamentPredictor : public BranchPredictor
{
  public:
    /**
     * @param first component selected when the choice counter is low
     * @param second component selected when the choice counter is high
     * @param choice_bits log2 of the choice-counter table size
     */
    TournamentPredictor(std::unique_ptr<BranchPredictor> first,
                        std::unique_ptr<BranchPredictor> second,
                        unsigned choice_bits);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override;

    /** Fraction of instances on which the second component was chosen. */
    double secondChosenRate() const;

    const BranchPredictor &firstComponent() const { return *first; }
    const BranchPredictor &secondComponent() const { return *second; }

  private:
    std::unique_ptr<BranchPredictor> first;
    std::unique_ptr<BranchPredictor> second;
    std::vector<TwoBitCounter> choice;
    unsigned choiceBits;
    std::uint64_t instances = 0;
    std::uint64_t choseSecond = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TOURNAMENT_HH

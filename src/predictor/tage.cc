#include "predictor/tage.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

void
TageParams::validate() const
{
    bpsim_assert(baseBits >= 1 && baseBits <= 28,
                 "tage base table size out of range");
    bpsim_assert(entryBits >= 1 && entryBits <= 28,
                 "tage component size out of range");
    bpsim_assert(tagBits >= 2 && tagBits <= 16,
                 "tage tag width out of range (2..16)");
    bpsim_assert(!histories.empty() && histories.size() <= 8,
                 "tage needs 1..8 tagged components");
    for (std::size_t i = 0; i < histories.size(); ++i) {
        bpsim_assert(histories[i] >= 1 && histories[i] <= 64,
                     "tage history length out of range (1..64)");
        bpsim_assert(i == 0 || histories[i] > histories[i - 1],
                     "tage history lengths must be strictly ascending");
    }
}

TageModel::TageModel(const TageParams &params) : params_(params)
{
    params_.validate();
    base_.assign(std::size_t{1} << params_.baseBits, TwoBitCounter{});
    baseTrained_.assign(base_.size(), 0);
    components_.assign(params_.histories.size(),
                       std::vector<TaggedEntry>(
                           std::size_t{1} << params_.entryBits));
}

std::size_t
TageModel::baseIndex(Addr pc) const
{
    return static_cast<std::size_t>(
        wordIndex(pc) & mask(params_.baseBits));
}

std::size_t
TageModel::taggedIndex(unsigned comp, Addr pc, std::uint64_t ghist) const
{
    std::uint64_t hist = ghist & mask(params_.histories[comp]);
    return static_cast<std::size_t>(
        (xorFold(hist, params_.entryBits) ^
         xorFold(wordIndex(pc), params_.entryBits)) &
        mask(params_.entryBits));
}

std::uint16_t
TageModel::taggedTag(unsigned comp, Addr pc, std::uint64_t ghist) const
{
    // The classic TAGE tag: pc fold xor history folded at two widths,
    // the second shifted, so adjacent history lengths decorrelate.
    std::uint64_t hist = ghist & mask(params_.histories[comp]);
    std::uint64_t tag = xorFold(wordIndex(pc), params_.tagBits) ^
                        xorFold(hist, params_.tagBits) ^
                        (xorFold(hist, params_.tagBits - 1) << 1);
    return static_cast<std::uint16_t>(tag & mask(params_.tagBits));
}

TageStep
TageModel::step(Addr pc, std::uint64_t ghist, bool taken)
{
    const unsigned ncomp = static_cast<unsigned>(components_.size());
    std::uint32_t idx[8];
    std::uint16_t tag[8];
    for (unsigned j = 0; j < ncomp; ++j) {
        idx[j] = static_cast<std::uint32_t>(taggedIndex(j, pc, ghist));
        tag[j] = taggedTag(j, pc, ghist);
    }
    return stepWithKeys(baseIndex(pc), idx, 1, tag, 1, taken);
}

TageStep
TageModel::stepWithKeys(std::size_t base_idx, const std::uint32_t *idx_s,
                        std::size_t idx_stride,
                        const std::uint16_t *tag_s,
                        std::size_t tag_stride, bool taken)
{
    const unsigned ncomp = static_cast<unsigned>(components_.size());
    std::size_t idx[8];
    std::uint16_t tag[8];
    for (unsigned j = 0; j < ncomp; ++j) {
        idx[j] = idx_s[j * idx_stride];
        tag[j] = tag_s[j * tag_stride];
    }

    // Provider = longest-history match; altpred = next match below it.
    int provider = -1;
    int alt = -1;
    for (int j = static_cast<int>(ncomp) - 1; j >= 0; --j) {
        const TaggedEntry &e = components_[j][idx[j]];
        if (!e.valid || e.tag != tag[j])
            continue;
        if (provider < 0) {
            provider = j;
        } else {
            alt = j;
            break;
        }
    }

    const std::size_t bidx = base_idx;
    bool basePred = base_[bidx].predict();
    bool altPred = alt >= 0 ? components_[alt][idx[alt]].ctr.predict()
                            : basePred;
    bool pred = provider >= 0
                    ? components_[provider][idx[provider]].ctr.predict()
                    : basePred;

    TageStep out;
    out.prediction = pred;
    out.provider = static_cast<unsigned>(provider + 1);
    out.providerWasFresh = provider < 0 && baseTrained_[bidx] == 0;

    bool correct = pred == taken;

    // Useful counter: tracks whether the provider beats its altpred.
    if (provider >= 0 && pred != altPred) {
        TaggedEntry &e = components_[provider][idx[provider]];
        if (correct) {
            if (e.useful < 3)
                ++e.useful;
        } else if (e.useful > 0) {
            --e.useful;
        }
    }

    // Train the provider (and only the provider).
    if (provider >= 0) {
        components_[provider][idx[provider]].ctr.update(taken);
    } else {
        base_[bidx].update(taken);
        baseTrained_[bidx] = 1;
    }

    // On a mispredict, allocate in a longer-history component: the
    // first not-useful entry above the provider, weakly biased toward
    // the actual outcome; if every candidate is useful, age them all.
    if (!correct && provider + 1 < static_cast<int>(ncomp)) {
        int victim = -1;
        for (unsigned j = static_cast<unsigned>(provider + 1);
             j < ncomp; ++j) {
            const TaggedEntry &e = components_[j][idx[j]];
            if (!e.valid || e.useful == 0) {
                victim = static_cast<int>(j);
                break;
            }
        }
        if (victim >= 0) {
            TaggedEntry &e = components_[victim][idx[victim]];
            e.valid = true;
            e.tag = tag[victim];
            e.ctr.set(taken ? 4 : 3);
            e.useful = 0;
            out.allocated = true;
        } else {
            for (unsigned j = static_cast<unsigned>(provider + 1);
                 j < ncomp; ++j) {
                TaggedEntry &e = components_[j][idx[j]];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    ++updates_;
    return out;
}

void
TageModel::reset()
{
    std::fill(base_.begin(), base_.end(), TwoBitCounter{});
    std::fill(baseTrained_.begin(), baseTrained_.end(), 0);
    for (auto &comp : components_)
        std::fill(comp.begin(), comp.end(), TaggedEntry{});
    updates_ = 0;
}

TagePredictor::TagePredictor(const TageParams &params)
    : model_(params), history_(64)
{
}

bool
TagePredictor::onBranch(const BranchRecord &rec)
{
    bpsim_assert(rec.isConditional(),
                 "predictor fed a non-conditional branch");
    TageStep step = model_.step(rec.pc, history_.value(), rec.taken);
    history_.push(rec.taken);
    return step.prediction;
}

void
TagePredictor::reset()
{
    model_.reset();
    history_.set(0);
}

std::string
TagePredictor::name() const
{
    const TageParams &p = model_.params();
    std::ostringstream os;
    os << "tage " << p.histories.size() << "x2^" << p.entryBits
       << " tag" << p.tagBits << " (h";
    for (std::size_t i = 0; i < p.histories.size(); ++i)
        os << (i ? "," : "") << p.histories[i];
    os << ") + 2^" << p.baseBits << " base";
    return os.str();
}

} // namespace bpsim

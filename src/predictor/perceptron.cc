#include "predictor/perceptron.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

void
PerceptronParams::validate() const
{
    bpsim_assert(historyBits >= 1 && historyBits <= 64,
                 "perceptron history length out of range (1..64)");
    bpsim_assert(entryBits <= 28,
                 "perceptron table size out of range");
    bpsim_assert(tables >= 2 && tables <= 16,
                 "perceptron needs 2..16 tables (bias + history)");
}

PerceptronModel::PerceptronModel(const PerceptronParams &params)
    : params_(params)
{
    params_.validate();
    theta_ = static_cast<int>((193u * params_.historyBits) / 100u) + 14;
    tables_.assign(params_.tables,
                   std::vector<int>(std::size_t{1} << params_.entryBits,
                                    0));
}

std::size_t
PerceptronModel::tableIndex(unsigned table, Addr pc,
                            std::uint64_t ghist) const
{
    if (table == 0)
        return static_cast<std::size_t>(
            wordIndex(pc) & mask(params_.entryBits));
    // Tables 1..T-1 each hash one balanced segment of the history:
    // table t sees bits [lo, hi) with the boundaries spread evenly so
    // no segment is starved when h does not divide T-1.
    const unsigned nseg = params_.tables - 1;
    const unsigned lo = (table - 1) * params_.historyBits / nseg;
    const unsigned hi = table * params_.historyBits / nseg;
    std::uint64_t seg = bitsAt(ghist, lo, hi - lo);
    return static_cast<std::size_t>(
        (xorFold(seg, params_.entryBits) ^
         xorFold(wordIndex(pc), params_.entryBits)) &
        mask(params_.entryBits));
}

PerceptronStep
PerceptronModel::step(Addr pc, std::uint64_t ghist, bool taken)
{
    std::size_t idx[16];
    int sum = 0;
    for (unsigned t = 0; t < params_.tables; ++t) {
        idx[t] = tableIndex(t, pc, ghist);
        sum += tables_[t][idx[t]];
    }

    PerceptronStep out;
    out.sum = sum;
    out.prediction = sum >= 0;

    int magnitude = sum < 0 ? -sum : sum;
    if (out.prediction != taken || magnitude <= theta_) {
        for (unsigned t = 0; t < params_.tables; ++t) {
            int &w = tables_[t][idx[t]];
            w += taken ? 1 : -1;
            if (w > kWeightMax)
                w = kWeightMax;
            if (w < kWeightMin)
                w = kWeightMin;
        }
        out.trained = true;
        ++updates_;
    }
    return out;
}

void
PerceptronModel::reset()
{
    for (auto &table : tables_)
        std::fill(table.begin(), table.end(), 0);
    updates_ = 0;
}

PerceptronPredictor::PerceptronPredictor(const PerceptronParams &params)
    : model_(params), history_(64)
{
}

bool
PerceptronPredictor::onBranch(const BranchRecord &rec)
{
    bpsim_assert(rec.isConditional(),
                 "predictor fed a non-conditional branch");
    PerceptronStep step =
        model_.step(rec.pc, history_.value(), rec.taken);
    history_.push(rec.taken);
    return step.prediction;
}

void
PerceptronPredictor::reset()
{
    model_.reset();
    history_.set(0);
}

std::string
PerceptronPredictor::name() const
{
    const PerceptronParams &p = model_.params();
    std::ostringstream os;
    os << "perceptron " << p.tables << "x2^" << p.entryBits
       << " (h" << p.historyBits << ", theta " << model_.threshold()
       << ")";
    return os.str();
}

} // namespace bpsim

#include "predictor/gskew.hh"

#include <algorithm>
#include <sstream>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace bpsim {

GskewPredictor::GskewPredictor(unsigned bank_bits,
                               unsigned history_bits)
    : bankBits(bank_bits), history(history_bits)
{
    bpsim_assert(bank_bits >= 1 && bank_bits <= 28,
                 "gskew bank size out of range");
    for (auto &bank : banks)
        bank.assign(std::size_t{1} << bank_bits, TwoBitCounter{});
}

std::size_t
GskewPredictor::bankIndex(unsigned bank, Addr pc) const
{
    // The original design uses H, H o sigma, H o sigma^2 built from a
    // one-bit-diffusion function; distinct odd multipliers give the
    // same pairwise-decorrelation property and stay readable.
    static constexpr std::uint64_t multipliers[3] = {
        0x9E3779B97F4A7C15ULL, // golden-ratio mix
        0xC2B2AE3D27D4EB4FULL, // murmur3 finalizer constant
        0x165667B19E3779F9ULL, // xxhash constant
    };
    std::uint64_t key = history.value() ^ wordIndex(pc);
    std::uint64_t mixed = key * multipliers[bank];
    // Take the top bits: the multiply pushes entropy upward.
    return static_cast<std::size_t>(mixed >> (64 - bankBits));
}

bool
GskewPredictor::onBranch(const BranchRecord &rec)
{
    bpsim_assert(rec.isConditional(),
                 "predictor fed a non-conditional branch");
    std::size_t idx[3];
    bool vote[3];
    int ayes = 0;
    for (unsigned b = 0; b < 3; ++b) {
        idx[b] = bankIndex(b, rec.pc);
        vote[b] = banks[b][idx[b]].predict();
        ayes += vote[b];
    }
    bool prediction = ayes >= 2;

    // Partial update: agreeing banks train on a correct prediction;
    // every bank trains on a misprediction.
    bool correct = prediction == rec.taken;
    for (unsigned b = 0; b < 3; ++b) {
        if (!correct || vote[b] == prediction)
            banks[b][idx[b]].update(rec.taken);
    }

    history.push(rec.taken);
    return prediction;
}

void
GskewPredictor::reset()
{
    for (auto &bank : banks)
        std::fill(bank.begin(), bank.end(), TwoBitCounter{});
    history.set(0);
}

std::string
GskewPredictor::name() const
{
    std::ostringstream os;
    os << "gskew 3x2^" << bankBits << " (h" << history.width() << ")";
    return os.str();
}

} // namespace bpsim

/**
 * @file
 * First-level row-selection mechanisms for the general two-level model.
 *
 * The row-selection box of Figure 1: given the branch being predicted, it
 * produces the row index into the second-level table, and afterwards is
 * told the outcome so it can update whatever history it keeps.  The five
 * selectors here, combined with a column split, realise every scheme the
 * paper simulates:
 *
 *   NullSelector              -> address-indexed tables (one row)
 *   GlobalHistorySelector     -> GAg / GAs
 *   GshareSelector            -> gshare (multi-column generalisation)
 *   PathSelector              -> Nair's path-based scheme
 *   PerfectPerAddressSelector -> PAs with unbounded first level
 *   BhtPerAddressSelector     -> PAs with a real, finite BHT
 */

#ifndef BPSIM_PREDICTOR_ROW_SELECTOR_HH
#define BPSIM_PREDICTOR_ROW_SELECTOR_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/history_register.hh"
#include "predictor/bht.hh"
#include "trace/branch_record.hh"

namespace bpsim {

/** First-level row-selection box. */
class RowSelector
{
  public:
    virtual ~RowSelector() = default;

    /**
     * Row index for this branch instance (caller masks to its row-bit
     * width).  May mutate first-level state (a finite BHT allocates on
     * miss here).
     */
    virtual std::uint64_t selectRow(const BranchRecord &rec) = 0;

    /** Record the resolved outcome (called after selectRow). */
    virtual void recordOutcome(const BranchRecord &rec) = 0;

    /**
     * Whether the history pattern produced by the last selectRow() for
     * this branch was the all-taken pattern of @p row_bits length --
     * the paper's harmless-aliasing class.  Selectors without an outcome
     * history (Null, Path) return false.
     */
    virtual bool patternAllOnes(const BranchRecord &rec,
                                unsigned row_bits) const = 0;

    /** Short scheme prefix, e.g. "GAs". */
    virtual std::string schemeName() const = 0;

    /** Clear all first-level state. */
    virtual void reset() = 0;
};

/** Single-row selection: the address-indexed ("bimodal") degenerate. */
class NullSelector : public RowSelector
{
  public:
    std::uint64_t selectRow(const BranchRecord &) override { return 0; }
    void recordOutcome(const BranchRecord &) override {}
    bool patternAllOnes(const BranchRecord &, unsigned) const override
    {
        return false;
    }
    std::string schemeName() const override { return "addr"; }
    void reset() override {}
};

/** Global outcome history register: GAg (no columns) and GAs. */
class GlobalHistorySelector : public RowSelector
{
  public:
    /** @param history_bits register width (>= the largest row split). */
    explicit GlobalHistorySelector(unsigned history_bits);

    std::uint64_t selectRow(const BranchRecord &) override
    {
        return history.value();
    }
    void recordOutcome(const BranchRecord &rec) override
    {
        history.push(rec.taken);
    }
    bool patternAllOnes(const BranchRecord &,
                        unsigned row_bits) const override
    {
        return row_bits > 0 && history.low(row_bits) == mask(row_bits);
    }
    std::string schemeName() const override { return "GAs"; }
    void reset() override { history.set(0); }

    std::uint64_t rawHistory() const { return history.value(); }

  private:
    HistoryRegister history;
};

/** Global history XORed with the branch address: gshare. */
class GshareSelector : public RowSelector
{
  public:
    explicit GshareSelector(unsigned history_bits);

    std::uint64_t selectRow(const BranchRecord &rec) override
    {
        return history.value() ^ wordIndex(rec.pc);
    }
    void recordOutcome(const BranchRecord &rec) override
    {
        history.push(rec.taken);
    }
    bool patternAllOnes(const BranchRecord &,
                        unsigned row_bits) const override
    {
        // Classification keys on the underlying outcome pattern, not the
        // XORed row index.
        return row_bits > 0 && history.low(row_bits) == mask(row_bits);
    }
    std::string schemeName() const override { return "gshare"; }
    void reset() override { history.set(0); }

  private:
    HistoryRegister history;
};

/**
 * Nair's path-based selection: the register concatenates the low
 * bitsPerTarget bits of the executed successor address of each
 * conditional branch (target when taken, fall-through otherwise), so it
 * encodes the actual path leading up to the branch.
 */
class PathSelector : public RowSelector
{
  public:
    /**
     * @param history_bits register width
     * @param bits_per_target address bits contributed per branch
     */
    PathSelector(unsigned history_bits, unsigned bits_per_target);

    std::uint64_t selectRow(const BranchRecord &) override
    {
        return history.value();
    }
    void recordOutcome(const BranchRecord &rec) override
    {
        Addr successor = rec.taken ? rec.target : rec.pc + 4;
        history.pushBits(wordIndex(successor), bitsPerTarget);
    }
    bool patternAllOnes(const BranchRecord &, unsigned) const override
    {
        return false; // path codes are not outcome patterns
    }
    std::string schemeName() const override { return "path"; }
    void reset() override { history.set(0); }

    unsigned targetBits() const { return bitsPerTarget; }

  private:
    HistoryRegister history;
    unsigned bitsPerTarget;
};

/** PAs first level with one history register per distinct branch. */
class PerfectPerAddressSelector : public RowSelector
{
  public:
    explicit PerfectPerAddressSelector(unsigned history_bits);

    std::uint64_t selectRow(const BranchRecord &rec) override;
    void recordOutcome(const BranchRecord &rec) override;
    bool patternAllOnes(const BranchRecord &rec,
                        unsigned row_bits) const override;
    std::string schemeName() const override { return "PAs(inf)"; }
    void reset() override { table.clear(); }

    /** Distinct branches tracked so far. */
    std::size_t trackedBranches() const { return table.size(); }

  private:
    unsigned historyBits;
    std::unordered_map<Addr, HistoryRegister> table;
};

/**
 * SAs first level: history registers selected by low address bits,
 * UNTAGGED (Yeh & Patt's S variant).  Distinct branches mapping to the
 * same register silently share and pollute it -- exactly the
 * first-level aliasing the paper contrasts with the tag-checked BHT.
 */
class SetPerAddressSelector : public RowSelector
{
  public:
    /**
     * @param set_bits log2 number of history registers
     * @param history_bits width of each register
     */
    SetPerAddressSelector(unsigned set_bits, unsigned history_bits);

    std::uint64_t selectRow(const BranchRecord &rec) override
    {
        return regs[slotOf(rec.pc)].value();
    }
    void recordOutcome(const BranchRecord &rec) override
    {
        regs[slotOf(rec.pc)].push(rec.taken);
    }
    bool patternAllOnes(const BranchRecord &rec,
                        unsigned row_bits) const override
    {
        return row_bits > 0 &&
            regs[slotOf(rec.pc)].low(row_bits) == mask(row_bits);
    }
    std::string schemeName() const override;
    void reset() override;

    std::size_t registerCount() const { return regs.size(); }

  private:
    std::size_t slotOf(Addr pc) const
    {
        return static_cast<std::size_t>(bits(wordIndex(pc), setBits));
    }

    unsigned setBits;
    unsigned historyBits;
    std::vector<HistoryRegister> regs;
};

/** PAs first level backed by a finite set-associative BHT. */
class BhtPerAddressSelector : public RowSelector
{
  public:
    BhtPerAddressSelector(std::size_t entries, unsigned assoc,
                          unsigned history_bits);

    std::uint64_t selectRow(const BranchRecord &rec) override
    {
        return bht.visit(rec.pc).history;
    }
    void recordOutcome(const BranchRecord &rec) override
    {
        bht.recordOutcome(rec.pc, rec.taken);
    }
    bool patternAllOnes(const BranchRecord &rec,
                        unsigned row_bits) const override;
    std::string schemeName() const override;
    void reset() override { bht.reset(); }

    const SetAssocBht &table() const { return bht; }

  private:
    SetAssocBht bht;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_ROW_SELECTOR_HH

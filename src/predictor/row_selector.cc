#include "predictor/row_selector.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

GlobalHistorySelector::GlobalHistorySelector(unsigned history_bits)
    : history(history_bits)
{
    bpsim_assert(history_bits <= 64, "history too wide");
}

GshareSelector::GshareSelector(unsigned history_bits)
    : history(history_bits)
{
    bpsim_assert(history_bits <= 64, "history too wide");
}

PathSelector::PathSelector(unsigned history_bits,
                           unsigned bits_per_target)
    : history(history_bits), bitsPerTarget(bits_per_target)
{
    bpsim_assert(bits_per_target >= 1 && bits_per_target <= 16,
                 "bits per target out of range");
}

PerfectPerAddressSelector::PerfectPerAddressSelector(unsigned history_bits)
    : historyBits(history_bits)
{
    bpsim_assert(history_bits <= 64, "history too wide");
}

std::uint64_t
PerfectPerAddressSelector::selectRow(const BranchRecord &rec)
{
    auto it = table.find(rec.pc);
    if (it == table.end()) {
        it = table.emplace(rec.pc, HistoryRegister(historyBits)).first;
    }
    return it->second.value();
}

void
PerfectPerAddressSelector::recordOutcome(const BranchRecord &rec)
{
    auto it = table.find(rec.pc);
    bpsim_assert(it != table.end(),
                 "recordOutcome() without a preceding selectRow()");
    it->second.push(rec.taken);
}

bool
PerfectPerAddressSelector::patternAllOnes(const BranchRecord &rec,
                                          unsigned row_bits) const
{
    auto it = table.find(rec.pc);
    if (it == table.end() || row_bits == 0)
        return false;
    return it->second.low(row_bits) == mask(row_bits);
}

SetPerAddressSelector::SetPerAddressSelector(unsigned set_bits,
                                             unsigned history_bits)
    : setBits(set_bits), historyBits(history_bits),
      regs(std::size_t{1} << set_bits, HistoryRegister(history_bits))
{
    bpsim_assert(set_bits <= 24, "SAs first level unreasonably large");
}

std::string
SetPerAddressSelector::schemeName() const
{
    std::ostringstream os;
    os << "SAs(" << regs.size() << "r)";
    return os.str();
}

void
SetPerAddressSelector::reset()
{
    std::fill(regs.begin(), regs.end(), HistoryRegister(historyBits));
}

BhtPerAddressSelector::BhtPerAddressSelector(std::size_t entries,
                                             unsigned assoc,
                                             unsigned history_bits)
    : bht(entries, assoc, history_bits)
{
}

bool
BhtPerAddressSelector::patternAllOnes(const BranchRecord &rec,
                                      unsigned row_bits) const
{
    auto hist = bht.peek(rec.pc);
    if (!hist || row_bits == 0)
        return false;
    return bits(*hist, row_bits) == mask(row_bits);
}

std::string
BhtPerAddressSelector::schemeName() const
{
    std::ostringstream os;
    os << "PAs(" << bht.entryCount() << "e/" << bht.associativity()
       << "w)";
    return os.str();
}

} // namespace bpsim

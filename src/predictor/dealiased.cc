#include "predictor/dealiased.hh"

#include <algorithm>
#include <sstream>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace bpsim {

AgreePredictor::AgreePredictor(unsigned index_bits,
                               unsigned history_bits)
    : indexBits(index_bits), history(history_bits),
      counters(std::size_t{1} << index_bits,
               // Initialise toward "agree", the common case.
               TwoBitCounter(TwoBitCounter::maxValue))
{
    bpsim_assert(index_bits <= 30, "agree table unreasonably large");
}

std::size_t
AgreePredictor::indexOf(Addr pc) const
{
    return static_cast<std::size_t>(
        bits(history.value() ^ wordIndex(pc), indexBits));
}

bool
AgreePredictor::onBranch(const BranchRecord &rec)
{
    bpsim_assert(rec.isConditional(),
                 "predictor fed a non-conditional branch");
    // Capture the biasing bit on first encounter (the "first outcome"
    // policy of the original design).
    auto it = biasBits.find(rec.pc);
    bool first_encounter = it == biasBits.end();
    bool bias = first_encounter ? rec.taken : it->second;

    std::size_t idx = indexOf(rec.pc);
    bool agrees = counters[idx].predict();
    bool prediction = agrees ? bias : !bias;
    if (first_encounter) {
        biasBits.emplace(rec.pc, rec.taken);
        // With the bias set from the actual outcome the prediction for
        // this instance is the outcome itself in hardware terms; keep
        // the pre-capture prediction to stay conservative.
    }

    counters[idx].update(rec.taken == bias);
    history.push(rec.taken);
    return prediction;
}

void
AgreePredictor::reset()
{
    std::fill(counters.begin(), counters.end(),
              TwoBitCounter(TwoBitCounter::maxValue));
    biasBits.clear();
    history.set(0);
}

std::string
AgreePredictor::name() const
{
    std::ostringstream os;
    os << "agree 2^" << indexBits << " (h" << history.width() << ")";
    return os.str();
}

BiModePredictor::BiModePredictor(unsigned direction_bits,
                                 unsigned choice_bits,
                                 unsigned history_bits)
    : directionBits(direction_bits), choiceBits(choice_bits),
      history(history_bits),
      taken(std::size_t{1} << direction_bits,
            TwoBitCounter(TwoBitCounter::maxValue)),
      notTaken(std::size_t{1} << direction_bits, TwoBitCounter(0)),
      choice(std::size_t{1} << choice_bits)
{
    bpsim_assert(direction_bits <= 30 && choice_bits <= 30,
                 "bi-mode tables unreasonably large");
}

bool
BiModePredictor::onBranch(const BranchRecord &rec)
{
    bpsim_assert(rec.isConditional(),
                 "predictor fed a non-conditional branch");
    auto choice_idx = static_cast<std::size_t>(
        bits(wordIndex(rec.pc), choiceBits));
    auto dir_idx = static_cast<std::size_t>(
        bits(history.value() ^ wordIndex(rec.pc), directionBits));

    bool use_taken_side = choice[choice_idx].predict();
    auto &side = use_taken_side ? taken : notTaken;
    bool prediction = side[dir_idx].predict();

    // Update policy from the original design: the selected direction
    // counter always trains; the choice counter trains except when it
    // steered away from a direction table that was nevertheless right.
    side[dir_idx].update(rec.taken);
    if (!(prediction == rec.taken &&
          use_taken_side != rec.taken)) {
        choice[choice_idx].update(rec.taken);
    }

    history.push(rec.taken);
    return prediction;
}

void
BiModePredictor::reset()
{
    std::fill(taken.begin(), taken.end(),
              TwoBitCounter(TwoBitCounter::maxValue));
    std::fill(notTaken.begin(), notTaken.end(), TwoBitCounter(0));
    std::fill(choice.begin(), choice.end(), TwoBitCounter{});
    history.set(0);
}

std::string
BiModePredictor::name() const
{
    std::ostringstream os;
    os << "bimode 2x2^" << directionBits << " + 2^" << choiceBits
       << " choice (h" << history.width() << ")";
    return os.str();
}

} // namespace bpsim

#include "predictor/pht.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bpsim {

PredictorTable::PredictorTable(unsigned row_bits, unsigned col_bits,
                               bool track_aliasing)
    : rowBits_(row_bits), colBits_(col_bits)
{
    bpsim_assert(row_bits + col_bits <= 30,
                 "predictor table of 2^", row_bits + col_bits,
                 " counters is unreasonably large");
    counters.assign(std::size_t{1} << (row_bits + col_bits),
                    TwoBitCounter{});
    if (track_aliasing)
        aliasing = std::make_unique<AliasTracker>(counters.size());
}

const TwoBitCounter &
PredictorTable::counterAt(std::size_t idx) const
{
    bpsim_assert(idx < counters.size(), "counter index out of range");
    return counters[idx];
}

TwoBitCounter &
PredictorTable::counterAt(std::size_t idx)
{
    bpsim_assert(idx < counters.size(), "counter index out of range");
    return counters[idx];
}

void
PredictorTable::reset()
{
    std::fill(counters.begin(), counters.end(), TwoBitCounter{});
    if (aliasing)
        aliasing->reset();
}

} // namespace bpsim

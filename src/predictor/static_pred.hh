/**
 * @file
 * Static (history-free) baseline predictors.  Not evaluated in the
 * paper's figures but indispensable as sanity floors in tests and the
 * examples: any dynamic scheme should beat always-taken, and BTFNT
 * (backward-taken / forward-not-taken) is the classic compiler-less
 * static heuristic.
 */

#ifndef BPSIM_PREDICTOR_STATIC_PRED_HH
#define BPSIM_PREDICTOR_STATIC_PRED_HH

#include "predictor/predictor.hh"

namespace bpsim {

/** Predicts a fixed direction for every branch. */
class FixedPredictor : public BranchPredictor
{
  public:
    explicit FixedPredictor(bool predict_taken)
        : taken(predict_taken)
    {}

    bool onBranch(const BranchRecord &) override { return taken; }
    void reset() override {}
    std::string name() const override
    {
        return taken ? "always-taken" : "always-not-taken";
    }

  private:
    bool taken;
};

/** Backward taken, forward not taken (loops loop; ifs fall through). */
class BtfntPredictor : public BranchPredictor
{
  public:
    bool onBranch(const BranchRecord &rec) override
    {
        return rec.target < rec.pc;
    }
    void reset() override {}
    std::string name() const override { return "btfnt"; }
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_STATIC_PRED_HH

#include "predictor/bht.hh"

#include "common/logging.hh"

namespace bpsim {

const char *
bhtResetPolicyName(BhtResetPolicy policy)
{
    switch (policy) {
      case BhtResetPolicy::C3ffPrefix: return "0xC3FF-prefix";
      case BhtResetPolicy::Zeros: return "zeros";
      case BhtResetPolicy::Ones: return "ones";
      case BhtResetPolicy::Hold: return "hold";
    }
    return "?";
}

SetAssocBht::SetAssocBht(std::size_t entry_count, unsigned assoc_,
                         unsigned history_bits, BhtResetPolicy policy_)
    : assoc(assoc_), historyBits_(history_bits), policy(policy_)
{
    bpsim_assert(entry_count > 0 && isPowerOfTwo(entry_count),
                 "BHT entry count must be a power of two, got ",
                 entry_count);
    bpsim_assert(assoc_ > 0 && entry_count % assoc_ == 0,
                 "associativity ", assoc_, " must divide entry count ",
                 entry_count);
    std::size_t sets = entry_count / assoc_;
    bpsim_assert(isPowerOfTwo(sets),
                 "BHT set count must be a power of two");
    setIndexBits = exactLog2(sets);
    entries.assign(entry_count,
                   Entry{false, 0, HistoryRegister(history_bits), 0});
}

std::size_t
SetAssocBht::setBase(Addr pc) const
{
    std::uint64_t set = bits(wordIndex(pc), setIndexBits);
    return static_cast<std::size_t>(set) * assoc;
}

std::uint64_t
SetAssocBht::tagOf(Addr pc) const
{
    return wordIndex(pc) >> setIndexBits;
}

SetAssocBht::Entry *
SetAssocBht::find(Addr pc)
{
    std::size_t base = setBase(pc);
    std::uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag)
            return &e;
    }
    return nullptr;
}

BhtLookup
SetAssocBht::visit(Addr pc)
{
    ++visits_;
    ++stampCounter;

    if (Entry *hit = find(pc)) {
        hit->stamp = stampCounter;
        return BhtLookup{hit->history.value(), false};
    }

    ++misses_;
    // Choose a victim: an invalid way if any, else the LRU way.
    std::size_t base = setBase(pc);
    Entry *victim = &entries[base];
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tagOf(pc);
    victim->stamp = stampCounter;
    if (policy != BhtResetPolicy::Hold)
        victim->history.set(resetValue());
    return BhtLookup{victim->history.value(), true};
}

void
SetAssocBht::recordOutcome(Addr pc, bool taken)
{
    Entry *e = find(pc);
    bpsim_assert(e != nullptr,
                 "recordOutcome() without a preceding visit()");
    e->history.push(taken);
}

std::uint64_t
SetAssocBht::resetValue() const
{
    switch (policy) {
      case BhtResetPolicy::C3ffPrefix:
        return c3ffPrefix(historyBits_);
      case BhtResetPolicy::Zeros:
        return 0;
      case BhtResetPolicy::Ones:
        return mask(historyBits_);
      case BhtResetPolicy::Hold:
        break;
    }
    bpsim_panic("resetValue() with no-reset policy");
}

std::optional<std::uint64_t>
SetAssocBht::peek(Addr pc) const
{
    std::size_t base = setBase(pc);
    std::uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < assoc; ++w) {
        const Entry &e = entries[base + w];
        if (e.valid && e.tag == tag)
            return e.history.value();
    }
    return std::nullopt;
}

void
SetAssocBht::reset()
{
    for (auto &e : entries) {
        e.valid = false;
        e.tag = 0;
        e.history = HistoryRegister(historyBits_);
        e.stamp = 0;
    }
    stampCounter = 0;
    visits_ = 0;
    misses_ = 0;
}

} // namespace bpsim

/**
 * @file
 * A compact tagged-geometric-history predictor (TAGE) [Seznec, Michaud
 * 2006] -- the scheme that displaced the two-level family this paper
 * studies, precisely because tagging changes the aliasing story.
 *
 * A bimodal base table backs N tagged components, each indexed by a
 * geometrically longer slice of global history.  The longest-history
 * component whose tag matches provides the prediction; a tag mismatch
 * falls through instead of silently training a stranger's counter, so
 * destructive aliasing is traded for allocation (cold/capacity) misses.
 * The interference machinery in src/sim/interference.* relies on that
 * distinction: a miss on a freshly allocated entry is a cold miss, not
 * aliasing.
 *
 * The model is deliberately compact and fully deterministic so the naive
 * reference model in src/verify/ can mirror it step for step:
 *  - SatCounter<3> prediction counters, 2-bit useful counters;
 *  - allocation picks the FIRST entry with u==0 above the provider
 *    (no randomized victim choice), else decrements every u above;
 *  - no periodic useful-bit reset sweep.
 */

#ifndef BPSIM_PREDICTOR_TAGE_HH
#define BPSIM_PREDICTOR_TAGE_HH

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/history_register.hh"
#include "common/sat_counter.hh"
#include "predictor/predictor.hh"

namespace bpsim {

/** Geometry of a TageModel. */
struct TageParams
{
    /** log2 entries of the bimodal base table. */
    unsigned baseBits = 12;
    /** log2 entries of EACH tagged component. */
    unsigned entryBits = 10;
    /** Tag width in bits (2..16). */
    unsigned tagBits = 8;
    /** History length per tagged component, strictly ascending, 1..64. */
    std::vector<unsigned> histories = {4, 8, 16, 32};

    /** bpsim_assert that the geometry is well-formed. */
    void validate() const;
};

/** What one predict-and-train step did (analysis and test hooks). */
struct TageStep
{
    /** The final prediction. */
    bool prediction = false;
    /** Provider component, 1-based; 0 means the base table provided. */
    unsigned provider = 0;
    /** The providing entry had never been trained before this step. */
    bool providerWasFresh = false;
    /** This step (re)allocated a tagged entry after a mispredict. */
    bool allocated = false;
};

/**
 * The replayable TAGE core: all state plus a step() that consumes an
 * externally maintained global history.  Both the online TagePredictor
 * and the sweep engine's per-config replay drive this one class, so the
 * two paths cannot drift.
 */
class TageModel
{
  public:
    /** One tagged-component entry (exposed for unit tests). */
    struct TaggedEntry
    {
        SatCounter<3> ctr{};
        std::uint16_t tag = 0;
        std::uint8_t useful = 0;
        bool valid = false;
    };

    explicit TageModel(const TageParams &params);

    /**
     * Predict and train on one branch.
     *
     * @param pc     branch address (word-aligned)
     * @param ghist  global outcome history BEFORE this branch, bit 0
     *               newest (HistoryRegister / PreparedTrace convention)
     * @param taken  the actual outcome
     */
    TageStep step(Addr pc, std::uint64_t ghist, bool taken);

    /**
     * Predict and train with externally computed hash keys: the base
     * index plus one (entry index, tag) pair per tagged component,
     * read strided so callers can keep them in component-major
     * structure-of-arrays blocks.  The batched model-lane replay
     * (sim/sweep.cc) computes the keys ONCE per branch for a whole
     * group of models sharing tagBits/histories and hands each model
     * its slice; step() itself delegates here after hashing, so the
     * two paths share every line of predict/train/allocate logic and
     * cannot drift.  The keys must equal baseIndex()/taggedIndex()/
     * taggedTag() for the stepped branch -- pinned by the model-batch
     * differential tests.
     *
     * @param base_idx    baseIndex(pc)
     * @param idx         idx[j * idx_stride] = taggedIndex(j, pc, ghist)
     * @param idx_stride  element stride between components
     * @param tag         tag[j * tag_stride] = taggedTag(j, pc, ghist)
     * @param tag_stride  element stride between components
     * @param taken       the actual outcome
     */
    TageStep stepWithKeys(std::size_t base_idx,
                          const std::uint32_t *idx,
                          std::size_t idx_stride,
                          const std::uint16_t *tag,
                          std::size_t tag_stride, bool taken);

    void reset();

    const TageParams &params() const { return params_; }

    /** Total prediction state: base counters + tagged entries. */
    std::size_t counterCount() const
    {
        return base_.size() + components_.size() * components_[0].size();
    }

    /** Number of step() calls since construction/reset. */
    std::uint64_t updates() const { return updates_; }

    /** @name Deterministic hash hooks, exposed for unit tests. */
    ///@{
    std::size_t baseIndex(Addr pc) const;
    std::size_t taggedIndex(unsigned comp, Addr pc,
                            std::uint64_t ghist) const;
    std::uint16_t taggedTag(unsigned comp, Addr pc,
                            std::uint64_t ghist) const;
    const TaggedEntry &entryAt(unsigned comp, std::size_t idx) const
    {
        return components_[comp][idx];
    }
    ///@}

  private:
    TageParams params_;
    std::vector<TwoBitCounter> base_;
    /** Base entries that have been trained at least once. */
    std::vector<std::uint8_t> baseTrained_;
    std::vector<std::vector<TaggedEntry>> components_;
    std::uint64_t updates_ = 0;
};

/** The online (BranchPredictor) wrapper: model + its own history. */
class TagePredictor : public BranchPredictor
{
  public:
    explicit TagePredictor(const TageParams &params);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override
    {
        return model_.counterCount();
    }

    const TageModel &model() const { return model_; }

  private:
    TageModel model_;
    HistoryRegister history_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TAGE_HH

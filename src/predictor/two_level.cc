#include "predictor/two_level.hh"

#include <sstream>

#include "common/logging.hh"

namespace bpsim {

TwoLevelPredictor::TwoLevelPredictor(
    std::unique_ptr<RowSelector> selector_, unsigned row_bits,
    unsigned col_bits, bool track_aliasing)
    : selector(std::move(selector_)),
      table(row_bits, col_bits, track_aliasing)
{
    bpsim_assert(selector != nullptr, "two-level predictor needs a "
                 "row selector");
}

bool
TwoLevelPredictor::onBranch(const BranchRecord &rec)
{
    bpsim_assert(rec.isConditional(),
                 "predictor fed a non-conditional branch");
    std::uint64_t row = selector->selectRow(rec);
    std::uint64_t col = wordIndex(rec.pc);
    bool all_ones = table.aliasStats() != nullptr &&
        selector->patternAllOnes(rec, table.rowBits());
    bool prediction =
        table.access(row, col, rec.pc, rec.taken, all_ones);
    selector->recordOutcome(rec);
    return prediction;
}

void
TwoLevelPredictor::reset()
{
    selector->reset();
    table.reset();
}

std::string
TwoLevelPredictor::name() const
{
    std::ostringstream os;
    os << selector->schemeName() << " 2^" << table.rowBits() << " x 2^"
       << table.colBits();
    return os.str();
}

std::unique_ptr<TwoLevelPredictor>
makeAddressIndexed(unsigned index_bits, bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<NullSelector>(), 0, index_bits, track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makeGAg(unsigned history_bits, bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<GlobalHistorySelector>(history_bits),
        history_bits, 0, track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makeGAs(unsigned row_bits, unsigned col_bits, bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<GlobalHistorySelector>(row_bits), row_bits,
        col_bits, track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makeGshare(unsigned row_bits, unsigned col_bits, bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<GshareSelector>(row_bits), row_bits, col_bits,
        track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makePath(unsigned row_bits, unsigned col_bits, unsigned bits_per_target,
         bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<PathSelector>(row_bits, bits_per_target),
        row_bits, col_bits, track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makePAsPerfect(unsigned row_bits, unsigned col_bits, bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<PerfectPerAddressSelector>(row_bits), row_bits,
        col_bits, track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makeSAs(unsigned row_bits, unsigned col_bits, unsigned set_bits,
        bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<SetPerAddressSelector>(set_bits, row_bits),
        row_bits, col_bits, track_aliasing);
}

std::unique_ptr<TwoLevelPredictor>
makePAsFinite(unsigned row_bits, unsigned col_bits,
              std::size_t bht_entries, unsigned bht_assoc,
              bool track_aliasing)
{
    return std::make_unique<TwoLevelPredictor>(
        std::make_unique<BhtPerAddressSelector>(bht_entries, bht_assoc,
                                                row_bits),
        row_bits, col_bits, track_aliasing);
}

} // namespace bpsim

#include "predictor/factory.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "predictor/dealiased.hh"
#include "predictor/gskew.hh"
#include "predictor/perceptron.hh"
#include "predictor/static_pred.hh"
#include "predictor/tage.hh"
#include "predictor/tournament.hh"
#include "predictor/two_level.hh"

namespace bpsim {

namespace {

/** Split "a:b:c" into fields. */
std::vector<std::string>
splitColon(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        auto colon = text.find(':', start);
        if (colon == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
    return out;
}

unsigned
parseUnsigned(const std::string &field, const std::string &spec)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(field.c_str(), &end, 0);
    if (end == field.c_str() || *end != '\0' || v > 1'000'000'000UL)
        bpsim_fatal("bad number '", field, "' in predictor spec '", spec,
                    "'\n", predictorSpecHelp());
    return static_cast<unsigned>(v);
}

/** Parse "4,8,16,32" into numbers (TAGE history-length lists). */
std::vector<unsigned>
parseUnsignedList(const std::string &field, const std::string &spec)
{
    std::vector<unsigned> out;
    std::size_t start = 0;
    while (start <= field.size()) {
        auto comma = field.find(',', start);
        std::string item = comma == std::string::npos
                               ? field.substr(start)
                               : field.substr(start, comma - start);
        out.push_back(parseUnsigned(item, spec));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

void
requireFields(const std::vector<std::string> &fields, std::size_t lo,
              std::size_t hi, const std::string &spec)
{
    if (fields.size() < lo || fields.size() > hi)
        bpsim_fatal("wrong number of fields in predictor spec '", spec,
                    "'\n", predictorSpecHelp());
}

/** Parse "tournament(a,b):n", handling nested parentheses in a and b. */
std::unique_ptr<BranchPredictor>
makeTournament(const std::string &spec, bool track_aliasing)
{
    auto open = spec.find('(');
    auto close = spec.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        bpsim_fatal("malformed tournament spec '", spec, "'\n",
                    predictorSpecHelp());
    }
    std::string inner = spec.substr(open + 1, close - open - 1);
    // Split on the comma at parenthesis depth zero.
    int depth = 0;
    std::size_t comma = std::string::npos;
    for (std::size_t i = 0; i < inner.size(); ++i) {
        if (inner[i] == '(')
            ++depth;
        else if (inner[i] == ')')
            --depth;
        else if (inner[i] == ',' && depth == 0) {
            comma = i;
            break;
        }
    }
    if (comma == std::string::npos)
        bpsim_fatal("tournament spec '", spec,
                    "' needs two comma-separated components");

    unsigned choice_bits = 12;
    std::string tail = spec.substr(close + 1);
    if (!tail.empty()) {
        if (tail[0] != ':')
            bpsim_fatal("malformed tournament spec '", spec, "'");
        choice_bits = parseUnsigned(tail.substr(1), spec);
    }
    return std::make_unique<TournamentPredictor>(
        makePredictor(inner.substr(0, comma), track_aliasing),
        makePredictor(inner.substr(comma + 1), track_aliasing),
        choice_bits);
}

} // namespace

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &spec, bool track_aliasing)
{
    if (spec.rfind("tournament", 0) == 0)
        return makeTournament(spec, track_aliasing);
    if (spec == "taken")
        return std::make_unique<FixedPredictor>(true);
    if (spec == "not-taken")
        return std::make_unique<FixedPredictor>(false);
    if (spec == "btfnt")
        return std::make_unique<BtfntPredictor>();

    auto fields = splitColon(spec);
    const std::string &scheme = fields[0];

    if (scheme == "addr") {
        requireFields(fields, 2, 2, spec);
        return makeAddressIndexed(parseUnsigned(fields[1], spec),
                                  track_aliasing);
    }
    if (scheme == "GAg") {
        requireFields(fields, 2, 2, spec);
        return makeGAg(parseUnsigned(fields[1], spec), track_aliasing);
    }
    if (scheme == "GAs") {
        requireFields(fields, 3, 3, spec);
        return makeGAs(parseUnsigned(fields[1], spec),
                       parseUnsigned(fields[2], spec), track_aliasing);
    }
    if (scheme == "gshare") {
        requireFields(fields, 3, 3, spec);
        return makeGshare(parseUnsigned(fields[1], spec),
                          parseUnsigned(fields[2], spec),
                          track_aliasing);
    }
    if (scheme == "path") {
        requireFields(fields, 3, 4, spec);
        unsigned per_target =
            fields.size() > 3 ? parseUnsigned(fields[3], spec) : 2;
        return makePath(parseUnsigned(fields[1], spec),
                        parseUnsigned(fields[2], spec), per_target,
                        track_aliasing);
    }
    if (scheme == "PAs") {
        requireFields(fields, 3, 5, spec);
        unsigned rows = parseUnsigned(fields[1], spec);
        unsigned cols = parseUnsigned(fields[2], spec);
        if (fields.size() == 3)
            return makePAsPerfect(rows, cols, track_aliasing);
        std::size_t entries = parseUnsigned(fields[3], spec);
        unsigned assoc =
            fields.size() > 4 ? parseUnsigned(fields[4], spec) : 4;
        return makePAsFinite(rows, cols, entries, assoc,
                             track_aliasing);
    }

    if (scheme == "SAs") {
        requireFields(fields, 4, 4, spec);
        return makeSAs(parseUnsigned(fields[1], spec),
                       parseUnsigned(fields[2], spec),
                       parseUnsigned(fields[3], spec), track_aliasing);
    }
    if (scheme == "agree") {
        requireFields(fields, 2, 3, spec);
        unsigned n = parseUnsigned(fields[1], spec);
        unsigned h =
            fields.size() > 2 ? parseUnsigned(fields[2], spec) : n;
        return std::make_unique<AgreePredictor>(n, h);
    }
    if (scheme == "gskew") {
        requireFields(fields, 2, 3, spec);
        unsigned n = parseUnsigned(fields[1], spec);
        unsigned h =
            fields.size() > 2 ? parseUnsigned(fields[2], spec) : n;
        return std::make_unique<GskewPredictor>(n, h);
    }
    if (scheme == "tage") {
        requireFields(fields, 3, 5, spec);
        TageParams params;
        params.baseBits = parseUnsigned(fields[1], spec);
        params.entryBits = parseUnsigned(fields[2], spec);
        if (fields.size() > 3)
            params.tagBits = parseUnsigned(fields[3], spec);
        if (fields.size() > 4)
            params.histories = parseUnsignedList(fields[4], spec);
        return std::make_unique<TagePredictor>(params);
    }
    if (scheme == "perceptron") {
        requireFields(fields, 3, 4, spec);
        PerceptronParams params;
        params.historyBits = parseUnsigned(fields[1], spec);
        params.entryBits = parseUnsigned(fields[2], spec);
        if (fields.size() > 3)
            params.tables = parseUnsigned(fields[3], spec);
        return std::make_unique<PerceptronPredictor>(params);
    }
    if (scheme == "bimode") {
        requireFields(fields, 3, 4, spec);
        unsigned d = parseUnsigned(fields[1], spec);
        unsigned ch = parseUnsigned(fields[2], spec);
        unsigned h =
            fields.size() > 3 ? parseUnsigned(fields[3], spec) : d;
        return std::make_unique<BiModePredictor>(d, ch, h);
    }

    bpsim_fatal("unknown predictor scheme '", scheme, "' in spec '",
                spec, "'\n", predictorSpecHelp());
}

std::string
predictorSpecHelp()
{
    return "predictor specs: addr:<n> | GAg:<n> | GAs:<r>:<c> | "
           "gshare:<r>:<c> | path:<r>:<c>[:<g>] | PAs:<r>:<c> | "
           "PAs:<r>:<c>:<entries>[:<ways>] | SAs:<r>:<c>:<set_bits> | "
           "agree:<n>[:<h>] | bimode:<d>:<ch>[:<h>] | gskew:<n>[:<h>] | "
           "tage:<base>:<entry>[:<tag>[:<h1,h2,...>]] | "
           "perceptron:<h>:<entry>[:<tables>] | "
           "taken | "
           "not-taken | btfnt | "
           "tournament(<spec>,<spec>)[:<choice_bits>]";
}

} // namespace bpsim

/**
 * @file
 * A hashed perceptron predictor [Tarjan, Skadron 2005], the other
 * modern scheme Mittal's survey credits with displacing the two-level
 * family.  Instead of one saturating counter per (history, pc) point,
 * T small weight tables are each indexed by a hash of the pc and one
 * SEGMENT of global history; the prediction is the sign of the summed
 * weights.  Aliasing still exists -- two branches can share a weight --
 * but a single collision only perturbs one addend out of T, so the
 * damage is graceful rather than binary.
 *
 * Determinism notes (the naive reference model mirrors all of these):
 *  - integer weights clamped to [-64, 63];
 *  - training threshold theta = (193 * h) / 100 + 14 computed in
 *    integer arithmetic (the float form of Jimenez's 1.93h + 14 could
 *    round differently across implementations);
 *  - train on any mispredict, or whenever |sum| <= theta.
 */

#ifndef BPSIM_PREDICTOR_PERCEPTRON_HH
#define BPSIM_PREDICTOR_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/history_register.hh"
#include "predictor/predictor.hh"

namespace bpsim {

/** Geometry of a PerceptronModel. */
struct PerceptronParams
{
    /** Global history length split across the non-bias tables (1..64). */
    unsigned historyBits = 16;
    /** log2 entries of EACH weight table. */
    unsigned entryBits = 10;
    /** Weight tables including the pc-indexed bias table (2..16). */
    unsigned tables = 4;

    /** bpsim_assert that the geometry is well-formed. */
    void validate() const;
};

/** What one predict-and-train step did (analysis and test hooks). */
struct PerceptronStep
{
    /** The final prediction: sum >= 0. */
    bool prediction = false;
    /** The summed weights behind the prediction. */
    int sum = 0;
    /** Weights were adjusted (mispredict or low confidence). */
    bool trained = false;
};

/**
 * The replayable hashed-perceptron core, driven by both the online
 * PerceptronPredictor and the sweep engine's per-config replay.
 */
class PerceptronModel
{
  public:
    static constexpr int kWeightMin = -64;
    static constexpr int kWeightMax = 63;

    explicit PerceptronModel(const PerceptronParams &params);

    /**
     * Predict and train on one branch.
     *
     * @param pc     branch address (word-aligned)
     * @param ghist  global outcome history BEFORE this branch, bit 0
     *               newest (HistoryRegister / PreparedTrace convention)
     * @param taken  the actual outcome
     */
    PerceptronStep step(Addr pc, std::uint64_t ghist, bool taken);

    void reset();

    const PerceptronParams &params() const { return params_; }

    /** The integer training threshold: (193 * h) / 100 + 14. */
    int threshold() const { return theta_; }

    /** Total weights across all tables. */
    std::size_t counterCount() const
    {
        return tables_.size() * tables_[0].size();
    }

    /** Number of TRAINING events since construction/reset. */
    std::uint64_t updates() const { return updates_; }

    /** @name Deterministic hash/weight hooks, exposed for unit tests. */
    ///@{
    std::size_t tableIndex(unsigned table, Addr pc,
                           std::uint64_t ghist) const;
    int weightAt(unsigned table, std::size_t idx) const
    {
        return tables_[table][idx];
    }
    ///@}

  private:
    PerceptronParams params_;
    int theta_;
    std::vector<std::vector<int>> tables_;
    std::uint64_t updates_ = 0;
};

/** The online (BranchPredictor) wrapper: model + its own history. */
class PerceptronPredictor : public BranchPredictor
{
  public:
    explicit PerceptronPredictor(const PerceptronParams &params);

    bool onBranch(const BranchRecord &rec) override;
    void reset() override;
    std::string name() const override;
    std::size_t counterCount() const override
    {
        return model_.counterCount();
    }

    const PerceptronModel &model() const { return model_; }

  private:
    PerceptronModel model_;
    HistoryRegister history_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_PERCEPTRON_HH

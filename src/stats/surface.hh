/**
 * @file
 * Result surfaces for configuration sweeps.
 *
 * Figures 4, 5, 6, 9 and 10 of the paper plot a value (misprediction or
 * aliasing rate) over a two-dimensional space: one axis is the total
 * predictor-table budget (tiers of 2^n counters), the other the split of
 * index bits between rows (history) and columns (address).  A Surface
 * stores exactly that structure, marks the best configuration within each
 * constant-budget tier (the blackened bars in the paper's figures), and
 * renders itself as an aligned ASCII grid or CSV.
 */

#ifndef BPSIM_STATS_SURFACE_HH
#define BPSIM_STATS_SURFACE_HH

#include <optional>
#include <string>
#include <vector>

namespace bpsim {

/** One (row-bits, column-bits) configuration and its measured value. */
struct SurfacePoint
{
    unsigned rowBits = 0;
    unsigned colBits = 0;
    /** Measured value; by convention a rate in [0,1] or a signed delta. */
    double value = 0.0;
};

/** All configurations sharing one total budget of 2^totalBits counters. */
struct SurfaceTier
{
    unsigned totalBits = 0;
    std::vector<SurfacePoint> points;

    /** Index into points of the minimum value; nullopt when empty. */
    std::optional<std::size_t> bestIndex() const;
};

/** A named collection of tiers, i.e. one paper-style surface plot. */
class Surface
{
  public:
    explicit Surface(std::string name_) : name_(std::move(name_)) {}

    /** Append a measured point; tiers are created on demand. */
    void add(unsigned total_bits, unsigned row_bits, unsigned col_bits,
             double value);

    const std::string &name() const { return name_; }
    const std::vector<SurfaceTier> &tiers() const { return tiers_; }

    /** Find a tier by its total bit budget. */
    const SurfaceTier *tier(unsigned total_bits) const;

    /** Look up the value at an exact (total, row) coordinate. */
    std::optional<double> at(unsigned total_bits, unsigned row_bits) const;

    /**
     * The best (minimum-value) point in a tier, as the paper's blackened
     * bars report.  nullopt when the tier is absent or empty.
     */
    std::optional<SurfacePoint> bestInTier(unsigned total_bits) const;

    /**
     * Element-wise difference surface, this minus other, over the
     * coordinates present in both; used for the gshare-vs-GAs and
     * path-vs-GAs comparisons (Figures 7 and 8, where *positive* numbers
     * mean the other scheme -- the subtrahend -- is worse).
     */
    Surface difference(const Surface &other, std::string result_name) const;

    /**
     * ASCII rendering: one line per tier, one cell per configuration,
     * values as percentages, best-in-tier starred.
     * @param percent render value*100 with a trailing '%'
     * @param signed_values include a sign (for difference surfaces)
     */
    std::string render(bool percent = true,
                       bool signed_values = false) const;

    /** CSV rendering: total_bits,row_bits,col_bits,value per line. */
    std::string renderCsv() const;

  private:
    std::string name_;
    std::vector<SurfaceTier> tiers_;
};

} // namespace bpsim

#endif // BPSIM_STATS_SURFACE_HH

/**
 * @file
 * Aliasing (interference) measurement for predictor tables.
 *
 * The paper's definition (Section 3): "Aliasing conflicts between branches
 * occur when consecutive branch instances accessing a particular counter
 * arise from distinct branches.  These conflicts correspond to the
 * conflicts in a direct mapped cache."
 *
 * The tracker shadows a table of 2^n entries with the address of the last
 * branch that touched each entry and counts accesses whose address differs
 * from the remembered one.  It additionally classifies a conflict as
 * *harmless* when the first-level history pattern in effect is all-ones --
 * the tight-loop pattern the paper singles out ("approximately a fifth of
 * the aliasing for the larger benchmarks was for the pattern with all
 * recorded branches taken", Section 3).
 */

#ifndef BPSIM_STATS_ALIASING_HH
#define BPSIM_STATS_ALIASING_HH

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"

namespace bpsim {

/** Conflict tracker shadowing a direct-mapped structure of 2^n entries. */
class AliasTracker
{
  public:
    /** @param entries number of tracked slots (> 0). */
    explicit AliasTracker(std::size_t entries);

    /**
     * Record an access to @p slot by the branch at @p pc.
     *
     * @param slot table index being accessed
     * @param pc address of the accessing branch
     * @param all_ones_pattern whether the history pattern that selected
     *        this slot is the all-taken pattern (harmless-alias class)
     * @return true when the access conflicts (previous accessor differs)
     */
    bool access(std::size_t slot, Addr pc, bool all_ones_pattern = false);

    /** Total accesses recorded. */
    std::uint64_t accesses() const { return accesses_; }

    /** Accesses whose slot was last touched by a different branch. */
    std::uint64_t conflicts() const { return conflicts_; }

    /** Conflicts that occurred under the all-ones history pattern. */
    std::uint64_t harmlessConflicts() const { return harmless_; }

    /** Conflicts / accesses, in [0,1]. */
    double aliasRate() const
    {
        return accesses_ ?
            static_cast<double>(conflicts_) / accesses_ : 0.0;
    }

    /** Harmless conflicts as a fraction of all conflicts. */
    double harmlessFraction() const
    {
        return conflicts_ ?
            static_cast<double>(harmless_) / conflicts_ : 0.0;
    }

    /** Number of distinct slots touched at least once. */
    std::uint64_t slotsTouched() const { return touched_; }

    std::size_t size() const { return lastPc.size(); }

    /** Forget all history and zero the counters. */
    void reset();

  private:
    /** Sentinel meaning "slot never accessed". */
    static constexpr Addr untouched = ~Addr{0};

    std::vector<Addr> lastPc;
    std::uint64_t accesses_ = 0;
    std::uint64_t conflicts_ = 0;
    std::uint64_t harmless_ = 0;
    std::uint64_t touched_ = 0;
};

} // namespace bpsim

#endif // BPSIM_STATS_ALIASING_HH

#include "stats/surface.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

std::optional<std::size_t>
SurfaceTier::bestIndex() const
{
    if (points.empty())
        return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].value < points[best].value)
            best = i;
    }
    return best;
}

void
Surface::add(unsigned total_bits, unsigned row_bits, unsigned col_bits,
             double value)
{
    bpsim_assert(row_bits + col_bits == total_bits,
                 "surface point ", row_bits, "+", col_bits,
                 " != tier ", total_bits);
    auto it = std::find_if(tiers_.begin(), tiers_.end(),
                           [&](const SurfaceTier &t) {
                               return t.totalBits == total_bits;
                           });
    if (it == tiers_.end()) {
        tiers_.push_back(SurfaceTier{total_bits, {}});
        it = tiers_.end() - 1;
    }
    it->points.push_back(SurfacePoint{row_bits, col_bits, value});
}

const SurfaceTier *
Surface::tier(unsigned total_bits) const
{
    for (const auto &t : tiers_) {
        if (t.totalBits == total_bits)
            return &t;
    }
    return nullptr;
}

std::optional<double>
Surface::at(unsigned total_bits, unsigned row_bits) const
{
    const SurfaceTier *t = tier(total_bits);
    if (!t)
        return std::nullopt;
    for (const auto &p : t->points) {
        if (p.rowBits == row_bits)
            return p.value;
    }
    return std::nullopt;
}

std::optional<SurfacePoint>
Surface::bestInTier(unsigned total_bits) const
{
    const SurfaceTier *t = tier(total_bits);
    if (!t)
        return std::nullopt;
    auto idx = t->bestIndex();
    if (!idx)
        return std::nullopt;
    return t->points[*idx];
}

Surface
Surface::difference(const Surface &other, std::string result_name) const
{
    Surface out(std::move(result_name));
    for (const auto &t : tiers_) {
        for (const auto &p : t.points) {
            auto o = other.at(t.totalBits, p.rowBits);
            if (o)
                out.add(t.totalBits, p.rowBits, p.colBits,
                        p.value - *o);
        }
    }
    return out;
}

namespace {

std::string
formatCell(double value, bool percent, bool signed_values)
{
    char buf[32];
    if (percent) {
        std::snprintf(buf, sizeof(buf), signed_values ? "%+7.2f%%"
                                                      : "%6.2f%%",
                      value * 100.0);
    } else {
        std::snprintf(buf, sizeof(buf), signed_values ? "%+8.4f"
                                                      : "%8.4f",
                      value);
    }
    return buf;
}

} // namespace

std::string
Surface::render(bool percent, bool signed_values) const
{
    std::ostringstream os;
    os << "# " << name_ << "\n";
    os << "# rows: total counters (tier); cells: history(row) bits "
       << "0..n; '*' = best in tier\n";
    for (const auto &t : tiers_) {
        char head[32];
        std::snprintf(head, sizeof(head), "%8llu | ",
                      1ULL << t.totalBits);
        os << head;
        auto best = t.bestIndex();
        for (std::size_t i = 0; i < t.points.size(); ++i) {
            os << formatCell(t.points[i].value, percent, signed_values);
            os << (best && *best == i ? "*" : " ");
            os << " ";
        }
        os << "\n";
    }
    return os.str();
}

std::string
Surface::renderCsv() const
{
    std::ostringstream os;
    os << "surface,total_bits,row_bits,col_bits,value\n";
    for (const auto &t : tiers_) {
        for (const auto &p : t.points) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%u,%u,%u,%.6f\n",
                          t.totalBits, p.rowBits, p.colBits, p.value);
            os << name_ << "," << buf;
        }
    }
    return os.str();
}

} // namespace bpsim

#include "stats/table_formatter.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

TableFormatter::TableFormatter(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    bpsim_assert(!headers.empty(), "table needs at least one column");
}

void
TableFormatter::addRow(std::vector<std::string> cells)
{
    bpsim_assert(cells.size() == headers.size(), "row has ",
                 cells.size(), " cells, table has ", headers.size(),
                 " columns");
    body.push_back(std::move(cells));
}

void
TableFormatter::addSeparator()
{
    body.push_back({separatorMark});
}

std::string
TableFormatter::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : body) {
        if (row.size() == 1 && row[0] == separatorMark)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row,
                         std::ostringstream &os) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    auto renderSep = [&](std::ostringstream &os) {
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << "+" << std::string(widths[c] + 2, '-');
        os << "+\n";
    };

    std::ostringstream os;
    renderSep(os);
    renderRow(headers, os);
    renderSep(os);
    for (const auto &row : body) {
        if (row.size() == 1 && row[0] == separatorMark)
            renderSep(os);
        else
            renderRow(row, os);
    }
    renderSep(os);
    return os.str();
}

std::string
TableFormatter::renderCsv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers.size(); ++c)
        os << (c ? "," : "") << escape(headers[c]);
    os << "\n";
    for (const auto &row : body) {
        if (row.size() == 1 && row[0] == separatorMark)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << escape(row[c]);
        os << "\n";
    }
    return os.str();
}

std::string
TableFormatter::percent(double rate, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, rate * 100.0);
    return buf;
}

std::string
TableFormatter::integer(std::uint64_t v)
{
    // Group digits with commas for readability, as the paper's Table 1.
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
TableFormatter::configLabel(unsigned row_bits, unsigned col_bits)
{
    std::ostringstream os;
    os << "2^" << row_bits << " x 2^" << col_bits;
    return os.str();
}

} // namespace bpsim

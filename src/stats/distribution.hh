/**
 * @file
 * Simple bucketed distribution / histogram, used for trip-count,
 * bias and frequency-skew reporting in the workload characterisation
 * experiments (Tables 1 and 2).
 */

#ifndef BPSIM_STATS_DISTRIBUTION_HH
#define BPSIM_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bpsim {

/** Fixed-bucket histogram over doubles in [lo, hi). */
class Distribution
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound (must exceed lo)
     * @param buckets number of equal-width buckets (> 0)
     */
    Distribution(double lo, double hi, std::size_t buckets);

    /** Add one sample; out-of-range samples land in under/overflow. */
    void sample(double value);

    std::uint64_t count() const { return count_; }
    double mean() const;
    /** Population standard deviation. */
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Lower edge of bucket @p i. */
    double bucketLo(std::size_t i) const;

    /**
     * @return the smallest sample value v such that at least
     * @p fraction of samples are <= v, interpolated within a bucket.
     * Requires at least one sample.
     */
    double quantile(double fraction) const;

    /** Multi-line human-readable rendering (for examples). */
    std::string render(std::size_t bar_width = 40) const;

    void reset();

  private:
    double lo, hi;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace bpsim

#endif // BPSIM_STATS_DISTRIBUTION_HH

#include "stats/prediction_stats.hh"

namespace bpsim {

void
PredictionStats::reset()
{
    lookups_ = 0;
    mispredicts_ = 0;
    sites_.clear();
}

void
PredictionStats::merge(const PredictionStats &other)
{
    lookups_ += other.lookups_;
    mispredicts_ += other.mispredicts_;
    for (const auto &kv : other.sites_) {
        auto &s = sites_[kv.first];
        s.executed += kv.second.executed;
        s.taken += kv.second.taken;
        s.mispredicted += kv.second.mispredicted;
    }
}

} // namespace bpsim

/**
 * @file
 * Prediction-accuracy accounting.
 *
 * The figure of merit throughout the paper is the misprediction rate for
 * conditional branches (Section 2).  PredictionStats tracks the aggregate
 * rate plus an optional per-static-branch breakdown used by the trace
 * characterisation experiments and by tests that reason about individual
 * branch behaviour.
 */

#ifndef BPSIM_STATS_PREDICTION_STATS_HH
#define BPSIM_STATS_PREDICTION_STATS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitutil.hh"

namespace bpsim {

/** Per-static-branch prediction record. */
struct BranchSiteStats
{
    std::uint64_t executed = 0;
    std::uint64_t taken = 0;
    std::uint64_t mispredicted = 0;

    /** Fraction of instances taken (0 when never executed). */
    double takenRate() const
    {
        return executed ? static_cast<double>(taken) / executed : 0.0;
    }

    /** Misprediction rate for this site (0 when never executed). */
    double mispRate() const
    {
        return executed ?
            static_cast<double>(mispredicted) / executed : 0.0;
    }
};

/** Aggregate + optional per-site prediction statistics. */
class PredictionStats
{
  public:
    /**
     * @param track_sites when true, keep a per-branch-address breakdown
     * (hash map; costs memory and a little time, so sweeps disable it).
     */
    explicit PredictionStats(bool track_sites = false)
        : trackSites(track_sites)
    {}

    /** Record one predicted conditional branch instance. */
    void
    record(Addr pc, bool taken, bool predicted_taken)
    {
        ++lookups_;
        bool correct = taken == predicted_taken;
        if (!correct)
            ++mispredicts_;
        if (trackSites) {
            auto &s = sites_[pc];
            ++s.executed;
            if (taken)
                ++s.taken;
            if (!correct)
                ++s.mispredicted;
        }
    }

    /** Total conditional branch instances observed. */
    std::uint64_t lookups() const { return lookups_; }

    /** Total mispredictions. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction rate in [0,1]; 0 when nothing was observed. */
    double
    mispRate() const
    {
        return lookups_ ?
            static_cast<double>(mispredicts_) / lookups_ : 0.0;
    }

    /** Prediction accuracy in [0,1]. */
    double accuracy() const { return 1.0 - mispRate(); }

    /** Per-site breakdown (empty unless constructed with tracking). */
    const std::unordered_map<Addr, BranchSiteStats> &sites() const
    {
        return sites_;
    }

    /** Reset all counts. */
    void reset();

    /**
     * Merge another stats object into this one (used when sharding a
     * sweep across traces).
     */
    void merge(const PredictionStats &other);

  private:
    bool trackSites;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::unordered_map<Addr, BranchSiteStats> sites_;
};

} // namespace bpsim

#endif // BPSIM_STATS_PREDICTION_STATS_HH

#include "stats/aliasing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bpsim {

AliasTracker::AliasTracker(std::size_t entries)
    : lastPc(entries, untouched)
{
    bpsim_assert(entries > 0, "AliasTracker over zero entries");
}

bool
AliasTracker::access(std::size_t slot, Addr pc, bool all_ones_pattern)
{
    bpsim_assert(slot < lastPc.size(), "slot ", slot, " out of range ",
                 lastPc.size());
    ++accesses_;
    Addr prev = lastPc[slot];
    lastPc[slot] = pc;
    if (prev == untouched) {
        ++touched_;
        return false;
    }
    if (prev == pc)
        return false;
    ++conflicts_;
    if (all_ones_pattern)
        ++harmless_;
    return true;
}

void
AliasTracker::reset()
{
    std::fill(lastPc.begin(), lastPc.end(), untouched);
    accesses_ = 0;
    conflicts_ = 0;
    harmless_ = 0;
    touched_ = 0;
}

} // namespace bpsim

/**
 * @file
 * Column-aligned ASCII table rendering, used by the Table 1/2/3 benches
 * and the examples to print paper-style tables.
 */

#ifndef BPSIM_STATS_TABLE_FORMATTER_HH
#define BPSIM_STATS_TABLE_FORMATTER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bpsim {

/** Builder for an aligned text table with a header row. */
class TableFormatter
{
  public:
    /** @param headers column titles; fixes the column count. */
    explicit TableFormatter(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    std::size_t columns() const { return headers.size(); }
    std::size_t rows() const { return body.size(); }

    /** Render with single-space-padded, pipe-separated columns. */
    std::string render() const;

    /** Render as CSV (no alignment padding, comma-escaped via quotes). */
    std::string renderCsv() const;

    /// Formatting helpers shared by the benches.
    static std::string percent(double rate, int decimals = 2);
    static std::string integer(std::uint64_t v);
    /** "2^r x 2^c" configuration label, as Table 3 prints. */
    static std::string configLabel(unsigned row_bits, unsigned col_bits);

  private:
    static constexpr const char *separatorMark = "\x01--";

    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> body;
};

} // namespace bpsim

#endif // BPSIM_STATS_TABLE_FORMATTER_HH

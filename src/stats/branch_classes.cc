#include "stats/branch_classes.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

const char *
branchClassName(BranchClass cls)
{
    switch (cls) {
      case BranchClass::AlwaysNotTaken: return "always-not-taken";
      case BranchClass::MostlyNotTaken: return "mostly-not-taken";
      case BranchClass::Mixed: return "mixed";
      case BranchClass::MostlyTaken: return "mostly-taken";
      case BranchClass::AlwaysTaken: return "always-taken";
    }
    return "?";
}

BranchClass
classifyTakenRate(double taken_rate)
{
    bpsim_assert(taken_rate >= 0.0 && taken_rate <= 1.0,
                 "taken rate out of range");
    if (taken_rate < 0.05)
        return BranchClass::AlwaysNotTaken;
    if (taken_rate < 0.30)
        return BranchClass::MostlyNotTaken;
    if (taken_rate < 0.70)
        return BranchClass::Mixed;
    if (taken_rate < 0.95)
        return BranchClass::MostlyTaken;
    return BranchClass::AlwaysTaken;
}

double
BranchClassReport::dynamicShare(BranchClass cls) const
{
    return totalInstances ?
        static_cast<double>((*this)[cls].instances) /
            static_cast<double>(totalInstances)
        : 0.0;
}

std::string
BranchClassReport::render() const
{
    std::ostringstream os;
    os << "class              statics   instances     share   misp\n";
    for (std::size_t i = 0; i < branchClassCount; ++i) {
        auto cls = static_cast<BranchClass>(i);
        const Row &row = rows[i];
        char line[128];
        std::snprintf(line, sizeof(line),
                      "%-18s %7llu  %10llu  %6.1f%%  %5.2f%%\n",
                      branchClassName(cls),
                      static_cast<unsigned long long>(
                          row.staticBranches),
                      static_cast<unsigned long long>(row.instances),
                      dynamicShare(cls) * 100.0,
                      row.mispRate() * 100.0);
        os << line;
    }
    return os.str();
}

BranchClassReport
classifyBranches(const PredictionStats &stats)
{
    BranchClassReport report;
    for (const auto &kv : stats.sites()) {
        const BranchSiteStats &site = kv.second;
        auto cls = classifyTakenRate(site.takenRate());
        auto &row = report.rows[static_cast<std::size_t>(cls)];
        ++row.staticBranches;
        row.instances += site.executed;
        row.mispredicted += site.mispredicted;
        report.totalInstances += site.executed;
    }
    return report;
}

} // namespace bpsim

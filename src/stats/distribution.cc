#include "stats/distribution.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace bpsim {

Distribution::Distribution(double lo_, double hi_, std::size_t nbuckets)
    : lo(lo_), hi(hi_), buckets_(nbuckets, 0)
{
    bpsim_assert(hi > lo, "empty distribution range");
    bpsim_assert(nbuckets > 0, "distribution needs buckets");
}

void
Distribution::sample(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum += value;
    sumSq += value * value;

    if (value < lo) {
        ++underflow_;
    } else if (value >= hi) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>(
            (value - lo) / (hi - lo) * buckets_.size());
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

double
Distribution::mean() const
{
    return count_ ? sum / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ == 0)
        return 0.0;
    double m = mean();
    double var = sumSq / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::bucketLo(std::size_t i) const
{
    bpsim_assert(i < buckets_.size(), "bucket index out of range");
    return lo + (hi - lo) * static_cast<double>(i) /
        static_cast<double>(buckets_.size());
}

double
Distribution::quantile(double fraction) const
{
    bpsim_assert(count_ > 0, "quantile of empty distribution");
    bpsim_assert(fraction >= 0.0 && fraction <= 1.0,
                 "quantile fraction out of range");
    auto target = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    std::uint64_t cum = underflow_;
    if (cum >= target)
        return lo;
    double width = (hi - lo) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (cum + buckets_[i] >= target) {
            double within = buckets_[i] == 0 ? 0.0 :
                static_cast<double>(target - cum) /
                static_cast<double>(buckets_[i]);
            return bucketLo(i) + within * width;
        }
        cum += buckets_[i];
    }
    return hi;
}

std::string
Distribution::render(std::size_t bar_width) const
{
    std::ostringstream os;
    std::uint64_t peak = 1;
    for (auto b : buckets_)
        peak = std::max(peak, b);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        auto len = static_cast<std::size_t>(
            static_cast<double>(buckets_[i]) / static_cast<double>(peak) *
            static_cast<double>(bar_width));
        os << "[" << bucketLo(i) << ", "
           << bucketLo(i) + (hi - lo) / buckets_.size() << ") "
           << std::string(len, '#') << " " << buckets_[i] << "\n";
    }
    if (underflow_)
        os << "underflow: " << underflow_ << "\n";
    if (overflow_)
        os << "overflow: " << overflow_ << "\n";
    return os.str();
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = underflow_ = overflow_ = 0;
    sum = sumSq = 0.0;
    min_ = max_ = 0.0;
}

} // namespace bpsim

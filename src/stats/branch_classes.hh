/**
 * @file
 * Branch classification by dynamic taken-rate, after Chang, Hao, Yeh
 * and Patt ("Branch Classification", 1994), which the paper cites when
 * discussing the highly biased branch population.
 *
 * Branches are binned by their bias band; a per-class report shows how
 * dynamic weight and misprediction distribute over the bands -- the
 * analysis behind statements like "a large proportion of the branches
 * ... are very highly biased".
 */

#ifndef BPSIM_STATS_BRANCH_CLASSES_HH
#define BPSIM_STATS_BRANCH_CLASSES_HH

#include <array>
#include <cstdint>
#include <string>

#include "stats/prediction_stats.hh"

namespace bpsim {

/** Taken-rate bands of the Chang et al. classification. */
enum class BranchClass
{
    AlwaysNotTaken,  ///< taken rate in [0, 5%)
    MostlyNotTaken,  ///< [5%, 30%)
    Mixed,           ///< [30%, 70%)
    MostlyTaken,     ///< [70%, 95%)
    AlwaysTaken,     ///< [95%, 100%]
};

constexpr std::size_t branchClassCount = 5;

/** @return the display name of a class ("mostly-taken", ...). */
const char *branchClassName(BranchClass cls);

/** @return the class of a branch with the given taken rate. */
BranchClass classifyTakenRate(double taken_rate);

/** Aggregated per-class statistics from a per-site breakdown. */
struct BranchClassReport
{
    struct Row
    {
        /** Distinct static branches in the class. */
        std::uint64_t staticBranches = 0;
        /** Dynamic instances contributed. */
        std::uint64_t instances = 0;
        /** Mispredictions (from the stats' predictor run). */
        std::uint64_t mispredicted = 0;

        double
        mispRate() const
        {
            return instances ? static_cast<double>(mispredicted) /
                    static_cast<double>(instances)
                             : 0.0;
        }
    };

    std::array<Row, branchClassCount> rows;
    std::uint64_t totalInstances = 0;

    const Row &operator[](BranchClass cls) const
    {
        return rows[static_cast<std::size_t>(cls)];
    }

    /** Dynamic share of a class, in [0,1]. */
    double dynamicShare(BranchClass cls) const;

    /** Aligned multi-line rendering. */
    std::string render() const;
};

/**
 * Classify the per-site breakdown of a tracking PredictionStats run
 * (runPredictor(..., track_sites=true)).
 */
BranchClassReport classifyBranches(const PredictionStats &stats);

} // namespace bpsim

#endif // BPSIM_STATS_BRANCH_CLASSES_HH

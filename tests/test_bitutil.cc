/**
 * @file
 * Unit tests for the bit-manipulation helpers every index computation in
 * the simulator rests on.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

using namespace bpsim;

TEST(Mask, ZeroBitsIsEmpty)
{
    EXPECT_EQ(mask(0), 0u);
}

TEST(Mask, SmallWidths)
{
    EXPECT_EQ(mask(1), 0x1u);
    EXPECT_EQ(mask(2), 0x3u);
    EXPECT_EQ(mask(4), 0xFu);
    EXPECT_EQ(mask(8), 0xFFu);
    EXPECT_EQ(mask(16), 0xFFFFu);
}

TEST(Mask, FullWidth)
{
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Mask, BeyondFullWidthSaturates)
{
    EXPECT_EQ(mask(65), ~std::uint64_t{0});
    EXPECT_EQ(mask(200), ~std::uint64_t{0});
}

TEST(Mask, IsMonotoneInWidth)
{
    for (unsigned w = 0; w < 64; ++w)
        EXPECT_LT(mask(w), mask(w + 1)) << "width " << w;
}

TEST(Bits, ExtractsLowBits)
{
    EXPECT_EQ(bits(0xDEADBEEF, 8), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 16), 0xBEEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 0), 0u);
    EXPECT_EQ(bits(0xDEADBEEF, 64), 0xDEADBEEFu);
}

TEST(BitsAt, ExtractsField)
{
    EXPECT_EQ(bitsAt(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bitsAt(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bitsAt(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bitsAt(0xFF00, 8, 4), 0xFu);
}

TEST(WordIndex, DropsAlignmentBits)
{
    EXPECT_EQ(wordIndex(0x400000), 0x100000u);
    EXPECT_EQ(wordIndex(0x400004), 0x100001u);
    EXPECT_EQ(wordIndex(0x0), 0u);
}

TEST(WordIndex, ConsecutiveInstructionsAreConsecutiveIndices)
{
    Addr pc = 0x00400120;
    EXPECT_EQ(wordIndex(pc + 4), wordIndex(pc) + 1);
    EXPECT_EQ(wordIndex(pc + 8), wordIndex(pc) + 2);
}

TEST(IsPowerOfTwo, Powers)
{
    for (unsigned i = 0; i < 63; ++i)
        EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << i)) << "2^" << i;
}

TEST(IsPowerOfTwo, NonPowers)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(6));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_FALSE(isPowerOfTwo(0xFFFF));
}

TEST(FloorLog2, Exact)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 63), 63u);
}

TEST(FloorLog2, RoundsDown)
{
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(CeilLog2, RoundsUp)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1023), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(ExactLog2, AcceptsPowers)
{
    EXPECT_EQ(exactLog2(1), 0u);
    EXPECT_EQ(exactLog2(4096), 12u);
}

TEST(ExactLog2DeathTest, RejectsNonPowers)
{
    EXPECT_DEATH(exactLog2(12), "not a power of two");
}

/** Property sweep: floor/ceil agree exactly on powers of two. */
class Log2Property : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Log2Property, FloorEqualsCeilOnPowers)
{
    unsigned n = GetParam();
    std::uint64_t v = std::uint64_t{1} << n;
    EXPECT_EQ(floorLog2(v), n);
    EXPECT_EQ(ceilLog2(v), n);
    EXPECT_EQ(exactLog2(v), n);
}

TEST_P(Log2Property, MaskHasExactlyNBitsSet)
{
    unsigned n = GetParam();
    EXPECT_EQ(static_cast<unsigned>(std::popcount(mask(n))), n);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, Log2Property,
                         ::testing::Range(0u, 64u));

/**
 * @file
 * Adversarial corrupt-file matrix for the .bpt reader (ctest label
 * "robust").  Every hand-crafted corruption -- bad magic, bad version,
 * truncated header/name/records, record-count tampering, oversized
 * name length, trailing garbage -- must yield a structured Error:
 * never an exit, an abort, or an allocation beyond the file size.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/byte_io.hh"
#include "trace/trace_io.hh"
#include "verify/fault_injection.hh"

using namespace bpsim;

namespace {

// Fixed header layout: magic [0,4), version [4,8), record count
// [8,16), name length [16,20), then name bytes and 21-byte records.
constexpr std::size_t versionOffset = 4;
constexpr std::size_t countOffset = 8;
constexpr std::size_t nameLenOffset = 16;
constexpr std::size_t headerBytes = 20;
constexpr std::size_t recordBytes = 21;

void
pokeU32(std::string &image, std::size_t offset, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        image[offset + i] = static_cast<char>(v >> (8 * i));
}

void
pokeU64(std::string &image, std::size_t offset, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        image[offset + i] = static_cast<char>(v >> (8 * i));
}

/** A valid in-memory .bpt image with @p n records. */
std::string
buildImage(std::size_t n, const std::string &name = "robust")
{
    MemoryTrace trace(name);
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = 0x400000 + 4 * i;
        rec.target = 0x400100;
        rec.type = BranchType::Conditional;
        rec.taken = i % 2 == 0;
        rec.instGap = static_cast<std::uint32_t>(i);
        trace.append(rec);
    }
    auto sink = std::make_unique<MemoryByteStream>();
    auto *raw = sink.get();
    TraceWriter writer =
        TraceWriter::open(std::move(sink), name).value();
    EXPECT_TRUE(writer.writeAll(trace).ok());
    EXPECT_TRUE(writer.close().ok());
    return raw->bytes();
}

/** Expect a failing load whose message mentions @p needle. */
void
expectLoadError(const std::string &image, const std::string &needle)
{
    Status st = verify::tryLoadImage(image);
    ASSERT_FALSE(st.ok()) << "image loaded cleanly, expected '"
                          << needle << "'";
    EXPECT_NE(st.error().message().find(needle), std::string::npos)
        << "message '" << st.error().message() << "' lacks '" << needle
        << "'";
}

} // namespace

TEST(TraceRobust, PristineImageLoads)
{
    std::string image = buildImage(5);
    EXPECT_EQ(image.size(), headerBytes + 6 + 5 * recordBytes);
    EXPECT_TRUE(verify::tryLoadImage(image).ok());
}

TEST(TraceRobust, EmptyAndTinyFiles)
{
    expectLoadError("", "bad magic");
    expectLoadError("B", "bad magic");
    expectLoadError("BPT", "bad magic");
    expectLoadError("not a trace at all", "bad magic");
}

TEST(TraceRobust, WrongMagic)
{
    std::string image = buildImage(3);
    image[0] = 'X';
    expectLoadError(image, "bad magic");
}

TEST(TraceRobust, UnsupportedVersion)
{
    std::string image = buildImage(3);
    pokeU32(image, versionOffset, 2);
    expectLoadError(image, "unsupported trace format version");
}

TEST(TraceRobust, TruncatedFixedHeader)
{
    std::string image = buildImage(3);
    for (std::size_t keep = 4; keep < headerBytes; ++keep)
        expectLoadError(image.substr(0, keep), "truncated header");
}

TEST(TraceRobust, TruncatedNameOrRecords)
{
    std::string image = buildImage(3);
    // Any truncation below the full size breaks the size
    // reconciliation before a single record is read.
    for (std::size_t keep = headerBytes; keep < image.size(); ++keep)
        ASSERT_FALSE(verify::tryLoadImage(image.substr(0, keep)).ok())
            << "kept " << keep << " of " << image.size();
}

TEST(TraceRobust, OversizedNameLenDoesNotAllocate)
{
    // The classic attack: a 4-byte name length claiming ~4 GB.  The
    // reader must reject it against the real file size instead of
    // resizing the name buffer first.
    std::string image = buildImage(2);
    pokeU32(image, nameLenOffset, 0xFFFFFFFFu);
    expectLoadError(image, "name length");

    pokeU32(image, nameLenOffset,
            static_cast<std::uint32_t>(image.size()));
    expectLoadError(image, "name length");
}

TEST(TraceRobust, CountTamperingIsDetected)
{
    std::string image = buildImage(4);
    // Claim more records than the file holds...
    pokeU64(image, countOffset, 5);
    expectLoadError(image, "header claims 5 records");
    // ...fewer (trailing bytes are garbage, not records)...
    pokeU64(image, countOffset, 3);
    expectLoadError(image, "header claims 3 records");
    // ...or an absurd count that would overflow naive size math.
    pokeU64(image, countOffset, ~std::uint64_t{0} / recordBytes);
    expectLoadError(image, "records");
}

TEST(TraceRobust, TrailingGarbageIsDetected)
{
    std::string image = buildImage(4) + "garbage";
    expectLoadError(image, "records");
}

TEST(TraceRobust, NameLenSmallerThanActualNameMisalignsRecords)
{
    // Shrinking name_len makes the name's tail look like record
    // bytes; the byte count no longer divides into whole records.
    std::string image = buildImage(4, "sixsix");
    pokeU32(image, nameLenOffset, 5);
    expectLoadError(image, "records");
}

TEST(TraceRobust, ZeroLengthNameIsLegal)
{
    std::string image = buildImage(2, "");
    auto reader = TraceReader::open(
        std::make_unique<MemoryByteStream>(image));
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value().name(), "");
    EXPECT_EQ(reader.value().recordCount(), 2u);
}

TEST(TraceRobust, SaveTraceRemovesPartialFileOnError)
{
    // Writing into a directory that exists but a path that cannot be
    // created must not leave droppings; here we exercise the cleanup
    // path by injecting a mid-write failure through saveTrace's file
    // API using an unwritable location.
    MemoryTrace t("x");
    BranchRecord rec;
    rec.pc = 1;
    rec.target = 2;
    rec.type = BranchType::Conditional;
    rec.taken = true;
    t.append(rec);
    auto r = saveTrace(t, "/proc/no_such_file.bpt");
    EXPECT_FALSE(r.ok());
}

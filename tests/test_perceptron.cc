/**
 * @file
 * Unit tests for the hashed perceptron predictor: the integer training
 * threshold, weight saturation at the clamp boundaries, the
 * train-on-low-confidence rule, online/sweep equivalence, and the
 * interference partition.  Suite names start with "PerceptronZoo" so
 * the tsan preset can select them by name.
 */

#include <gtest/gtest.h>

#include "predictor/perceptron.hh"
#include "sim/engine.hh"
#include "sim/interference.hh"
#include "sim/sweep.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

MemoryTrace &
sharedWorkload()
{
    static MemoryTrace trace = [] {
        WorkloadParams p;
        p.name = "perceptron-unit";
        p.seed = 193;
        p.staticBranches = 150;
        p.functionCount = 15;
        p.targetConditionals = 30'000;
        return generateTrace(p);
    }();
    return trace;
}

PerceptronParams
params(unsigned h, unsigned entry, unsigned tables)
{
    PerceptronParams p;
    p.historyBits = h;
    p.entryBits = entry;
    p.tables = tables;
    return p;
}

} // namespace

TEST(PerceptronZoo, ThresholdIsIntegerJimenezFormula)
{
    // theta = floor(1.93 h) + 14, computed as (193 * h) / 100 + 14 in
    // integer arithmetic so no float rounding can diverge between the
    // engine and the naive reference model.
    EXPECT_EQ(PerceptronModel(params(1, 4, 2)).threshold(), 15);
    EXPECT_EQ(PerceptronModel(params(16, 4, 2)).threshold(), 44);
    EXPECT_EQ(PerceptronModel(params(59, 4, 2)).threshold(), 127);
    EXPECT_EQ(PerceptronModel(params(64, 4, 2)).threshold(), 137);
}

TEST(PerceptronZoo, WeightsSaturateAtClampBounds)
{
    // h=64 gives theta=137 while two tables can sum to at most 126, so
    // |sum| <= theta always holds and EVERY step trains: a constant
    // outcome must drive the touched weights to the clamp boundary and
    // hold them there.
    PerceptronModel up(params(64, 2, 2));
    const Addr pc = 0x40;
    const std::uint64_t ghist = 0x5a5a;
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(up.step(pc, ghist, true).trained);
    EXPECT_EQ(up.updates(), 200u);
    for (unsigned t = 0; t < 2; ++t)
        EXPECT_EQ(up.weightAt(t, up.tableIndex(t, pc, ghist)),
                  PerceptronModel::kWeightMax);

    PerceptronModel down(params(64, 2, 2));
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(down.step(pc, ghist, false).trained);
    for (unsigned t = 0; t < 2; ++t)
        EXPECT_EQ(down.weightAt(t, down.tableIndex(t, pc, ghist)),
                  PerceptronModel::kWeightMin);
}

TEST(PerceptronZoo, TrainsOnLowConfidenceStopsWhenConfident)
{
    // h=1 gives theta=15.  A fixed always-taken context trains both
    // touched weights by +1 per step while |sum| <= 15; at sum 16 the
    // prediction is confident and correct, and training must stop.
    PerceptronModel m(params(1, 4, 2));
    const Addr pc = 0x40;
    const std::uint64_t ghist = 1;
    int trained_steps = 0;
    for (int i = 0; i < 20; ++i)
        if (m.step(pc, ghist, true).trained)
            ++trained_steps;
    // Each trained step bumps both touched weights, raising the next
    // sum by 2: the steps seeing sums 0, 2, ..., 14 train (8 of them);
    // the step that sees sum 16 > theta is confident and does not.
    EXPECT_EQ(trained_steps, 8);
    PerceptronStep last = m.step(pc, ghist, true);
    EXPECT_FALSE(last.trained);
    EXPECT_EQ(last.sum, 16);
    EXPECT_EQ(m.updates(), static_cast<std::uint64_t>(trained_steps));
}

TEST(PerceptronZoo, PredictionIsSignOfSum)
{
    PerceptronModel m(params(8, 4, 3));
    const Addr pc = 0x80;
    PerceptronStep first = m.step(pc, 0, false);
    EXPECT_EQ(first.sum, 0);
    EXPECT_TRUE(first.prediction); // sum >= 0 predicts taken
    PerceptronStep second = m.step(pc, 0, false);
    EXPECT_LT(second.sum, 0);
    EXPECT_FALSE(second.prediction);
}

TEST(PerceptronZoo, BiasTableIgnoresHistory)
{
    PerceptronModel m(params(16, 6, 4));
    EXPECT_EQ(m.tableIndex(0, 0x100, 0),
              m.tableIndex(0, 0x100, ~0ull));
    // History tables see the history: some segment of an all-ones
    // history must hash differently from the all-zeros history.
    bool any_differs = false;
    for (unsigned t = 1; t < 4; ++t)
        if (m.tableIndex(t, 0x100, 0) != m.tableIndex(t, 0x100, ~0ull))
            any_differs = true;
    EXPECT_TRUE(any_differs);
}

TEST(PerceptronZoo, ResetClearsWeightsAndUpdates)
{
    PerceptronModel m(params(8, 4, 3));
    for (int i = 0; i < 50; ++i)
        m.step(0x40 + 4 * (i % 3), static_cast<std::uint64_t>(i),
               i % 2 == 0);
    ASSERT_GT(m.updates(), 0u);
    m.reset();
    EXPECT_EQ(m.updates(), 0u);
    EXPECT_EQ(m.step(0x40, 0, true).sum, 0);
}

TEST(PerceptronZooSweep, ModelReplayMatchesOnlinePredictor)
{
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    ConfigResult fast = simulateConfig(prepared, SchemeKind::Perceptron,
                                       12, 6, o);

    PerceptronPredictor online(perceptronSweepParams(12, 6, o));
    sharedWorkload().reset();
    double online_misp =
        runPredictor(sharedWorkload(), online).mispRate();
    EXPECT_NEAR(fast.mispRate, online_misp, 1e-12);
}

TEST(PerceptronZooSweep, AxisMappingAndOptionsReachTheModel)
{
    SweepOptions o;
    o.perceptronTables = 6;
    PerceptronParams p = perceptronSweepParams(24, 8, o);
    EXPECT_EQ(p.historyBits, 24u); // rows = history length
    EXPECT_EQ(p.entryBits, 8u);    // cols = per-table entries
    EXPECT_EQ(p.tables, 6u);
}

TEST(PerceptronZooInterference, PartitionCoversEverySharedMispredict)
{
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    InterferenceResult r = analyzeInterference(
        prepared, SchemeKind::Perceptron, 12, 4, o);
    EXPECT_EQ(r.instances, prepared.size());
    EXPECT_EQ(r.sharedMispredicts,
              r.aliasingMispredicts() + r.coldMispredicts +
                  r.capacityMispredicts);
    EXPECT_EQ(r.sharedMispredicts,
              r.privateMispredicts + r.destructive - r.constructive);
}

TEST(PerceptronZooInterference, SharedRateMatchesSweepPoint)
{
    PreparedTrace prepared(sharedWorkload());
    SweepOptions o;
    ConfigResult sweep = simulateConfig(
        prepared, SchemeKind::Perceptron, 12, 6, o);
    InterferenceResult r = analyzeInterference(
        prepared, SchemeKind::Perceptron, 12, 6, o);
    EXPECT_NEAR(r.sharedMispRate(), sweep.mispRate, 1e-12);
}

/**
 * @file
 * Tests for the first-level row-selection boxes, pinned against
 * hand-maintained reference state.
 */

#include <gtest/gtest.h>

#include "predictor/row_selector.hh"

using namespace bpsim;

namespace {

BranchRecord
cond(Addr pc, bool taken, Addr target = 0)
{
    BranchRecord r;
    r.pc = pc;
    r.target = target ? target : pc + 32;
    r.type = BranchType::Conditional;
    r.taken = taken;
    return r;
}

} // namespace

TEST(NullSelector, AlwaysRowZero)
{
    NullSelector s;
    EXPECT_EQ(s.selectRow(cond(0x100, true)), 0u);
    s.recordOutcome(cond(0x100, true));
    EXPECT_EQ(s.selectRow(cond(0x999, false)), 0u);
    EXPECT_FALSE(s.patternAllOnes(cond(0x100, true), 4));
    EXPECT_EQ(s.schemeName(), "addr");
}

TEST(GlobalHistorySelector, TracksOutcomes)
{
    GlobalHistorySelector s(4);
    EXPECT_EQ(s.selectRow(cond(0x100, true)), 0u);
    s.recordOutcome(cond(0x100, true));
    s.recordOutcome(cond(0x104, false));
    s.recordOutcome(cond(0x108, true));
    EXPECT_EQ(s.selectRow(cond(0x200, true)), 0b101u);
}

TEST(GlobalHistorySelector, HistoryIsAddressBlind)
{
    GlobalHistorySelector s(4);
    s.recordOutcome(cond(0x100, true));
    EXPECT_EQ(s.selectRow(cond(0x100, true)),
              s.selectRow(cond(0xFFF, true)));
}

TEST(GlobalHistorySelector, AllOnesPattern)
{
    GlobalHistorySelector s(8);
    for (int i = 0; i < 3; ++i)
        s.recordOutcome(cond(0x100, true));
    EXPECT_TRUE(s.patternAllOnes(cond(0x100, true), 3));
    EXPECT_TRUE(s.patternAllOnes(cond(0x100, true), 2));
    EXPECT_FALSE(s.patternAllOnes(cond(0x100, true), 4));
    EXPECT_FALSE(s.patternAllOnes(cond(0x100, true), 0));
}

TEST(GlobalHistorySelector, ResetClearsHistory)
{
    GlobalHistorySelector s(4);
    s.recordOutcome(cond(0x100, true));
    s.reset();
    EXPECT_EQ(s.selectRow(cond(0x100, true)), 0u);
}

TEST(GshareSelector, XorsHistoryWithWordIndex)
{
    GshareSelector s(8);
    s.recordOutcome(cond(0x100, true));
    s.recordOutcome(cond(0x104, true));
    // History low bits = 0b11; row = 0b11 ^ wordIndex(pc).
    Addr pc = 0x400020;
    EXPECT_EQ(s.selectRow(cond(pc, true)), 0b11u ^ wordIndex(pc));
}

TEST(GshareSelector, RowZeroHistoryEqualsPureAddress)
{
    GshareSelector s(8);
    Addr pc = 0x40013C;
    EXPECT_EQ(s.selectRow(cond(pc, true)), wordIndex(pc));
}

TEST(GshareSelector, AllOnesUsesUnderlyingOutcomePattern)
{
    GshareSelector s(8);
    s.recordOutcome(cond(0x100, true));
    s.recordOutcome(cond(0x104, true));
    EXPECT_TRUE(s.patternAllOnes(cond(0xFFC, true), 2));
    EXPECT_FALSE(s.patternAllOnes(cond(0xFFC, true), 3));
}

TEST(PathSelector, EncodesExecutedSuccessorBits)
{
    PathSelector s(8, 2);
    // Taken branch: successor is the target.
    BranchRecord r1 = cond(0x400100, true, 0x400208);
    s.recordOutcome(r1);
    EXPECT_EQ(s.selectRow(cond(0x1, true)),
              bits(wordIndex(0x400208), 2));

    // Not-taken branch: successor is pc + 4.
    BranchRecord r2 = cond(0x400100, false, 0x400208);
    s.recordOutcome(r2);
    std::uint64_t expect = (bits(wordIndex(0x400208), 2) << 2) |
        bits(wordIndex(0x400104), 2);
    EXPECT_EQ(s.selectRow(cond(0x1, true)), bits(expect, 8));
}

TEST(PathSelector, NeverReportsAllOnes)
{
    PathSelector s(4, 2);
    for (int i = 0; i < 8; ++i)
        s.recordOutcome(cond(0x400100, true, 0x4001FC));
    EXPECT_FALSE(s.patternAllOnes(cond(0x400100, true), 4));
}

TEST(PathSelector, TargetBitsConfigurable)
{
    PathSelector s(12, 3);
    EXPECT_EQ(s.targetBits(), 3u);
    BranchRecord r = cond(0x400100, true, 0x40021C);
    s.recordOutcome(r);
    EXPECT_EQ(s.selectRow(cond(0x1, true)),
              bits(wordIndex(0x40021C), 3));
}

TEST(PerfectPerAddress, HistoriesAreIndependentPerBranch)
{
    PerfectPerAddressSelector s(4);
    EXPECT_EQ(s.selectRow(cond(0xA0, true)), 0u);
    s.recordOutcome(cond(0xA0, true));
    EXPECT_EQ(s.selectRow(cond(0xB0, true)), 0u);
    s.recordOutcome(cond(0xB0, false));
    s.recordOutcome(cond(0xA0, true));

    EXPECT_EQ(s.selectRow(cond(0xA0, true)), 0b11u);
    EXPECT_EQ(s.selectRow(cond(0xB0, true)), 0b0u);
    EXPECT_EQ(s.trackedBranches(), 2u);
}

TEST(PerfectPerAddress, AllOnesPerBranch)
{
    PerfectPerAddressSelector s(4);
    s.selectRow(cond(0xA0, true));
    s.recordOutcome(cond(0xA0, true));
    s.recordOutcome(cond(0xA0, true));
    EXPECT_TRUE(s.patternAllOnes(cond(0xA0, true), 2));
    EXPECT_FALSE(s.patternAllOnes(cond(0xB0, true), 2));
}

TEST(PerfectPerAddress, ResetForgetsAllBranches)
{
    PerfectPerAddressSelector s(4);
    s.selectRow(cond(0xA0, true));
    s.recordOutcome(cond(0xA0, true));
    s.reset();
    EXPECT_EQ(s.trackedBranches(), 0u);
    EXPECT_EQ(s.selectRow(cond(0xA0, true)), 0u);
}

TEST(PerfectPerAddressDeathTest, RecordWithoutSelectPanics)
{
    PerfectPerAddressSelector s(4);
    EXPECT_DEATH(s.recordOutcome(cond(0xA0, true)),
                 "without a preceding selectRow");
}

TEST(BhtPerAddress, MissResetsToC3ffPrefix)
{
    BhtPerAddressSelector s(16, 4, 10);
    EXPECT_EQ(s.selectRow(cond(0x400100, true)), c3ffPrefix(10));
}

TEST(BhtPerAddress, HitFollowsOutcomes)
{
    BhtPerAddressSelector s(16, 4, 4);
    s.selectRow(cond(0x400100, true));
    s.recordOutcome(cond(0x400100, true));
    EXPECT_EQ(s.selectRow(cond(0x400100, true)),
              bits((c3ffPrefix(4) << 1) | 1, 4));
}

TEST(BhtPerAddress, SchemeNameEncodesGeometry)
{
    BhtPerAddressSelector s(1024, 4, 8);
    EXPECT_EQ(s.schemeName(), "PAs(1024e/4w)");
}

TEST(BhtPerAddress, TableExposesMissRate)
{
    BhtPerAddressSelector s(16, 4, 4);
    s.selectRow(cond(0x400100, true));
    s.recordOutcome(cond(0x400100, true));
    s.selectRow(cond(0x400100, true));
    s.recordOutcome(cond(0x400100, true));
    EXPECT_DOUBLE_EQ(s.table().missRate(), 0.5);
}

TEST(BhtPerAddress, PatternAllOnesAfterTakenRun)
{
    BhtPerAddressSelector s(16, 4, 3);
    BranchRecord r = cond(0x400100, true);
    s.selectRow(r);
    for (int i = 0; i < 3; ++i)
        s.recordOutcome(r);
    s.selectRow(r);
    EXPECT_TRUE(s.patternAllOnes(r, 3));
    EXPECT_FALSE(s.patternAllOnes(cond(0x999, true), 3));
}

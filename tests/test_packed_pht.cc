/**
 * @file
 * Unit tests for the packed 2-bit counter table behind the fused sweep
 * kernel: bit-exact equivalence with SatCounter<2>, packing isolation
 * (neighbours in a byte never disturb each other), and the combined
 * predict-and-update hot-path contract.
 */

#include <gtest/gtest.h>

#include "common/packed_pht.hh"
#include "common/random.hh"

using namespace bpsim;

TEST(PackedPht, InitialStateIsWeaklyTakenEverywhere)
{
    PackedPht table(13); // deliberately not a multiple of 4
    EXPECT_EQ(table.size(), 13u);
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(table.counter(i), TwoBitCounter().raw()) << i;
        EXPECT_TRUE(table.predict(i)) << i;
    }
}

TEST(PackedPht, EveryTransitionMatchesSatCounter)
{
    // All 4 states x both outcomes, against the canonical counter.
    for (std::uint8_t state = 0; state <= 3; ++state) {
        for (bool taken : {false, true}) {
            PackedPht table(4);
            // Drive counter 2 into `state` via a fresh table each time
            // so neighbours stay at reset.
            for (int i = 0; i < 3; ++i)
                table.update(2, false);
            for (std::uint8_t i = 0; i < state; ++i)
                table.update(2, true);
            ASSERT_EQ(table.counter(2), state);

            TwoBitCounter spec(state);
            EXPECT_EQ(table.predict(2), spec.predict())
                << "state " << int(state);
            spec.update(taken);
            table.update(2, taken);
            EXPECT_EQ(table.counter(2), spec.raw())
                << "state " << int(state) << " taken " << taken;
        }
    }
}

TEST(PackedPht, PredictAndUpdateReturnsMispredictAndTrains)
{
    PackedPht table(4);
    // Reset state is weakly taken: predicting taken is correct.
    EXPECT_EQ(table.predictAndUpdate(1, true), 0u);
    EXPECT_EQ(table.counter(1), 3u); // strengthened
    // A not-taken outcome against a taken prediction mispredicts.
    EXPECT_EQ(table.predictAndUpdate(1, false), 1u);
    EXPECT_EQ(table.counter(1), 2u);
    EXPECT_EQ(table.predictAndUpdate(1, false), 1u);
    EXPECT_EQ(table.counter(1), 1u);
    // Now predicting not-taken: a not-taken outcome is correct.
    EXPECT_EQ(table.predictAndUpdate(1, false), 0u);
    EXPECT_EQ(table.counter(1), 0u);
    // Saturated low: stays at 0.
    EXPECT_EQ(table.predictAndUpdate(1, false), 0u);
    EXPECT_EQ(table.counter(1), 0u);
}

TEST(PackedPht, NeighboursWithinAByteAreIsolated)
{
    PackedPht table(8);
    // Saturate counter 5 low and counter 6 high; 4 and 7 untouched.
    for (int i = 0; i < 4; ++i) {
        table.update(5, false);
        table.update(6, true);
    }
    EXPECT_EQ(table.counter(4), 2u);
    EXPECT_EQ(table.counter(5), 0u);
    EXPECT_EQ(table.counter(6), 3u);
    EXPECT_EQ(table.counter(7), 2u);
}

TEST(PackedPht, RandomSequenceMatchesUnpackedTable)
{
    // A long randomized (index, outcome) stream against the unpacked
    // std::vector<TwoBitCounter> layout the per-config kernel uses.
    const std::size_t entries = 64;
    PackedPht packed(entries);
    std::vector<TwoBitCounter> unpacked(entries);

    Pcg32 rng(0xF05EDFEEDULL, 7);
    std::uint64_t packed_misp = 0, unpacked_misp = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto idx = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(entries)));
        const bool taken = rng.nextBounded(3) != 0;
        unpacked_misp += unpacked[idx].predict() != taken;
        unpacked[idx].update(taken);
        packed_misp += packed.predictAndUpdate(idx, taken);
    }
    EXPECT_EQ(packed_misp, unpacked_misp);
    for (std::size_t i = 0; i < entries; ++i)
        EXPECT_EQ(packed.counter(i), unpacked[i].raw()) << i;
}

/**
 * @file
 * Tests for the key=value command-line parser used by examples and
 * benches.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace bpsim;

TEST(Config, ParsesOptionsAndPositionals)
{
    Config cfg = Config::parseTokens(
        {"generate", "profile=espresso", "out=/tmp/x.bpt", "extra"});
    ASSERT_EQ(cfg.positional().size(), 2u);
    EXPECT_EQ(cfg.positional()[0], "generate");
    EXPECT_EQ(cfg.positional()[1], "extra");
    EXPECT_EQ(cfg.getString("profile", ""), "espresso");
    EXPECT_EQ(cfg.getString("out", ""), "/tmp/x.bpt");
}

TEST(Config, FallbacksWhenAbsent)
{
    Config cfg = Config::parseTokens({});
    EXPECT_EQ(cfg.getString("missing", "dflt"), "dflt");
    EXPECT_EQ(cfg.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 2.5), 2.5);
    EXPECT_TRUE(cfg.getBool("missing", true));
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, ParsesIntegersIncludingHex)
{
    Config cfg = Config::parseTokens({"a=123", "b=0x10", "c=-5"});
    EXPECT_EQ(cfg.getInt("a", 0), 123);
    EXPECT_EQ(cfg.getInt("b", 0), 16);
    EXPECT_EQ(cfg.getInt("c", 0), -5);
}

TEST(Config, ParsesDoubles)
{
    Config cfg = Config::parseTokens({"x=1.5", "y=-0.25"});
    EXPECT_DOUBLE_EQ(cfg.getDouble("x", 0), 1.5);
    EXPECT_DOUBLE_EQ(cfg.getDouble("y", 0), -0.25);
}

TEST(Config, ParsesBooleans)
{
    Config cfg = Config::parseTokens(
        {"a=true", "b=false", "c=1", "d=0", "e=yes", "f=no", "g=on",
         "h=off"});
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_FALSE(cfg.getBool("b", true));
    EXPECT_TRUE(cfg.getBool("c", false));
    EXPECT_FALSE(cfg.getBool("d", true));
    EXPECT_TRUE(cfg.getBool("e", false));
    EXPECT_FALSE(cfg.getBool("f", true));
    EXPECT_TRUE(cfg.getBool("g", false));
    EXPECT_FALSE(cfg.getBool("h", true));
}

TEST(Config, LastDuplicateWins)
{
    Config cfg = Config::parseTokens({"k=1", "k=2"});
    EXPECT_EQ(cfg.getInt("k", 0), 2);
}

TEST(Config, ValueMayContainEquals)
{
    Config cfg = Config::parseTokens({"expr=a=b"});
    EXPECT_EQ(cfg.getString("expr", ""), "a=b");
}

TEST(Config, LeadingEqualsIsPositional)
{
    Config cfg = Config::parseTokens({"=weird"});
    ASSERT_EQ(cfg.positional().size(), 1u);
    EXPECT_EQ(cfg.positional()[0], "=weird");
}

TEST(Config, KeysAreSorted)
{
    Config cfg = Config::parseTokens({"zebra=1", "apple=2"});
    auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "apple");
    EXPECT_EQ(keys[1], "zebra");
}

TEST(Config, ParseArgsSkipsArgvZero)
{
    const char *argv[] = {"prog", "k=v", "pos"};
    Config cfg = Config::parseArgs(3, argv);
    EXPECT_EQ(cfg.getString("k", ""), "v");
    ASSERT_EQ(cfg.positional().size(), 1u);
}

TEST(ConfigDeathTest, MalformedIntegerIsFatal)
{
    Config cfg = Config::parseTokens({"n=abc"});
    EXPECT_EXIT(cfg.getInt("n", 0), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ConfigDeathTest, MalformedBoolIsFatal)
{
    Config cfg = Config::parseTokens({"b=maybe"});
    EXPECT_EXIT(cfg.getBool("b", false), ::testing::ExitedWithCode(1),
                "not a boolean");
}

/**
 * @file
 * Tests for the key=value command-line parser used by examples and
 * benches, including the recoverable-error behaviour of the typed
 * getters (malformed and out-of-range values must produce Errors, not
 * process exits or silently clamped numbers).
 */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace bpsim;

TEST(Config, ParsesOptionsAndPositionals)
{
    Config cfg = Config::parseTokens(
        {"generate", "profile=espresso", "out=/tmp/x.bpt", "extra"});
    ASSERT_EQ(cfg.positional().size(), 2u);
    EXPECT_EQ(cfg.positional()[0], "generate");
    EXPECT_EQ(cfg.positional()[1], "extra");
    EXPECT_EQ(cfg.getString("profile", ""), "espresso");
    EXPECT_EQ(cfg.getString("out", ""), "/tmp/x.bpt");
}

TEST(Config, FallbacksWhenAbsent)
{
    Config cfg = Config::parseTokens({});
    EXPECT_EQ(cfg.getString("missing", "dflt"), "dflt");
    EXPECT_EQ(cfg.tryInt("missing", 42).value(), 42);
    EXPECT_DOUBLE_EQ(cfg.tryDouble("missing", 2.5).value(), 2.5);
    EXPECT_TRUE(cfg.tryBool("missing", true).value());
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, ParsesIntegersIncludingHex)
{
    Config cfg = Config::parseTokens({"a=123", "b=0x10", "c=-5"});
    EXPECT_EQ(cfg.tryInt("a", 0).value(), 123);
    EXPECT_EQ(cfg.tryInt("b", 0).value(), 16);
    EXPECT_EQ(cfg.tryInt("c", 0).value(), -5);
}

TEST(Config, ParsesExtremeButRepresentableIntegers)
{
    Config cfg = Config::parseTokens({"max=9223372036854775807",
                                      "min=-9223372036854775808"});
    EXPECT_EQ(cfg.tryInt("max", 0).value(), INT64_MAX);
    EXPECT_EQ(cfg.tryInt("min", 0).value(), INT64_MIN);
}

TEST(Config, ParsesDoubles)
{
    Config cfg = Config::parseTokens({"x=1.5", "y=-0.25"});
    EXPECT_DOUBLE_EQ(cfg.tryDouble("x", 0).value(), 1.5);
    EXPECT_DOUBLE_EQ(cfg.tryDouble("y", 0).value(), -0.25);
}

TEST(Config, ParsesBooleans)
{
    Config cfg = Config::parseTokens(
        {"a=true", "b=false", "c=1", "d=0", "e=yes", "f=no", "g=on",
         "h=off"});
    EXPECT_TRUE(cfg.tryBool("a", false).value());
    EXPECT_FALSE(cfg.tryBool("b", true).value());
    EXPECT_TRUE(cfg.tryBool("c", false).value());
    EXPECT_FALSE(cfg.tryBool("d", true).value());
    EXPECT_TRUE(cfg.tryBool("e", false).value());
    EXPECT_FALSE(cfg.tryBool("f", true).value());
    EXPECT_TRUE(cfg.tryBool("g", false).value());
    EXPECT_FALSE(cfg.tryBool("h", true).value());
}

TEST(Config, LastDuplicateWins)
{
    Config cfg = Config::parseTokens({"k=1", "k=2"});
    EXPECT_EQ(cfg.tryInt("k", 0).value(), 2);
}

TEST(Config, ValueMayContainEquals)
{
    Config cfg = Config::parseTokens({"expr=a=b"});
    EXPECT_EQ(cfg.getString("expr", ""), "a=b");
}

TEST(Config, LeadingEqualsIsPositional)
{
    Config cfg = Config::parseTokens({"=weird"});
    ASSERT_EQ(cfg.positional().size(), 1u);
    EXPECT_EQ(cfg.positional()[0], "=weird");
}

TEST(Config, KeysAreSorted)
{
    Config cfg = Config::parseTokens({"zebra=1", "apple=2"});
    auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "apple");
    EXPECT_EQ(keys[1], "zebra");
}

TEST(Config, ParseArgsSkipsArgvZero)
{
    const char *argv[] = {"prog", "k=v", "pos"};
    Config cfg = Config::parseArgs(3, argv);
    EXPECT_EQ(cfg.getString("k", ""), "v");
    ASSERT_EQ(cfg.positional().size(), 1u);
}

TEST(Config, MalformedIntegerIsAnError)
{
    Config cfg = Config::parseTokens({"n=abc", "m=12abc"});
    auto r = cfg.tryInt("n", 0);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("not an integer"),
              std::string::npos);
    EXPECT_FALSE(cfg.tryInt("m", 0).ok());
}

TEST(Config, OutOfRangeIntegerIsAnError)
{
    // One past INT64_MAX, far past, a hex overflow, and one below
    // INT64_MIN: all were silently clamped before the ERANGE check.
    Config cfg = Config::parseTokens(
        {"a=9223372036854775808", "b=99999999999999999999999",
         "c=0x10000000000000000", "d=-9223372036854775809"});
    for (const char *key : {"a", "b", "c", "d"}) {
        auto r = cfg.tryInt(key, 0);
        ASSERT_FALSE(r.ok()) << key;
        EXPECT_NE(r.error().message().find("out of range"),
                  std::string::npos)
            << key;
    }
}

TEST(Config, MalformedDoubleIsAnError)
{
    Config cfg = Config::parseTokens({"x=banana", "y=1.5z"});
    EXPECT_FALSE(cfg.tryDouble("x", 0).ok());
    EXPECT_FALSE(cfg.tryDouble("y", 0).ok());
}

TEST(Config, OutOfRangeDoubleIsAnError)
{
    // Overflows to HUGE_VAL were previously accepted silently.
    Config cfg = Config::parseTokens({"x=1e999", "y=-1e999"});
    auto r = cfg.tryDouble("x", 0);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("out of range"),
              std::string::npos);
    EXPECT_FALSE(cfg.tryDouble("y", 0).ok());
}

TEST(Config, MalformedBoolIsAnError)
{
    Config cfg = Config::parseTokens({"b=maybe"});
    auto r = cfg.tryBool("b", false);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("not a boolean"),
              std::string::npos);
}

TEST(Config, CanonicalKeyIsOrderInsensitive)
{
    // The satellite contract of the result cache: two differently
    // ordered spellings of the same options produce ONE key.
    Config a = Config::parseTokens(
        {"min=4", "max=15", "alias=1", "bht=1024"});
    Config b = Config::parseTokens(
        {"bht=1024", "alias=1", "max=15", "min=4"});
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    EXPECT_EQ(a.canonicalKey(), "alias=1;bht=1024;max=15;min=4");
}

TEST(Config, CanonicalKeyNormalizesNumericSpellings)
{
    Config a = Config::parseTokens({"n=16", "x=1.5", "flag=1"});
    Config b =
        Config::parseTokens({"n=0x10", "x=1.50", "flag=yes"});
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());

    // Integer spellings follow tryInt (strtoll base 0): 016 is
    // octal, exactly as the option would parse at the CLI.
    Config c = Config::parseTokens({"n=016"});
    EXPECT_EQ(c.canonicalKey(), "n=14");
    Config d = Config::parseTokens({"b=true", "c=off", "d=no"});
    EXPECT_EQ(d.canonicalKey(), "b=1;c=0;d=0");
}

TEST(Config, CanonicalKeyDistinguishesDifferentValues)
{
    EXPECT_NE(Config::parseTokens({"n=16"}).canonicalKey(),
              Config::parseTokens({"n=17"}).canonicalKey());
    EXPECT_NE(Config::parseTokens({"x=1.5"}).canonicalKey(),
              Config::parseTokens({"x=1.25"}).canonicalKey());
    EXPECT_NE(Config::parseTokens({"a=1"}).canonicalKey(),
              Config::parseTokens({"b=1"}).canonicalKey());
}

TEST(Config, CanonicalKeyKeepsNonNumericStringsVerbatim)
{
    Config cfg = Config::parseTokens(
        {"profile=espresso", "out=/tmp/x.bpt"});
    EXPECT_EQ(cfg.canonicalKey(),
              "out=/tmp/x.bpt;profile=espresso");
    // Positionals are excluded.
    Config with_pos =
        Config::parseTokens({"run", "profile=espresso"});
    EXPECT_EQ(with_pos.canonicalKey(), "profile=espresso");
    EXPECT_EQ(Config::parseTokens({}).canonicalKey(), "");
}

TEST(Config, CanonicalKeySortsIntegerLists)
{
    // List-valued keys (TAGE's history lengths) denote SETS of numbers
    // for caching purposes: every ordering and integer spelling of the
    // same lengths must produce the same key.
    Config a = Config::parseTokens({"hist=4,8,16,32"});
    Config b = Config::parseTokens({"hist=32,16,8,4"});
    Config c = Config::parseTokens({"hist=8,4,0x20,16"});
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    EXPECT_EQ(a.canonicalKey(), c.canonicalKey());
    EXPECT_EQ(a.canonicalKey(), "hist=4,8,16,32");

    // Different sets still differ.
    EXPECT_NE(a.canonicalKey(),
              Config::parseTokens({"hist=4,8,16"}).canonicalKey());
    EXPECT_NE(a.canonicalKey(),
              Config::parseTokens({"hist=4,8,16,33"}).canonicalKey());
}

TEST(Config, CanonicalKeyKeepsNonIntegerListOrder)
{
    // A list with any non-integer element may be order-significant, so
    // only the elements are normalized, never their order.
    Config a = Config::parseTokens({"runs=gcc,espresso,li"});
    EXPECT_EQ(a.canonicalKey(), "runs=gcc,espresso,li");
    EXPECT_NE(a.canonicalKey(),
              Config::parseTokens({"runs=li,gcc,espresso"})
                  .canonicalKey());
    // Mixed lists normalize elements in place (0x10 -> 16).
    Config b = Config::parseTokens({"mix=gcc,0x10,yes"});
    EXPECT_EQ(b.canonicalKey(), "mix=gcc,16,1");
}

/**
 * @file
 * Tests for the persistent sweep-result cache: key canonicalisation,
 * .bpc round-trips with bit-exact doubles, disk persistence across
 * cache instances, and the degrade-to-recompute contract for corrupt
 * or mismatched files.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "cache/result_cache.hh"

using namespace bpsim;

namespace {

CacheKey
sampleKey(std::uint32_t version = 1)
{
    return CacheKey{TraceHash{0x1111222233334444ULL,
                              0x5555666677778888ULL},
                    "gshare", "alias=1;max=15;min=4", version};
}

CachedSweep
samplePayload()
{
    CachedSweep sweep;
    sweep.misprediction = Surface("gshare misprediction: t");
    sweep.aliasing = Surface("gshare aliasing: t");
    sweep.harmless = Surface("gshare harmless-alias fraction: t");
    // Values chosen to stress bit-exactness: subnormal-ish, exact
    // thirds, negatives.
    sweep.misprediction.add(4, 0, 4, 0.12345678901234567);
    sweep.misprediction.add(4, 1, 3, 1.0 / 3.0);
    sweep.misprediction.add(5, 2, 3, 5e-324);
    sweep.aliasing.add(4, 0, 4, 0.25);
    sweep.harmless.add(4, 0, 4, -0.125);
    sweep.bhtMissRate = 0.0625;
    return sweep;
}

void
expectSurfaceIdentical(const Surface &a, const Surface &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.tiers().size(), b.tiers().size());
    for (std::size_t t = 0; t < a.tiers().size(); ++t) {
        const SurfaceTier &ta = a.tiers()[t];
        const SurfaceTier &tb = b.tiers()[t];
        EXPECT_EQ(ta.totalBits, tb.totalBits);
        ASSERT_EQ(ta.points.size(), tb.points.size());
        for (std::size_t p = 0; p < ta.points.size(); ++p) {
            EXPECT_EQ(ta.points[p].rowBits, tb.points[p].rowBits);
            EXPECT_EQ(ta.points[p].colBits, tb.points[p].colBits);
            // Bit-exact, not approximately equal.
            EXPECT_EQ(std::memcmp(&ta.points[p].value,
                                  &tb.points[p].value,
                                  sizeof(double)),
                      0);
        }
    }
}

void
expectPayloadIdentical(const CachedSweep &a, const CachedSweep &b)
{
    expectSurfaceIdentical(a.misprediction, b.misprediction);
    expectSurfaceIdentical(a.aliasing, b.aliasing);
    expectSurfaceIdentical(a.harmless, b.harmless);
    EXPECT_EQ(
        std::memcmp(&a.bhtMissRate, &b.bhtMissRate, sizeof(double)),
        0);
}

std::string
tempCacheDir(const char *leaf)
{
    std::string dir = ::testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(CacheKey, CanonicalCoversEveryField)
{
    CacheKey base = sampleKey();
    EXPECT_NE(base.canonical().find("gshare"), std::string::npos);
    EXPECT_NE(base.canonical().find(base.trace.hex()),
              std::string::npos);

    CacheKey other = base;
    other.engineVersion = 2;
    EXPECT_NE(base.canonical(), other.canonical());
    EXPECT_NE(base.digest(), other.digest());
    other = base;
    other.scheme = "GAs";
    EXPECT_NE(base.digest(), other.digest());
    other = base;
    other.configKey = "alias=0;max=15;min=4";
    EXPECT_NE(base.digest(), other.digest());
    other = base;
    other.trace.lo ^= 1;
    EXPECT_NE(base.digest(), other.digest());
    EXPECT_TRUE(base == sampleKey());
    EXPECT_TRUE(base != other);
}

TEST(Bpc, RoundTripsBitExactly)
{
    MemoryByteStream stream;
    ASSERT_TRUE(writeBpc(stream, sampleKey(), samplePayload()).ok());
    ASSERT_TRUE(stream.seek(0));
    auto image = readBpc(stream);
    ASSERT_TRUE(image.ok());
    EXPECT_TRUE(image.value().key == sampleKey());
    expectPayloadIdentical(image.value().payload, samplePayload());
}

TEST(Bpc, EmptySurfacesRoundTrip)
{
    CachedSweep empty;
    MemoryByteStream stream;
    ASSERT_TRUE(writeBpc(stream, sampleKey(), empty).ok());
    ASSERT_TRUE(stream.seek(0));
    auto image = readBpc(stream);
    ASSERT_TRUE(image.ok());
    expectPayloadIdentical(image.value().payload, empty);
}

TEST(Bpc, RejectsGarbageAndTruncation)
{
    MemoryByteStream garbage("not a cache file at all");
    EXPECT_FALSE(readBpc(garbage).ok());

    MemoryByteStream empty;
    EXPECT_FALSE(readBpc(empty).ok());

    MemoryByteStream stream;
    ASSERT_TRUE(writeBpc(stream, sampleKey(), samplePayload()).ok());
    const std::string image = stream.bytes();
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{16}, std::size_t{31},
          std::size_t{32}, image.size() - 1}) {
        MemoryByteStream cut(image.substr(0, keep));
        EXPECT_FALSE(readBpc(cut).ok()) << "kept " << keep;
    }
    MemoryByteStream padded(image + "x");
    EXPECT_FALSE(readBpc(padded).ok());
}

TEST(ResultCache, MemoryOnlyHitAndMiss)
{
    ResultCache cache;
    EXPECT_EQ(cache.filePath(sampleKey()), "");
    EXPECT_FALSE(cache.lookup(sampleKey()).has_value());
    ASSERT_TRUE(cache.store(sampleKey(), samplePayload()).ok());
    bool from_disk = true;
    auto hit = cache.lookup(sampleKey(), &from_disk);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(from_disk);
    expectPayloadIdentical(*hit, samplePayload());

    // A different engine version is a different entry.
    EXPECT_FALSE(cache.lookup(sampleKey(2)).has_value());

    auto stats = cache.stats();
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits(), 1u);
    EXPECT_EQ(cache.residentEntries(), 1u);
}

TEST(ResultCache, PersistsAcrossInstances)
{
    const std::string dir = tempCacheDir("bpsim_cache_persist");
    {
        ResultCache writer(dir);
        ASSERT_TRUE(writer.store(sampleKey(), samplePayload()).ok());
        EXPECT_TRUE(
            std::filesystem::exists(writer.filePath(sampleKey())));
    }
    ResultCache reader(dir);
    bool from_disk = false;
    auto hit = reader.lookup(sampleKey(), &from_disk);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(from_disk);
    expectPayloadIdentical(*hit, samplePayload());
    // Promoted to memory: the second lookup is a memory hit.
    ASSERT_TRUE(reader.lookup(sampleKey(), &from_disk).has_value());
    EXPECT_FALSE(from_disk);
    auto stats = reader.stats();
    EXPECT_EQ(stats.diskHits, 1u);
    EXPECT_EQ(stats.memoryHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, CorruptFileDegradesToMiss)
{
    const std::string dir = tempCacheDir("bpsim_cache_corrupt");
    ResultCache writer(dir);
    ASSERT_TRUE(writer.store(sampleKey(), samplePayload()).ok());
    const std::string path = writer.filePath(sampleKey());

    // Flip one byte in the middle of the file.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 40u);
    bytes[40] = static_cast<char>(bytes[40] ^ 0x20);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    ResultCache reader(dir);
    EXPECT_FALSE(reader.lookup(sampleKey()).has_value());
    auto stats = reader.stats();
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits(), 0u);

    // Recompute-and-store repairs the entry in place.
    ASSERT_TRUE(reader.store(sampleKey(), samplePayload()).ok());
    ResultCache second(dir);
    EXPECT_TRUE(second.lookup(sampleKey()).has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, MismatchedKeyInFileIsAMiss)
{
    const std::string dir = tempCacheDir("bpsim_cache_mismatch");
    ResultCache cache(dir);
    // Write a VALID image for key B at key A's path: parses cleanly
    // but must not be served for A (full-key revalidation).
    CacheKey a = sampleKey();
    CacheKey b = sampleKey();
    b.scheme = "GAs";
    {
        auto stream = StdioFileStream::openWrite(cache.filePath(a));
        ASSERT_TRUE(stream.ok());
        ASSERT_TRUE(
            writeBpc(*stream.value(), b, samplePayload()).ok());
        ASSERT_TRUE(stream.value()->close());
    }
    EXPECT_FALSE(cache.lookup(a).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, EvictRemovesMemoryAndDisk)
{
    const std::string dir = tempCacheDir("bpsim_cache_evict");
    ResultCache cache(dir);
    ASSERT_TRUE(cache.store(sampleKey(), samplePayload()).ok());
    const std::string path = cache.filePath(sampleKey());
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_TRUE(cache.evict(sampleKey()));
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_EQ(cache.residentEntries(), 0u);
    EXPECT_FALSE(cache.lookup(sampleKey()).has_value());
    EXPECT_FALSE(cache.evict(sampleKey()));
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, UnwritableDirectoryCountsStoreFailures)
{
    // A path under a regular FILE cannot be created as a directory.
    const std::string blocker =
        ::testing::TempDir() + "bpsim_cache_blocker";
    {
        std::ofstream out(blocker);
        out << "file";
    }
    ResultCache cache(blocker + "/sub");
    Status st = cache.store(sampleKey(), samplePayload());
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(cache.stats().storeFailures, 1u);
    // The entry still serves from memory.
    EXPECT_TRUE(cache.lookup(sampleKey()).has_value());
    std::remove(blocker.c_str());
}

/**
 * @file
 * Tests for the second-level pattern history table.
 */

#include <gtest/gtest.h>

#include "predictor/pht.hh"

using namespace bpsim;

TEST(PredictorTable, GeometryAndCounterCount)
{
    PredictorTable t(3, 4);
    EXPECT_EQ(t.rowBits(), 3u);
    EXPECT_EQ(t.colBits(), 4u);
    EXPECT_EQ(t.counterCount(), 128u);
}

TEST(PredictorTable, IndexLayoutIsRowMajor)
{
    PredictorTable t(2, 3);
    EXPECT_EQ(t.index(0, 0), 0u);
    EXPECT_EQ(t.index(0, 7), 7u);
    EXPECT_EQ(t.index(1, 0), 8u);
    EXPECT_EQ(t.index(3, 7), 31u);
}

TEST(PredictorTable, IndexMasksOutOfRangeCoordinates)
{
    PredictorTable t(2, 2);
    EXPECT_EQ(t.index(4, 0), t.index(0, 0));   // row wraps
    EXPECT_EQ(t.index(0, 5), t.index(0, 1));   // col wraps
    EXPECT_EQ(t.index(0xFF, 0xFF), t.index(3, 3));
}

TEST(PredictorTable, InitialPredictionIsTaken)
{
    PredictorTable t(2, 2);
    for (std::uint64_t r = 0; r < 4; ++r)
        for (std::uint64_t c = 0; c < 4; ++c)
            EXPECT_TRUE(t.predict(r, c));
}

TEST(PredictorTable, AccessReturnsPreTrainingPrediction)
{
    PredictorTable t(0, 0); // single counter
    // Weakly taken initially: first access predicts taken even while
    // training toward not-taken.
    EXPECT_TRUE(t.access(0, 0, 0x100, false, false));
    EXPECT_FALSE(t.access(0, 0, 0x100, false, false));
}

TEST(PredictorTable, CountersAreIndependent)
{
    PredictorTable t(1, 1);
    t.access(0, 0, 0x100, false, false);
    t.access(0, 0, 0x100, false, false);
    EXPECT_FALSE(t.predict(0, 0));
    EXPECT_TRUE(t.predict(0, 1));
    EXPECT_TRUE(t.predict(1, 0));
    EXPECT_TRUE(t.predict(1, 1));
}

TEST(PredictorTable, NoAliasStatsUnlessRequested)
{
    PredictorTable t(2, 2);
    EXPECT_EQ(t.aliasStats(), nullptr);
}

TEST(PredictorTable, AliasTrackingCountsConflicts)
{
    PredictorTable t(0, 2, /*track_aliasing=*/true);
    t.access(0, 1, 0xA, true, false);
    t.access(0, 1, 0xB, true, false); // different branch, same counter
    t.access(0, 2, 0xC, true, false); // different counter
    ASSERT_NE(t.aliasStats(), nullptr);
    EXPECT_EQ(t.aliasStats()->accesses(), 3u);
    EXPECT_EQ(t.aliasStats()->conflicts(), 1u);
}

TEST(PredictorTable, HarmlessFlagForwarded)
{
    PredictorTable t(1, 0, true);
    t.access(1, 0, 0xA, true, false);
    t.access(1, 0, 0xB, true, true);
    EXPECT_EQ(t.aliasStats()->harmlessConflicts(), 1u);
}

TEST(PredictorTable, ResetRestoresWeaklyTakenAndClearsAliases)
{
    PredictorTable t(1, 1, true);
    t.access(0, 0, 0xA, false, false);
    t.access(0, 0, 0xB, false, false);
    t.reset();
    EXPECT_TRUE(t.predict(0, 0));
    EXPECT_EQ(t.aliasStats()->accesses(), 0u);
    EXPECT_EQ(t.aliasStats()->conflicts(), 0u);
}

TEST(PredictorTable, CounterAtExposesRawState)
{
    PredictorTable t(0, 1);
    t.access(0, 0, 0xA, true, false);
    EXPECT_EQ(t.counterAt(0).raw(), 3);
    EXPECT_EQ(t.counterAt(1).raw(), 2);
    t.counterAt(1).set(0);
    EXPECT_FALSE(t.predict(0, 1));
}

TEST(PredictorTableDeathTest, CounterAtOutOfRange)
{
    PredictorTable t(0, 1);
    EXPECT_DEATH(t.counterAt(2), "out of range");
}

TEST(PredictorTableDeathTest, AbsurdSizeRejected)
{
    EXPECT_DEATH(PredictorTable(20, 20), "unreasonably large");
}

TEST(PredictorTable, ZeroZeroIsSingleCounterTable)
{
    PredictorTable t(0, 0);
    EXPECT_EQ(t.counterCount(), 1u);
    // All coordinates collapse onto counter 0.
    t.access(7, 9, 0xA, false, false);
    t.access(3, 1, 0xA, false, false);
    EXPECT_FALSE(t.predict(0, 0));
}

/**
 * @file
 * Tests for the experiment drivers (Table 3 best-config machinery).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

PreparedTrace
smallPrepared()
{
    WorkloadParams p;
    p.name = "experiment-unit";
    p.seed = 31;
    p.staticBranches = 100;
    p.functionCount = 10;
    p.targetConditionals = 20'000;
    MemoryTrace t = generateTrace(p);
    return PreparedTrace(t);
}

} // namespace

TEST(Experiment, PaperSweepOptionsMatchFigureAxes)
{
    SweepOptions o = paperSweepOptions();
    EXPECT_EQ(o.minTotalBits, 4u);  // 16 counters, rear tier
    EXPECT_EQ(o.maxTotalBits, 15u); // 32768 counters, front tier
    EXPECT_TRUE(o.trackAliasing);
}

TEST(Experiment, PrepareProfileProducesConditionalStream)
{
    PreparedTrace t = prepareProfile("compress", 50'000);
    EXPECT_GE(t.size(), 50'000u);
    EXPECT_EQ(t.name(), "compress");
}

TEST(Experiment, BestConfigTableHasPaperLineup)
{
    PreparedTrace t = smallPrepared();
    Table3Options opts;
    opts.budgetBits = {6, 8};
    opts.bhtSizes = {64, 32};
    auto rows = bestConfigTable(t, opts);

    ASSERT_EQ(rows.size(), 5u); // GAs, gshare, PAs(inf), PAs x2
    EXPECT_EQ(rows[0].scheme, "GAs");
    EXPECT_EQ(rows[1].scheme, "gshare");
    EXPECT_EQ(rows[2].scheme, "PAs(inf)");
    EXPECT_EQ(rows[3].scheme, "PAs(64)");
    EXPECT_EQ(rows[4].scheme, "PAs(32)");

    for (const auto &row : rows) {
        ASSERT_EQ(row.best.size(), 2u) << row.scheme;
        for (const auto &best : row.best) {
            ASSERT_TRUE(best.has_value()) << row.scheme;
            EXPECT_GE(best->mispRate, 0.0);
            EXPECT_LE(best->mispRate, 1.0);
        }
    }
}

TEST(Experiment, BestConfigGeometryAddsUp)
{
    PreparedTrace t = smallPrepared();
    Table3Options opts;
    opts.budgetBits = {7};
    opts.bhtSizes = {64};
    auto rows = bestConfigTable(t, opts);
    for (const auto &row : rows) {
        ASSERT_TRUE(row.best[0].has_value());
        EXPECT_EQ(row.best[0]->rowBits + row.best[0]->colBits, 7u)
            << row.scheme;
    }
}

TEST(Experiment, FirstLevelMissRatesOnlyForFiniteBht)
{
    PreparedTrace t = smallPrepared();
    Table3Options opts;
    opts.budgetBits = {6};
    opts.bhtSizes = {16};
    auto rows = bestConfigTable(t, opts);
    EXPECT_LT(rows[0].bhtMissRate, 0.0); // GAs: not applicable
    EXPECT_LT(rows[2].bhtMissRate, 0.0); // PAs(inf): not applicable
    EXPECT_GE(rows[3].bhtMissRate, 0.0); // PAs(16): reported
}

TEST(Experiment, KiloEntryBhtNamesUseKSuffix)
{
    PreparedTrace t = smallPrepared();
    Table3Options opts;
    opts.budgetBits = {6};
    opts.bhtSizes = {1024, 2048, 128};
    auto rows = bestConfigTable(t, opts);
    EXPECT_EQ(rows[3].scheme, "PAs(1k)");
    EXPECT_EQ(rows[4].scheme, "PAs(2k)");
    EXPECT_EQ(rows[5].scheme, "PAs(128)");
}

TEST(Experiment, BestConfigTableIdenticalAcrossThreadCounts)
{
    PreparedTrace t = smallPrepared();
    Table3Options serial;
    serial.budgetBits = {6, 8};
    serial.bhtSizes = {64, 32};
    serial.threads = 1;
    Table3Options parallel = serial;
    parallel.threads = 4;

    auto rs = bestConfigTable(t, serial);
    auto rp = bestConfigTable(t, parallel);
    ASSERT_EQ(rs.size(), rp.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(rs[i].scheme, rp[i].scheme);
        EXPECT_EQ(rs[i].bhtMissRate, rp[i].bhtMissRate);
        ASSERT_EQ(rs[i].best.size(), rp[i].best.size());
        for (std::size_t b = 0; b < rs[i].best.size(); ++b) {
            ASSERT_EQ(rs[i].best[b].has_value(),
                      rp[i].best[b].has_value());
            if (!rs[i].best[b])
                continue;
            EXPECT_EQ(rs[i].best[b]->rowBits, rp[i].best[b]->rowBits);
            EXPECT_EQ(rs[i].best[b]->colBits, rp[i].best[b]->colBits);
            EXPECT_EQ(rs[i].best[b]->mispRate,
                      rp[i].best[b]->mispRate);
        }
    }
}

TEST(Experiment, SmallerBhtIsNeverBetterThanBigger)
{
    // The paper's central PAs claim: first-level capacity is the
    // bottleneck.  With identical second levels, a 16-entry BHT must
    // not beat a 4096-entry one (allowing sampling noise epsilon).
    PreparedTrace t = smallPrepared();
    SweepOptions big, small;
    big.minTotalBits = small.minTotalBits = 8;
    big.maxTotalBits = small.maxTotalBits = 8;
    big.trackAliasing = small.trackAliasing = false;
    big.bhtEntries = 4096;
    small.bhtEntries = 16;
    SweepResult rb = sweepScheme(t, SchemeKind::PAsFinite, big);
    SweepResult rs = sweepScheme(t, SchemeKind::PAsFinite, small);
    auto bb = rb.misprediction.bestInTier(8);
    auto bs = rs.misprediction.bestInTier(8);
    ASSERT_TRUE(bb && bs);
    EXPECT_LE(bb->value, bs->value + 0.005);
    EXPECT_GT(rs.bhtMissRate, rb.bhtMissRate);
}

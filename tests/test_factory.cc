/**
 * @file
 * Tests for the textual predictor-spec factory.
 */

#include <gtest/gtest.h>

#include "predictor/factory.hh"

using namespace bpsim;

TEST(Factory, AddressIndexed)
{
    auto p = makePredictor("addr:10");
    EXPECT_EQ(p->name(), "addr 2^0 x 2^10");
    EXPECT_EQ(p->counterCount(), 1024u);
}

TEST(Factory, GAg)
{
    auto p = makePredictor("GAg:8");
    EXPECT_EQ(p->name(), "GAs 2^8 x 2^0");
}

TEST(Factory, GAs)
{
    auto p = makePredictor("GAs:6:4");
    EXPECT_EQ(p->name(), "GAs 2^6 x 2^4");
    EXPECT_EQ(p->counterCount(), 1024u);
}

TEST(Factory, Gshare)
{
    auto p = makePredictor("gshare:12:3");
    EXPECT_EQ(p->name(), "gshare 2^12 x 2^3");
}

TEST(Factory, PathWithDefaultTargetBits)
{
    auto p = makePredictor("path:6:2");
    EXPECT_EQ(p->name(), "path 2^6 x 2^2");
}

TEST(Factory, PathWithExplicitTargetBits)
{
    auto p = makePredictor("path:6:2:3");
    EXPECT_EQ(p->name(), "path 2^6 x 2^2");
}

TEST(Factory, PAsPerfect)
{
    auto p = makePredictor("PAs:8:4");
    EXPECT_EQ(p->name(), "PAs(inf) 2^8 x 2^4");
}

TEST(Factory, PAsFiniteDefaultAssoc)
{
    auto p = makePredictor("PAs:8:4:1024");
    EXPECT_EQ(p->name(), "PAs(1024e/4w) 2^8 x 2^4");
}

TEST(Factory, PAsFiniteExplicitAssoc)
{
    auto p = makePredictor("PAs:8:4:512:2");
    EXPECT_EQ(p->name(), "PAs(512e/2w) 2^8 x 2^4");
}

TEST(Factory, StaticBaselines)
{
    EXPECT_EQ(makePredictor("taken")->name(), "always-taken");
    EXPECT_EQ(makePredictor("not-taken")->name(), "always-not-taken");
    EXPECT_EQ(makePredictor("btfnt")->name(), "btfnt");
}

TEST(Factory, Tournament)
{
    auto p = makePredictor("tournament(addr:10,gshare:10:0):10");
    std::string name = p->name();
    EXPECT_NE(name.find("tournament"), std::string::npos);
    EXPECT_NE(name.find("addr 2^0 x 2^10"), std::string::npos);
    EXPECT_NE(name.find("gshare 2^10 x 2^0"), std::string::npos);
    // 1024 + 1024 + 1024 counters.
    EXPECT_EQ(p->counterCount(), 3072u);
}

TEST(Factory, TournamentDefaultChoiceBits)
{
    auto p = makePredictor("tournament(taken,btfnt)");
    EXPECT_NE(p->name().find("2^12 choice"), std::string::npos);
}

TEST(Factory, NestedTournament)
{
    auto p = makePredictor(
        "tournament(tournament(addr:4,GAg:4):4,PAs:4:2):6");
    EXPECT_NE(p->name().find("PAs(inf)"), std::string::npos);
}

TEST(Factory, HexNumbersAccepted)
{
    auto p = makePredictor("addr:0xA");
    EXPECT_EQ(p->counterCount(), 1024u);
}

TEST(Factory, AliasTrackingFlagPropagates)
{
    auto p = makePredictor("GAs:4:4", /*track_aliasing=*/true);
    // Exercise it; aliasing instrumentation must be active (indirectly
    // verified through the two_level tests; here we just ensure the
    // flag produces a functional predictor).
    BranchRecord r;
    r.pc = 0x400100;
    r.target = 0x400200;
    r.type = BranchType::Conditional;
    r.taken = true;
    EXPECT_NO_FATAL_FAILURE(p->onBranch(r));
}

TEST(FactoryDeathTest, UnknownSchemeIsFatal)
{
    EXPECT_EXIT(makePredictor("yags:12"), ::testing::ExitedWithCode(1),
                "unknown predictor scheme");
    // "tage" used to be the unknown-scheme example; now it is a real
    // scheme, and a truncated spec dies on field count instead.
    EXPECT_EXIT(makePredictor("tage:12"), ::testing::ExitedWithCode(1),
                "wrong number of fields");
}

TEST(FactoryDeathTest, WrongFieldCountIsFatal)
{
    EXPECT_EXIT(makePredictor("GAs:6"), ::testing::ExitedWithCode(1),
                "wrong number of fields");
    EXPECT_EXIT(makePredictor("addr:4:4"), ::testing::ExitedWithCode(1),
                "wrong number of fields");
}

TEST(FactoryDeathTest, MalformedNumberIsFatal)
{
    EXPECT_EXIT(makePredictor("addr:banana"),
                ::testing::ExitedWithCode(1), "bad number");
}

TEST(FactoryDeathTest, MalformedTournamentIsFatal)
{
    EXPECT_EXIT(makePredictor("tournament(addr:4):4"),
                ::testing::ExitedWithCode(1), "two comma-separated");
    EXPECT_EXIT(makePredictor("tournament"),
                ::testing::ExitedWithCode(1), "malformed tournament");
}

TEST(Factory, HelpMentionsEveryScheme)
{
    std::string help = predictorSpecHelp();
    for (const char *scheme :
         {"addr", "GAg", "GAs", "gshare", "path", "PAs", "taken",
          "btfnt", "tournament"}) {
        EXPECT_NE(help.find(scheme), std::string::npos) << scheme;
    }
}

TEST(Factory, SAsSpec)
{
    auto p = makePredictor("SAs:6:2:8");
    EXPECT_EQ(p->name(), "SAs(256r) 2^6 x 2^2");
}

TEST(Factory, AgreeSpecs)
{
    EXPECT_EQ(makePredictor("agree:10")->name(), "agree 2^10 (h10)");
    EXPECT_EQ(makePredictor("agree:10:6")->name(), "agree 2^10 (h6)");
}

TEST(Factory, BimodeSpecs)
{
    EXPECT_EQ(makePredictor("bimode:9:8")->name(),
              "bimode 2x2^9 + 2^8 choice (h9)");
    EXPECT_EQ(makePredictor("bimode:9:8:5")->name(),
              "bimode 2x2^9 + 2^8 choice (h5)");
}

TEST(Factory, GskewSpec)
{
    EXPECT_EQ(makePredictor("gskew:9")->counterCount(), 3 * 512u);
}

TEST(Factory, DealiasedSchemesInsideTournament)
{
    auto p = makePredictor("tournament(agree:8,bimode:7:7):8");
    EXPECT_NE(p->name().find("agree"), std::string::npos);
    EXPECT_NE(p->name().find("bimode"), std::string::npos);
}

TEST(Factory, TageSpecWithDefaults)
{
    auto p = makePredictor("tage:12:10");
    EXPECT_EQ(p->name(), "tage 4x2^10 tag8 (h4,8,16,32) + 2^12 base");
    // 2^12 base counters + 4 components x 2^10 tagged entries.
    EXPECT_EQ(p->counterCount(), 4096u + 4u * 1024u);
}

TEST(Factory, TageSpecFullyExplicit)
{
    auto p = makePredictor("tage:8:6:10:2,7,21,40,63");
    EXPECT_EQ(p->name(), "tage 5x2^6 tag10 (h2,7,21,40,63) + 2^8 base");
    EXPECT_EQ(p->counterCount(), 256u + 5u * 64u);
}

TEST(Factory, PerceptronSpecWithDefaults)
{
    auto p = makePredictor("perceptron:16:10");
    EXPECT_EQ(p->name(), "perceptron 4x2^10 (h16, theta 44)");
    EXPECT_EQ(p->counterCount(), 4u * 1024u);
}

TEST(Factory, PerceptronSpecExplicitTables)
{
    auto p = makePredictor("perceptron:32:8:6");
    EXPECT_EQ(p->name(), "perceptron 6x2^8 (h32, theta 75)");
    EXPECT_EQ(p->counterCount(), 6u * 256u);
}

TEST(Factory, ZooSchemesInsideTournament)
{
    auto p =
        makePredictor("tournament(tage:10:8,perceptron:16:8):8");
    EXPECT_NE(p->name().find("tage"), std::string::npos);
    EXPECT_NE(p->name().find("perceptron"), std::string::npos);
}

TEST(Factory, HelpMentionsZooSchemes)
{
    std::string help = predictorSpecHelp();
    EXPECT_NE(help.find("tage"), std::string::npos);
    EXPECT_NE(help.find("perceptron"), std::string::npos);
}

/**
 * @file
 * Robustness campaigns for the .bpc result-cache format (ctest labels
 * "robust" and "cache"; also run under asan-ubsan).
 *
 * The contract is stricter than for .bpt traces: because the body is
 * checksummed, EVERY corruption -- header bit flips, body bit flips,
 * truncation, trailing garbage -- must surface as a structured load
 * error, and the lookup layer must turn that into a miss (recompute),
 * never a wrong sweep result.  Fault injection additionally walks a
 * failure through every I/O operation of a .bpc write and read.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/result_cache.hh"
#include "verify/fault_injection.hh"

using namespace bpsim;
using namespace bpsim::verify;

namespace {

CacheKey
campaignKey()
{
    return CacheKey{TraceHash{0xabcdef0123456789ULL,
                              0x1122334455667788ULL},
                    "PAs", "alias=0;assoc=4;bht=1024;max=15;min=4",
                    1};
}

CachedSweep
campaignPayload()
{
    CachedSweep sweep;
    sweep.misprediction = Surface("PAs misprediction: fuzz");
    sweep.aliasing = Surface("PAs aliasing: fuzz");
    sweep.harmless = Surface("PAs harmless-alias fraction: fuzz");
    for (unsigned total = 4; total <= 10; ++total) {
        for (unsigned row = 0; row <= total; ++row) {
            double v = 0.01 * total + 0.001 * row;
            sweep.misprediction.add(total, row, total - row, v);
            sweep.aliasing.add(total, row, total - row, v / 2);
            sweep.harmless.add(total, row, total - row, v / 3);
        }
    }
    sweep.bhtMissRate = 0.03;
    return sweep;
}

std::string
campaignImage()
{
    MemoryByteStream stream;
    Status st = writeBpc(stream, campaignKey(), campaignPayload());
    EXPECT_TRUE(st.ok());
    return stream.bytes();
}

} // namespace

TEST(BpcCorruptionFuzz, PristineImageLoads)
{
    EXPECT_TRUE(tryLoadBpcImage(campaignImage()).ok());
}

TEST(BpcCorruptionFuzz, EveryMutationIsAStructuredError)
{
    CorruptionReport report =
        fuzzBpcImage(campaignImage(), /*seed=*/0xB9C0C0DEULL,
                     /*truncations=*/64, /*bodyFlips=*/256);
    for (const std::string &v : report.violations)
        ADD_FAILURE() << v;
    EXPECT_TRUE(report.passed());
    // Header flips + truncations + body flips + trailing garbage,
    // all must-error: nothing lands in the tolerated-payload bucket.
    EXPECT_EQ(report.payloadMutations, 0u);
    EXPECT_GT(report.mustErrorMutations,
              32u * 8u); // at least every header bit
    EXPECT_EQ(report.structuredErrors, report.mustErrorMutations);
}

TEST(BpcFaultInjection, EveryFailingWriteOpIsAStructuredError)
{
    // Count the ops of a clean write, then fail each one in turn.
    std::uint64_t total_ops = 0;
    {
        FaultInjectingStream probe(
            std::make_unique<MemoryByteStream>(), FaultPlan{});
        ASSERT_TRUE(
            writeBpc(probe, campaignKey(), campaignPayload()).ok());
        total_ops = probe.opsIssued();
    }
    ASSERT_GT(total_ops, 0u);
    for (std::uint64_t fail = 0; fail < total_ops; ++fail) {
        for (bool short_transfer : {false, true}) {
            FaultPlan plan;
            plan.failFrom = fail;
            plan.shortTransfer = short_transfer;
            FaultInjectingStream stream(
                std::make_unique<MemoryByteStream>(), plan);
            Status st =
                writeBpc(stream, campaignKey(), campaignPayload());
            EXPECT_FALSE(st.ok())
                << "write op " << fail
                << (short_transfer ? " (short)" : "");
        }
    }
}

TEST(BpcFaultInjection, EveryFailingReadOpIsAStructuredError)
{
    const std::string image = campaignImage();
    std::uint64_t total_ops = 0;
    {
        FaultInjectingStream probe(
            std::make_unique<MemoryByteStream>(image), FaultPlan{});
        ASSERT_TRUE(readBpc(probe).ok());
        total_ops = probe.opsIssued();
    }
    ASSERT_GT(total_ops, 0u);
    for (std::uint64_t fail = 0; fail < total_ops; ++fail) {
        for (bool short_transfer : {false, true}) {
            FaultPlan plan;
            plan.failFrom = fail;
            plan.shortTransfer = short_transfer;
            FaultInjectingStream stream(
                std::make_unique<MemoryByteStream>(image), plan);
            EXPECT_FALSE(readBpc(stream).ok())
                << "read op " << fail
                << (short_transfer ? " (short)" : "");
        }
    }
}

TEST(BpcFaultInjection, CorruptDiskEntryNeverServes)
{
    // End-to-end: flip every byte of a real cache file in turn and
    // verify the cache treats each mutant as a miss.  (Bit-level
    // coverage lives in the fuzz campaign; byte level keeps this
    // end-to-end pass fast.)
    const std::string dir =
        ::testing::TempDir() + "bpsim_cache_robust_dir";
    std::filesystem::remove_all(dir);
    const std::string image = campaignImage();
    const CacheKey key = campaignKey();
    {
        ResultCache seed_cache(dir);
        ASSERT_TRUE(seed_cache.store(key, campaignPayload()).ok());
    }
    const std::string path = ResultCache(dir).filePath(key);
    for (std::size_t byte = 0; byte < image.size();
         byte += (byte < 64 ? 1 : 37)) {
        std::string mutant = image;
        mutant[byte] = static_cast<char>(mutant[byte] ^ 0x01);
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(mutant.data(),
                      static_cast<std::streamsize>(mutant.size()));
        }
        ResultCache cache(dir);
        EXPECT_FALSE(cache.lookup(key).has_value())
            << "byte " << byte;
        EXPECT_EQ(cache.stats().corrupt, 1u) << "byte " << byte;
    }
    std::filesystem::remove_all(dir);
}

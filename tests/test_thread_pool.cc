/**
 * @file
 * Tests for the shared worker pool behind the sweep engine: exact
 * once-per-index execution, deterministic result slots, exception
 * propagation, nested-batch liveness, and submit() futures.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

using namespace bpsim;

TEST(ThreadPool, HardwareThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware)
{
    EXPECT_EQ(ThreadPool::resolveThreads(0),
              ThreadPool::hardwareThreads());
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
}

TEST(ThreadPool, SharedPoolIsASingleton)
{
    EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
    EXPECT_GE(ThreadPool::shared().workerCount(), 1u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10'000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallelFor(n, 4,
                     [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroJobsReturnsImmediately)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, 2, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultSlotsMatchSerialForAnyThreadCount)
{
    constexpr std::size_t n = 513;
    auto job = [](std::size_t i) {
        // Arbitrary but deterministic per-index arithmetic.
        double v = 0.0;
        for (std::size_t k = 0; k <= i % 97; ++k)
            v += static_cast<double>(i * 31 + k) / 7.0;
        return v;
    };

    std::vector<double> serial(n);
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = job(i);

    for (unsigned threads : {1u, 2u, 4u, 16u}) {
        ThreadPool pool(threads);
        std::vector<double> slots(n);
        pool.parallelFor(n, threads,
                         [&](std::size_t i) { slots[i] = job(i); });
        EXPECT_EQ(slots, serial) << threads << " threads";
    }
}

TEST(ThreadPool, MaxThreadsOneIsAPlainSerialLoop)
{
    ThreadPool pool(4);
    std::vector<std::size_t> order;
    pool.parallelFor(64, 1,
                     [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 64u);
    // Serial degenerate case preserves index order exactly.
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesAndCancelsRemainingJobs)
{
    ThreadPool pool(2);
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.parallelFor(10'000, 2,
                         [&](std::size_t i) {
                             executed.fetch_add(1);
                             if (i == 3)
                                 throw std::runtime_error("job 3");
                         }),
        std::runtime_error);
    // Cancellation keeps the batch from draining the full range.
    EXPECT_LT(executed.load(), 10'000);

    // The pool survives a failed batch.
    std::atomic<int> after{0};
    pool.parallelFor(100, 2,
                     [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, SerialPathPropagatesExceptionsToo)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     8, 1,
                     [](std::size_t i) {
                         if (i == 5)
                             throw std::logic_error("serial");
                     }),
                 std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // An outer batch whose jobs each run an inner batch on the same
    // pool -- the bestConfigTable-over-sweepScheme shape.  The caller
    // always participates in its own batch, so this must complete even
    // when every worker is occupied by outer jobs.
    ThreadPool pool(2);
    constexpr std::size_t outer = 8, inner = 50;
    std::vector<std::atomic<int>> counts(outer);
    pool.parallelFor(outer, 4, [&](std::size_t o) {
        pool.parallelFor(inner, 4, [&](std::size_t) {
            counts[o].fetch_add(1);
        });
    });
    for (std::size_t o = 0; o < outer; ++o)
        EXPECT_EQ(counts[o].load(), static_cast<int>(inner));
}

TEST(ThreadPool, InWorkerThreadDistinguishesPoolWorkers)
{
    // The initiator of a batch is not a worker; threads serving the
    // pool are.  (Sticky per thread: once a thread has been a worker
    // it stays marked, which is exactly the property nested dispatch
    // decisions need.)
    EXPECT_FALSE(ThreadPool::inWorkerThread());
    ThreadPool pool(2);
    std::atomic<int> worker_hits{0}, initiator_hits{0};
    pool.parallelFor(64, 3, [&](std::size_t) {
        if (ThreadPool::inWorkerThread())
            worker_hits.fetch_add(1);
        else
            initiator_hits.fetch_add(1);
    });
    // The initiator participates in its own batch, so both kinds of
    // thread ran jobs; their counts add up to the whole batch.
    EXPECT_EQ(worker_hits.load() + initiator_hits.load(), 64);
    EXPECT_FALSE(ThreadPool::inWorkerThread());
}

TEST(ThreadPool, NestedGroupsTimesShardsShapeDrains)
{
    // The segment-parallel sweep shape: sweepScheme distributes fused
    // groups on the shared pool (outer), and every group's replay
    // distributes its shard x segment tasks on the same pool (inner).
    // Both levels go through ThreadPool::shared() -- exactly what the
    // tsan preset replays -- and must drain with every task run once.
    constexpr std::size_t groups = 6, tasks = 8;
    std::vector<std::array<std::atomic<int>, tasks>> runs(groups);
    ThreadPool::shared().parallelFor(groups, 4, [&](std::size_t g) {
        ThreadPool::shared().parallelFor(tasks, 4, [&](std::size_t t) {
            runs[g][t].fetch_add(1);
        });
    });
    for (std::size_t g = 0; g < groups; ++g)
        for (std::size_t t = 0; t < tasks; ++t)
            ASSERT_EQ(runs[g][t].load(), 1)
                << "group " << g << " task " << t;
}

TEST(ThreadPool, SubmitDeliversResultThroughFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitDeliversExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("submitted"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, StressManySmallRandomizedBatches)
{
    // The sweep engine's real usage pattern: a long sequence of small
    // batches with wildly varying job counts, occasionally aborted by a
    // throwing job, always followed by more work on the same pool.
    ThreadPool pool(4);
    std::minstd_rand rng(0xB5EED);

    std::uint64_t jobs_expected = 0;
    std::atomic<std::uint64_t> jobs_run{0};
    unsigned throws_seen = 0, throws_expected = 0;

    for (int batch = 0; batch < 400; ++batch) {
        std::size_t n = 1 + rng() % 37;
        unsigned threads = 1 + rng() % 6;
        bool poison = batch % 9 == 4; // every ninth batch throws
        std::size_t poison_at = rng() % n;

        if (poison)
            ++throws_expected;
        else
            jobs_expected += n;
        try {
            pool.parallelFor(n, threads, [&](std::size_t i) {
                if (poison && i == poison_at)
                    throw std::runtime_error("poisoned batch");
                if (!poison)
                    jobs_run.fetch_add(1, std::memory_order_relaxed);
            });
            EXPECT_FALSE(poison) << "batch " << batch
                                 << " should have thrown";
        } catch (const std::runtime_error &) {
            EXPECT_TRUE(poison) << "batch " << batch
                                << " threw unexpectedly";
            ++throws_seen;
        }
    }

    // Every clean batch ran to completion and every poisoned batch
    // surfaced its exception; the pool never wedged.
    EXPECT_EQ(jobs_run.load(), jobs_expected);
    EXPECT_EQ(throws_seen, throws_expected);

    // Final sanity: the pool is still fully usable for a larger batch.
    std::atomic<int> final_count{0};
    pool.parallelFor(1000, 4,
                     [&](std::size_t) { final_count.fetch_add(1); });
    EXPECT_EQ(final_count.load(), 1000);
}

TEST(ThreadPool, ManyMoreJobsThanWorkersDrain)
{
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    constexpr std::size_t n = 100'000;
    pool.parallelFor(n, 8, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

/**
 * @file
 * Tests for the destructive/neutral/constructive interference
 * decomposition.
 */

#include <gtest/gtest.h>

#include "sim/interference.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

PreparedTrace &
workload()
{
    static MemoryTrace raw = [] {
        WorkloadParams p;
        p.name = "interference-unit";
        p.seed = 2024;
        p.staticBranches = 400;
        p.functionCount = 40;
        p.targetConditionals = 60'000;
        return generateTrace(p);
    }();
    static PreparedTrace t{raw};
    return t;
}

} // namespace

TEST(Interference, CountsAreConsistent)
{
    InterferenceResult r = analyzeInterference(
        workload(), SchemeKind::Gshare, 8, 0);
    EXPECT_EQ(r.instances, workload().size());
    EXPECT_LE(r.destructive, r.sharedMispredicts);
    EXPECT_LE(r.constructive, r.privateMispredicts);
    // Misprediction identities: shared = private + destr - constr.
    EXPECT_EQ(r.sharedMispredicts,
              r.privateMispredicts + r.destructive - r.constructive);
}

TEST(Interference, SharedMispRateMatchesSweep)
{
    SweepOptions o;
    o.trackAliasing = false;
    ConfigResult sweep =
        simulateConfig(workload(), SchemeKind::GAs, 6, 4, o);
    InterferenceResult r =
        analyzeInterference(workload(), SchemeKind::GAs, 6, 4, o);
    EXPECT_NEAR(r.sharedMispRate(), sweep.mispRate, 1e-12);
}

TEST(Interference, VanishesForPrivateEnoughTables)
{
    // With a huge address-indexed table nearly every branch has its own
    // counter, so sharing changes (almost) nothing.
    InterferenceResult r = analyzeInterference(
        workload(), SchemeKind::AddressIndexed, 0, 16);
    EXPECT_LT(r.destructiveRate(), 0.002);
    EXPECT_LT(r.constructiveRate(), 0.002);
}

TEST(Interference, SmallSharedTablesAreNetDestructive)
{
    // A 16-counter GAg shares wildly: the net damage must be clearly
    // positive and the private reference clearly better.
    InterferenceResult r =
        analyzeInterference(workload(), SchemeKind::GAg, 4, 0);
    EXPECT_GT(r.destructiveRate(), r.constructiveRate());
    EXPECT_GT(r.netDamage(), 0.01);
    EXPECT_LT(r.privateMispRate(), r.sharedMispRate());
}

TEST(Interference, DamageShrinksWithTableSize)
{
    InterferenceResult small =
        analyzeInterference(workload(), SchemeKind::Gshare, 6, 0);
    InterferenceResult big =
        analyzeInterference(workload(), SchemeKind::Gshare, 12, 0);
    EXPECT_LT(big.netDamage(), small.netDamage() + 1e-9);
}

TEST(Interference, ConstructiveInterferenceExists)
{
    // The paper's point that not all aliasing is destructive: on a real
    // workload some sharing helps (branches training each other's
    // counters toward the common direction).
    InterferenceResult r =
        analyzeInterference(workload(), SchemeKind::GAs, 5, 3);
    EXPECT_GT(r.constructive, 0u);
}

TEST(Interference, WorksForEveryScheme)
{
    SweepOptions o;
    o.bhtEntries = 64;
    for (SchemeKind kind :
         {SchemeKind::AddressIndexed, SchemeKind::GAg, SchemeKind::GAs,
          SchemeKind::Gshare, SchemeKind::Path, SchemeKind::PAsPerfect,
          SchemeKind::PAsFinite}) {
        unsigned rows = kind == SchemeKind::AddressIndexed ? 0 : 6;
        unsigned cols = kind == SchemeKind::GAg ? 0 : 3;
        InterferenceResult r =
            analyzeInterference(workload(), kind, rows, cols, o);
        EXPECT_EQ(r.instances, workload().size())
            << schemeKindName(kind);
        EXPECT_EQ(r.sharedMispredicts, r.privateMispredicts +
                                           r.destructive -
                                           r.constructive)
            << schemeKindName(kind);
    }
}

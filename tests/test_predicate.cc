/**
 * @file
 * Tests for the branch behaviour models, using a stub ExecContext with
 * scripted state so each predicate's semantics are pinned exactly.
 */

#include <gtest/gtest.h>

#include "workload/predicate.hh"

using namespace bpsim;

namespace {

/** ExecContext with directly settable state. */
class StubContext : public ExecContext
{
  public:
    explicit StubContext(std::uint64_t seed = 1) : rng_(seed) {}

    Pcg32 &rng() override { return rng_; }
    std::uint64_t globalOutcomeHistory() const override { return ghist; }
    bool lastOutcomeOf(std::size_t site_id) const override
    {
        return site_id < outcomes.size() && outcomes[site_id];
    }

    std::uint64_t ghist = 0;
    std::vector<bool> outcomes;

  private:
    Pcg32 rng_;
};

} // namespace

TEST(BiasedPredicate, ExtremesAreDeterministic)
{
    StubContext ctx;
    BiasedPredicate always(1.0), never(0.0);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(always.evaluate(ctx));
        EXPECT_FALSE(never.evaluate(ctx));
    }
}

TEST(BiasedPredicate, RateMatchesProbability)
{
    StubContext ctx;
    BiasedPredicate p(0.8);
    int taken = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i)
        taken += p.evaluate(ctx);
    EXPECT_NEAR(taken / static_cast<double>(n), 0.8, 0.02);
}

TEST(BiasedPredicate, TypeNameReflectsBias)
{
    EXPECT_STREQ(BiasedPredicate(0.99).typeName(), "biased-high");
    EXPECT_STREQ(BiasedPredicate(0.01).typeName(), "biased-high");
    EXPECT_STREQ(BiasedPredicate(0.6).typeName(), "biased-low");
}

TEST(PatternPredicate, CyclesExactly)
{
    StubContext ctx;
    // Pattern 0b011 of length 3, bit 0 first: T, T, N, T, T, N, ...
    PatternPredicate p(0b011, 3, 0.0);
    for (int cycle = 0; cycle < 4; ++cycle) {
        EXPECT_TRUE(p.evaluate(ctx)) << cycle;
        EXPECT_TRUE(p.evaluate(ctx)) << cycle;
        EXPECT_FALSE(p.evaluate(ctx)) << cycle;
    }
}

TEST(PatternPredicate, ResetRestartsCycle)
{
    StubContext ctx;
    PatternPredicate p(0b01, 2, 0.0);
    EXPECT_TRUE(p.evaluate(ctx));
    p.reset();
    EXPECT_TRUE(p.evaluate(ctx));
    EXPECT_FALSE(p.evaluate(ctx));
}

TEST(PatternPredicate, NoiseFlipsOccasionally)
{
    StubContext ctx;
    PatternPredicate p(0b1, 1, 0.25); // all-taken with 25% flips
    int not_taken = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i)
        not_taken += !p.evaluate(ctx);
    EXPECT_NEAR(not_taken / static_cast<double>(n), 0.25, 0.02);
}

TEST(MarkovPredicate, StayOneHoldsForever)
{
    StubContext ctx;
    MarkovPredicate p(1.0, true);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(p.evaluate(ctx));
}

TEST(MarkovPredicate, StayZeroAlternates)
{
    StubContext ctx;
    MarkovPredicate p(0.0, true);
    EXPECT_FALSE(p.evaluate(ctx));
    EXPECT_TRUE(p.evaluate(ctx));
    EXPECT_FALSE(p.evaluate(ctx));
    EXPECT_TRUE(p.evaluate(ctx));
}

TEST(MarkovPredicate, ResetRestoresInitialState)
{
    StubContext ctx;
    MarkovPredicate p(0.0, false);
    EXPECT_TRUE(p.evaluate(ctx)); // flips from initial false
    p.reset();
    EXPECT_TRUE(p.evaluate(ctx));
}

TEST(MarkovPredicate, FlipRateMatchesStayProbability)
{
    StubContext ctx;
    MarkovPredicate p(0.9, true);
    bool prev = true;
    int flips = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        bool cur = p.evaluate(ctx);
        flips += cur != prev;
        prev = cur;
    }
    EXPECT_NEAR(flips / static_cast<double>(n), 0.1, 0.015);
}

TEST(CorrelatedPredicate, ParityOfSelectedBits)
{
    StubContext ctx;
    CorrelatedPredicate p(0b101, false, 0.0); // taps at depth 0 and 2
    ctx.ghist = 0b000;
    EXPECT_FALSE(p.evaluate(ctx));
    ctx.ghist = 0b001;
    EXPECT_TRUE(p.evaluate(ctx));
    ctx.ghist = 0b100;
    EXPECT_TRUE(p.evaluate(ctx));
    ctx.ghist = 0b101;
    EXPECT_FALSE(p.evaluate(ctx)); // even parity
    ctx.ghist = 0b111;
    EXPECT_FALSE(p.evaluate(ctx)); // middle bit not tapped
}

TEST(CorrelatedPredicate, InvertFlipsResult)
{
    StubContext ctx;
    CorrelatedPredicate plain(0b1, false, 0.0);
    CorrelatedPredicate inverted(0b1, true, 0.0);
    ctx.ghist = 0b1;
    EXPECT_TRUE(plain.evaluate(ctx));
    EXPECT_FALSE(inverted.evaluate(ctx));
}

TEST(ShadowPredicate, MirrorsOtherSite)
{
    StubContext ctx;
    ctx.outcomes = {true, false};
    ShadowPredicate follows0(0, false, 0.0);
    ShadowPredicate negates0(0, true, 0.0);
    ShadowPredicate follows1(1, false, 0.0);
    EXPECT_TRUE(follows0.evaluate(ctx));
    EXPECT_FALSE(negates0.evaluate(ctx));
    EXPECT_FALSE(follows1.evaluate(ctx));
    ctx.outcomes[0] = false;
    EXPECT_FALSE(follows0.evaluate(ctx));
    EXPECT_TRUE(negates0.evaluate(ctx));
}

TEST(LoopTripPredicate, FixedTripCountExact)
{
    StubContext ctx;
    auto p = LoopTripPredicate::fixed(4);
    // T=4: continue x3, exit x1, repeatedly.
    for (int entry = 0; entry < 5; ++entry) {
        EXPECT_TRUE(p->evaluate(ctx)) << entry;
        EXPECT_TRUE(p->evaluate(ctx)) << entry;
        EXPECT_TRUE(p->evaluate(ctx)) << entry;
        EXPECT_FALSE(p->evaluate(ctx)) << entry;
    }
}

TEST(LoopTripPredicate, FixedSingleTripAlwaysExits)
{
    StubContext ctx;
    auto p = LoopTripPredicate::fixed(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(p->evaluate(ctx));
}

TEST(LoopTripPredicate, GeometricMeanRoughlyHonoured)
{
    StubContext ctx;
    auto p = LoopTripPredicate::geometric(8.0);
    // Count evaluations per exit over many entries.
    std::uint64_t evals = 0, exits = 0;
    for (int i = 0; i < 100'000; ++i) {
        ++evals;
        if (!p->evaluate(ctx))
            ++exits;
    }
    ASSERT_GT(exits, 0u);
    EXPECT_NEAR(static_cast<double>(evals) / exits, 8.0, 0.5);
}

TEST(LoopTripPredicate, JitteredMostlyUsesHomeCount)
{
    StubContext ctx;
    auto p = LoopTripPredicate::jittered(5, 0.0); // no jitter
    for (int entry = 0; entry < 4; ++entry) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(p->evaluate(ctx));
        EXPECT_FALSE(p->evaluate(ctx));
    }
}

TEST(LoopTripPredicate, ResetForcesRedraw)
{
    StubContext ctx;
    auto p = LoopTripPredicate::fixed(10);
    EXPECT_TRUE(p->evaluate(ctx));
    p->reset();
    // Fresh countdown of 10 again; 9 continues follow.
    for (int i = 0; i < 9; ++i)
        EXPECT_TRUE(p->evaluate(ctx)) << i;
    EXPECT_FALSE(p->evaluate(ctx));
}

TEST(LoopTripPredicate, TypeNames)
{
    StubContext ctx;
    EXPECT_STREQ(LoopTripPredicate::fixed(3)->typeName(), "loop-fixed");
    EXPECT_STREQ(LoopTripPredicate::geometric(3.0)->typeName(),
                 "loop-geometric");
    EXPECT_STREQ(LoopTripPredicate::jittered(3, 0.1)->typeName(),
                 "loop-home");
}

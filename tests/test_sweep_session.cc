/**
 * @file
 * Tests for the SweepSession facade: cached results are bit-identical
 * to recomputed ones (the differential contract that makes the result
 * cache safe to use at all), disk-warm sessions serve without replay,
 * bestConfigs matches the direct bestConfigTable path, and the cache
 * key discipline separates what must be separated -- and nothing else.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "sim/experiment.hh"
#include "sim/sweep_session.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

constexpr const char *kProfile = "espresso";
constexpr std::uint64_t kBranches = 20000;

SweepOptions
smallSweep()
{
    SweepOptions opts;
    opts.minTotalBits = 4;
    opts.maxTotalBits = 8;
    opts.trackAliasing = true;
    return opts;
}

void
expectSurfaceIdentical(const Surface &a, const Surface &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.tiers().size(), b.tiers().size());
    for (std::size_t t = 0; t < a.tiers().size(); ++t) {
        const SurfaceTier &ta = a.tiers()[t];
        const SurfaceTier &tb = b.tiers()[t];
        EXPECT_EQ(ta.totalBits, tb.totalBits);
        ASSERT_EQ(ta.points.size(), tb.points.size());
        for (std::size_t p = 0; p < ta.points.size(); ++p) {
            EXPECT_EQ(ta.points[p].rowBits, tb.points[p].rowBits);
            EXPECT_EQ(ta.points[p].colBits, tb.points[p].colBits);
            EXPECT_EQ(std::memcmp(&ta.points[p].value,
                                  &tb.points[p].value,
                                  sizeof(double)),
                      0)
                << a.name() << " tier " << ta.totalBits << " point "
                << p;
        }
    }
}

void
expectResultIdentical(const SweepResult &a, const SweepResult &b)
{
    expectSurfaceIdentical(a.misprediction, b.misprediction);
    expectSurfaceIdentical(a.aliasing, b.aliasing);
    expectSurfaceIdentical(a.harmless, b.harmless);
    EXPECT_EQ(
        std::memcmp(&a.bhtMissRate, &b.bhtMissRate, sizeof(double)),
        0);
}

std::string
tempCacheDir(const char *leaf)
{
    std::string dir = ::testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(SweepSession, SweepMatchesDirectSweepScheme)
{
    SweepSession session;
    auto handle = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(handle.ok());
    auto resp = session.sweep(SweepRequest{
        handle.value().hash, SchemeKind::Gshare, smallSweep()});
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp.value().cacheHit);

    PreparedTrace direct(
        generateProfileTrace(kProfile, kBranches));
    SweepResult expected =
        sweepScheme(direct, SchemeKind::Gshare, smallSweep());
    expectResultIdentical(resp.value().result, expected);
}

TEST(SweepSession, CacheHitIsBitIdenticalToBypass)
{
    SweepSession session;
    auto handle = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(handle.ok());
    const SweepRequest request{handle.value().hash,
                               SchemeKind::PAsFinite, smallSweep()};

    auto cold = session.sweep(request);
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold.value().cacheHit);

    auto warm = session.sweep(request);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.value().cacheHit);
    EXPECT_FALSE(warm.value().diskHit);

    SweepRequest bypass = request;
    bypass.bypassCache = true;
    auto recomputed = session.sweep(bypass);
    ASSERT_TRUE(recomputed.ok());
    EXPECT_FALSE(recomputed.value().cacheHit);

    // The differential contract: hit == recompute, bit for bit.
    expectResultIdentical(warm.value().result,
                          recomputed.value().result);
    expectResultIdentical(cold.value().result,
                          warm.value().result);
    // A hit reports no kernel execution.
    EXPECT_EQ(warm.value().result.kernel.fusedGroups, 0u);
    EXPECT_EQ(warm.value().result.kernel.fallbackJobs, 0u);
}

TEST(SweepSession, DiskWarmSessionServesWithoutTracePreparation)
{
    const std::string dir = tempCacheDir("bpsim_session_disk");
    const SweepOptions opts = smallSweep();
    SweepResult expected("", "");
    TraceHash key;
    {
        SweepSession cold(dir);
        auto handle = cold.internProfile(kProfile, kBranches);
        ASSERT_TRUE(handle.ok());
        key = handle.value().hash;
        auto resp = cold.sweep(
            SweepRequest{key, SchemeKind::GAs, opts});
        ASSERT_TRUE(resp.ok());
        expected = resp.value().result;
    }

    // New process simulation: nothing interned, same cache dir.  The
    // sweep must be served purely from disk -- no trace generation,
    // no preparation (an unknown trace key would otherwise error).
    SweepSession warm(dir);
    auto resp =
        warm.sweep(SweepRequest{key, SchemeKind::GAs, opts});
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp.value().cacheHit);
    EXPECT_TRUE(resp.value().diskHit);
    expectResultIdentical(resp.value().result, expected);
    EXPECT_EQ(warm.registry().size(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(SweepSession, UnknownTraceKeyIsAnError)
{
    SweepSession session;
    auto resp = session.sweep(
        SweepRequest{TraceHash{1, 2}, SchemeKind::GAs, smallSweep()});
    ASSERT_FALSE(resp.ok());
    EXPECT_NE(resp.error().message().find("not interned"),
              std::string::npos);
    EXPECT_FALSE(
        session.point(TraceHash{1, 2}, SchemeKind::GAs, 2, 2).ok());
    EXPECT_FALSE(session.bestConfigs(TraceHash{1, 2}).ok());
}

TEST(SweepSession, ConfigKeyExcludesExecutionKnobs)
{
    SweepOptions a = smallSweep();
    SweepOptions b = smallSweep();
    b.threads = 8;
    b.fuseJobs = false;
    b.simd = SimdTarget::Scalar;
    // Execution knobs are bit-identical: same key, cache may serve.
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::Gshare, a),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, b));

    // Result-affecting knobs split the key.
    SweepOptions c = smallSweep();
    c.maxTotalBits = 9;
    EXPECT_NE(SweepSession::cacheConfigKey(SchemeKind::Gshare, a),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, c));
    SweepOptions d = smallSweep();
    d.trackAliasing = false;
    EXPECT_NE(SweepSession::cacheConfigKey(SchemeKind::Gshare, a),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, d));

    // Per-scheme parameters only key the schemes that read them: a
    // BHT knob must not split a gshare key, but must split PAs(BHT).
    SweepOptions e = smallSweep();
    e.bhtEntries = 128;
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::Gshare, a),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, e));
    EXPECT_NE(SweepSession::cacheConfigKey(SchemeKind::PAsFinite, a),
              SweepSession::cacheConfigKey(SchemeKind::PAsFinite, e));
    SweepOptions f = smallSweep();
    f.pathBitsPerTarget = 4;
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::GAs, a),
              SweepSession::cacheConfigKey(SchemeKind::GAs, f));
    EXPECT_NE(SweepSession::cacheConfigKey(SchemeKind::Path, a),
              SweepSession::cacheConfigKey(SchemeKind::Path, f));

    // fusedThreads is execution-only (lane sharding is bit-identical).
    SweepOptions g = smallSweep();
    g.fusedThreads = 8;
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::Gshare, a),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, g));
}

TEST(SweepSession, SpeculativeSegmentsSplitTheKey)
{
    ::unsetenv("BPSIM_SEGMENTS");
    const SweepOptions exact = smallSweep();

    // Explicit exact (segments=1) keeps the historical key, so old
    // .bpc entries stay valid.
    SweepOptions explicit_exact = smallSweep();
    explicit_exact.segments = 1;
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::Gshare, exact),
              SweepSession::cacheConfigKey(SchemeKind::Gshare,
                                           explicit_exact));

    // Speculative mode must never cross-serve exact results: K and
    // the warm-up width both split the key.
    SweepOptions spec = smallSweep();
    spec.segments = 4;
    EXPECT_NE(SweepSession::cacheConfigKey(SchemeKind::Gshare, exact),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, spec));
    SweepOptions spec_wide = spec;
    spec_wide.segmentWarmup = 4096;
    EXPECT_NE(
        SweepSession::cacheConfigKey(SchemeKind::Gshare, spec),
        SweepSession::cacheConfigKey(SchemeKind::Gshare, spec_wide));

    // An env-resolved speculative run shares the explicit key (the
    // resolved count is keyed, not the raw option)...
    ::setenv("BPSIM_SEGMENTS", "4", 1);
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::Gshare, exact),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, spec));
    // ... and the batch-coalescing key splits the same way, so
    // speculative and exact requests never share an envelope replay.
    SweepRequest req_env{TraceHash{3, 4}, SchemeKind::Gshare, exact};
    SweepRequest req_spec{TraceHash{3, 4}, SchemeKind::Gshare, spec};
    EXPECT_EQ(SweepSession::batchGroupKey(req_env),
              SweepSession::batchGroupKey(req_spec));
    ::unsetenv("BPSIM_SEGMENTS");
    EXPECT_NE(SweepSession::batchGroupKey(req_env),
              SweepSession::batchGroupKey(req_spec));
}

TEST(SweepSession, PointMatchesSimulateConfig)
{
    SweepSession session;
    auto handle = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(handle.ok());
    auto point = session.point(handle.value().hash,
                               SchemeKind::Gshare, 3, 3);
    ASSERT_TRUE(point.ok());

    PreparedTrace direct(
        generateProfileTrace(kProfile, kBranches));
    ConfigResult expected =
        simulateConfig(direct, SchemeKind::Gshare, 3, 3);
    EXPECT_EQ(point.value().mispRate, expected.mispRate);
    EXPECT_EQ(point.value().aliasRate, expected.aliasRate);
    EXPECT_EQ(point.value().harmlessFraction,
              expected.harmlessFraction);
}

TEST(SweepSession, BestConfigsMatchesBestConfigTable)
{
    Table3Options opts;
    opts.budgetBits = {6, 8};
    opts.bhtSizes = {256};

    SweepSession session;
    auto handle = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(handle.ok());
    auto rows = session.bestConfigs(handle.value().hash, opts);
    ASSERT_TRUE(rows.ok());

    PreparedTrace direct(
        generateProfileTrace(kProfile, kBranches));
    std::vector<BestConfigRow> expected =
        bestConfigTable(direct, opts);

    ASSERT_EQ(rows.value().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const BestConfigRow &got = rows.value()[i];
        const BestConfigRow &want = expected[i];
        EXPECT_EQ(got.scheme, want.scheme);
        EXPECT_EQ(got.bhtMissRate, want.bhtMissRate);
        ASSERT_EQ(got.best.size(), want.best.size());
        for (std::size_t b = 0; b < want.best.size(); ++b) {
            ASSERT_EQ(got.best[b].has_value(),
                      want.best[b].has_value());
            if (!want.best[b])
                continue;
            EXPECT_EQ(got.best[b]->rowBits, want.best[b]->rowBits);
            EXPECT_EQ(got.best[b]->colBits, want.best[b]->colBits);
            EXPECT_EQ(got.best[b]->mispRate,
                      want.best[b]->mispRate);
        }
    }

    // Second call: every underlying scheme sweep is a cache hit.
    auto before = session.cache().stats();
    auto again = session.bestConfigs(handle.value().hash, opts);
    ASSERT_TRUE(again.ok());
    auto after = session.cache().stats();
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_GE(after.memoryHits, before.memoryHits + 4);
}

TEST(SweepSession, RegistrySharesOneTraceAcrossRequests)
{
    SweepSession session;
    auto a = session.internProfile(kProfile, kBranches);
    auto b = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().trace.get(), b.value().trace.get());
    EXPECT_EQ(session.registry().size(), 1u);

    // point() and sweep() share one PreparedTrace.
    ASSERT_TRUE(session
                    .point(a.value().hash, SchemeKind::Gshare, 2, 2)
                    .ok());
    auto prep1 = session.prepared(a.value().hash);
    auto prep2 = session.prepared(b.value().hash);
    ASSERT_TRUE(prep1.ok());
    ASSERT_TRUE(prep2.ok());
    EXPECT_EQ(prep1.value().get(), prep2.value().get());
}

TEST(SweepSession, StaleEngineVersionEntriesNeverServe)
{
    // Regression for the v1 -> v2 replay-semantics bump: an entry
    // stored under an older engineVersion must never answer a current
    // request, even when trace, scheme and config key all match.
    SweepSession session;
    auto handle = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(handle.ok());
    SweepRequest request{handle.value().hash, SchemeKind::Tage,
                         smallSweep()};

    CacheKey stale = SweepSession::cacheKey(request);
    ASSERT_EQ(stale.engineVersion, kEngineVersion);
    stale.engineVersion = kEngineVersion - 1;
    // Poison pill: a recognizably wrong payload under the stale key.
    CachedSweep poison;
    poison.bhtMissRate = 0.75;
    poison.misprediction = Surface("poison");
    ASSERT_TRUE(session.cache().store(stale, poison).ok());

    auto resp = session.sweep(request);
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp.value().cacheHit)
        << "a stale-version entry served a current request";
    EXPECT_NE(resp.value().result.misprediction.name(), "poison");

    // Sanity: the same payload stored under the CURRENT key does hit.
    auto again = session.sweep(request);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again.value().cacheHit);
}

TEST(SweepSession, ZooConfigKeysCoverSchemeParameters)
{
    // TAGE keys must separate on tag width and history set -- and
    // nothing else about how the histories were spelled or ordered.
    SweepOptions a = smallSweep();
    a.tageHistories = {4, 8, 16, 32};
    SweepOptions b = smallSweep();
    b.tageHistories = {32, 16, 8, 4};
    SweepOptions c = smallSweep();
    c.tageHistories = {4, 8, 16, 48};
    const std::string ka =
        SweepSession::cacheConfigKey(SchemeKind::Tage, a);
    EXPECT_NE(ka.find("tagbits="), std::string::npos);
    EXPECT_NE(ka.find("histories="), std::string::npos);
    EXPECT_EQ(ka, SweepSession::cacheConfigKey(SchemeKind::Tage, b))
        << "history orderings must canonicalize identically";
    EXPECT_NE(ka, SweepSession::cacheConfigKey(SchemeKind::Tage, c));

    SweepOptions tag = smallSweep();
    tag.tageTagBits = 12;
    EXPECT_NE(ka, SweepSession::cacheConfigKey(SchemeKind::Tage, tag));

    // Perceptron keys separate on table count.
    SweepOptions p1 = smallSweep();
    SweepOptions p2 = smallSweep();
    p2.perceptronTables = 8;
    const std::string kp =
        SweepSession::cacheConfigKey(SchemeKind::Perceptron, p1);
    EXPECT_NE(kp.find("ptables="), std::string::npos);
    EXPECT_NE(kp,
              SweepSession::cacheConfigKey(SchemeKind::Perceptron, p2));

    // Classic schemes ignore the zoo knobs: no false key splits.
    EXPECT_EQ(SweepSession::cacheConfigKey(SchemeKind::Gshare, a),
              SweepSession::cacheConfigKey(SchemeKind::Gshare, tag));
}

TEST(SweepSession, PointRejectsDegenerateZooGeometry)
{
    // A daemon must answer a bad point request with an error, not an
    // assert: the zoo schemes require non-degenerate axes.
    SweepSession session;
    auto handle = session.internProfile(kProfile, kBranches);
    ASSERT_TRUE(handle.ok());
    const TraceHash trace = handle.value().hash;
    EXPECT_FALSE(session.point(trace, SchemeKind::Tage, 0, 5).ok());
    EXPECT_FALSE(session.point(trace, SchemeKind::Tage, 5, 0).ok());
    EXPECT_FALSE(session.point(trace, SchemeKind::Tage, 29, 5).ok());
    EXPECT_FALSE(
        session.point(trace, SchemeKind::Perceptron, 0, 5).ok());
    EXPECT_FALSE(
        session.point(trace, SchemeKind::Perceptron, 65, 5).ok());
    EXPECT_TRUE(
        session.point(trace, SchemeKind::Tage, 5, 5).ok());
    EXPECT_TRUE(
        session.point(trace, SchemeKind::Perceptron, 8, 5).ok());
}

/**
 * @file
 * Tests for the content-addressed trace registry: interning dedups by
 * hash, synthetic generation runs once per key, TraceView replays a
 * shared immutable trace without mutating it, and file interning
 * round-trips through the .bpt format.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace_io.hh"
#include "trace/trace_registry.hh"
#include "workload/profiles.hh"
#include "workload/trace_key.hh"

using namespace bpsim;

namespace {

MemoryTrace
smallTrace(const std::string &name, std::uint64_t salt = 0)
{
    MemoryTrace trace(name);
    for (std::uint64_t i = 0; i < 16; ++i) {
        BranchRecord r;
        r.pc = 0x1000 + 8 * i + salt;
        r.target = 0x2000 + 16 * i;
        r.taken = (i & 1) != 0;
        trace.append(r);
    }
    return trace;
}

} // namespace

TEST(TraceRegistry, InternDedupsByContent)
{
    TraceRegistry registry;
    TraceHandle a = registry.internTrace(smallTrace("first"));
    // Same content under a different name: the name is excluded from
    // the content hash, so this is the SAME trace.
    TraceHandle b = registry.internTrace(smallTrace("second"));
    ASSERT_TRUE(a.valid());
    ASSERT_TRUE(b.valid());
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.trace.get(), b.trace.get());
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.hits(), 1u);
    EXPECT_EQ(registry.misses(), 1u);

    TraceHandle c = registry.internTrace(smallTrace("salted", 1));
    EXPECT_NE(c.hash, a.hash);
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.residentRecords(), 32u);
}

TEST(TraceRegistry, SyntheticGenerationRunsOncePerKey)
{
    TraceRegistry registry;
    int generations = 0;
    auto generate = [&generations]() {
        ++generations;
        return smallTrace("gen");
    };
    TraceHash key{7, 9};
    TraceHandle a = registry.internSynthetic(key, generate);
    TraceHandle b = registry.internSynthetic(key, generate);
    EXPECT_EQ(generations, 1);
    EXPECT_EQ(a.trace.get(), b.trace.get());
    EXPECT_EQ(a.hash, key);
    // A different key generates again.
    registry.internSynthetic(TraceHash{7, 10}, generate);
    EXPECT_EQ(generations, 2);
}

TEST(TraceRegistry, ProfileInterningIsKeyedWithoutGeneration)
{
    TraceRegistry registry;
    auto a = internProfile(registry, "espresso", 20000);
    ASSERT_TRUE(a.ok());
    auto b = internProfile(registry, "espresso", 20000);
    ASSERT_TRUE(b.ok());
    // Second intern hits the generator key: same bytes, one copy.
    EXPECT_EQ(a.value().trace.get(), b.value().trace.get());
    EXPECT_EQ(registry.misses(), 1u);
    EXPECT_EQ(registry.hits(), 1u);
    EXPECT_EQ(a.value().hash,
              profileTraceKey("espresso", 20000).value());

    EXPECT_FALSE(internProfile(registry, "bogus").ok());
}

TEST(TraceRegistry, LookupAndEvict)
{
    TraceRegistry registry;
    TraceHandle a = registry.internTrace(smallTrace("t"));
    EXPECT_TRUE(registry.lookup(a.hash).valid());
    EXPECT_FALSE(registry.lookup(TraceHash{1, 2}).valid());

    EXPECT_TRUE(registry.evict(a.hash));
    EXPECT_FALSE(registry.evict(a.hash));
    EXPECT_FALSE(registry.lookup(a.hash).valid());
    EXPECT_EQ(registry.size(), 0u);
}

TEST(TraceRegistry, TraceViewReplaysWithoutMutatingShared)
{
    TraceRegistry registry;
    TraceHandle handle = registry.internTrace(smallTrace("view"));

    // Two independent views over the same shared bytes.
    TraceView v1(handle);
    TraceView v2(handle);
    BranchRecord r1, r2;
    std::size_t n = 0;
    while (v1.next(r1)) {
        ASSERT_TRUE(v2.next(r2));
        EXPECT_EQ(r1.pc, r2.pc);
        EXPECT_EQ(r1.taken, r2.taken);
        ++n;
    }
    EXPECT_EQ(n, handle.trace->size());
    EXPECT_FALSE(v2.next(r2));

    // reset() rewinds the view, not the trace.
    v1.reset();
    ASSERT_TRUE(v1.next(r1));
    EXPECT_EQ(r1.pc, (*handle.trace)[0].pc);
    EXPECT_EQ(v1.name(), handle.trace->name());
}

TEST(TraceRegistry, InternFileRoundTripsAndPropagatesErrors)
{
    const std::string path =
        ::testing::TempDir() + "bpsim_registry_roundtrip.bpt";
    MemoryTrace original = smallTrace("ondisk");
    {
        MemoryTrace copy = original;
        auto saved = saveTrace(copy, path);
        ASSERT_TRUE(saved.ok());
    }

    TraceRegistry registry;
    auto loaded = registry.internFile(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().hash, traceHash(original));
    EXPECT_EQ(loaded.value().trace->size(), original.size());

    EXPECT_FALSE(registry.internFile(path + ".missing").ok());
    std::remove(path.c_str());
}

/**
 * @file
 * Tests for the general two-level predictor composition and the
 * equivalences between degenerate scheme configurations.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/two_level.hh"

using namespace bpsim;

namespace {

BranchRecord
cond(Addr pc, bool taken)
{
    BranchRecord r;
    r.pc = pc;
    r.target = pc + 64;
    r.type = BranchType::Conditional;
    r.taken = taken;
    return r;
}

/** Pseudo-random but deterministic branch stream over a few sites. */
std::vector<BranchRecord>
randomStream(std::size_t n, unsigned sites = 16, std::uint64_t seed = 5)
{
    Pcg32 rng(seed);
    std::vector<BranchRecord> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Addr pc = 0x400000 + 4 * rng.nextBounded(sites);
        out.push_back(cond(pc, rng.bernoulli(0.6)));
    }
    return out;
}

std::uint64_t
mispredicts(BranchPredictor &p, const std::vector<BranchRecord> &stream)
{
    std::uint64_t wrong = 0;
    for (const auto &rec : stream)
        wrong += p.onBranch(rec) != rec.taken;
    return wrong;
}

} // namespace

TEST(TwoLevel, NameReflectsSchemeAndGeometry)
{
    EXPECT_EQ(makeGAs(6, 4)->name(), "GAs 2^6 x 2^4");
    EXPECT_EQ(makeGshare(10, 0)->name(), "gshare 2^10 x 2^0");
    EXPECT_EQ(makeAddressIndexed(12)->name(), "addr 2^0 x 2^12");
    EXPECT_EQ(makeGAg(8)->name(), "GAs 2^8 x 2^0");
    EXPECT_EQ(makePath(6, 2)->name(), "path 2^6 x 2^2");
}

TEST(TwoLevel, CounterCountMatchesGeometry)
{
    EXPECT_EQ(makeGAs(6, 4)->counterCount(), 1024u);
    EXPECT_EQ(makeAddressIndexed(0)->counterCount(), 1u);
}

TEST(TwoLevel, LearnsASteadyBranch)
{
    auto p = makeAddressIndexed(4);
    std::uint64_t wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += p->onBranch(cond(0x400100, false)) != false;
    // Initial weakly-taken counter costs at most 2 mispredictions.
    EXPECT_LE(wrong, 2u);
}

TEST(TwoLevel, GAgLearnsAnAlternatingBranchViaHistory)
{
    auto gag = makeGAg(4);
    auto bimodal = makeAddressIndexed(4);
    std::uint64_t gag_wrong = 0, bim_wrong = 0;
    for (int i = 0; i < 400; ++i) {
        BranchRecord r = cond(0x400100, i % 2 == 0);
        gag_wrong += gag->onBranch(r) != r.taken;
        bim_wrong += bimodal->onBranch(r) != r.taken;
    }
    EXPECT_LT(gag_wrong, 20u);   // history nails the alternation
    EXPECT_GT(bim_wrong, 150u);  // a two-bit counter cannot
}

TEST(TwoLevel, PAsLearnsPerBranchPeriodicity)
{
    auto pas = makePAsPerfect(4, 2);
    std::uint64_t wrong = 0;
    for (int i = 0; i < 600; ++i) {
        // Two interleaved branches with different periods, in distinct
        // columns so the test isolates the first level.
        BranchRecord a = cond(0x400100, i % 3 != 2);
        BranchRecord b = cond(0x400104, i % 4 != 3);
        wrong += pas->onBranch(a) != a.taken;
        wrong += pas->onBranch(b) != b.taken;
    }
    EXPECT_LT(wrong, 60u);
}

TEST(TwoLevel, GAgEqualsSingleColumnGAs)
{
    auto gag = makeGAg(6);
    auto gas = makeGAs(6, 0);
    auto stream = randomStream(4000);
    EXPECT_EQ(mispredicts(*gag, stream), mispredicts(*gas, stream));
}

TEST(TwoLevel, ZeroHistoryGAsEqualsAddressIndexed)
{
    auto gas = makeGAs(0, 8);
    auto addr = makeAddressIndexed(8);
    auto stream = randomStream(4000);
    EXPECT_EQ(mispredicts(*gas, stream), mispredicts(*addr, stream));
}

TEST(TwoLevel, ZeroHistoryGshareEqualsAddressIndexed)
{
    // The paper notes the leftmost gshare configurations coincide with
    // address-indexed prediction.
    auto gsh = makeGshare(0, 8);
    auto addr = makeAddressIndexed(8);
    auto stream = randomStream(4000);
    EXPECT_EQ(mispredicts(*gsh, stream), mispredicts(*addr, stream));
}

TEST(TwoLevel, ZeroHistoryPAsEqualsAddressIndexed)
{
    auto pas = makePAsPerfect(0, 8);
    auto addr = makeAddressIndexed(8);
    auto stream = randomStream(4000);
    EXPECT_EQ(mispredicts(*pas, stream), mispredicts(*addr, stream));
}

TEST(TwoLevel, HugeBhtMatchesPerfectFirstLevel)
{
    // A BHT too large to ever evict behaves exactly like the unbounded
    // map (after the shared cold-start reset, which differs: perfect
    // starts at zero history, BHT at the 0xC3FF prefix -- so compare
    // with history bits 0 where the reset value is irrelevant... use
    // instead a stream long enough that cold-start noise is bounded).
    auto perfect = makePAsPerfect(6, 4);
    auto finite = makePAsFinite(6, 4, 1 << 14, 4);
    auto stream = randomStream(20'000, 32);
    auto a = mispredicts(*perfect, stream);
    auto b = mispredicts(*finite, stream);
    // Only the 32 cold-start resets (6 bits each) can differ.
    EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
                32.0 * 6.0);
}

TEST(TwoLevel, ResetRestoresInitialBehaviour)
{
    auto p = makeGshare(8, 2);
    auto stream = randomStream(3000);
    auto first = mispredicts(*p, stream);
    p->reset();
    auto second = mispredicts(*p, stream);
    EXPECT_EQ(first, second);
}

TEST(TwoLevel, AliasTrackingOnlyWhenRequested)
{
    auto with = makeGAs(4, 4, /*track_aliasing=*/true);
    auto without = makeGAs(4, 4, false);
    EXPECT_NE(with->pht().aliasStats(), nullptr);
    EXPECT_EQ(without->pht().aliasStats(), nullptr);

    auto stream = randomStream(2000);
    mispredicts(*with, stream);
    EXPECT_EQ(with->pht().aliasStats()->accesses(), 2000u);
}

TEST(TwoLevel, TrackingDoesNotChangePredictions)
{
    auto with = makeGAs(5, 3, true);
    auto without = makeGAs(5, 3, false);
    auto stream = randomStream(3000);
    EXPECT_EQ(mispredicts(*with, stream),
              mispredicts(*without, stream));
}

TEST(TwoLevelDeathTest, NonConditionalRecordRejected)
{
    auto p = makeAddressIndexed(4);
    BranchRecord r;
    r.pc = 0x100;
    r.type = BranchType::Call;
    EXPECT_DEATH(p->onBranch(r), "non-conditional");
}

TEST(TwoLevel, RowSelectorAccessible)
{
    auto p = makeGAs(6, 2);
    EXPECT_EQ(p->rowSelector().schemeName(), "GAs");
}

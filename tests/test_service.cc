/**
 * @file
 * In-process tests of the sweep daemon: every protocol verb through
 * SweepServer::handleLine, the central bit-identity contract (a sweep
 * served over the wire decodes to exactly the surfaces a direct
 * SweepSession computes), error classification, and the registry
 * extension points (a custom workload and a custom scheme alias are
 * served like builtins).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "service/server.hh"
#include "sim/sweep_session.hh"
#include "trace/trace_io.hh"
#include "workload/profiles.hh"
#include "workload/synthetic.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace {

constexpr const char *kProfile = "compress";
constexpr std::uint64_t kBranches = 20000;

SweepOptions
smallSweep()
{
    SweepOptions opts;
    opts.minTotalBits = 4;
    opts.maxTotalBits = 7;
    return opts;
}

JsonValue
handle(SweepServer &server, const std::string &line)
{
    Result<JsonValue> parsed = parseJson(server.handleLine(line));
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

bool
isOk(const JsonValue &response)
{
    const JsonValue *ok = response.find("ok");
    return ok && ok->isBool() && ok->asBool();
}

std::string
errorCode(const JsonValue &response)
{
    const JsonValue *error = response.find("error");
    if (!error)
        return "";
    const JsonValue *code = error->find("code");
    return code && code->isString() ? code->asString() : "";
}

/** Decode a wire surface and compare bit-exactly against @p expect. */
void
expectWireSurfaceIdentical(const JsonValue &wire,
                           const Surface &expect)
{
    ASSERT_TRUE(wire.isArray());
    ASSERT_EQ(wire.array().size(), expect.tiers().size());
    for (std::size_t t = 0; t < expect.tiers().size(); ++t) {
        const SurfaceTier &tier = expect.tiers()[t];
        const JsonValue &wt = wire.array()[t];
        EXPECT_EQ(wt.find("total_bits")->asInt(),
                  static_cast<std::int64_t>(tier.totalBits));
        const JsonValue *points = wt.find("points");
        ASSERT_TRUE(points && points->isArray());
        ASSERT_EQ(points->array().size(), tier.points.size());
        for (std::size_t p = 0; p < tier.points.size(); ++p) {
            const JsonValue &wp = points->array()[p];
            EXPECT_EQ(wp.find("row_bits")->asInt(),
                      static_cast<std::int64_t>(
                          tier.points[p].rowBits));
            EXPECT_EQ(wp.find("col_bits")->asInt(),
                      static_cast<std::int64_t>(
                          tier.points[p].colBits));
            const double wire_value =
                wp.find("value")->asDouble();
            EXPECT_EQ(std::memcmp(&wire_value,
                                  &tier.points[p].value,
                                  sizeof(double)),
                      0)
                << expect.name() << " tier " << tier.totalBits
                << " point " << p;
        }
    }
}

std::string
sweepLine(const std::string &scheme, unsigned min_bits,
          unsigned max_bits)
{
    return std::string("{\"op\":\"sweep\",\"id\":\"s\",\"trace\":"
                       "{\"profile\":\"") +
           kProfile + "\",\"branches\":" +
           std::to_string(kBranches) + "},\"scheme\":\"" + scheme +
           "\",\"options\":{\"min_bits\":" +
           std::to_string(min_bits) +
           ",\"max_bits\":" + std::to_string(max_bits) + "}}";
}

TEST(Service, PingEchoesId)
{
    SweepServer server;
    JsonValue response =
        handle(server, "{\"op\":\"ping\",\"id\":\"hello\"}");
    EXPECT_TRUE(isOk(response));
    EXPECT_EQ(response.find("id")->asString(), "hello");
    EXPECT_EQ(response.find("op")->asString(), "ping");
}

TEST(Service, SweepMatchesDirectSessionBitForBit)
{
    SweepServer server;
    JsonValue response = handle(server, sweepLine("gshare", 4, 7));
    ASSERT_TRUE(isOk(response)) << server.handleLine(sweepLine(
        "gshare", 4, 7));

    // The reference: a direct in-process session with same options.
    SweepSession session;
    TraceHandle trace = session.internProfile(kProfile, kBranches)
                            .value();
    SweepResponse direct =
        session
            .sweep(SweepRequest{trace.hash, SchemeKind::Gshare,
                                smallSweep()})
            .value();

    EXPECT_EQ(response.find("trace")->asString(), trace.hash.hex());
    EXPECT_EQ(response.find("scheme")->asString(), "gshare");
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    expectWireSurfaceIdentical(*result->find("misprediction"),
                               direct.result.misprediction);
    expectWireSurfaceIdentical(*result->find("aliasing"),
                               direct.result.aliasing);
    expectWireSurfaceIdentical(*result->find("harmless"),
                               direct.result.harmless);
    const double wire_miss =
        result->find("bht_miss_rate")->asDouble();
    EXPECT_EQ(std::memcmp(&wire_miss, &direct.result.bhtMissRate,
                          sizeof(double)),
              0);
}

TEST(Service, RepeatedSweepHitsTheCache)
{
    SweepServer server;
    JsonValue first = handle(server, sweepLine("GAs", 4, 6));
    ASSERT_TRUE(isOk(first));
    EXPECT_FALSE(first.find("cache_hit")->asBool());
    JsonValue second = handle(server, sweepLine("GAs", 4, 6));
    ASSERT_TRUE(isOk(second));
    EXPECT_TRUE(second.find("cache_hit")->asBool());
    ASSERT_TRUE(first.find("result"));
    ASSERT_TRUE(second.find("result"));
    // Cached responses are byte-identical on the wire too.
    EXPECT_EQ(first.find("result")->render(),
              second.find("result")->render());
}

TEST(Service, InternThenSweepByHash)
{
    SweepServer server;
    JsonValue interned = handle(
        server, std::string("{\"op\":\"intern\",\"trace\":"
                            "{\"profile\":\"") +
                    kProfile + "\",\"branches\":" +
                    std::to_string(kBranches) + "}}");
    ASSERT_TRUE(isOk(interned));
    const std::string hash = interned.find("trace")->asString();
    EXPECT_GT(interned.find("records")->asInt(), 0);

    JsonValue swept = handle(
        server,
        "{\"op\":\"sweep\",\"trace\":{\"hash\":\"" + hash +
            "\"},\"scheme\":\"GAg\",\"options\":{\"min_bits\":4,"
            "\"max_bits\":6}}");
    EXPECT_TRUE(isOk(swept));
    EXPECT_EQ(swept.find("trace")->asString(), hash);
}

TEST(Service, SweepByFileAndPoint)
{
    const std::string path =
        ::testing::TempDir() + "service_trace.bpt";
    MemoryTrace trace =
        generateTrace(profileParams(kProfile, kBranches));
    ASSERT_TRUE(saveTrace(trace, path).ok());

    SweepServer server;
    JsonValue swept = handle(
        server, "{\"op\":\"sweep\",\"trace\":{\"file\":\"" + path +
                    "\"},\"scheme\":\"addr\",\"options\":"
                    "{\"min_bits\":4,\"max_bits\":6,"
                    "\"aliasing\":false}}");
    EXPECT_TRUE(isOk(swept));

    JsonValue point = handle(
        server, "{\"op\":\"point\",\"trace\":{\"file\":\"" + path +
                    "\"},\"scheme\":\"GAs\",\"row_bits\":3,"
                    "\"col_bits\":3}");
    ASSERT_TRUE(isOk(point));
    EXPECT_GE(point.find("misp_rate")->asDouble(), 0.0);
    EXPECT_LE(point.find("misp_rate")->asDouble(), 1.0);

    std::filesystem::remove(path);
}

TEST(Service, PointMatchesDirectSimulateConfig)
{
    SweepServer server;
    JsonValue point = handle(
        server, std::string("{\"op\":\"point\",\"trace\":"
                            "{\"profile\":\"") +
                    kProfile + "\",\"branches\":" +
                    std::to_string(kBranches) +
                    "},\"scheme\":\"gshare\",\"row_bits\":4,"
                    "\"col_bits\":3}");
    ASSERT_TRUE(isOk(point));

    SweepSession session;
    TraceHandle trace =
        session.internProfile(kProfile, kBranches).value();
    ConfigResult direct =
        session.point(trace.hash, SchemeKind::Gshare, 4, 3).value();
    const double wire = point.find("misp_rate")->asDouble();
    EXPECT_EQ(std::memcmp(&wire, &direct.mispRate, sizeof(double)),
              0);
}

TEST(Service, ErrorClassification)
{
    SweepServer server;
    EXPECT_EQ(errorCode(handle(server, "not json at all")),
              "bad_json");
    EXPECT_EQ(errorCode(handle(server, "{\"op\":\"warp\"}")),
              "bad_request");
    EXPECT_EQ(errorCode(handle(
                  server,
                  "{\"op\":\"sweep\",\"trace\":{\"profile\":"
                  "\"compress\",\"branches\":20000},\"scheme\":"
                  "\"yags\"}")),
              "unknown_scheme");
    EXPECT_EQ(errorCode(handle(
                  server,
                  "{\"op\":\"sweep\",\"trace\":{\"profile\":"
                  "\"no_such_profile\"},\"scheme\":\"GAs\"}")),
              "unknown_profile");
    EXPECT_EQ(
        errorCode(handle(
            server,
            "{\"op\":\"sweep\",\"trace\":{\"hash\":"
            "\"0000000000000001000000000000beef\"},\"scheme\":"
            "\"GAs\",\"options\":{\"min_bits\":4,\"max_bits\":5}}")),
        "failed");
    EXPECT_EQ(errorCode(handle(
                  server,
                  std::string(server.options().limits.maxLineBytes +
                                  1,
                              ' '))),
              "oversized_line");

    // The id is echoed even on malformed requests, and the server
    // keeps serving after every error.
    JsonValue err =
        handle(server, "{\"op\":\"nope\",\"id\":\"keepme\"}");
    EXPECT_EQ(err.find("id")->asString(), "keepme");
    EXPECT_TRUE(
        isOk(handle(server, "{\"op\":\"ping\",\"id\":\"alive\"}")));
}

TEST(Service, StatsAndCatalogReportState)
{
    SweepServer server;
    handle(server, sweepLine("gshare", 4, 5));
    handle(server, sweepLine("gshare", 4, 5));
    // A fused replay (aliasing off) so the kernel telemetry below has
    // an envelope execution to describe.
    handle(server,
           std::string("{\"op\":\"sweep\",\"trace\":{\"profile\":\"") +
               kProfile + "\",\"branches\":" +
               std::to_string(kBranches) +
               "},\"scheme\":\"gshare\",\"options\":{\"min_bits\":4,"
               "\"max_bits\":5,\"aliasing\":false}}");
    handle(server, "definitely not json");

    JsonValue stats = handle(server, "{\"op\":\"stats\"}");
    ASSERT_TRUE(isOk(stats));
    EXPECT_GE(stats.find("requests")->asInt(), 4);
    EXPECT_GE(stats.find("errors")->asInt(), 1);
    const JsonValue *queue = stats.find("queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_GE(queue->find("submissions")->asInt(), 2);
    EXPECT_GE(queue->find("cache_hits")->asInt(), 1);
    EXPECT_EQ(stats.find("traces_interned")->asInt(), 1);

    // Kernel telemetry from the envelope replay the first sweep ran
    // (the repeat was a cache hit and contributes nothing).
    const JsonValue *kernel = stats.find("kernel");
    ASSERT_NE(kernel, nullptr);
    EXPECT_FALSE(kernel->find("target")->asString().empty());
    EXPECT_GE(kernel->find("fused_groups")->asInt(), 1);
    EXPECT_GE(kernel->find("lanes")->asInt(), 1);
    EXPECT_GE(kernel->find("segments")->asInt(),
              kernel->find("fused_groups")->asInt());
    EXPECT_GE(kernel->find("lane_shards")->asInt(),
              kernel->find("fused_groups")->asInt());
    EXPECT_GE(kernel->find("shard_tasks")->asInt(),
              kernel->find("fused_groups")->asInt());
    EXPECT_GE(kernel->find("segments_per_group")->asDouble(), 1.0);
    EXPECT_GE(kernel->find("shards_per_group")->asDouble(), 1.0);
    ASSERT_NE(kernel->find("worker_utilization"), nullptr);
    ASSERT_NE(kernel->find("warmup_branches"), nullptr);

    JsonValue catalog = handle(server, "{\"op\":\"catalog\"}");
    ASSERT_TRUE(isOk(catalog));
    const JsonValue *schemes = catalog.find("schemes");
    const JsonValue *workloads = catalog.find("workloads");
    ASSERT_TRUE(schemes && schemes->isArray());
    ASSERT_TRUE(workloads && workloads->isArray());
    EXPECT_GE(schemes->array().size(), 7u);
    EXPECT_EQ(workloads->array().size(), 14u);
}

TEST(Service, ShutdownSetsTheFlag)
{
    SweepServer server;
    EXPECT_FALSE(server.shutdownRequested());
    JsonValue response =
        handle(server, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
    EXPECT_TRUE(isOk(response));
    EXPECT_TRUE(server.shutdownRequested());
}

TEST(Service, CustomWorkloadAndSchemeAliasServeLikeBuiltins)
{
    // The extension point: a host registers a bespoke workload and
    // its own scheme alias, and the protocol serves both.
    WorkloadRegistry workloads = WorkloadRegistry::withBuiltins();
    ASSERT_TRUE(workloads
                    .registerWorkload(
                        "tiny_loop",
                        [](SweepSession &session, std::uint64_t n) {
                            WorkloadParams params =
                                profileParams("compress",
                                              n ? n : 5000);
                            return Result<TraceHandle>(
                                session.internTrace(
                                    generateTrace(params)));
                        })
                    .ok());
    // Duplicate registration is refused.
    EXPECT_FALSE(
        workloads.registerWorkload("tiny_loop", nullptr).ok());

    SchemeRegistry schemes = SchemeRegistry::withBuiltins();
    ASSERT_TRUE(
        schemes.registerScheme("mcfarling", SchemeKind::Gshare)
            .ok());

    SweepServer server(ServerOptions{}, std::move(schemes),
                       std::move(workloads));
    JsonValue response = handle(
        server,
        "{\"op\":\"sweep\",\"trace\":{\"profile\":\"tiny_loop\"},"
        "\"scheme\":\"mcfarling\",\"options\":{\"min_bits\":4,"
        "\"max_bits\":6}}");
    EXPECT_TRUE(isOk(response));
    EXPECT_EQ(response.find("scheme")->asString(), "gshare");

    JsonValue catalog = handle(server, "{\"op\":\"catalog\"}");
    bool found = false;
    for (const JsonValue &name :
         catalog.find("workloads")->array())
        found = found || name.asString() == "tiny_loop";
    EXPECT_TRUE(found);
}

TEST(Service, BatchQueueCountsSubmissions)
{
    SweepServer server;
    SweepSession session;
    TraceHandle trace =
        session.internProfile(kProfile, kBranches).value();
    // Same trace interned through the server's own session.
    handle(server, sweepLine("gshare", 4, 5));

    Result<SweepResponse> direct = server.submitSweep(SweepRequest{
        session.internProfile(kProfile, kBranches).value().hash,
        SchemeKind::Gshare, smallSweep()});
    ASSERT_TRUE(direct.ok());
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.queue.submissions, 2u);
    EXPECT_GE(stats.queue.drains, 2u);
    static_cast<void>(trace);
}

TEST(Service, ZooSchemesServeWithStructuredOptions)
{
    SweepServer server;

    // Both zoo schemes are first-class catalog citizens.
    JsonValue catalog = handle(server, "{\"op\":\"catalog\"}");
    ASSERT_TRUE(isOk(catalog));
    bool has_tage = false;
    bool has_perceptron = false;
    for (const JsonValue &name : catalog.find("schemes")->array()) {
        has_tage = has_tage || name.asString() == "tage";
        has_perceptron =
            has_perceptron || name.asString() == "perceptron";
    }
    EXPECT_TRUE(has_tage);
    EXPECT_TRUE(has_perceptron);

    // A TAGE sweep with the full option set matches a direct session
    // bit for bit.
    JsonValue resp = handle(
        server,
        std::string("{\"op\":\"sweep\",\"trace\":{\"profile\":\"") +
            kProfile + "\",\"branches\":" +
            std::to_string(kBranches) +
            "},\"scheme\":\"tage\",\"options\":{\"min_bits\":4,"
            "\"max_bits\":6,\"tage_tag_bits\":6,"
            "\"tage_histories\":[2,5,11]}}");
    ASSERT_TRUE(isOk(resp)) << errorCode(resp);
    EXPECT_EQ(resp.find("scheme")->asString(), "tage");

    SweepSession direct;
    TraceHandle trace =
        direct.internProfile(kProfile, kBranches).value();
    SweepOptions opts = smallSweep();
    opts.maxTotalBits = 6;
    opts.tageTagBits = 6;
    opts.tageHistories = {2, 5, 11};
    SweepResponse expect =
        direct.sweep(SweepRequest{trace.hash, SchemeKind::Tage, opts})
            .value();
    const JsonValue *result = resp.find("result");
    ASSERT_NE(result, nullptr);
    expectWireSurfaceIdentical(*result->find("misprediction"),
                               expect.result.misprediction);

    // Perceptron serves too, and a point probe round-trips.
    EXPECT_TRUE(isOk(handle(
        server,
        std::string("{\"op\":\"sweep\",\"trace\":{\"profile\":\"") +
            kProfile + "\",\"branches\":" +
            std::to_string(kBranches) +
            "},\"scheme\":\"perceptron\",\"options\":{\"min_bits\":4,"
            "\"max_bits\":6,\"perceptron_tables\":3}}")));
    EXPECT_TRUE(isOk(handle(
        server,
        std::string("{\"op\":\"point\",\"trace\":{\"profile\":\"") +
            kProfile + "\",\"branches\":" +
            std::to_string(kBranches) +
            "},\"scheme\":\"tage\",\"row_bits\":5,\"col_bits\":5}")));
}

TEST(Service, ZooOptionValidationRejectsBadGeometry)
{
    SweepServer server;
    auto sweep_with = [&](const std::string &options) {
        return errorCode(handle(
            server,
            std::string(
                "{\"op\":\"sweep\",\"trace\":{\"profile\":\"") +
                kProfile + "\",\"branches\":" +
                std::to_string(kBranches) +
                "},\"scheme\":\"tage\",\"options\":{\"min_bits\":4,"
                "\"max_bits\":6," +
                options + "}}"));
    };
    // tage_histories must be a non-empty, <= 8 entry, strictly
    // ascending array of 1..64 -- each violation is a structured
    // bad_request, never a crash.
    EXPECT_EQ(sweep_with("\"tage_histories\":7"), "bad_request");
    EXPECT_EQ(sweep_with("\"tage_histories\":[]"), "bad_request");
    EXPECT_EQ(sweep_with("\"tage_histories\":[8,4]"), "bad_request");
    EXPECT_EQ(sweep_with("\"tage_histories\":[4,4]"), "bad_request");
    EXPECT_EQ(sweep_with("\"tage_histories\":[4,8,65]"),
              "bad_request");
    EXPECT_EQ(sweep_with(
                  "\"tage_histories\":[1,2,3,4,5,6,7,8,9]"),
              "bad_request");
    EXPECT_EQ(sweep_with("\"tage_tag_bits\":1"), "bad_request");
    EXPECT_EQ(sweep_with("\"tage_tag_bits\":17"), "bad_request");
    EXPECT_EQ(sweep_with("\"perceptron_tables\":1"), "bad_request");

    // A degenerate zoo point is a structured error, not an assert.
    EXPECT_EQ(
        errorCode(handle(
            server,
            std::string(
                "{\"op\":\"point\",\"trace\":{\"profile\":\"") +
                kProfile + "\",\"branches\":" +
                std::to_string(kBranches) +
                "},\"scheme\":\"tage\",\"row_bits\":0,"
                "\"col_bits\":5}")),
        "failed");

    // The server keeps serving.
    EXPECT_TRUE(isOk(handle(server, "{\"op\":\"ping\"}")));
}

TEST(Service, SpecStringSchemeNamesGetAHint)
{
    // A client pasting a factory spec string ("tage:12:10:8:4,8,16,32")
    // into the scheme field gets unknown_scheme plus a pointer at the
    // structured options, for every spec-ish shape.
    SweepServer server;
    for (const char *name :
         {"tage:12:10", "tage:12:10:8:4,8,16,32", "perceptron:16:10",
          "tournament(gshare:8,GAs:4:4)", "4,8,16,32"}) {
        JsonValue resp = handle(
            server,
            std::string(
                "{\"op\":\"sweep\",\"trace\":{\"profile\":\"") +
                kProfile + "\",\"branches\":" +
                std::to_string(kBranches) + "},\"scheme\":\"" + name +
                "\",\"options\":{\"min_bits\":4,\"max_bits\":5}}");
        EXPECT_EQ(errorCode(resp), "unknown_scheme") << name;
        const JsonValue *error = resp.find("error");
        ASSERT_NE(error, nullptr) << name;
        const std::string message =
            error->find("message")->asString();
        EXPECT_NE(message.find("options"), std::string::npos)
            << "hint missing for " << name << ": " << message;
    }
}

} // namespace

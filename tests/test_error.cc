/**
 * @file
 * Tests for the recoverable error layer (common/error.hh): Error
 * carries its raise site, Status and Result propagate cleanly, and
 * misuse (unwrapping the wrong alternative) panics rather than
 * returning garbage.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"

using namespace bpsim;

namespace {

Result<int>
parsePositive(int v)
{
    if (v <= 0)
        return BPSIM_ERROR("value ", v, " is not positive");
    return v;
}

Status
checkEven(int v)
{
    if (v % 2 != 0)
        return BPSIM_ERROR("value ", v, " is odd");
    return Status();
}

} // namespace

TEST(Error, CarriesMessageAndRaiseSite)
{
    Error e = BPSIM_ERROR("widget ", 7, " exploded");
    int raise_line = __LINE__ - 1;
    EXPECT_EQ(e.message(), "widget 7 exploded");
    ASSERT_NE(e.file(), nullptr);
    EXPECT_NE(std::string(e.file()).find("test_error.cc"),
              std::string::npos);
    EXPECT_EQ(e.line(), raise_line);
    EXPECT_NE(e.describe().find("widget 7 exploded ("),
              std::string::npos);
}

TEST(Error, DescribeWithoutSiteIsJustTheMessage)
{
    Error e("plain message");
    EXPECT_EQ(e.describe(), "plain message");
}

TEST(Status, DefaultIsSuccess)
{
    Status st;
    EXPECT_TRUE(st.ok());
}

TEST(Status, PropagatesError)
{
    Status st = checkEven(3);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().message(), "value 3 is odd");
    EXPECT_TRUE(checkEven(4).ok());
}

TEST(Result, HoldsValue)
{
    auto r = parsePositive(5);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 5);
    EXPECT_EQ(r.valueOr(-1), 5);
}

TEST(Result, HoldsError)
{
    auto r = parsePositive(-2);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().message(), "value -2 is not positive");
    EXPECT_EQ(r.valueOr(-1), -1);
    EXPECT_FALSE(r.status().ok());
    EXPECT_EQ(r.status().error().message(),
              "value -2 is not positive");
}

TEST(Result, StatusOfSuccessIsOk)
{
    EXPECT_TRUE(parsePositive(1).status().ok());
}

TEST(Result, MoveOnlyValuesWork)
{
    auto make = []() -> Result<std::unique_ptr<int>> {
        return std::make_unique<int>(42);
    };
    auto r = make();
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> v = std::move(r).value();
    EXPECT_EQ(*v, 42);
}

TEST(Result, LargeValuesRoundTrip)
{
    auto make = []() -> Result<std::vector<int>> {
        return std::vector<int>{1, 2, 3};
    };
    EXPECT_EQ(make().value().size(), 3u);
}

TEST(ErrorDeathTest, UnwrappingErrorResultPanics)
{
    EXPECT_DEATH(parsePositive(-1).value(), "error Result");
}

TEST(ErrorDeathTest, TakingErrorOfSuccessPanics)
{
    EXPECT_DEATH(parsePositive(1).error(), "success Result");
    EXPECT_DEATH(Status().error(), "success Status");
}

/**
 * @file
 * Tests for the sweep-result surface container that backs the paper's
 * figure reproductions.
 */

#include <gtest/gtest.h>

#include "stats/surface.hh"

using namespace bpsim;

namespace {

Surface
makeSample()
{
    Surface s("sample");
    // Tier 4 (16 counters): r = 0..2 present.
    s.add(4, 0, 4, 0.20);
    s.add(4, 1, 3, 0.15);
    s.add(4, 2, 2, 0.18);
    // Tier 6: one point.
    s.add(6, 3, 3, 0.10);
    return s;
}

} // namespace

TEST(Surface, StoresPointsByTier)
{
    Surface s = makeSample();
    ASSERT_EQ(s.tiers().size(), 2u);
    const SurfaceTier *t4 = s.tier(4);
    ASSERT_NE(t4, nullptr);
    EXPECT_EQ(t4->points.size(), 3u);
    EXPECT_EQ(s.tier(5), nullptr);
}

TEST(Surface, AtLooksUpExactCoordinates)
{
    Surface s = makeSample();
    auto v = s.at(4, 1);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 0.15);
    EXPECT_FALSE(s.at(4, 3).has_value());
    EXPECT_FALSE(s.at(9, 0).has_value());
}

TEST(Surface, BestInTierIsMinimum)
{
    Surface s = makeSample();
    auto best = s.bestInTier(4);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->rowBits, 1u);
    EXPECT_EQ(best->colBits, 3u);
    EXPECT_DOUBLE_EQ(best->value, 0.15);
}

TEST(Surface, BestInMissingTierIsNullopt)
{
    Surface s = makeSample();
    EXPECT_FALSE(s.bestInTier(12).has_value());
}

TEST(Surface, BestIndexTieBreaksToFirst)
{
    SurfaceTier t;
    t.totalBits = 4;
    t.points = {{0, 4, 0.1}, {1, 3, 0.1}};
    auto idx = t.bestIndex();
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 0u);
}

TEST(Surface, DifferenceMatchesCommonCoordinates)
{
    Surface a = makeSample();
    Surface b("other");
    b.add(4, 0, 4, 0.18);
    b.add(4, 1, 3, 0.20);
    // no tier-6 point in b

    Surface d = a.difference(b, "a-b");
    EXPECT_EQ(d.name(), "a-b");
    auto v0 = d.at(4, 0);
    ASSERT_TRUE(v0.has_value());
    EXPECT_NEAR(*v0, 0.02, 1e-12);
    auto v1 = d.at(4, 1);
    ASSERT_TRUE(v1.has_value());
    EXPECT_NEAR(*v1, -0.05, 1e-12);
    // a's (4,2) and (6,3) have no counterpart: absent from difference.
    EXPECT_FALSE(d.at(4, 2).has_value());
    EXPECT_FALSE(d.at(6, 3).has_value());
}

TEST(Surface, RenderMarksBestInTier)
{
    Surface s = makeSample();
    std::string out = s.render();
    EXPECT_NE(out.find("sample"), std::string::npos);
    EXPECT_NE(out.find("*"), std::string::npos);
    // 16-counter tier header.
    EXPECT_NE(out.find("16"), std::string::npos);
}

TEST(Surface, RenderSignedShowsSigns)
{
    Surface a = makeSample();
    Surface b = makeSample();
    Surface d = a.difference(b, "zero");
    std::string out = d.render(true, true);
    EXPECT_NE(out.find("+"), std::string::npos);
}

TEST(Surface, CsvHasHeaderAndRows)
{
    Surface s = makeSample();
    std::string csv = s.renderCsv();
    EXPECT_NE(csv.find("surface,total_bits,row_bits,col_bits,value"),
              std::string::npos);
    EXPECT_NE(csv.find("sample,4,1,3,0.150000"), std::string::npos);
    EXPECT_NE(csv.find("sample,6,3,3,0.100000"), std::string::npos);
}

TEST(SurfaceDeathTest, InconsistentCoordinatesPanic)
{
    Surface s("bad");
    EXPECT_DEATH(s.add(4, 3, 3, 0.1), "!= tier");
}

TEST(Surface, EmptyTierHasNoBest)
{
    SurfaceTier t;
    EXPECT_FALSE(t.bestIndex().has_value());
}

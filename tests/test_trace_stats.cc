/**
 * @file
 * Tests for the Table 1 / Table 2 trace characterisation machinery,
 * against hand-built traces with known answers.
 */

#include <gtest/gtest.h>

#include "trace/memory_trace.hh"
#include "trace/trace_stats.hh"

using namespace bpsim;

namespace {

void
addCond(MemoryTrace &t, Addr pc, bool taken, std::uint32_t gap = 0,
        bool kernel = false)
{
    BranchRecord r;
    r.pc = pc;
    r.target = pc + 16;
    r.type = BranchType::Conditional;
    r.taken = taken;
    r.instGap = gap;
    r.kernel = kernel;
    t.append(r);
}

/** n executions of pc, all taken. */
void
addMany(MemoryTrace &t, Addr pc, int n, bool taken = true)
{
    for (int i = 0; i < n; ++i)
        addCond(t, pc, taken);
}

} // namespace

TEST(TraceCharacterization, DynamicInstructionCount)
{
    MemoryTrace t;
    addCond(t, 0x100, true, 4); // 4 plain + the branch = 5
    addCond(t, 0x104, true, 0); // 1
    BranchRecord call;
    call.pc = 0x108;
    call.target = 0x200;
    call.type = BranchType::Call;
    call.instGap = 2;
    t.append(call); // 3
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.dynamicInstructions(), 9u);
    EXPECT_EQ(ch.dynamicConditionals(), 2u);
    EXPECT_NEAR(ch.conditionalDensity(), 2.0 / 9.0, 1e-12);
}

TEST(TraceCharacterization, StaticCounts)
{
    MemoryTrace t;
    addMany(t, 0x100, 10);
    addMany(t, 0x200, 5);
    addMany(t, 0x300, 1);
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.staticConditionals(), 3u);
    EXPECT_EQ(ch.dynamicConditionals(), 16u);
}

TEST(TraceCharacterization, CoverageCounts)
{
    MemoryTrace t;
    addMany(t, 0x100, 90);
    addMany(t, 0x200, 9);
    addMany(t, 0x300, 1);
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.staticCovering(0.50), 1u);
    EXPECT_EQ(ch.staticCovering(0.90), 1u);
    EXPECT_EQ(ch.staticCovering(0.95), 2u);
    EXPECT_EQ(ch.staticCovering(1.00), 3u);
}

TEST(TraceCharacterization, FrequencyQuartilesSumToStatics)
{
    MemoryTrace t;
    addMany(t, 0x100, 50);
    addMany(t, 0x200, 40);
    addMany(t, 0x300, 9);
    addMany(t, 0x400, 1);
    auto ch = TraceCharacterization::measure(t);
    auto q = ch.frequencyQuartiles();
    ASSERT_EQ(q.size(), 4u);
    EXPECT_EQ(q[0] + q[1] + q[2] + q[3], ch.staticConditionals());
    // The 50-instance branch alone is the first 50%.
    EXPECT_EQ(q[0], 1u);
    EXPECT_EQ(q[1], 1u);
    EXPECT_EQ(q[2], 1u);
    EXPECT_EQ(q[3], 1u);
}

TEST(TraceCharacterization, BiasFraction)
{
    MemoryTrace t;
    addMany(t, 0x100, 99, true); // bias 1.0 over 99+1
    addCond(t, 0x100, false);    // now 99/100 taken -> bias 0.99
    for (int i = 0; i < 50; ++i)
        addCond(t, 0x200, i % 2 == 0); // bias 0.5
    auto ch = TraceCharacterization::measure(t);
    // 100 of 150 instances from the biased branch.
    EXPECT_NEAR(ch.dynamicFractionBiasedAbove(0.9), 100.0 / 150.0,
                1e-12);
    EXPECT_NEAR(ch.dynamicFractionBiasedAbove(0.999), 0.0, 1e-12);
}

TEST(TraceCharacterization, BiasCountsNotTakenBiasToo)
{
    MemoryTrace t;
    addMany(t, 0x100, 100, false); // always not taken = bias 1.0
    auto ch = TraceCharacterization::measure(t);
    EXPECT_DOUBLE_EQ(ch.dynamicFractionBiasedAbove(0.95), 1.0);
}

TEST(TraceCharacterization, KernelConditionals)
{
    MemoryTrace t;
    addCond(t, 0x100, true, 0, false);
    addCond(t, 0x200, true, 0, true);
    addCond(t, 0x200, true, 0, true);
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.kernelConditionals(), 2u);
}

TEST(TraceCharacterization, RanksSortedByFrequency)
{
    MemoryTrace t;
    addMany(t, 0x300, 5);
    addMany(t, 0x100, 20);
    addMany(t, 0x200, 10);
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.countOfRank(0), 20u);
    EXPECT_EQ(ch.countOfRank(1), 10u);
    EXPECT_EQ(ch.countOfRank(2), 5u);
}

TEST(TraceCharacterization, EmptyTrace)
{
    MemoryTrace t;
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.dynamicInstructions(), 0u);
    EXPECT_EQ(ch.staticConditionals(), 0u);
    EXPECT_DOUBLE_EQ(ch.conditionalDensity(), 0.0);
    EXPECT_DOUBLE_EQ(ch.dynamicFractionBiasedAbove(0.9), 0.0);
}

TEST(TraceCharacterization, NonConditionalsExcludedFromBranchStats)
{
    MemoryTrace t;
    addCond(t, 0x100, true);
    BranchRecord j;
    j.pc = 0x104;
    j.target = 0x300;
    j.type = BranchType::Unconditional;
    t.append(j);
    auto ch = TraceCharacterization::measure(t);
    EXPECT_EQ(ch.staticConditionals(), 1u);
    EXPECT_EQ(ch.dynamicConditionals(), 1u);
    EXPECT_EQ(ch.dynamicInstructions(), 2u);
}

/**
 * @file
 * End-to-end test of the real sweep_server binary: spawn it on a
 * pipe (exactly what bpsim_client does), drive the protocol, and
 * require the sweep responses to be bit-identical to a direct
 * SweepSession -- cold, warm (in-memory cache), and disk-warm (a
 * second server process over the same cache directory, which must
 * answer without replaying, from the .bpc files alone).
 *
 * The binary path arrives via the BPSIM_SERVER_BINARY compile
 * definition; when it is missing the suite skips rather than fails,
 * so the test library still works in unusual build setups.
 *
 * Also covers the unix-socket transport: one daemon, two concurrent
 * socket clients, both answered, shutdown via the protocol.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "service/client.hh"
#include "service/json.hh"
#include "sim/sweep_session.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace {

constexpr const char *kProfile = "eqntott";
constexpr std::uint64_t kBranches = 20000;
constexpr const char *kSweepLine =
    "{\"op\":\"sweep\",\"id\":\"e2e\",\"trace\":"
    "{\"profile\":\"eqntott\",\"branches\":20000},"
    "\"scheme\":\"gshare\","
    "\"options\":{\"min_bits\":4,\"max_bits\":7}}";

std::string
serverBinary()
{
#ifdef BPSIM_SERVER_BINARY
    return BPSIM_SERVER_BINARY;
#else
    return "";
#endif
}

JsonValue
ask(LineChannel &channel, const std::string &request)
{
    Result<std::string> line = roundTrip(channel, request);
    EXPECT_TRUE(line.ok())
        << (line.ok() ? "" : line.error().message());
    if (!line.ok())
        return JsonValue();
    Result<JsonValue> parsed = parseJson(line.value());
    EXPECT_TRUE(parsed.ok()) << line.value();
    return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

bool
isOk(const JsonValue &response)
{
    const JsonValue *ok = response.find("ok");
    return ok && ok->isBool() && ok->asBool();
}

/** Compare a wire surface bit-exactly against the reference. */
void
expectWireSurfaceIdentical(const JsonValue *wire,
                           const Surface &expect)
{
    ASSERT_NE(wire, nullptr);
    ASSERT_TRUE(wire->isArray());
    ASSERT_EQ(wire->array().size(), expect.tiers().size());
    for (std::size_t t = 0; t < expect.tiers().size(); ++t) {
        const SurfaceTier &tier = expect.tiers()[t];
        const JsonValue &wt = wire->array()[t];
        ASSERT_EQ(wt.find("total_bits")->asInt(),
                  static_cast<std::int64_t>(tier.totalBits));
        const JsonValue *points = wt.find("points");
        ASSERT_TRUE(points && points->isArray());
        ASSERT_EQ(points->array().size(), tier.points.size());
        for (std::size_t p = 0; p < tier.points.size(); ++p) {
            const double wire_value =
                points->array()[p].find("value")->asDouble();
            ASSERT_EQ(std::memcmp(&wire_value,
                                  &tier.points[p].value,
                                  sizeof(double)),
                      0)
                << expect.name() << " tier " << tier.totalBits
                << " point " << p;
        }
    }
}

void
expectSweepMatchesReference(const JsonValue &response,
                            const SweepResult &expect)
{
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    expectWireSurfaceIdentical(result->find("misprediction"),
                               expect.misprediction);
    expectWireSurfaceIdentical(result->find("aliasing"),
                               expect.aliasing);
    expectWireSurfaceIdentical(result->find("harmless"),
                               expect.harmless);
    const double miss = result->find("bht_miss_rate")->asDouble();
    ASSERT_EQ(
        std::memcmp(&miss, &expect.bhtMissRate, sizeof(double)), 0);
}

SweepResult
referenceResult()
{
    SweepSession session;
    TraceHandle trace =
        session.internProfile(kProfile, kBranches).value();
    SweepOptions opts;
    opts.minTotalBits = 4;
    opts.maxTotalBits = 7;
    return session
        .sweep(SweepRequest{trace.hash, SchemeKind::Gshare, opts})
        .value()
        .result;
}

TEST(ServiceE2e, PipeServerSweepsColdWarmAndDiskWarm)
{
    const std::string binary = serverBinary();
    if (binary.empty() || !std::filesystem::exists(binary))
        GTEST_SKIP() << "sweep_server binary not available";

    const std::string cacheDir =
        ::testing::TempDir() + "service_e2e_cache";
    std::filesystem::remove_all(cacheDir);
    const SweepResult expect = referenceResult();

    {
        ServerProcess server = ServerProcess::spawn(
                                   binary, {"cache=" + cacheDir})
                                   .value();
        JsonValue ping = ask(server.channel(),
                             "{\"op\":\"ping\",\"id\":\"up\"}");
        ASSERT_TRUE(isOk(ping));
        EXPECT_EQ(ping.find("id")->asString(), "up");

        // Cold: a real replay in the child.
        JsonValue cold = ask(server.channel(), kSweepLine);
        ASSERT_TRUE(isOk(cold));
        EXPECT_FALSE(cold.find("cache_hit")->asBool());
        expectSweepMatchesReference(cold, expect);

        // Warm: the child's in-memory cache answers, bit-identical.
        JsonValue warm = ask(server.channel(), kSweepLine);
        ASSERT_TRUE(isOk(warm));
        EXPECT_TRUE(warm.find("cache_hit")->asBool());
        EXPECT_FALSE(warm.find("disk_hit")->asBool());
        expectSweepMatchesReference(warm, expect);

        EXPECT_EQ(server.wait(), 0);
    }

    // Disk-warm: a NEW process over the same cache directory serves
    // from .bpc files -- no trace generation, no replay.
    {
        ServerProcess server = ServerProcess::spawn(
                                   binary, {"cache=" + cacheDir})
                                   .value();
        JsonValue disk = ask(server.channel(), kSweepLine);
        ASSERT_TRUE(isOk(disk));
        EXPECT_TRUE(disk.find("cache_hit")->asBool());
        EXPECT_TRUE(disk.find("disk_hit")->asBool());
        expectSweepMatchesReference(disk, expect);
        EXPECT_EQ(server.wait(), 0);
    }

    std::filesystem::remove_all(cacheDir);
}

TEST(ServiceE2e, PipeServerSurvivesGarbageBetweenRequests)
{
    const std::string binary = serverBinary();
    if (binary.empty() || !std::filesystem::exists(binary))
        GTEST_SKIP() << "sweep_server binary not available";

    ServerProcess server =
        ServerProcess::spawn(binary).value();
    JsonValue bad = ask(server.channel(), "this is not json {{{");
    EXPECT_FALSE(isOk(bad));
    const JsonValue *error = bad.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->find("code")->asString(), "bad_json");

    JsonValue still = ask(server.channel(),
                          "{\"op\":\"ping\",\"id\":\"alive\"}");
    EXPECT_TRUE(isOk(still));
    EXPECT_EQ(server.wait(), 0);
}

TEST(ServiceE2e, SocketServerServesConcurrentClientsAndShutsDown)
{
    const std::string binary = serverBinary();
    if (binary.empty() || !std::filesystem::exists(binary))
        GTEST_SKIP() << "sweep_server binary not available";

    const std::string socketPath =
        ::testing::TempDir() + "service_e2e.sock";
    std::filesystem::remove(socketPath);
    ServerProcess server =
        ServerProcess::spawn(binary, {"socket=" + socketPath})
            .value();

    // The daemon binds asynchronously; poll for the socket file.
    Result<LineChannel> first =
        BPSIM_ERROR("socket never appeared");
    for (int i = 0; i < 200 && !first.ok(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        if (std::filesystem::exists(socketPath))
            first = connectUnixSocket(socketPath);
    }
    ASSERT_TRUE(first.ok())
        << (first.ok() ? "" : first.error().message());
    LineChannel clientA = std::move(first).value();
    LineChannel clientB = connectUnixSocket(socketPath).value();

    // Two clients, interleaved requests on one daemon.
    std::thread other([&] {
        JsonValue response = ask(clientB, kSweepLine);
        EXPECT_TRUE(isOk(response));
    });
    JsonValue pong =
        ask(clientA, "{\"op\":\"ping\",\"id\":\"sock\"}");
    EXPECT_TRUE(isOk(pong));
    JsonValue swept = ask(clientA, kSweepLine);
    EXPECT_TRUE(isOk(swept));
    other.join();

    // Protocol shutdown: the response arrives, then the daemon
    // exits and removes its socket file.
    JsonValue bye =
        ask(clientA, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
    EXPECT_TRUE(isOk(bye));
    clientA.close();
    clientB.close();
    EXPECT_EQ(server.wait(), 0);
    EXPECT_FALSE(std::filesystem::exists(socketPath));
}

} // namespace

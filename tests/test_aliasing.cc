/**
 * @file
 * Tests for the aliasing tracker -- the paper's conflict definition:
 * consecutive instances accessing a counter from distinct branches.
 */

#include <gtest/gtest.h>

#include "stats/aliasing.hh"

using namespace bpsim;

TEST(AliasTracker, FirstAccessIsNotAConflict)
{
    AliasTracker t(16);
    EXPECT_FALSE(t.access(3, 0x100));
    EXPECT_EQ(t.conflicts(), 0u);
    EXPECT_EQ(t.accesses(), 1u);
    EXPECT_EQ(t.slotsTouched(), 1u);
}

TEST(AliasTracker, SameBranchRepeatIsNotAConflict)
{
    AliasTracker t(16);
    t.access(3, 0x100);
    EXPECT_FALSE(t.access(3, 0x100));
    EXPECT_EQ(t.conflicts(), 0u);
}

TEST(AliasTracker, DistinctBranchIsAConflict)
{
    AliasTracker t(16);
    t.access(3, 0x100);
    EXPECT_TRUE(t.access(3, 0x200));
    EXPECT_EQ(t.conflicts(), 1u);
    EXPECT_DOUBLE_EQ(t.aliasRate(), 0.5);
}

TEST(AliasTracker, ConflictDefinitionIsConsecutive)
{
    // A-B-A on the same slot: two conflicts (B after A, A after B),
    // exactly like misses in a direct-mapped cache.
    AliasTracker t(4);
    t.access(0, 0xA);
    t.access(0, 0xB);
    t.access(0, 0xA);
    EXPECT_EQ(t.conflicts(), 2u);
}

TEST(AliasTracker, DifferentSlotsDoNotInterfere)
{
    AliasTracker t(4);
    t.access(0, 0xA);
    EXPECT_FALSE(t.access(1, 0xB));
    EXPECT_EQ(t.conflicts(), 0u);
    EXPECT_EQ(t.slotsTouched(), 2u);
}

TEST(AliasTracker, HarmlessClassification)
{
    AliasTracker t(4);
    t.access(0, 0xA);
    t.access(0, 0xB, /*all_ones_pattern=*/true);
    t.access(0, 0xC, /*all_ones_pattern=*/false);
    EXPECT_EQ(t.conflicts(), 2u);
    EXPECT_EQ(t.harmlessConflicts(), 1u);
    EXPECT_DOUBLE_EQ(t.harmlessFraction(), 0.5);
}

TEST(AliasTracker, HarmlessFlagOnNonConflictIsIgnored)
{
    AliasTracker t(4);
    t.access(0, 0xA, true); // first touch, not a conflict
    t.access(0, 0xA, true); // same branch, not a conflict
    EXPECT_EQ(t.harmlessConflicts(), 0u);
    EXPECT_DOUBLE_EQ(t.harmlessFraction(), 0.0);
}

TEST(AliasTracker, ResetForgetsHistoryAndCounters)
{
    AliasTracker t(4);
    t.access(0, 0xA);
    t.access(0, 0xB, true);
    t.reset();
    EXPECT_EQ(t.accesses(), 0u);
    EXPECT_EQ(t.conflicts(), 0u);
    EXPECT_EQ(t.harmlessConflicts(), 0u);
    EXPECT_EQ(t.slotsTouched(), 0u);
    // After reset the first access is fresh again.
    EXPECT_FALSE(t.access(0, 0xB));
}

TEST(AliasTracker, RatesWithNoAccessesAreZero)
{
    AliasTracker t(4);
    EXPECT_DOUBLE_EQ(t.aliasRate(), 0.0);
    EXPECT_DOUBLE_EQ(t.harmlessFraction(), 0.0);
}

TEST(AliasTrackerDeathTest, SlotOutOfRangePanics)
{
    AliasTracker t(4);
    EXPECT_DEATH(t.access(4, 0x100), "out of range");
}

TEST(AliasTracker, FullyAliasedStream)
{
    // Alternating branches on one slot: every access after the first
    // conflicts.
    AliasTracker t(1);
    t.access(0, 0xA);
    for (int i = 0; i < 99; ++i)
        t.access(0, i % 2 ? 0xA : 0xB);
    EXPECT_EQ(t.accesses(), 100u);
    EXPECT_EQ(t.conflicts(), 99u);
    EXPECT_NEAR(t.aliasRate(), 0.99, 1e-9);
}

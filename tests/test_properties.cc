/**
 * @file
 * Property-based tests: invariants that must hold across whole
 * configuration ranges, checked with parameterised sweeps on shared
 * workloads.
 */

#include <gtest/gtest.h>

#include "predictor/two_level.hh"
#include "sim/engine.hh"
#include "sim/sweep.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

MemoryTrace &
workload()
{
    static MemoryTrace trace = [] {
        WorkloadParams p;
        p.name = "property-unit";
        p.seed = 77;
        p.staticBranches = 200;
        p.functionCount = 20;
        p.targetConditionals = 40'000;
        return generateTrace(p);
    }();
    return trace;
}

PreparedTrace &
prepared()
{
    static PreparedTrace t{workload()};
    return t;
}

} // namespace

/** Properties over every row/column split of a fixed budget. */
class SplitSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SplitSweep, GshareWithZeroHistoryEqualsGAsWithZeroHistory)
{
    unsigned total = GetParam();
    SweepOptions o;
    o.trackAliasing = false;
    ConfigResult gas =
        simulateConfig(prepared(), SchemeKind::GAs, 0, total, o);
    ConfigResult gsh =
        simulateConfig(prepared(), SchemeKind::Gshare, 0, total, o);
    ConfigResult addr = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, total, o);
    EXPECT_DOUBLE_EQ(gas.mispRate, addr.mispRate);
    EXPECT_DOUBLE_EQ(gsh.mispRate, addr.mispRate);
}

TEST_P(SplitSweep, FullHistoryGAsEqualsGAg)
{
    unsigned total = GetParam();
    SweepOptions o;
    o.trackAliasing = false;
    ConfigResult gas =
        simulateConfig(prepared(), SchemeKind::GAs, total, 0, o);
    ConfigResult gag =
        simulateConfig(prepared(), SchemeKind::GAg, total, 0, o);
    EXPECT_DOUBLE_EQ(gas.mispRate, gag.mispRate);
}

TEST_P(SplitSweep, AllRatesAreProbabilities)
{
    unsigned total = GetParam();
    SweepOptions o;
    o.trackAliasing = true;
    o.bhtEntries = 64;
    for (SchemeKind kind :
         {SchemeKind::GAs, SchemeKind::Gshare, SchemeKind::Path,
          SchemeKind::PAsPerfect, SchemeKind::PAsFinite}) {
        for (unsigned r = 0; r <= total; r += 2) {
            ConfigResult c =
                simulateConfig(prepared(), kind, r, total - r, o);
            ASSERT_GE(c.mispRate, 0.0);
            ASSERT_LE(c.mispRate, 1.0);
            ASSERT_GE(c.aliasRate, 0.0);
            ASSERT_LE(c.aliasRate, 1.0);
            ASSERT_GE(c.harmlessFraction, 0.0);
            ASSERT_LE(c.harmlessFraction, 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SplitSweep,
                         ::testing::Values(4u, 6u, 8u, 10u));

/** Properties over table sizes. */
class SizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SizeSweep, BiggerAddressIndexedTablesNeverMuchWorse)
{
    // Growing a direct-mapped table only removes aliasing; up to
    // training noise, misprediction must not increase.
    unsigned bits = GetParam();
    SweepOptions o;
    o.trackAliasing = false;
    ConfigResult small = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, bits, o);
    ConfigResult big = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, bits + 2, o);
    EXPECT_LE(big.mispRate, small.mispRate + 0.01) << "bits " << bits;
}

TEST_P(SizeSweep, AddressAliasingShrinksWithTableSize)
{
    unsigned bits = GetParam();
    SweepOptions o;
    ConfigResult small = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, bits, o);
    ConfigResult big = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, bits + 2, o);
    EXPECT_LE(big.aliasRate, small.aliasRate + 1e-9) << "bits " << bits;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u));

/** BHT-size properties of the PAs first level. */
class BhtSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BhtSizeSweep, MissRateFallsAsBhtGrows)
{
    unsigned log_entries = GetParam();
    SweepOptions small_o, big_o;
    small_o.trackAliasing = big_o.trackAliasing = false;
    small_o.minTotalBits = small_o.maxTotalBits = 8;
    big_o.minTotalBits = big_o.maxTotalBits = 8;
    small_o.bhtEntries = std::size_t{1} << log_entries;
    big_o.bhtEntries = std::size_t{1} << (log_entries + 2);
    SweepResult small =
        sweepScheme(prepared(), SchemeKind::PAsFinite, small_o);
    SweepResult big =
        sweepScheme(prepared(), SchemeKind::PAsFinite, big_o);
    EXPECT_LE(big.bhtMissRate, small.bhtMissRate + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BhtSizes, BhtSizeSweep,
                         ::testing::Values(4u, 6u, 8u));

TEST(Properties, PerfectHistoryIsTheLimitOfGrowingBhts)
{
    // As the BHT grows, finite PAs converges to PAs(inf).
    SweepOptions o;
    o.trackAliasing = false;
    ConfigResult perfect =
        simulateConfig(prepared(), SchemeKind::PAsPerfect, 6, 2, o);
    double prev_gap = 1.0;
    for (unsigned log_entries : {5u, 8u, 11u, 14u}) {
        o.bhtEntries = std::size_t{1} << log_entries;
        ConfigResult finite =
            simulateConfig(prepared(), SchemeKind::PAsFinite, 6, 2, o);
        double gap = std::abs(finite.mispRate - perfect.mispRate);
        EXPECT_LE(gap, prev_gap + 0.01) << "entries 2^" << log_entries;
        prev_gap = gap;
    }
    EXPECT_LT(prev_gap, 0.01);
}

TEST(Properties, HarmlessAliasingOnlyWithHistoryRows)
{
    // r = 0 has no history pattern, so no conflict can be classified
    // harmless.
    SweepOptions o;
    ConfigResult addr = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, 6, o);
    EXPECT_DOUBLE_EQ(addr.harmlessFraction, 0.0);
}

TEST(Properties, GAgAliasingIsCompleteSharingAtOneRow)
{
    // A GAg with 0 history bits is a single counter shared by every
    // branch: accesses conflict whenever consecutive conditionals come
    // from different sites (loop backedges repeat, so the rate is well
    // below 1, but sharing must still dominate an aliasing-free split).
    SweepOptions o;
    ConfigResult shared =
        simulateConfig(prepared(), SchemeKind::GAg, 0, 0, o);
    ConfigResult spread = simulateConfig(
        prepared(), SchemeKind::AddressIndexed, 0, 12, o);
    EXPECT_GT(shared.aliasRate, 0.25);
    EXPECT_GT(shared.aliasRate, spread.aliasRate * 5);
}

TEST(Properties, DeterminismAcrossRepeatedSweeps)
{
    SweepOptions o;
    o.minTotalBits = 6;
    o.maxTotalBits = 7;
    SweepResult a = sweepScheme(prepared(), SchemeKind::Gshare, o);
    SweepResult b = sweepScheme(prepared(), SchemeKind::Gshare, o);
    for (const auto &tier : a.misprediction.tiers()) {
        for (const auto &pt : tier.points) {
            auto other =
                b.misprediction.at(tier.totalBits, pt.rowBits);
            ASSERT_TRUE(other.has_value());
            EXPECT_DOUBLE_EQ(pt.value, *other);
        }
    }
}

TEST(Properties, OnlineEngineCountsEveryConditionalOnce)
{
    auto p = makeAddressIndexed(6);
    MemoryTrace &t = workload();
    t.reset();
    PredictionStats stats = runPredictor(t, *p);
    EXPECT_EQ(stats.lookups(), t.conditionalCount());
}

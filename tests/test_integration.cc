/**
 * @file
 * Integration tests crossing module boundaries: workload -> trace file
 * -> predictor -> statistics, end to end.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workload/profiles.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/bpsim_it_" + tag + "_" +
                std::to_string(::getpid()) + ".bpt")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(Integration, WorkloadSurvivesDiskRoundTripExactly)
{
    TempFile tmp("roundtrip");
    MemoryTrace original = generateProfileTrace("compress", 30'000);
    ASSERT_TRUE(saveTrace(original, tmp.path()).ok());
    MemoryTrace loaded = loadTrace(tmp.path()).value();

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
    EXPECT_EQ(loaded.name(), "compress");
}

TEST(Integration, PredictionsIdenticalOnLoadedTrace)
{
    TempFile tmp("predict");
    MemoryTrace original = generateProfileTrace("compress", 30'000);
    ASSERT_TRUE(saveTrace(original, tmp.path()).ok());
    MemoryTrace loaded = loadTrace(tmp.path()).value();

    auto p1 = makePredictor("gshare:10:2");
    auto p2 = makePredictor("gshare:10:2");
    original.reset();
    PredictionStats a = runPredictor(original, *p1);
    PredictionStats b = runPredictor(loaded, *p2);
    EXPECT_EQ(a.mispredicts(), b.mispredicts());
    EXPECT_EQ(a.lookups(), b.lookups());
}

TEST(Integration, SweepOnLoadedTraceMatchesGenerated)
{
    TempFile tmp("sweep");
    MemoryTrace original = generateProfileTrace("compress", 30'000);
    ASSERT_TRUE(saveTrace(original, tmp.path()).ok());
    MemoryTrace loaded = loadTrace(tmp.path()).value();

    PreparedTrace pa(original), pb(loaded);
    SweepOptions o;
    o.minTotalBits = 6;
    o.maxTotalBits = 6;
    SweepResult ra = sweepScheme(pa, SchemeKind::GAs, o);
    SweepResult rb = sweepScheme(pb, SchemeKind::GAs, o);
    for (unsigned r = 0; r <= 6; ++r) {
        EXPECT_EQ(ra.misprediction.at(6, r), rb.misprediction.at(6, r))
            << "rows 2^" << r;
    }
}

TEST(Integration, EveryProfileGeneratesAndPredicts)
{
    for (const auto &name : profileNames()) {
        MemoryTrace trace = generateProfileTrace(name, 4'000);
        EXPECT_GE(trace.conditionalCount(), 4'000u) << name;
        auto p = makePredictor("gshare:8:2");
        trace.reset();
        PredictionStats stats = runPredictor(trace, *p);
        EXPECT_EQ(stats.lookups(), trace.conditionalCount()) << name;
        EXPECT_GT(stats.accuracy(), 0.5) << name;
    }
}

TEST(Integration, DynamicPredictorsBeatStaticBaselines)
{
    MemoryTrace trace = generateProfileTrace("espresso", 100'000);
    auto dynamic = makePredictor("gshare:12:0");
    auto taken = makePredictor("taken");
    auto btfnt = makePredictor("btfnt");

    trace.reset();
    double d = runPredictor(trace, *dynamic).mispRate();
    trace.reset();
    double t = runPredictor(trace, *taken).mispRate();
    trace.reset();
    double b = runPredictor(trace, *btfnt).mispRate();

    EXPECT_LT(d, t);
    EXPECT_LT(d, b);
}

TEST(Integration, TraceLengthInsensitivityOfMispRates)
{
    // DESIGN.md claims rates stabilise well before 10^6 branches; check
    // that doubling a medium trace moves a predictor's rate by little.
    auto misp_at = [](std::uint64_t n) {
        MemoryTrace trace = generateProfileTrace("mpeg_play", n);
        auto p = makePredictor("addr:12");
        return runPredictor(trace, *p).mispRate();
    };
    double half = misp_at(400'000);
    double full = misp_at(800'000);
    EXPECT_NEAR(half, full, 0.02);
}

TEST(Integration, CharacterizationConsistentWithGeneration)
{
    WorkloadParams params = profileParams("verilog", 50'000);
    MemoryTrace trace = generateTrace(params);
    auto ch = TraceCharacterization::measure(trace);
    EXPECT_EQ(ch.dynamicConditionals(), trace.conditionalCount());
    EXPECT_GT(ch.staticConditionals(), 100u);
}

TEST(Integration, TournamentTracksBestComponentOnRealWorkload)
{
    MemoryTrace trace = generateProfileTrace("espresso", 150'000);

    auto run = [&](const std::string &spec) {
        auto p = makePredictor(spec);
        trace.reset();
        return runPredictor(trace, *p).mispRate();
    };
    double bimodal = run("addr:11");
    double gshare = run("gshare:11:0");
    double combo = run("tournament(addr:10,gshare:10:0):10");
    // The combiner should at least approach the better component even
    // with half-size tables.
    EXPECT_LT(combo, std::max(bimodal, gshare));
}

TEST(Integration, Table3PipelineRunsOnProfile)
{
    PreparedTrace t = prepareProfile("compress", 40'000);
    Table3Options opts;
    opts.budgetBits = {9};
    opts.bhtSizes = {128};
    auto rows = bestConfigTable(t, opts);
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &row : rows)
        EXPECT_TRUE(row.best[0].has_value()) << row.scheme;
}

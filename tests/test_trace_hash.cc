/**
 * @file
 * Tests for the 128-bit content/generator hashing the session core
 * keys everything by -- including the GOLDEN values that pin the hash
 * functions in place.
 *
 * The golden tables below are load-bearing: the persistent result
 * cache (.bpc files) and the trace registry key entries by these
 * hashes, so an accidental change to the mixer, the absorption order,
 * a WorkloadParams field list, or a domain tag would silently orphan
 * every cached result (recompute-everything, never wrong answers --
 * but expensive and invisible).  If a test here fails because you
 * *intended* to change hashing or trace generation, bump the hash
 * domain version (trace_hash.cc / trace_key.hh), bump kEngineVersion
 * if replay results change too, and regenerate these constants.
 */

#include <gtest/gtest.h>

#include "trace/trace_hash.hh"
#include "workload/profiles.hh"
#include "workload/synthetic.hh"
#include "workload/trace_key.hh"

using namespace bpsim;

namespace {

MemoryTrace
microTrace(const std::string &name = "micro")
{
    MemoryTrace trace(name);
    BranchRecord r;
    r.pc = 0x1000;
    r.target = 0x2000;
    r.instGap = 3;
    r.type = BranchType::Conditional;
    r.taken = true;
    r.kernel = false;
    trace.append(r);
    r.pc = 0x1008;
    r.target = 0x0ff8;
    r.instGap = 0;
    r.taken = false;
    r.kernel = true;
    trace.append(r);
    return trace;
}

} // namespace

TEST(TraceHash, HexRendersThirtyTwoDigitsHiFirst)
{
    TraceHash h{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
    EXPECT_EQ(h.hex(), "0123456789abcdeffedcba9876543210");
    EXPECT_EQ(TraceHash{}.hex(), "00000000000000000000000000000000");
}

TEST(TraceHash, ParseRoundTripsAndRejectsMalformedInput)
{
    TraceHash h{0xdeadbeefcafebabeULL, 0x0102030405060708ULL};
    auto back = TraceHash::parse(h.hex());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), h);

    EXPECT_FALSE(TraceHash::parse("").ok());
    EXPECT_FALSE(TraceHash::parse("123").ok());
    EXPECT_FALSE(
        TraceHash::parse("0123456789abcdeffedcba987654321").ok());
    EXPECT_FALSE(
        TraceHash::parse("0123456789abcdeffedcba9876543210ff").ok());
    EXPECT_FALSE(
        TraceHash::parse("g123456789abcdeffedcba9876543210").ok());
}

TEST(TraceHash, OrderingAndNullness)
{
    TraceHash a{1, 2}, b{1, 3}, c{2, 0};
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b < c);
    EXPECT_FALSE(a.isNull());
    EXPECT_TRUE(TraceHash{}.isNull());
}

TEST(HashStream, DomainTagsSeparateKeySpaces)
{
    HashStream a("domain.one");
    HashStream b("domain.two");
    a.u64(42);
    b.u64(42);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(HashStream, InputOrderMatters)
{
    HashStream a("d");
    HashStream b("d");
    a.u64(1);
    a.u64(2);
    b.u64(2);
    b.u64(1);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(HashStream, StringsAreLengthPrefixed)
{
    HashStream a("d");
    HashStream b("d");
    a.str("ab");
    a.str("c");
    b.str("a");
    b.str("bc");
    EXPECT_NE(a.digest(), b.digest());
}

TEST(HashStream, NegativeZeroNormalizes)
{
    HashStream a("d");
    HashStream b("d");
    a.f64(0.0);
    b.f64(-0.0);
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(TraceHash, ContentHashIgnoresTraceName)
{
    EXPECT_EQ(traceHash(microTrace("one")),
              traceHash(microTrace("two")));
}

TEST(TraceHash, ContentHashSeesEveryRecordField)
{
    const TraceHash base = traceHash(microTrace());
    {
        MemoryTrace t = microTrace();
        BranchRecord r;
        r.pc = 0x42;
        t.append(r); // extra record
        EXPECT_NE(traceHash(t), base);
    }
    // One-field mutations of the second record.
    auto mutated = [](auto fn) {
        MemoryTrace t("micro");
        BranchRecord r;
        r.pc = 0x1000;
        r.target = 0x2000;
        r.instGap = 3;
        r.taken = true;
        t.append(r);
        r.pc = 0x1008;
        r.target = 0x0ff8;
        r.instGap = 0;
        r.taken = false;
        r.kernel = true;
        fn(r);
        t.append(r);
        return traceHash(t);
    };
    EXPECT_NE(mutated([](BranchRecord &r) { r.pc ^= 1; }), base);
    EXPECT_NE(mutated([](BranchRecord &r) { r.target ^= 1; }), base);
    EXPECT_NE(mutated([](BranchRecord &r) { r.instGap = 7; }), base);
    EXPECT_NE(mutated([](BranchRecord &r) { r.taken = true; }), base);
    EXPECT_NE(mutated([](BranchRecord &r) { r.kernel = false; }),
              base);
    EXPECT_NE(
        mutated([](BranchRecord &r) { r.type = BranchType::Call; }),
        base);
}

TEST(TraceHash, GeneratorAndContentDomainsAreDisjoint)
{
    // A generator key can never equal the content hash of the trace
    // it generates (distinct domain tags).
    WorkloadParams params = profileParams("espresso", 20000);
    TraceHash gen = syntheticTraceKey(params);
    TraceHash content = traceHash(generateTrace(params));
    EXPECT_NE(gen, content);
}

TEST(TraceHash, GeneratorKeySeesTargetConditionals)
{
    EXPECT_NE(profileTraceKey("gcc", 10000).value(),
              profileTraceKey("gcc", 20000).value());
    EXPECT_NE(profileTraceKey("gcc").value(),
              profileTraceKey("espresso").value());
    EXPECT_FALSE(profileTraceKey("no_such_profile").ok());
}

// --- Golden values -----------------------------------------------------

TEST(TraceHashGolden, MicroTraceContentHashIsPinned)
{
    EXPECT_EQ(traceHash(microTrace()).hex(),
              "e46e3777c823808af53878f9f53f5197");
}

TEST(TraceHashGolden, SeedProfileGeneratorKeysArePinned)
{
    const std::pair<const char *, const char *> golden[] = {
        {"compress", "93a111077dc1fd56a5b47034a24d8b67"},
        {"eqntott", "3550f157258906ce99d819283a886da2"},
        {"espresso", "c44620f720c3e45439b1b79d976fb4d5"},
        {"gcc", "89e4b63199e04add626c017eff4895fb"},
        {"xlisp", "3e5a0670c1f620a3f951656c8ff203a3"},
        {"sc", "c8472afe33ea8aa177d14304c4ddf1b8"},
        {"groff", "03ecf08da542d9e9fc9eaa5c2e97fa5c"},
        {"gs", "09e64d1acd46ca4099405ed9b70acd4e"},
        {"mpeg_play", "8e19c4e78911ad1a39ab6ffe73676e5e"},
        {"nroff", "fbe79576899766c1a449807bd02331aa"},
        {"real_gcc", "a701cf6d71671a7489d2bd64d1762770"},
        {"sdet", "e7edeab1c727277b07802a5bfad61eea"},
        {"verilog", "afc5428214d1b539c51da3e859282b75"},
        {"video_play", "1e165587b6754bd948fff7a3dd5624cb"},
    };
    // Every profile is covered: a new profile must be added here.
    EXPECT_EQ(std::size(golden), profileNames().size());
    for (const auto &[profile, expected] : golden) {
        auto key = profileTraceKey(profile);
        ASSERT_TRUE(key.ok()) << profile;
        EXPECT_EQ(key.value().hex(), expected) << profile;
    }
}

TEST(TraceHashGolden, SeedProfileContentHashesArePinned)
{
    // Content hashes cover generation itself: a generator change
    // that alters produced records fails here even if the parameter
    // hashing above is untouched.  20k conditionals keeps this fast.
    const std::tuple<const char *, const char *, std::size_t>
        golden[] = {
            {"espresso", "8e08a096b5310af1c2c704aa9df8a87c",
             29340u},
            {"gcc", "6ccdef1169919569bcdb1886afe5ca48", 25460u},
            {"compress", "d32c677f3ea633024f6312341b537015",
             23895u},
        };
    for (const auto &[profile, expected, records] : golden) {
        MemoryTrace trace = generateProfileTrace(profile, 20000);
        EXPECT_EQ(trace.size(), records) << profile;
        EXPECT_EQ(traceHash(trace).hex(), expected) << profile;
    }
}

/**
 * @file
 * Tests for the gskew majority-vote predictor.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/factory.hh"
#include "predictor/gskew.hh"
#include "predictor/two_level.hh"
#include "sim/engine.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

BranchRecord
cond(Addr pc, bool taken)
{
    BranchRecord r;
    r.pc = pc;
    r.target = pc + 64;
    r.type = BranchType::Conditional;
    r.taken = taken;
    return r;
}

} // namespace

TEST(Gskew, NameAndGeometry)
{
    GskewPredictor p(10, 10);
    EXPECT_EQ(p.name(), "gskew 3x2^10 (h10)");
    EXPECT_EQ(p.counterCount(), 3 * 1024u);
}

TEST(Gskew, LearnsBiasedBranches)
{
    GskewPredictor p(8, 8);
    std::uint64_t wrong = 0;
    for (int i = 0; i < 200; ++i) {
        wrong += p.onBranch(cond(0x400100, true)) != true;
        wrong += p.onBranch(cond(0x400200, false)) != false;
    }
    EXPECT_LT(wrong, 10u);
}

TEST(Gskew, LearnsAlternationViaHistory)
{
    GskewPredictor p(8, 8);
    std::uint64_t wrong_late = 0;
    for (int i = 0; i < 600; ++i) {
        BranchRecord r = cond(0x400100, i % 2 == 0);
        bool prediction = p.onBranch(r);
        if (i >= 300)
            wrong_late += prediction != r.taken;
    }
    EXPECT_LT(wrong_late, 10u);
}

TEST(Gskew, ResetRestoresBehaviour)
{
    GskewPredictor p(8, 8);
    Pcg32 rng(5);
    std::vector<BranchRecord> stream;
    for (int i = 0; i < 3000; ++i)
        stream.push_back(cond(0x400000 + 4 * rng.nextBounded(64),
                              rng.bernoulli(0.7)));
    std::uint64_t first = 0, second = 0;
    for (const auto &r : stream)
        first += p.onBranch(r) != r.taken;
    p.reset();
    for (const auto &r : stream)
        second += p.onBranch(r) != r.taken;
    EXPECT_EQ(first, second);
}

TEST(Gskew, MasksSingleBankCollisions)
{
    // Aliasing-bound regime: gskew with three 2^b banks should beat a
    // plain gshare of even 2^(b+2) counters on a large profile, because
    // majority voting masks per-bank interference.
    MemoryTrace trace = generateProfileTrace("real_gcc", 400'000);

    GskewPredictor gskew(9, 9); // 3 x 512 = 1536 counters
    auto gshare = makeGshare(11, 0); // 2048 counters

    trace.reset();
    double skew_misp = runPredictor(trace, gskew).mispRate();
    trace.reset();
    double gshare_misp = runPredictor(trace, *gshare).mispRate();
    EXPECT_LT(skew_misp, gshare_misp);
}

TEST(Gskew, FactorySpecs)
{
    auto p = makePredictor("gskew:10");
    EXPECT_EQ(p->name(), "gskew 3x2^10 (h10)");
    auto q = makePredictor("gskew:8:12");
    EXPECT_EQ(q->name(), "gskew 3x2^8 (h12)");
}

TEST(GskewDeathTest, NonConditionalRejected)
{
    GskewPredictor p(6, 6);
    BranchRecord r;
    r.pc = 0x100;
    r.type = BranchType::Return;
    EXPECT_DEATH(p.onBranch(r), "non-conditional");
}

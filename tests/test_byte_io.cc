/**
 * @file
 * Tests for the ByteStream abstraction under trace I/O: stdio-backed
 * file streams and the in-memory stream used by the corruption fuzzer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

#include "common/byte_io.hh"

using namespace bpsim;

namespace {

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/bpsim_io_" + tag + "_" +
                std::to_string(::getpid()) + ".bin")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(StdioFileStream, WriteThenReadBack)
{
    TempFile tmp("wrb");
    {
        auto w = StdioFileStream::openWrite(tmp.path());
        ASSERT_TRUE(w.ok());
        EXPECT_EQ(w.value()->write("hello", 5), 5u);
        EXPECT_TRUE(w.value()->flush());
        EXPECT_TRUE(w.value()->close());
        EXPECT_TRUE(w.value()->close()) << "close is idempotent";
    }
    auto r = StdioFileStream::openRead(tmp.path());
    ASSERT_TRUE(r.ok());
    std::uint64_t size = 0;
    ASSERT_TRUE(r.value()->size(size));
    EXPECT_EQ(size, 5u);
    char buf[8] = {};
    EXPECT_EQ(r.value()->read(buf, sizeof(buf)), 5u);
    EXPECT_EQ(std::string(buf, 5), "hello");
    EXPECT_TRUE(r.value()->seek(1));
    EXPECT_EQ(r.value()->read(buf, 2), 2u);
    EXPECT_EQ(std::string(buf, 2), "el");
}

TEST(StdioFileStream, SizeDoesNotDisturbPosition)
{
    TempFile tmp("size");
    {
        auto w = StdioFileStream::openWrite(tmp.path());
        ASSERT_TRUE(w.ok());
        ASSERT_EQ(w.value()->write("abcdef", 6), 6u);
    }
    auto r = StdioFileStream::openRead(tmp.path());
    ASSERT_TRUE(r.ok());
    char c = 0;
    ASSERT_EQ(r.value()->read(&c, 1), 1u);
    std::uint64_t size = 0;
    ASSERT_TRUE(r.value()->size(size));
    EXPECT_EQ(size, 6u);
    ASSERT_EQ(r.value()->read(&c, 1), 1u);
    EXPECT_EQ(c, 'b') << "size() must not move the read cursor";
}

TEST(StdioFileStream, MissingFileIsAnError)
{
    auto r = StdioFileStream::openRead("/nonexistent/dir/x.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("cannot open"),
              std::string::npos);
    auto w = StdioFileStream::openWrite("/nonexistent/dir/x.bin");
    ASSERT_FALSE(w.ok());
    EXPECT_NE(w.error().message().find("cannot create"),
              std::string::npos);
}

TEST(MemoryByteStream, ReadsInitialContents)
{
    MemoryByteStream s("abcd");
    char buf[8] = {};
    EXPECT_EQ(s.read(buf, 2), 2u);
    EXPECT_EQ(std::string(buf, 2), "ab");
    EXPECT_EQ(s.read(buf, 8), 2u) << "short read at end";
    EXPECT_EQ(s.read(buf, 8), 0u);
}

TEST(MemoryByteStream, WritesExtendAndOverwrite)
{
    MemoryByteStream s;
    EXPECT_EQ(s.write("abcd", 4), 4u);
    ASSERT_TRUE(s.seek(1));
    EXPECT_EQ(s.write("XY", 2), 2u);
    EXPECT_EQ(s.bytes(), "aXYd");
    std::uint64_t size = 0;
    ASSERT_TRUE(s.size(size));
    EXPECT_EQ(size, 4u);
}

TEST(MemoryByteStream, SeekBeyondEndFails)
{
    MemoryByteStream s("ab");
    EXPECT_TRUE(s.seek(2));
    EXPECT_FALSE(s.seek(3));
}

TEST(MemoryByteStream, ClosedStreamRefusesEverything)
{
    MemoryByteStream s("ab");
    EXPECT_TRUE(s.close());
    char buf[2];
    EXPECT_EQ(s.read(buf, 2), 0u);
    EXPECT_EQ(s.write("x", 1), 0u);
    EXPECT_FALSE(s.seek(0));
    EXPECT_FALSE(s.flush());
    EXPECT_TRUE(s.close()) << "close is idempotent";
    EXPECT_EQ(s.bytes(), "ab") << "contents survive close";
}

/**
 * @file
 * Tests for the trace-replay engine.
 */

#include <gtest/gtest.h>

#include "predictor/static_pred.hh"
#include "predictor/two_level.hh"
#include "sim/engine.hh"
#include "trace/memory_trace.hh"

using namespace bpsim;

namespace {

MemoryTrace
mixedTrace()
{
    MemoryTrace t("mixed");
    for (int i = 0; i < 20; ++i) {
        BranchRecord c;
        c.pc = 0x400100;
        c.target = 0x400200;
        c.type = BranchType::Conditional;
        c.taken = i % 2 == 0;
        t.append(c);

        BranchRecord call;
        call.pc = 0x400104;
        call.target = 0x400800;
        call.type = BranchType::Call;
        t.append(call);

        BranchRecord ret;
        ret.pc = 0x400900;
        ret.target = 0x400108;
        ret.type = BranchType::Return;
        t.append(ret);
    }
    return t;
}

} // namespace

TEST(Engine, OnlyConditionalsArePredicted)
{
    MemoryTrace t = mixedTrace();
    FixedPredictor p(true);
    PredictionStats stats = runPredictor(t, p);
    EXPECT_EQ(stats.lookups(), 20u);
    EXPECT_EQ(stats.mispredicts(), 10u);
}

TEST(Engine, SiteTrackingPassedThrough)
{
    MemoryTrace t = mixedTrace();
    FixedPredictor p(true);
    PredictionStats stats = runPredictor(t, p, /*track_sites=*/true);
    ASSERT_EQ(stats.sites().size(), 1u);
    EXPECT_EQ(stats.sites().at(0x400100).executed, 20u);
}

TEST(Engine, LockstepMatchesIndividualRuns)
{
    MemoryTrace t = mixedTrace();
    auto a1 = makeGAg(4);
    auto b1 = makeAddressIndexed(4);
    t.reset();
    std::vector<PredictionStats> joint =
        runPredictors(t, {a1.get(), b1.get()});

    auto a2 = makeGAg(4);
    auto b2 = makeAddressIndexed(4);
    t.reset();
    PredictionStats sa = runPredictor(t, *a2);
    t.reset();
    PredictionStats sb = runPredictor(t, *b2);

    ASSERT_EQ(joint.size(), 2u);
    EXPECT_EQ(joint[0].mispredicts(), sa.mispredicts());
    EXPECT_EQ(joint[1].mispredicts(), sb.mispredicts());
    EXPECT_EQ(joint[0].lookups(), sa.lookups());
}

TEST(Engine, EmptyTraceYieldsEmptyStats)
{
    MemoryTrace t("empty");
    FixedPredictor p(true);
    PredictionStats stats = runPredictor(t, p);
    EXPECT_EQ(stats.lookups(), 0u);
    EXPECT_DOUBLE_EQ(stats.mispRate(), 0.0);
}

TEST(Engine, EngineDoesNotResetTheSource)
{
    // Callers own the cursor: two consecutive runs without reset see
    // the stream once.
    MemoryTrace t = mixedTrace();
    FixedPredictor p(true);
    PredictionStats first = runPredictor(t, p);
    PredictionStats second = runPredictor(t, p);
    EXPECT_EQ(first.lookups(), 20u);
    EXPECT_EQ(second.lookups(), 0u);
}

TEST(EngineDeathTest, NullPredictorInLockstepPanics)
{
    MemoryTrace t = mixedTrace();
    EXPECT_DEATH(runPredictors(t, {nullptr}), "null predictor");
}

/**
 * @file
 * Tests for the plain-text trace interchange format, including the
 * recoverable-error behaviour on malformed lines and the numeric
 * boundary rules for the optional gap field.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "trace/text_trace.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/bpsim_txt_" + tag + "_" +
                std::to_string(::getpid()) + ".txt")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Expect a failed import whose message mentions @p needle. */
void
expectImportError(const std::string &content, const std::string &needle)
{
    auto r = importTextTraceString(content);
    ASSERT_FALSE(r.ok()) << content;
    EXPECT_NE(r.error().message().find(needle), std::string::npos)
        << "message '" << r.error().message() << "' lacks '" << needle
        << "'";
}

} // namespace

TEST(TextTrace, ParsesMinimalRecords)
{
    MemoryTrace t = importTextTraceString("400100 400200 C T\n"
                                          "400104 400300 C N\n")
                        .value();
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].pc, 0x400100u);
    EXPECT_EQ(t[0].target, 0x400200u);
    EXPECT_TRUE(t[0].taken);
    EXPECT_EQ(t[0].type, BranchType::Conditional);
    EXPECT_FALSE(t[1].taken);
}

TEST(TextTrace, ParsesAllTypes)
{
    MemoryTrace t = importTextTraceString("1 2 C T\n"
                                          "5 6 J T\n"
                                          "9 a L T\n"
                                          "d e R T\n")
                        .value();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].type, BranchType::Conditional);
    EXPECT_EQ(t[1].type, BranchType::Unconditional);
    EXPECT_EQ(t[2].type, BranchType::Call);
    EXPECT_EQ(t[3].type, BranchType::Return);
}

TEST(TextTrace, ParsesGapAndKernelFlags)
{
    MemoryTrace t =
        importTextTraceString("400100 400200 C T 7\n"
                              "80400104 80400300 C N 3 K\n"
                              "400108 400400 C T K\n")
            .value();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].instGap, 7u);
    EXPECT_FALSE(t[0].kernel);
    EXPECT_EQ(t[1].instGap, 3u);
    EXPECT_TRUE(t[1].kernel);
    EXPECT_EQ(t[2].instGap, 0u);
    EXPECT_TRUE(t[2].kernel);
}

TEST(TextTrace, SkipsCommentsAndBlanks)
{
    MemoryTrace t = importTextTraceString("# header\n"
                                          "\n"
                                          "   # indented comment\n"
                                          "400100 400200 C T\n"
                                          "\n")
                        .value();
    EXPECT_EQ(t.size(), 1u);
}

TEST(TextTrace, FormatRoundTripsSingleRecord)
{
    BranchRecord rec;
    rec.pc = 0x80400abc;
    rec.target = 0x80400100;
    rec.type = BranchType::Conditional;
    rec.taken = false;
    rec.instGap = 12;
    rec.kernel = true;
    std::string line = formatTextRecord(rec);
    EXPECT_EQ(line, "80400abc 80400100 C N 12 K");
    MemoryTrace t = importTextTraceString(line + "\n").value();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], rec);
}

TEST(TextTrace, FileRoundTripPreservesWorkload)
{
    TempFile tmp("roundtrip");
    MemoryTrace original = generateProfileTrace("compress", 5'000);
    std::uint64_t written =
        exportTextTrace(original, tmp.path()).value();
    EXPECT_EQ(written, original.size());

    MemoryTrace loaded = importTextTrace(tmp.path()).value();
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
    EXPECT_EQ(loaded.name(), "bpsim_txt_roundtrip_" +
                                 std::to_string(::getpid()));
}

TEST(TextTrace, GapBoundaryIsExactlyU32Max)
{
    MemoryTrace t =
        importTextTraceString("1 2 C T 4294967295\n").value();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].instGap, 4294967295u);
}

TEST(TextTraceErrors, BadTypeMentionsLineNumber)
{
    expectImportError("400100 400200 X T\n", "bad type");
    expectImportError("400100 400200 X T\n", ":1:");
}

TEST(TextTraceErrors, BadDirection)
{
    expectImportError("400100 400200 C maybe\n", "bad direction");
}

TEST(TextTraceErrors, ShortLineMentionsItsLineNumber)
{
    expectImportError("1 2 C T\n400100\n", ":2:");
}

TEST(TextTraceErrors, NonHexPc)
{
    expectImportError("zzz 400200 C T\n", "bad pc");
}

TEST(TextTraceErrors, NotTakenJump)
{
    expectImportError("400100 400200 J N\n",
                      "non-conditional records must be taken");
}

TEST(TextTraceErrors, NegativePcRejectedDespiteStrtoullWraparound)
{
    // strtoull would happily wrap "-5" to 2^64-5; the importer must
    // reject the sign outright.
    expectImportError("-5 400200 C T\n", "bad pc");
    expectImportError("400100 -400200 C T\n", "bad target");
}

TEST(TextTraceErrors, NegativeGapRejected)
{
    expectImportError("400100 400200 C T -5\n", "bad field");
}

TEST(TextTraceErrors, GapAboveU32MaxRejectedNotTruncated)
{
    // 2^32 used to be silently cast down to 0.
    expectImportError("1 2 C T 4294967296\n", "gap");
    // Values past 2^64 hit the ERANGE path.
    expectImportError("1 2 C T 99999999999999999999\n", "bad field");
}

TEST(TextTraceErrors, OutOfRangePcRejectedNotClamped)
{
    expectImportError("fffffffffffffffff 400200 C T\n", "bad pc");
}

TEST(TextTraceErrors, MissingFile)
{
    auto r = importTextTrace("/nonexistent/trace.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("cannot open"),
              std::string::npos);
}

TEST(TextTraceErrors, UnwritableExportPath)
{
    MemoryTrace t("x");
    auto r = exportTextTrace(t, "/nonexistent/dir/out.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("cannot create"),
              std::string::npos);
}

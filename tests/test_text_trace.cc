/**
 * @file
 * Tests for the plain-text trace interchange format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "trace/text_trace.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/bpsim_txt_" + tag + "_" +
                std::to_string(::getpid()) + ".txt")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(TextTrace, ParsesMinimalRecords)
{
    MemoryTrace t = importTextTraceString("400100 400200 C T\n"
                                          "400104 400300 C N\n");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].pc, 0x400100u);
    EXPECT_EQ(t[0].target, 0x400200u);
    EXPECT_TRUE(t[0].taken);
    EXPECT_EQ(t[0].type, BranchType::Conditional);
    EXPECT_FALSE(t[1].taken);
}

TEST(TextTrace, ParsesAllTypes)
{
    MemoryTrace t = importTextTraceString("1 2 C T\n"
                                          "5 6 J T\n"
                                          "9 a L T\n"
                                          "d e R T\n");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].type, BranchType::Conditional);
    EXPECT_EQ(t[1].type, BranchType::Unconditional);
    EXPECT_EQ(t[2].type, BranchType::Call);
    EXPECT_EQ(t[3].type, BranchType::Return);
}

TEST(TextTrace, ParsesGapAndKernelFlags)
{
    MemoryTrace t = importTextTraceString("400100 400200 C T 7\n"
                                          "80400104 80400300 C N 3 K\n"
                                          "400108 400400 C T K\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].instGap, 7u);
    EXPECT_FALSE(t[0].kernel);
    EXPECT_EQ(t[1].instGap, 3u);
    EXPECT_TRUE(t[1].kernel);
    EXPECT_EQ(t[2].instGap, 0u);
    EXPECT_TRUE(t[2].kernel);
}

TEST(TextTrace, SkipsCommentsAndBlanks)
{
    MemoryTrace t = importTextTraceString("# header\n"
                                          "\n"
                                          "   # indented comment\n"
                                          "400100 400200 C T\n"
                                          "\n");
    EXPECT_EQ(t.size(), 1u);
}

TEST(TextTrace, FormatRoundTripsSingleRecord)
{
    BranchRecord rec;
    rec.pc = 0x80400abc;
    rec.target = 0x80400100;
    rec.type = BranchType::Conditional;
    rec.taken = false;
    rec.instGap = 12;
    rec.kernel = true;
    std::string line = formatTextRecord(rec);
    EXPECT_EQ(line, "80400abc 80400100 C N 12 K");
    MemoryTrace t = importTextTraceString(line + "\n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], rec);
}

TEST(TextTrace, FileRoundTripPreservesWorkload)
{
    TempFile tmp("roundtrip");
    MemoryTrace original = generateProfileTrace("compress", 5'000);
    std::uint64_t written = exportTextTrace(original, tmp.path());
    EXPECT_EQ(written, original.size());

    MemoryTrace loaded = importTextTrace(tmp.path());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
    EXPECT_EQ(loaded.name(), "bpsim_txt_roundtrip_" +
                                 std::to_string(::getpid()));
}

TEST(TextTraceDeathTest, BadTypeIsFatalWithLineNumber)
{
    EXPECT_EXIT(importTextTraceString("400100 400200 X T\n"),
                ::testing::ExitedWithCode(1), "bad type");
}

TEST(TextTraceDeathTest, BadDirectionIsFatal)
{
    EXPECT_EXIT(importTextTraceString("400100 400200 C maybe\n"),
                ::testing::ExitedWithCode(1), "bad direction");
}

TEST(TextTraceDeathTest, ShortLineIsFatal)
{
    EXPECT_EXIT(importTextTraceString("1 2 C T\n400100\n"),
                ::testing::ExitedWithCode(1), ":2:");
}

TEST(TextTraceDeathTest, NonHexPcIsFatal)
{
    EXPECT_EXIT(importTextTraceString("zzz 400200 C T\n"),
                ::testing::ExitedWithCode(1), "bad pc");
}

TEST(TextTraceDeathTest, NotTakenJumpIsFatal)
{
    EXPECT_EXIT(importTextTraceString("400100 400200 J N\n"),
                ::testing::ExitedWithCode(1),
                "non-conditional records must be taken");
}

TEST(TextTraceDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(importTextTrace("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

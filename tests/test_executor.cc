/**
 * @file
 * Tests for the program executor: record-stream validity, determinism,
 * the driver's stop target, and call/return balance.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/executor.hh"
#include "workload/synthetic.hh"

using namespace bpsim;

namespace {

WorkloadParams
execParams(std::uint64_t seed = 1, std::uint64_t target = 20'000)
{
    WorkloadParams p;
    p.name = "exec-unit";
    p.seed = seed;
    p.staticBranches = 150;
    p.functionCount = 15;
    p.targetConditionals = target;
    return p;
}

} // namespace

TEST(ProgramExecutor, ReachesTheConditionalTarget)
{
    MemoryTrace trace = generateTrace(execParams());
    EXPECT_GE(trace.conditionalCount(), 20'000u);
    // The hard stop bounds the overshoot to (at most) one record.
    EXPECT_LE(trace.conditionalCount(), 20'001u);
}

TEST(ProgramExecutor, DeterministicAcrossGenerations)
{
    MemoryTrace a = generateTrace(execParams(9));
    MemoryTrace b = generateTrace(execParams(9));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "record " << i;
}

TEST(ProgramExecutor, ResetReplaysIdentically)
{
    WorkloadParams p = execParams(11, 5'000);
    SyntheticProgram prog = buildProgram(p);
    ProgramExecutor exec(prog, p);

    MemoryTrace first("first");
    first.appendAll(exec);
    exec.reset();
    MemoryTrace second("second");
    second.appendAll(exec);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i]) << "record " << i;
}

TEST(ProgramExecutor, RecordAddressesLieInTheImage)
{
    WorkloadParams p = execParams();
    SyntheticProgram prog = buildProgram(p);
    ProgramExecutor exec(prog, p);

    Addr user_lo = SyntheticProgram::userBase;
    Addr user_hi = user_lo + 4 * prog.code.size();

    BranchRecord rec;
    while (exec.next(rec)) {
        Addr pc = rec.pc & ~SyntheticProgram::kernelBase;
        ASSERT_GE(pc, user_lo);
        ASSERT_LT(pc, user_hi);
    }
}

TEST(ProgramExecutor, ConditionalRecordsCarryRealTargets)
{
    WorkloadParams p = execParams();
    MemoryTrace trace = generateTrace(p);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &rec = trace[i];
        if (!rec.isConditional())
            continue;
        ASSERT_NE(rec.target, 0u);
        ASSERT_NE(rec.target, rec.pc) << "self-loop branch";
    }
}

TEST(ProgramExecutor, CallsAndReturnsBalance)
{
    MemoryTrace trace = generateTrace(execParams(13));
    std::int64_t depth = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].type == BranchType::Call)
            ++depth;
        else if (trace[i].type == BranchType::Return)
            --depth;
        ASSERT_GE(depth, 0) << "return without call at record " << i;
    }
    // Trailing depth may be nonzero only if the hard stop cut a call
    // chain; with a full driver round it ends balanced.
    EXPECT_GE(depth, 0);
}

TEST(ProgramExecutor, MostSitesExecuteOnLongTraces)
{
    WorkloadParams p = execParams(17, 60'000);
    SyntheticProgram prog = buildProgram(p);
    ProgramExecutor exec(prog, p);
    std::unordered_set<Addr> seen;
    BranchRecord rec;
    while (exec.next(rec)) {
        if (rec.isConditional())
            seen.insert(rec.pc);
    }
    // The coverage pass calls every function once; only sites hidden
    // behind never-taken guards stay unexecuted.
    EXPECT_GE(seen.size(), prog.staticBranchCount() / 2);
}

TEST(ProgramExecutor, KernelFlagFollowsFunctionMode)
{
    WorkloadParams p = execParams(19);
    p.kernelFraction = 1.0;
    MemoryTrace trace = generateTrace(p);
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_TRUE(trace[i].kernel) << "record " << i;
}

TEST(ProgramExecutor, UserOnlyWorkloadHasNoKernelRecords)
{
    WorkloadParams p = execParams(23);
    p.kernelFraction = 0.0;
    MemoryTrace trace = generateTrace(p);
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_FALSE(trace[i].kernel) << "record " << i;
}

TEST(ProgramExecutor, TakenConditionalJumpsFallThroughOtherwise)
{
    // Reconstruct control flow: for conditional records, the next
    // record's provenance must be consistent with taken/fall-through.
    // We check the weaker invariant encoded in the records themselves:
    // taken=false implies the *target* field still names the taken
    // destination (it is the static target, not the successor).
    WorkloadParams p = execParams(29, 2'000);
    MemoryTrace trace = generateTrace(p);
    std::size_t conds = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].isConditional()) {
            ++conds;
            EXPECT_NE(trace[i].target, trace[i].pc + 4)
                << "target must differ from fall-through";
        }
    }
    EXPECT_GT(conds, 0u);
}

TEST(ProgramExecutor, InstructionGapsAreReasonable)
{
    WorkloadParams p = execParams(31);
    p.meanBlockLen = 5.0;
    MemoryTrace trace = generateTrace(p);
    std::uint64_t total_gap = 0;
    for (std::size_t i = 0; i < trace.size(); ++i)
        total_gap += trace[i].instGap;
    double density = static_cast<double>(trace.size()) /
        static_cast<double>(total_gap + trace.size());
    // Branches should be roughly 10-35% of instructions, as in Table 1.
    EXPECT_GT(density, 0.05);
    EXPECT_LT(density, 0.50);
}

TEST(ProgramExecutor, NameMatchesParams)
{
    WorkloadParams p = execParams();
    SyntheticProgram prog = buildProgram(p);
    ProgramExecutor exec(prog, p);
    EXPECT_EQ(exec.name(), "exec-unit");
}

TEST(ProgramExecutor, ConditionalCountMatchesEmittedStat)
{
    WorkloadParams p = execParams(37, 3'000);
    SyntheticProgram prog = buildProgram(p);
    ProgramExecutor exec(prog, p);
    MemoryTrace trace("t");
    trace.appendAll(exec);
    EXPECT_EQ(exec.conditionalsEmitted(), trace.conditionalCount());
}
